//! Replay bundles: per-record result digests, the running hash chain and
//! the sealed footer that turn an append-only store into a *certifiable*
//! artifact.
//!
//! Every record appended by the [`crate::store::StoreAppender`] is
//! wrapped in a [`ChainedRecord`] carrying two hashes:
//!
//! - `digest` — [`result_digest`], an FNV-1a64 over the record's
//!   `hash|index|route|result` payload: a fingerprint of *what this unit
//!   measured*, cheap to recompute from a fresh execution;
//! - `chain` — [`chain_step`]: `fnv1a(prev_chain ‖ unit_hash ‖ digest)`,
//!   seeded from the header via [`chain_seed`]. The chain commits every
//!   record to its whole prefix, so records cannot be reordered, dropped
//!   or spliced without breaking every subsequent link.
//!
//! A complete campaign is *sealed*: a [`StoreFooter`] line names the
//! final chain head, the engine/schema versions and the plan hash, and
//! carries its own integrity hash (`seal`) so a flipped bit inside the
//! footer itself is caught. Store + footer = a replay bundle: `dynring
//! certify` re-validates the chain (level 1) and re-executes a seeded
//! sample of units against their digests (level 2). See
//! `docs/CERTIFY.md`.

use serde::{Deserialize, Serialize};

use crate::executor::UnitRecord;
use crate::spec::fnv1a64;
use crate::store::StoreHeader;

/// The store schema generation written into [`StoreFooter::schema`].
/// Bumped when the line format changes shape (v1 stores carried bare
/// `Unit` lines and no footer; v2 added `Chained` records and the seal).
pub const STORE_SCHEMA: &str = "dynring-store-v2";

/// The engine version written into [`StoreFooter::engine`] (the campaign
/// crate's package version).
pub const ENGINE_VERSION: &str = env!("CARGO_PKG_VERSION");

fn hex16(hash: u64) -> String {
    format!("{hash:016x}")
}

/// The record's result digest: FNV-1a64 over
/// `hash|index|route|<result JSON>`. Everything that identifies what the
/// unit measured — and nothing that depends on *when* or *where* it ran —
/// so a certifying re-execution reproduces it bit for bit.
pub fn result_digest(record: &UnitRecord) -> String {
    let result = serde_json::to_string(&record.result)
        .expect("measurement serialization is infallible");
    let payload =
        format!("{}|{}|{}|{result}", record.hash, record.index, record.route);
    hex16(fnv1a64(payload.as_bytes()))
}

/// The chain's seed: FNV-1a64 over the header's canonical JSON. Seeding
/// from the header (name, spec hash, planned unit count) binds the chain
/// to the campaign, so a chain head is only meaningful for its own store.
pub fn chain_seed(header: &StoreHeader) -> String {
    let json =
        serde_json::to_string(header).expect("header serialization is infallible");
    hex16(fnv1a64(json.as_bytes()))
}

/// One chain link: `fnv1a(prev_chain ‖ unit_hash ‖ digest)` (all three as
/// their 16-hex spellings). The inputs are the *stored* hash and digest,
/// so the chain certifies the stored metadata's continuity while
/// [`result_digest`] separately certifies the data — one corrupted field
/// produces one named divergence, not a cascade.
pub fn chain_step(prev_chain: &str, unit_hash: &str, digest: &str) -> String {
    let mut bytes =
        Vec::with_capacity(prev_chain.len() + unit_hash.len() + digest.len());
    bytes.extend_from_slice(prev_chain.as_bytes());
    bytes.extend_from_slice(unit_hash.as_bytes());
    bytes.extend_from_slice(digest.as_bytes());
    hex16(fnv1a64(&bytes))
}

/// A v2 store line: the record plus its digest and chain link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChainedRecord {
    /// The completed unit.
    pub record: UnitRecord,
    /// [`result_digest`] of `record`.
    pub digest: String,
    /// [`chain_step`] over the previous chain head, `record.hash` and
    /// `digest`.
    pub chain: String,
}

impl ChainedRecord {
    /// Wraps `record` as the successor of `prev_chain`.
    pub fn next(prev_chain: &str, record: UnitRecord) -> Self {
        let digest = result_digest(&record);
        let chain = chain_step(prev_chain, &record.hash, &digest);
        ChainedRecord { record, digest, chain }
    }
}

/// The bundle seal: the store's final line once every planned unit has a
/// record. Names what a verifier needs without replaying anything — the
/// final chain head, the schema/engine that wrote the store, the plan
/// hash — and carries its own integrity hash so footer corruption is as
/// detectable as record corruption.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoreFooter {
    /// [`STORE_SCHEMA`] at write time.
    pub schema: String,
    /// [`ENGINE_VERSION`] at write time.
    pub engine: String,
    /// The owning spec's content hash (must match the header).
    pub spec_hash: String,
    /// Planned unit count (must match the header).
    pub planned_units: usize,
    /// Records in the store (must equal `planned_units` for a seal).
    pub units: usize,
    /// The final chain head over all records.
    pub chain_head: String,
    /// FNV-1a64 over the other six fields ([`StoreFooter::expected_seal`]).
    pub seal: String,
}

impl StoreFooter {
    /// Builds the sealed footer for a completed store.
    pub fn new(header: &StoreHeader, units: usize, chain_head: String) -> Self {
        let mut footer = StoreFooter {
            schema: STORE_SCHEMA.to_string(),
            engine: ENGINE_VERSION.to_string(),
            spec_hash: header.spec_hash.clone(),
            planned_units: header.planned_units,
            units,
            chain_head,
            seal: String::new(),
        };
        footer.seal = footer.expected_seal();
        footer
    }

    /// What `seal` must be for the other fields: FNV-1a64 over
    /// `schema|engine|spec_hash|planned_units|units|chain_head`.
    pub fn expected_seal(&self) -> String {
        let payload = format!(
            "{}|{}|{}|{}|{}|{}",
            self.schema,
            self.engine,
            self.spec_hash,
            self.planned_units,
            self.units,
            self.chain_head
        );
        hex16(fnv1a64(payload.as_bytes()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::UnitMeasurement;
    use crate::spec::{UnitDynamics, UnitScheduler, WorkUnit};
    use dynring_analysis::{AlgorithmChoice, PlacementSpec};

    fn record(index: usize) -> UnitRecord {
        let unit = WorkUnit {
            ring_size: 5,
            robots: 1,
            placement: PlacementSpec::EvenlySpaced { count: 1 },
            algorithm: AlgorithmChoice::Pef1,
            dynamics: UnitDynamics::Bernoulli { p: 0.5 },
            scheduler: UnitScheduler::Sync,
            horizon: 10,
            seed: index as u64,
            replicas: 1,
        };
        UnitRecord {
            hash: unit.content_hash(),
            index,
            route: "batch".into(),
            unit,
            result: UnitMeasurement {
                replicas: 1,
                covered: 1,
                total_cover_time: 4,
                min_cover_time: Some(4),
                max_cover_time: Some(4),
            },
        }
    }

    fn header() -> StoreHeader {
        StoreHeader {
            name: "trace".into(),
            spec_hash: "0123456789abcdef".into(),
            planned_units: 2,
        }
    }

    #[test]
    fn digests_depend_on_every_identifying_field() {
        let base = record(0);
        let d0 = result_digest(&base);
        assert_eq!(d0, result_digest(&base), "digests are deterministic");
        let mut other = record(0);
        other.result.covered = 0;
        assert_ne!(d0, result_digest(&other), "result is covered");
        let mut other = record(0);
        other.route = "serial".into();
        assert_ne!(d0, result_digest(&other), "route is covered");
        let mut other = record(0);
        other.index = 7;
        assert_ne!(d0, result_digest(&other), "index is covered");
    }

    #[test]
    fn chains_commit_each_record_to_its_prefix() {
        let seed = chain_seed(&header());
        let a = ChainedRecord::next(&seed, record(0));
        let b = ChainedRecord::next(&a.chain, record(1));
        // Re-deriving reproduces the links…
        assert_eq!(a.chain, chain_step(&seed, &a.record.hash, &a.digest));
        assert_eq!(b.chain, chain_step(&a.chain, &b.record.hash, &b.digest));
        // …and any prefix change breaks every later link.
        let other_seed = chain_seed(&StoreHeader { name: "other".into(), ..header() });
        assert_ne!(other_seed, seed);
        let a2 = ChainedRecord::next(&other_seed, record(0));
        assert_ne!(a2.chain, a.chain);
        assert_ne!(
            ChainedRecord::next(&a2.chain, record(1)).chain,
            b.chain
        );
    }

    #[test]
    fn footers_seal_their_own_fields() {
        let footer = StoreFooter::new(&header(), 2, "aaaaaaaaaaaaaaaa".into());
        assert_eq!(footer.schema, STORE_SCHEMA);
        assert_eq!(footer.seal, footer.expected_seal());
        // Any field change invalidates the seal.
        let mut bad = footer.clone();
        bad.units = 3;
        assert_ne!(bad.seal, bad.expected_seal());
        let mut bad = footer.clone();
        bad.engine = "0.0.0-forged".into();
        assert_ne!(bad.seal, bad.expected_seal());
        let mut bad = footer;
        bad.chain_head = "bbbbbbbbbbbbbbbb".into();
        assert_ne!(bad.seal, bad.expected_seal());
    }
}
