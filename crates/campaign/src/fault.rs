//! Deterministic fault injection for the store's append path (a
//! test-only hook).
//!
//! A [`FailPlan`] is a seeded schedule of exactly one storage fault,
//! threaded through [`crate::RunOptions`] into the
//! [`crate::store::StoreAppender`]. Crash faults ([`FaultKind::Kill`],
//! [`FaultKind::TornRecord`]) abort the run with
//! [`crate::CampaignError::InjectedFault`] after writing a partial line —
//! the model of a power loss mid-append. Corruption faults
//! ([`FaultKind::BitFlip`], [`FaultKind::DuplicateAppend`]) damage the
//! bytes and let the run finish — the model of silent media or logic
//! corruption that resume must *detect*, not absorb.
//!
//! The contract the fault proptests pin (`tests/faults.rs`): for every
//! injected fault, a subsequent `campaign resume` either reproduces the
//! uninterrupted store byte for byte (crash faults, and corruption the
//! torn-tail truncation provably heals) or refuses with a named
//! `STORE-CORRUPT` diagnostic — it never silently drops, duplicates or
//! alters a unit.

use dynring_analysis::seeds::mix64;

/// One injectable storage fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Crash after exactly `after_bytes` bytes of the store have been
    /// written (counting everything already on disk): the current line is
    /// cut mid-write and the run aborts. Models `kill -9` / power loss at
    /// an arbitrary byte position.
    Kill {
        /// Store size, in bytes, at which the crash fires.
        after_bytes: u64,
    },
    /// Write only the first `keep` bytes of the line appending record
    /// number `record` (0-based count of records already in the file),
    /// then abort. Models a torn single-record write.
    TornRecord {
        /// Record count at which the tear fires.
        record: usize,
        /// Bytes of the record line that reach the file (clamped below
        /// the line length, so the tear never completes the line).
        keep: usize,
    },
    /// XOR one byte of the line appending record number `record` and keep
    /// running to completion. Models silent corruption.
    BitFlip {
        /// Record count at which the flip fires.
        record: usize,
        /// Byte position within the line (taken modulo the line length,
        /// newline included).
        byte: usize,
        /// XOR mask; must be nonzero or the flip is a no-op.
        xor: u8,
    },
    /// Append the line of record number `record` twice and keep running.
    /// Models a replayed write (e.g. a retry straddling a crash).
    DuplicateAppend {
        /// Record count at which the duplication fires.
        record: usize,
    },
}

/// A deterministic schedule of one [`FaultKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailPlan {
    kind: FaultKind,
}

impl FailPlan {
    /// A plan injecting exactly `kind`.
    pub fn new(kind: FaultKind) -> Self {
        FailPlan { kind }
    }

    /// The scheduled fault.
    pub fn kind(&self) -> FaultKind {
        self.kind
    }

    /// Derives a fault deterministically from `seed`: the kind and its
    /// parameters come from successive [`mix64`] draws, scaled by hints
    /// for the store's eventual record count and byte size. The same seed
    /// always produces the same fault, so a failing case replays exactly.
    pub fn from_seed(seed: u64, records_hint: usize, bytes_hint: u64) -> Self {
        let records = records_hint.max(1) as u64;
        let bytes = bytes_hint.max(1);
        let draw = |lane: u64| mix64(seed.wrapping_add(lane.wrapping_mul(0x9e37)));
        let kind = match draw(0) % 4 {
            0 => FaultKind::Kill { after_bytes: draw(1) % bytes },
            1 => FaultKind::TornRecord {
                record: (draw(1) % records) as usize,
                keep: (draw(2) % 120) as usize,
            },
            2 => FaultKind::BitFlip {
                record: (draw(1) % records) as usize,
                byte: draw(2) as usize,
                xor: (draw(3) % 255) as u8 + 1,
            },
            _ => FaultKind::DuplicateAppend { record: (draw(1) % records) as usize },
        };
        FailPlan { kind }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic_and_cover_every_kind() {
        let mut kinds = [false; 4];
        for seed in 0..64u64 {
            let plan = FailPlan::from_seed(seed, 10, 1000);
            assert_eq!(plan, FailPlan::from_seed(seed, 10, 1000));
            let slot = match plan.kind() {
                FaultKind::Kill { after_bytes } => {
                    assert!(after_bytes < 1000);
                    0
                }
                FaultKind::TornRecord { record, .. } => {
                    assert!(record < 10);
                    1
                }
                FaultKind::BitFlip { record, xor, .. } => {
                    assert!(record < 10);
                    assert_ne!(xor, 0, "a zero mask would be a silent no-op");
                    2
                }
                FaultKind::DuplicateAppend { record } => {
                    assert!(record < 10);
                    3
                }
            };
            kinds[slot] = true;
        }
        assert_eq!(kinds, [true; 4], "64 seeds must hit all four fault kinds");
    }
}
