//! Deterministic fault injection for the store's append path (a
//! test-only hook).
//!
//! A [`FailPlan`] is a seeded schedule of exactly one storage fault,
//! threaded through [`crate::RunOptions`] into the
//! [`crate::store::StoreAppender`]. Crash faults ([`FaultKind::Kill`],
//! [`FaultKind::TornRecord`]) abort the run with
//! [`crate::CampaignError::InjectedFault`] after writing a partial line —
//! the model of a power loss mid-append. Corruption faults
//! ([`FaultKind::BitFlip`], [`FaultKind::DuplicateAppend`]) damage the
//! bytes and let the run finish — the model of silent media or logic
//! corruption that resume must *detect*, not absorb.
//!
//! The contract the fault proptests pin (`tests/faults.rs`): for every
//! injected fault, a subsequent `campaign resume` either reproduces the
//! uninterrupted store byte for byte (crash faults, and corruption the
//! torn-tail truncation provably heals) or refuses with a named
//! `STORE-CORRUPT` diagnostic — it never silently drops, duplicates or
//! alters a unit.
//!
//! [`ProcessFault`] lifts the same idea to *process* level for the
//! distributed supervisor: a `campaign work` child reads
//! [`WORKER_FAULT_ENV`] and deliberately dies mid-shard (clean exit,
//! SIGKILL-style abort, or a stall past the heartbeat timeout), so
//! supervisor retry, backoff and quarantine paths are exercised
//! deterministically in tests — never in production, where the variable
//! is unset.

use dynring_analysis::seeds::mix64;

/// Env var a `campaign work` child reads for a process-level fault:
/// `exit-after-units:<k>`, `kill-after-bytes:<b>`,
/// `stall-after-units:<k>`, `io-error-after-units:<k>`,
/// `poison-unit:<hash>`, `poison-index:<plan index>` or
/// `slow-unit:<plan index>:<ms>`.
pub const WORKER_FAULT_ENV: &str = "DYNRING_WORKER_FAULT";
/// Env var restricting [`WORKER_FAULT_ENV`] to one shard index; unset
/// means every shard faults.
pub const WORKER_FAULT_SHARD_ENV: &str = "DYNRING_WORKER_FAULT_SHARD";
/// Env var choosing which attempts fault: `first` (the default — retries
/// run clean, so the supervisor's restart path succeeds) or `always`
/// (every attempt faults, driving the shard into quarantine).
pub const WORKER_FAULT_ATTEMPTS_ENV: &str = "DYNRING_WORKER_FAULT_ATTEMPTS";
/// Env var the supervisor sets on each child: the 0-based attempt number
/// for that shard, consulted by the `first`/`always` gating above.
pub const SHARD_ATTEMPT_ENV: &str = "DYNRING_SHARD_ATTEMPT";

/// Exit code of a worker whose `exit-after-units` fault fired, so tests
/// can tell an injected death from a real failure.
pub const WORKER_FAULT_EXIT_CODE: i32 = 113;

/// One injectable process-level fault (see [`WORKER_FAULT_ENV`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProcessFault {
    /// Exit with [`WORKER_FAULT_EXIT_CODE`] once at least `k` units of
    /// this invocation have executed (and fsynced). Models a worker dying
    /// cleanly mid-shard.
    ExitAfterUnits(usize),
    /// Abort the process (no unwinding, no exit handlers) once `bytes` of
    /// the shard store exist, via [`FaultKind::Kill`] in the append path
    /// plus `std::process::abort`. Models `kill -9` mid-write.
    KillAfterBytes(u64),
    /// Stop making progress (sleep forever) once at least `k` units have
    /// executed, without exiting. Models a hung worker the supervisor
    /// must detect by heartbeat timeout and kill.
    StallAfterUnits(usize),
    /// Fail the append of the `k`-th newly executed unit with an IO
    /// error ([`FaultKind::IoError`]): nothing of that record reaches the
    /// disk, the worker exits nonzero with the error on stderr. Models
    /// ENOSPC / EIO on the shard store.
    IoErrorAfterUnits(usize),
    /// Die ([`std::process::abort`]) on reaching the pending unit with
    /// this hash, after syncing everything before it. The fault follows
    /// the *unit*, not the shard: whichever worker inherits the unit in a
    /// re-sharded topology dies too, so a steal provably narrows the
    /// quarantine to the poisoned unit's own sub-range.
    PoisonUnit(String),
    /// [`ProcessFault::PoisonUnit`] addressed by global plan index
    /// (resolved to the unit hash against the plan); easier to script
    /// than a 16-hex-digit hash.
    PoisonIndex(usize),
    /// Sleep `ms` milliseconds before executing the unit at this global
    /// plan index — a benign straggler, not a failure. The run completes
    /// with identical store bytes; only its *timing* changes, which the
    /// telemetry tests use to pin a known-slow unit's wall-time into the
    /// events ledger and to drive the supervisor's straggler detector
    /// without raw `sleep` hacks.
    SlowUnit {
        /// Global plan index of the unit to delay.
        index: usize,
        /// Injected delay in milliseconds.
        ms: u64,
    },
}

impl ProcessFault {
    /// Parses the [`WORKER_FAULT_ENV`] syntax. Malformed strings are an
    /// error — a typo'd fault must not silently run clean.
    pub fn parse(s: &str) -> Result<Self, String> {
        let (kind, arg) = s
            .split_once(':')
            .ok_or_else(|| format!("malformed worker fault {s:?}: expected kind:<arg>"))?;
        if kind == "poison-unit" {
            if arg.is_empty() {
                return Err(format!("malformed worker fault {s:?}: empty unit hash"));
            }
            return Ok(ProcessFault::PoisonUnit(arg.to_string()));
        }
        if kind == "slow-unit" {
            let (index, ms) = arg.split_once(':').ok_or_else(|| {
                format!("malformed worker fault {s:?}: expected slow-unit:<index>:<ms>")
            })?;
            let index: usize = index.parse().map_err(|_| {
                format!("malformed worker fault {s:?}: {index:?} is not a plan index")
            })?;
            let ms: u64 = ms.parse().map_err(|_| {
                format!("malformed worker fault {s:?}: {ms:?} is not a millisecond count")
            })?;
            return Ok(ProcessFault::SlowUnit { index, ms });
        }
        let n: u64 = arg
            .parse()
            .map_err(|_| format!("malformed worker fault {s:?}: {arg:?} is not a number"))?;
        match kind {
            "exit-after-units" => Ok(ProcessFault::ExitAfterUnits(n as usize)),
            "kill-after-bytes" => Ok(ProcessFault::KillAfterBytes(n)),
            "stall-after-units" => Ok(ProcessFault::StallAfterUnits(n as usize)),
            "io-error-after-units" => Ok(ProcessFault::IoErrorAfterUnits(n as usize)),
            "poison-index" => Ok(ProcessFault::PoisonIndex(n as usize)),
            _ => Err(format!("malformed worker fault {s:?}: unknown kind {kind:?}")),
        }
    }

    /// Reads the fault armed for shard `shard` on attempt `attempt` from
    /// the environment; `Ok(None)` when no fault applies.
    ///
    /// # Errors
    ///
    /// A malformed [`WORKER_FAULT_ENV`] / [`WORKER_FAULT_SHARD_ENV`] /
    /// [`WORKER_FAULT_ATTEMPTS_ENV`] value.
    pub fn from_env(shard: usize, attempt: usize) -> Result<Option<Self>, String> {
        let Ok(spec) = std::env::var(WORKER_FAULT_ENV) else {
            return Ok(None);
        };
        let fault = ProcessFault::parse(&spec)?;
        if let Ok(only) = std::env::var(WORKER_FAULT_SHARD_ENV) {
            let only: usize = only.parse().map_err(|_| {
                format!("malformed {WORKER_FAULT_SHARD_ENV}: {only:?} is not a shard index")
            })?;
            if only != shard {
                return Ok(None);
            }
        }
        let attempts =
            std::env::var(WORKER_FAULT_ATTEMPTS_ENV).unwrap_or_else(|_| "first".into());
        match attempts.as_str() {
            "first" => Ok((attempt == 0).then_some(fault)),
            "always" => Ok(Some(fault)),
            other => Err(format!(
                "malformed {WORKER_FAULT_ATTEMPTS_ENV}: {other:?} (want first|always)"
            )),
        }
    }
}

/// One injectable storage fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Crash after exactly `after_bytes` bytes of the store have been
    /// written (counting everything already on disk): the current line is
    /// cut mid-write and the run aborts. Models `kill -9` / power loss at
    /// an arbitrary byte position.
    Kill {
        /// Store size, in bytes, at which the crash fires.
        after_bytes: u64,
    },
    /// Write only the first `keep` bytes of the line appending record
    /// number `record` (0-based count of records already in the file),
    /// then abort. Models a torn single-record write.
    TornRecord {
        /// Record count at which the tear fires.
        record: usize,
        /// Bytes of the record line that reach the file (clamped below
        /// the line length, so the tear never completes the line).
        keep: usize,
    },
    /// XOR one byte of the line appending record number `record` and keep
    /// running to completion. Models silent corruption.
    BitFlip {
        /// Record count at which the flip fires.
        record: usize,
        /// Byte position within the line (taken modulo the line length,
        /// newline included).
        byte: usize,
        /// XOR mask; must be nonzero or the flip is a no-op.
        xor: u8,
    },
    /// Append the line of record number `record` twice and keep running.
    /// Models a replayed write (e.g. a retry straddling a crash).
    DuplicateAppend {
        /// Record count at which the duplication fires.
        record: usize,
    },
    /// Fail the append of record number `record` with
    /// [`crate::CampaignError::Io`] — nothing of the line reaches the
    /// file, so the store stays a clean plan-order prefix. Models ENOSPC
    /// / EIO surfacing through the write path rather than a crash.
    IoError {
        /// Record count at which the write error fires.
        record: usize,
    },
}

/// A deterministic schedule of one [`FaultKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailPlan {
    kind: FaultKind,
}

impl FailPlan {
    /// A plan injecting exactly `kind`.
    pub fn new(kind: FaultKind) -> Self {
        FailPlan { kind }
    }

    /// The scheduled fault.
    pub fn kind(&self) -> FaultKind {
        self.kind
    }

    /// Derives a fault deterministically from `seed`: the kind and its
    /// parameters come from successive [`mix64`] draws, scaled by hints
    /// for the store's eventual record count and byte size. The same seed
    /// always produces the same fault, so a failing case replays exactly.
    pub fn from_seed(seed: u64, records_hint: usize, bytes_hint: u64) -> Self {
        let records = records_hint.max(1) as u64;
        let bytes = bytes_hint.max(1);
        let draw = |lane: u64| mix64(seed.wrapping_add(lane.wrapping_mul(0x9e37)));
        let kind = match draw(0) % 5 {
            0 => FaultKind::Kill { after_bytes: draw(1) % bytes },
            1 => FaultKind::TornRecord {
                record: (draw(1) % records) as usize,
                keep: (draw(2) % 120) as usize,
            },
            2 => FaultKind::BitFlip {
                record: (draw(1) % records) as usize,
                byte: draw(2) as usize,
                xor: (draw(3) % 255) as u8 + 1,
            },
            3 => FaultKind::DuplicateAppend { record: (draw(1) % records) as usize },
            _ => FaultKind::IoError { record: (draw(1) % records) as usize },
        };
        FailPlan { kind }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic_and_cover_every_kind() {
        let mut kinds = [false; 5];
        for seed in 0..64u64 {
            let plan = FailPlan::from_seed(seed, 10, 1000);
            assert_eq!(plan, FailPlan::from_seed(seed, 10, 1000));
            let slot = match plan.kind() {
                FaultKind::Kill { after_bytes } => {
                    assert!(after_bytes < 1000);
                    0
                }
                FaultKind::TornRecord { record, .. } => {
                    assert!(record < 10);
                    1
                }
                FaultKind::BitFlip { record, xor, .. } => {
                    assert!(record < 10);
                    assert_ne!(xor, 0, "a zero mask would be a silent no-op");
                    2
                }
                FaultKind::DuplicateAppend { record } => {
                    assert!(record < 10);
                    3
                }
                FaultKind::IoError { record } => {
                    assert!(record < 10);
                    4
                }
            };
            kinds[slot] = true;
        }
        assert_eq!(kinds, [true; 5], "64 seeds must hit all five fault kinds");
    }

    #[test]
    fn process_faults_parse_and_refuse_malformed_specs() {
        assert_eq!(
            ProcessFault::parse("exit-after-units:3"),
            Ok(ProcessFault::ExitAfterUnits(3))
        );
        assert_eq!(
            ProcessFault::parse("kill-after-bytes:2048"),
            Ok(ProcessFault::KillAfterBytes(2048))
        );
        assert_eq!(
            ProcessFault::parse("stall-after-units:0"),
            Ok(ProcessFault::StallAfterUnits(0))
        );
        assert_eq!(
            ProcessFault::parse("io-error-after-units:2"),
            Ok(ProcessFault::IoErrorAfterUnits(2))
        );
        assert_eq!(
            ProcessFault::parse("poison-unit:00deadbeef17"),
            Ok(ProcessFault::PoisonUnit("00deadbeef17".into()))
        );
        assert_eq!(
            ProcessFault::parse("poison-index:37"),
            Ok(ProcessFault::PoisonIndex(37))
        );
        assert_eq!(
            ProcessFault::parse("slow-unit:5:250"),
            Ok(ProcessFault::SlowUnit { index: 5, ms: 250 })
        );
        for bad in [
            "exit-after-units",
            "exit-after-units:x",
            "segfault:1",
            "",
            "poison-unit:",
            "poison-index:abc",
            "slow-unit:5",
            "slow-unit:x:250",
            "slow-unit:5:fast",
        ] {
            assert!(ProcessFault::parse(bad).is_err(), "{bad:?} must refuse");
        }
    }
}
