//! Canonical merge: fold shard stores back into one serial-run store.
//!
//! Each shard store carries a disjoint slice of the plan, chained over
//! its *own* prefix. The merge interleaves all shard records back into
//! plan order and re-wraps each one with [`crate::trace::ChainedRecord`]
//! links recomputed from the canonical header — exactly the chain an
//! uninterrupted serial run would have written. Because unit execution
//! is deterministic and records serialize canonically, the merged store
//! is **byte-identical** to a single-process run of the same spec (the
//! property `cmp` pins in `just distributed-smoke`), and therefore
//! passes `dynring certify --level 2` unchanged.
//!
//! Refusals are loud and named: any cross-shard inconsistency produces a
//! greppable `MERGE-CONFLICT reason=…` diagnostic (`spec-mismatch`,
//! `overlap`, `foreign-unit`, `shard-membership`, `range-gap`,
//! `range-overlap`) instead of a silently wrong canonical store. A
//! generation-split manifest (a steal retired a shard at its prefix and
//! re-sharded the rest, see [`crate::shard`]) needs no special casing:
//! its entries are still an exact disjoint tiling of the plan, so the
//! partial parent store and the child sub-shard stores fold back into
//! the same canonical bytes. The seal is written only when every planned
//! unit is present; otherwise the merge writes the maximal plan-order
//! *prefix* (still a valid, resumable store) and reports what it held
//! back. The output is written to a temp file and renamed into place, so
//! an interrupted merge never leaves a torn canonical store.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::shard::ShardManifest;
use crate::spec::CampaignSpec;
use crate::store::{ResultStore, StoreHeader};
use crate::CampaignError;

/// What a merge produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergeOutcome {
    /// Shard stores read (empty/missing ones included).
    pub shards: usize,
    /// Records written to the canonical store (the maximal plan-order
    /// prefix of what the shards held).
    pub merged: usize,
    /// Records present in shards but beyond the first plan gap — held
    /// back to keep the canonical store a resumable prefix. They remain
    /// in their shard stores; re-merge after the gap's shard resumes.
    pub held_back: usize,
    /// Units of the plan with no record anywhere.
    pub missing: usize,
    /// Whether the canonical store was sealed (all units present).
    pub sealed: bool,
}

fn conflict(msg: String) -> CampaignError {
    CampaignError::MergeConflict(format!("MERGE-CONFLICT {msg}"))
}

/// Merges `shards` into `out` for `spec`. Shard stores may be given in
/// any order and may be incomplete (or entirely missing — a shard that
/// never started). `expected`, when given, binds each store to a
/// manifest range: `(shard index, first plan index, unit count)`.
///
/// # Errors
///
/// - [`CampaignError::StoreExists`] when `out` already has content;
/// - [`CampaignError::MergeConflict`] — one `MERGE-CONFLICT reason=…`
///   line — on overlapping, duplicated, foreign-spec or out-of-range
///   shard records;
/// - store loading errors ([`CampaignError::CorruptStore`] etc.) from
///   any damaged shard.
fn merge_impl(
    spec: &CampaignSpec,
    shards: &[ResultStore],
    expected: Option<&[(usize, usize, usize)]>,
    out: &ResultStore,
) -> Result<MergeOutcome, CampaignError> {
    let plan = spec.plan()?;
    let existing = out.load()?;
    if existing.header.is_some() || !existing.records.is_empty() {
        return Err(CampaignError::StoreExists(out.path().display().to_string()));
    }

    // Manifest ranges (generation splits included) must still tile the
    // plan exactly: a topology with a hole or a doubly-owned range is
    // refused by name before any store is read. Empty (retired) ranges
    // own nothing and are skipped.
    if let Some(ranges) = expected {
        let mut owned: Vec<(usize, usize, usize)> =
            ranges.iter().copied().filter(|&(_, _, units)| units > 0).collect();
        owned.sort_by_key(|&(_, start, _)| start);
        let mut next = 0usize;
        for (shard, start, units) in owned {
            if start > next {
                return Err(conflict(format!(
                    "reason=range-gap units={next}..{start} next-shard={shard}"
                )));
            }
            if start < next {
                return Err(conflict(format!(
                    "reason=range-overlap units={start}..{next} shard={shard}"
                )));
            }
            next = start + units;
        }
        if next != plan.units.len() {
            return Err(conflict(format!(
                "reason=range-gap units={next}..{}",
                plan.units.len()
            )));
        }
    }

    // Gather every shard record, keyed by plan index, refusing overlaps
    // and foreign units by name.
    let mut by_index: BTreeMap<usize, (crate::executor::UnitRecord, String)> = BTreeMap::new();
    for (slot, store) in shards.iter().enumerate() {
        let loaded = store.load()?;
        let path = store.path().display().to_string();
        if let Some(header) = &loaded.header {
            if header.spec_hash != plan.spec_hash {
                return Err(conflict(format!(
                    "reason=spec-mismatch expected={} got={} store={path}",
                    plan.spec_hash, header.spec_hash
                )));
            }
            if header.name != plan.name || header.planned_units != plan.units.len() {
                return Err(conflict(format!(
                    "reason=plan-mismatch expected={}/{} got={}/{} store={path}",
                    plan.name,
                    plan.units.len(),
                    header.name,
                    header.planned_units
                )));
            }
        } else if !loaded.records.is_empty() {
            return Err(CampaignError::CorruptStore(format!(
                "{path}: records without a header"
            )));
        }
        let range = expected.map(|ranges| {
            let (index, start, units) = ranges[slot];
            (index, start..start + units)
        });
        for record in loaded.records {
            if plan.units.get(record.index).map(|p| p.hash.as_str())
                != Some(record.hash.as_str())
            {
                return Err(conflict(format!(
                    "reason=foreign-unit unit={} index={} store={path}",
                    record.hash, record.index
                )));
            }
            if let Some((shard, range)) = &range {
                if !range.contains(&record.index) {
                    return Err(conflict(format!(
                        "reason=shard-membership shard={shard} unit={} index={} \
                         expected={}..{} store={path}",
                        record.hash, record.index, range.start, range.end
                    )));
                }
            }
            let index = record.index;
            if let Some((_, other)) = by_index.get(&index) {
                return Err(conflict(format!(
                    "reason=overlap unit={} index={index} store={path} other={other}",
                    record.hash
                )));
            }
            by_index.insert(index, (record, path.clone()));
        }
    }

    // Write the canonical store to a temp file: header, then the maximal
    // plan-order prefix, re-chained from the canonical seed; seal iff
    // complete; rename into place.
    let tmp_path: PathBuf = {
        let mut name = out.path().file_name().unwrap_or_default().to_os_string();
        name.push(".merge-tmp");
        out.path().with_file_name(name)
    };
    let _ = std::fs::remove_file(&tmp_path);
    let tmp = ResultStore::new(&tmp_path);
    let empty = tmp.load()?;
    let mut appender = tmp.appender(&empty)?;
    appender.append_header(StoreHeader {
        name: plan.name.clone(),
        spec_hash: plan.spec_hash.clone(),
        planned_units: plan.units.len(),
    })?;
    let mut merged = 0usize;
    for index in 0..plan.units.len() {
        let Some((record, _)) = by_index.remove(&index) else {
            break;
        };
        appender.append_record(record)?;
        merged += 1;
    }
    let held_back = by_index.len();
    let missing = plan.units.len() - merged - held_back;
    let sealed = merged == plan.units.len();
    if sealed {
        appender.seal()?;
    }
    appender.sync()?;
    drop(appender);
    std::fs::rename(&tmp_path, out.path())?;
    // Out-of-band merge accounting (the appender above already counted
    // its raw writes and fsyncs).
    let obs = dynring_obs::global();
    obs.counter(dynring_obs::names::MERGE_UNITS).add(merged as u64);
    if let Ok(meta) = std::fs::metadata(out.path()) {
        obs.counter(dynring_obs::names::MERGE_BYTES).add(meta.len());
    }
    Ok(MergeOutcome { shards: shards.len(), merged, held_back, missing, sealed })
}

/// Merges explicit shard stores (no manifest ranges; overlap, plan
/// membership and spec binding are still enforced). See [`merge_impl`]
/// for the contract and errors.
///
/// # Errors
///
/// See [`merge_manifest`].
pub fn merge_stores(
    spec: &CampaignSpec,
    shards: &[ResultStore],
    out: &ResultStore,
) -> Result<MergeOutcome, CampaignError> {
    merge_impl(spec, shards, None, out)
}

/// Merges the stores named by `manifest`, additionally refusing any
/// record outside its shard's manifest range
/// (`MERGE-CONFLICT reason=shard-membership`).
///
/// # Errors
///
/// - [`CampaignError::SpecMismatch`] when the manifest belongs to a
///   different spec;
/// - [`CampaignError::StoreExists`] when `out` already has content;
/// - [`CampaignError::MergeConflict`] on overlapping, duplicated,
///   foreign-spec or out-of-range shard records;
/// - store loading errors from any damaged shard.
pub fn merge_manifest(
    spec: &CampaignSpec,
    manifest: &ShardManifest,
    out: &ResultStore,
) -> Result<MergeOutcome, CampaignError> {
    let plan = spec.plan()?;
    manifest.matches(&plan)?;
    let stores: Vec<ResultStore> = manifest
        .entries
        .iter()
        .map(|e| ResultStore::new(Path::new(&e.store)))
        .collect();
    let ranges: Vec<(usize, usize, usize)> =
        manifest.entries.iter().map(|e| (e.index, e.start, e.units)).collect();
    merge_impl(spec, &stores, Some(&ranges), out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_campaign, RunOptions};
    use crate::shard::ShardSel;
    use crate::spec::{PlacementAxis, UnitDynamics, UnitScheduler};
    use dynring_analysis::AlgorithmChoice;

    fn spec() -> CampaignSpec {
        CampaignSpec {
            name: "mergetest".into(),
            ring_sizes: vec![4, 5],
            robots: vec![1, 2],
            placements: vec![PlacementAxis::EvenlySpaced],
            algorithms: vec![AlgorithmChoice::Pef3Plus],
            dynamics: vec![UnitDynamics::Bernoulli { p: 0.6 }, UnitDynamics::Static],
            schedulers: vec![UnitScheduler::Sync],
            seeds: vec![1, 2],
            horizon: 120,
            replicas: 2,
        }
    }

    fn temp(name: &str) -> ResultStore {
        let path = std::env::temp_dir().join(format!("dynring_merge_test_{name}.jsonl"));
        let _ = std::fs::remove_file(&path);
        ResultStore::new(path)
    }

    fn cleanup(stores: &[&ResultStore]) {
        for s in stores {
            let _ = std::fs::remove_file(s.path());
        }
    }

    fn run_shard(spec: &CampaignSpec, store: &ResultStore, sel: ShardSel) {
        run_campaign(
            spec,
            store,
            &RunOptions { fresh: false, shard: Some(sel), ..RunOptions::default() },
        )
        .expect("shard runs");
    }

    #[test]
    fn merged_shards_are_byte_identical_to_a_serial_run_and_sealed() {
        let spec = spec();
        let serial = temp("serial");
        run_campaign(&spec, &serial, &RunOptions { workers: 1, ..RunOptions::default() })
            .expect("serial run");

        let shards: Vec<ResultStore> =
            (0..3).map(|i| temp(&format!("shard{i}"))).collect();
        for (i, store) in shards.iter().enumerate() {
            run_shard(&spec, store, ShardSel::Balanced { index: i, count: 3 });
        }
        let merged = temp("merged");
        // Shard order must not matter: merge in reverse.
        let reversed: Vec<ResultStore> = shards.iter().rev().cloned().collect();
        let outcome = merge_stores(&spec, &reversed, &merged).expect("merges");
        assert!(outcome.sealed);
        assert_eq!(outcome.held_back, 0);
        assert_eq!(outcome.missing, 0);
        let a = std::fs::read(serial.path()).expect("read");
        let b = std::fs::read(merged.path()).expect("read");
        assert_eq!(a, b, "merge must reproduce the serial store bit for bit");
        cleanup(&[&serial, &merged]);
        cleanup(&shards.iter().collect::<Vec<_>>());
    }

    #[test]
    fn incomplete_shards_merge_to_an_unsealed_resumable_prefix() {
        let spec = spec();
        let total = spec.plan().expect("plan").units.len();
        let shard0 = temp("partial0");
        let shard1 = temp("partial1");
        run_shard(&spec, &shard0, ShardSel::Balanced { index: 0, count: 2 });
        // Shard 1 never ran: its units are missing.
        let merged = temp("partial_merged");
        let outcome = merge_stores(&spec, &[shard0.clone(), shard1.clone()], &merged)
            .expect("partial merge");
        assert!(!outcome.sealed);
        assert_eq!(
            outcome.merged,
            ShardSel::Balanced { index: 0, count: 2 }.range(total).len()
        );
        assert_eq!(outcome.missing, total - outcome.merged);
        // The prefix is a normal resumable store: resume completes it to
        // the serial bytes.
        run_campaign(&spec, &merged, &RunOptions { fresh: false, ..RunOptions::default() })
            .expect("resumes");
        let serial = temp("partial_serial");
        run_campaign(&spec, &serial, &RunOptions::default()).expect("serial");
        let a = std::fs::read(serial.path()).expect("read");
        let b = std::fs::read(merged.path()).expect("read");
        assert_eq!(a, b);
        cleanup(&[&shard0, &shard1, &merged, &serial]);
    }

    #[test]
    fn overlapping_and_foreign_shards_refuse_by_name() {
        let spec = spec();
        let whole = temp("overlap_whole");
        run_campaign(&spec, &whole, &RunOptions::default()).expect("runs");
        let shard0 = temp("overlap_shard0");
        run_shard(&spec, &shard0, ShardSel::Balanced { index: 0, count: 2 });
        let merged = temp("overlap_merged");
        let err = merge_stores(&spec, &[whole.clone(), shard0.clone()], &merged)
            .expect_err("overlap must refuse");
        assert!(err.to_string().contains("MERGE-CONFLICT"), "{err}");
        assert!(err.to_string().contains("reason=overlap"), "{err}");

        // A store of a different spec refuses with spec-mismatch.
        let mut other = spec.clone();
        other.horizon += 7;
        let foreign = temp("overlap_foreign");
        run_campaign(&other, &foreign, &RunOptions::default()).expect("runs");
        let err = merge_stores(&spec, std::slice::from_ref(&foreign), &merged)
            .expect_err("foreign spec must refuse");
        assert!(err.to_string().contains("reason=spec-mismatch"), "{err}");
        cleanup(&[&whole, &shard0, &foreign, &merged]);
    }

    #[test]
    fn manifest_merge_refuses_out_of_range_records() {
        let spec = spec();
        let plan = spec.plan().expect("plan");
        let dir = std::env::temp_dir();
        let manifest = ShardManifest::build(&plan, 2, &dir);
        // Run the WHOLE plan into shard 0's store: its records spill past
        // the manifest range.
        let store0 = ResultStore::new(Path::new(&manifest.entries[0].store));
        let _ = std::fs::remove_file(store0.path());
        run_campaign(&spec, &store0, &RunOptions::default()).expect("runs");
        let merged = temp("range_merged");
        let err = merge_manifest(&spec, &manifest, &merged)
            .expect_err("out-of-range records must refuse");
        assert!(err.to_string().contains("reason=shard-membership"), "{err}");
        for e in &manifest.entries {
            let _ = std::fs::remove_file(&e.store);
        }
        cleanup(&[&merged]);
    }

    #[test]
    fn generation_split_stores_fold_back_to_the_serial_bytes() {
        let spec = spec();
        let plan = spec.plan().expect("plan");
        let dir = std::env::temp_dir().join("dynring_merge_gen_test");
        let _ = std::fs::create_dir_all(&dir);
        let mut manifest = ShardManifest::build(&plan, 2, &dir);
        for e in &manifest.entries {
            let _ = std::fs::remove_file(&e.store);
        }

        // Shard 0 completes; shard 1 dies after 2 units and its tail is
        // stolen into two sub-shards, as the supervisor would record it.
        run_shard(&spec, &ResultStore::new(Path::new(&manifest.entries[0].store)),
            ShardSel::Balanced { index: 0, count: 2 });
        let parent = ResultStore::new(Path::new(&manifest.entries[1].store));
        run_campaign(&spec, &parent, &RunOptions {
            fresh: false,
            max_units: Some(2),
            shard: Some(ShardSel::Balanced { index: 1, count: 2 }),
            ..RunOptions::default()
        })
        .expect("partial parent runs");
        let children = manifest.split_entry(1, 2, 2).expect("splits");
        manifest.validate().expect("split manifest validates");
        for &c in &children {
            let e = &manifest.entries[c];
            let _ = std::fs::remove_file(&e.store);
            run_shard(
                &spec,
                &ResultStore::new(Path::new(&e.store)),
                ShardSel::Range { start: e.start, units: e.units },
            );
        }

        let merged = temp("gen_merged");
        let outcome = merge_manifest(&spec, &manifest, &merged).expect("folds");
        assert!(outcome.sealed);
        let serial = temp("gen_serial");
        run_campaign(&spec, &serial, &RunOptions::default()).expect("serial");
        let a = std::fs::read(serial.path()).expect("read");
        let b = std::fs::read(merged.path()).expect("read");
        assert_eq!(a, b, "generation fold must reproduce the serial bytes");

        for e in &manifest.entries {
            let _ = std::fs::remove_file(&e.store);
        }
        cleanup(&[&merged, &serial]);
    }

    #[test]
    fn manifest_range_gaps_and_overlaps_refuse_by_name() {
        let spec = spec();
        let plan = spec.plan().expect("plan");
        let dir = std::env::temp_dir();
        let manifest = ShardManifest::build(&plan, 2, &dir);
        let merged = temp("tiling_merged");

        // A hole in the tiling (no store is ever read).
        let mut holed = manifest.clone();
        holed.entries[1].start += 1;
        holed.entries[1].units -= 1;
        let err = merge_manifest(&spec, &holed, &merged).expect_err("gap must refuse");
        assert!(err.to_string().contains("reason=range-gap"), "{err}");

        // A doubly-owned unit.
        let mut doubled = manifest.clone();
        doubled.entries[1].start -= 1;
        let err =
            merge_manifest(&spec, &doubled, &merged).expect_err("overlap must refuse");
        assert!(err.to_string().contains("reason=range-overlap"), "{err}");
        cleanup(&[&merged]);
    }

    #[test]
    fn merge_refuses_a_non_empty_output_store() {
        let spec = spec();
        let out = temp("nonempty_out");
        run_campaign(
            &spec,
            &out,
            &RunOptions { max_units: Some(1), ..RunOptions::default() },
        )
        .expect("runs");
        assert!(matches!(
            merge_stores(&spec, &[], &out),
            Err(CampaignError::StoreExists(_))
        ));
        cleanup(&[&out]);
    }
}
