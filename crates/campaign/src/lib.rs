//! Declarative, sharded, resumable experiment campaigns over the batch
//! engine.
//!
//! The paper's claims are statements over a whole parameter space —
//! algorithms × ring size × team size × schedule class × scheduler — and
//! the engines below this crate execute single points of it very fast.
//! This crate is the layer that *drives* them at that scale:
//!
//! - [`spec`] — a JSON [`CampaignSpec`] expands into a deterministic,
//!   content-hashed list of [`WorkUnit`]s ([`CampaignSpec::plan`]);
//! - [`executor`] — each unit routes to the 64-replica lockstep
//!   [`dynring_engine::BatchSimulator`] when eligible (pure Bernoulli ×
//!   FSYNC) and to the serial engines otherwise ([`route_unit`]), with
//!   bit-identical measurements either way;
//! - [`runner`] — [`run_campaign`] shards pending units over threads and
//!   appends records in plan order, so parallel stores are byte-identical
//!   to serial ones and an interrupted store is always a plan-order
//!   prefix;
//! - [`store`] — the append-only JSONL [`ResultStore`], keyed by unit
//!   hash: `resume` skips completed units, re-running a finished campaign
//!   is a no-op, and a torn trailing write is truncated away;
//! - [`aggregate`] — folds a store into the grouped cover-time /
//!   survival [`CampaignReport`];
//! - [`events`] / [`metrics`] — out-of-band observability: a
//!   torn-tail-tolerant per-campaign events ledger
//!   (`<store>.events.jsonl`) and its per-(algorithm × dynamics ×
//!   scheduler × route) time/throughput aggregation behind `dynring
//!   metrics show|diff|top`. Telemetry never changes store bytes (see
//!   `docs/OBSERVABILITY.md`);
//! - [`shard`] / [`supervise`] / [`merge`] — the distributed story:
//!   deterministically partition a plan into disjoint shard ranges
//!   ([`ShardManifest`]), run each shard as a supervised child process
//!   with heartbeat monitoring, bounded-backoff restart, work-stealing
//!   re-sharding of exhausted or straggling shards (manifest
//!   *generations*) and last-resort quarantine ([`supervise`]), then
//!   fold the shard stores — generation splits included — back into one
//!   canonical store byte-identical to a serial run
//!   ([`merge_manifest`]).
//!
//! See `docs/CAMPAIGNS.md` for the spec format and the CLI
//! (`dynring campaign run | resume | report | shard | work | merge |
//! status`).
//!
//! # Example
//!
//! ```rust
//! use dynring_analysis::AlgorithmChoice;
//! use dynring_campaign::{
//!     run_campaign, load_report, CampaignSpec, PlacementAxis, ResultStore, RunOptions,
//!     UnitDynamics, UnitScheduler,
//! };
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = CampaignSpec {
//!     name: "doc".into(),
//!     ring_sizes: vec![5],
//!     robots: vec![3],
//!     placements: vec![PlacementAxis::EvenlySpaced],
//!     algorithms: vec![AlgorithmChoice::Pef3Plus],
//!     dynamics: vec![UnitDynamics::Bernoulli { p: 0.5 }],
//!     schedulers: vec![UnitScheduler::Sync],
//!     seeds: vec![7],
//!     horizon: 200,
//!     replicas: 8,
//! };
//! let path = std::env::temp_dir().join("dynring_campaign_doc.jsonl");
//! # let _ = std::fs::remove_file(&path);
//! let store = ResultStore::new(&path);
//! let outcome = run_campaign(&spec, &store, &RunOptions::default())?;
//! assert!(outcome.is_complete());
//! let report = load_report(&spec, &store)?;
//! assert_eq!(report.completed_units, 1);
//! # std::fs::remove_file(&path)?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;

use dynring_analysis::ScenarioError;

pub mod aggregate;
pub mod certify;
pub mod events;
pub mod executor;
pub mod fault;
pub mod merge;
pub mod metrics;
pub mod runner;
pub mod shard;
pub mod spec;
pub mod store;
pub mod supervise;
pub mod trace;

pub use aggregate::{aggregate, render, CampaignGroup, CampaignReport};
pub use certify::{certify, render_verdict, CertifyFailure, CertifyOptions, CertifyVerdict};
pub use events::{Event, EventLedger, EventRecord, LedgerAppender, LoadedLedger, EVENTS_SCHEMA};
pub use executor::{
    execute_unit, execute_unit_on, route_unit, Route, UnitMeasurement, UnitRecord,
};
pub use fault::{FailPlan, FaultKind, ProcessFault};
pub use merge::{merge_manifest, merge_stores, MergeOutcome};
pub use metrics::{
    coarse_rate, render_diff, render_summary, render_top, summarize, FaultSummary,
    LedgerSummary, MetricsGroup,
};
pub use runner::{load_report, run_campaign, RunOptions, RunOutcome};
pub use shard::{
    shard_range, ShardEntry, ShardManifest, ShardSel, MANIFEST_SCHEMA, MANIFEST_SCHEMA_V1,
};
pub use supervise::{
    render_progress, shard_progress, supervise, ShardFailure, ShardProgress,
    SuperviseOptions, SuperviseOutcome,
};
pub use spec::{
    CampaignPlan, CampaignSpec, ExplicitRobot, PlacementAxis, PlannedUnit, UnitDynamics,
    UnitScheduler, WorkUnit,
};
pub use store::{LoadedStore, ResultStore, StoreAppender, StoreHeader, StoreLine};
pub use trace::{ChainedRecord, StoreFooter, ENGINE_VERSION, STORE_SCHEMA};

/// Errors of the campaign layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CampaignError {
    /// The spec failed validation (message names the offending field).
    InvalidSpec(String),
    /// The spec expanded to zero units.
    EmptyPlan,
    /// A unit was ill-formed for the engines.
    Scenario(ScenarioError),
    /// Filesystem trouble.
    Io(String),
    /// (De)serialization trouble.
    Json(String),
    /// `run` found an existing store (use `resume`).
    StoreExists(String),
    /// The store belongs to a different spec.
    SpecMismatch {
        /// The current spec's hash.
        expected: String,
        /// The hash recorded in the store header.
        found: String,
    },
    /// The store is damaged beyond a torn trailing line.
    CorruptStore(String),
    /// Shard stores cannot be folded into one canonical store. The
    /// message is a single greppable `MERGE-CONFLICT reason=…` line
    /// (see [`merge`]).
    MergeConflict(String),
    /// A test-only injected fault fired (see [`fault`]); the message
    /// names the fault so the crash-safety proptests can assert on it.
    InjectedFault(String),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::InvalidSpec(msg) => write!(f, "invalid campaign spec: {msg}"),
            CampaignError::EmptyPlan => {
                write!(f, "the campaign spec expands to zero work units")
            }
            CampaignError::Scenario(e) => write!(f, "unit execution failed: {e}"),
            CampaignError::Io(msg) => write!(f, "store I/O error: {msg}"),
            CampaignError::Json(msg) => write!(f, "store serialization error: {msg}"),
            CampaignError::StoreExists(path) => write!(
                f,
                "store {path} already has content; use `campaign resume` to continue it"
            ),
            CampaignError::SpecMismatch { expected, found } => write!(
                f,
                "store belongs to spec {found}, not the given spec {expected}"
            ),
            CampaignError::CorruptStore(msg) => write!(f, "corrupt store: {msg}"),
            CampaignError::MergeConflict(msg) => write!(f, "{msg}"),
            CampaignError::InjectedFault(msg) => write!(f, "injected fault: {msg}"),
        }
    }
}

impl Error for CampaignError {}

impl From<ScenarioError> for CampaignError {
    fn from(e: ScenarioError) -> Self {
        CampaignError::Scenario(e)
    }
}

impl From<std::io::Error> for CampaignError {
    fn from(e: std::io::Error) -> Self {
        CampaignError::Io(e.to_string())
    }
}

impl From<serde_json::Error> for CampaignError {
    fn from(e: serde_json::Error) -> Self {
        CampaignError::Json(e.to_string())
    }
}
