//! Unit execution and routing: batch engine when eligible, serial engine
//! otherwise — with bit-for-bit reproducible measurements either way.
//!
//! The routing rule is a pure function of the unit
//! ([`route_unit`]): a unit runs on the lane-parallel lockstep
//! [`dynring_engine::BatchSimulator`] iff its dynamics is the pure
//! Bernoulli stream **and** its scheduler is FSYNC or SSYNC — exactly
//! the combinations whose per-lane execution is proven bit-identical to
//! the serial engine (SSYNC rides the word-parallel round-robin
//! activation words, the same deterministic policy the serial engine
//! plays). Everything else (adaptive adversaries, repaired stochastic
//! classes, ASYNC scheduling) falls back to the serial engines. The
//! batch route also carries its lane arity
//! ([`dynring_analysis::BatchArity`], picked per unit by replica count)
//! — a pure throughput knob that never enters unit hashes or stored
//! record bytes, since every arity produces the same bytes. Because the
//! decision depends only on the unit, sharding a campaign over threads
//! cannot change any record's route or bytes.
//!
//! Replica seeds follow the Monte Carlo contract
//! ([`dynring_analysis::seeds::derive_stream_seed`]): replica `r` of a
//! Bernoulli unit is lane `r % 64` of the stream seeded
//! `derive_stream_seed(unit.seed, r / 64)`, so any replica of any store
//! can be replayed in isolation on the serial engine.

use serde::{Deserialize, Serialize};

use dynring_analysis::scenario::SchedulerChoice;
use dynring_analysis::seeds::derive_stream_seed;
use dynring_analysis::{BatchArity, BatchSweep, Scenario, ScenarioError};
use dynring_core::baselines::{
    AlternateDirection, AlwaysTurnOnTower, BounceOnMissingEdge, KeepDirection, RandomDirection,
};
use dynring_core::{Pef1, Pef2, Pef3Plus};
use dynring_engine::async_exec::{AsyncSimulator, ObliviousAsync};
use dynring_engine::{
    Algorithm, Oblivious, RobotPlacement, RoundRobinSingle, Simulator, LANES,
};
use dynring_graph::{AlwaysPresent, BernoulliReplicas, EdgeSchedule, NodeId, RingTopology, Time};

use crate::spec::{PlannedUnit, UnitDynamics, UnitScheduler, WorkUnit};
use crate::CampaignError;

use dynring_analysis::AlgorithmChoice;

/// Where a unit executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// The lockstep batch engine at the given lane arity.
    Batch(BatchArity),
    /// The serial engines (round simulator or phase-split async
    /// simulator).
    Serial,
}

impl Route {
    /// Display name (also the form recorded in the store). The arity is
    /// deliberately *not* part of the name: stored route strings stay
    /// `"batch"`/`"serial"` at every arity, because every arity produces
    /// the same bytes.
    pub fn name(&self) -> &'static str {
        match self {
            Route::Batch(_) => "batch",
            Route::Serial => "serial",
        }
    }

    /// Whether this is the batch route (at any arity).
    pub fn is_batch(&self) -> bool {
        matches!(self, Route::Batch(_))
    }

    /// The lane arity of the batch route, `None` on the serial route.
    pub fn arity(&self) -> Option<BatchArity> {
        match self {
            Route::Batch(arity) => Some(*arity),
            Route::Serial => None,
        }
    }
}

/// The batch-eligibility rule: pure Bernoulli dynamics under the FSYNC or
/// SSYNC scheduler (the two whose activation is expressible as
/// deterministic lane-uniform activation words). A pure function of the
/// unit, so the decision is identical on every shard of every run; the
/// arity is [`BatchArity::for_replicas`] on the unit's replica budget.
pub fn route_unit(unit: &WorkUnit) -> Route {
    if unit.dynamics.is_pure_bernoulli()
        && matches!(unit.scheduler, UnitScheduler::Sync | UnitScheduler::Ssync)
    {
        Route::Batch(BatchArity::for_replicas(unit.replicas))
    } else {
        Route::Serial
    }
}

/// What one unit measured: first-cover statistics over its replicas.
/// Integer accumulators only (`total_cover_time` instead of a float sum),
/// so records are byte-identical across machines and worker counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnitMeasurement {
    /// Replicas executed.
    pub replicas: usize,
    /// Replicas that completed a first cover within the horizon.
    pub covered: usize,
    /// Sum of first-cover rounds over the covered replicas.
    pub total_cover_time: u64,
    /// Minimum first-cover round over the covered replicas.
    pub min_cover_time: Option<Time>,
    /// Maximum first-cover round over the covered replicas.
    pub max_cover_time: Option<Time>,
}

impl UnitMeasurement {
    /// Folds per-replica first covers into the measurement.
    pub fn from_first_covers(firsts: &[Option<Time>]) -> Self {
        let covered: Vec<Time> = firsts.iter().filter_map(|&c| c).collect();
        UnitMeasurement {
            replicas: firsts.len(),
            covered: covered.len(),
            total_cover_time: covered.iter().sum(),
            min_cover_time: covered.iter().copied().min(),
            max_cover_time: covered.iter().copied().max(),
        }
    }

    /// `covered / replicas`.
    pub fn survival_rate(&self) -> f64 {
        if self.replicas == 0 {
            return 0.0;
        }
        self.covered as f64 / self.replicas as f64
    }

    /// Mean first-cover round over the covered replicas (0 when none).
    pub fn mean_cover_time(&self) -> f64 {
        if self.covered == 0 {
            return 0.0;
        }
        self.total_cover_time as f64 / self.covered as f64
    }

    /// Field-by-field comparison against another measurement:
    /// `(field, self's value, other's value)` per differing field, empty
    /// when equal. Certification uses this to name *which* field of a
    /// stored result diverges from a fresh re-execution.
    pub fn diff(&self, other: &UnitMeasurement) -> Vec<(&'static str, String, String)> {
        fn opt(t: Option<Time>) -> String {
            t.map_or_else(|| "none".to_string(), |t| t.to_string())
        }
        let mut diffs = Vec::new();
        if self.replicas != other.replicas {
            diffs.push(("replicas", self.replicas.to_string(), other.replicas.to_string()));
        }
        if self.covered != other.covered {
            diffs.push(("covered", self.covered.to_string(), other.covered.to_string()));
        }
        if self.total_cover_time != other.total_cover_time {
            diffs.push((
                "total_cover_time",
                self.total_cover_time.to_string(),
                other.total_cover_time.to_string(),
            ));
        }
        if self.min_cover_time != other.min_cover_time {
            diffs.push(("min_cover_time", opt(self.min_cover_time), opt(other.min_cover_time)));
        }
        if self.max_cover_time != other.max_cover_time {
            diffs.push(("max_cover_time", opt(self.max_cover_time), opt(other.max_cover_time)));
        }
        diffs
    }
}

/// One line of the result store: a unit, where it ran, what it measured.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnitRecord {
    /// [`WorkUnit::content_hash`] — the store key.
    pub hash: String,
    /// Position in the plan expansion.
    pub index: usize,
    /// `"batch"` or `"serial"` ([`Route::name`]).
    pub route: String,
    /// The unit itself (stores are self-describing).
    pub unit: WorkUnit,
    /// The measurement.
    pub result: UnitMeasurement,
}

/// Dispatches `$body` with `$alg` bound to the concrete algorithm
/// instance of an [`AlgorithmChoice`] — the serial twin of the batch
/// dispatch inside [`BatchSweep::first_covers`].
macro_rules! with_algorithm {
    ($choice:expr, |$alg:ident| $body:expr) => {
        match $choice {
            AlgorithmChoice::Pef3Plus => {
                let $alg = Pef3Plus::new();
                $body
            }
            AlgorithmChoice::Pef2 => {
                let $alg = Pef2::new();
                $body
            }
            AlgorithmChoice::Pef1 => {
                let $alg = Pef1::new();
                $body
            }
            AlgorithmChoice::KeepDirection => {
                let $alg = KeepDirection;
                $body
            }
            AlgorithmChoice::BounceOnMissingEdge => {
                let $alg = BounceOnMissingEdge;
                $body
            }
            AlgorithmChoice::AlwaysTurnOnTower => {
                let $alg = AlwaysTurnOnTower;
                $body
            }
            AlgorithmChoice::AlternateDirection => {
                let $alg = AlternateDirection;
                $body
            }
            AlgorithmChoice::RandomDirection { seed } => {
                let $alg = RandomDirection::new(seed);
                $body
            }
        }
    };
}

/// First-cover ledger shared by the serial loops.
struct CoverLedger {
    seen: Vec<bool>,
    missing: usize,
    first_cover: Option<Time>,
}

impl CoverLedger {
    fn new(n: usize) -> Self {
        CoverLedger { seen: vec![false; n], missing: n, first_cover: None }
    }

    fn note(&mut self, positions: &[NodeId], t: Time) {
        for p in positions {
            if !self.seen[p.index()] {
                self.seen[p.index()] = true;
                self.missing -= 1;
                if self.missing == 0 && self.first_cover.is_none() {
                    self.first_cover = Some(t);
                }
            }
        }
    }

    fn covered(&self) -> bool {
        self.missing == 0
    }
}

/// One serial replica on the round simulator (FSYNC or SSYNC round-robin)
/// over a pure schedule.
fn serial_replica_sync<A: Algorithm, S: EdgeSchedule>(
    ring: &RingTopology,
    algorithm: A,
    schedule: S,
    placements: &[RobotPlacement],
    scheduler: UnitScheduler,
    horizon: Time,
) -> Result<Option<Time>, ScenarioError> {
    let mut sim = Simulator::new(
        ring.clone(),
        algorithm,
        Oblivious::new(schedule),
        placements.to_vec(),
    )?;
    if scheduler == UnitScheduler::Ssync {
        sim.set_activation(RoundRobinSingle);
    }
    let mut ledger = CoverLedger::new(ring.node_count());
    ledger.note(&sim.positions(), 0);
    for t in 1..=horizon {
        if ledger.covered() {
            break;
        }
        sim.step_quiet();
        ledger.note(&sim.positions(), t);
    }
    Ok(ledger.first_cover)
}

/// One serial replica on the phase-split async simulator over a pure
/// schedule. Time is counted in *ticks*; the horizon buys `3 × horizon`
/// of them (one full Look-Compute-Move cycle per round).
fn serial_replica_async<A: Algorithm, S: EdgeSchedule>(
    ring: &RingTopology,
    algorithm: A,
    schedule: S,
    placements: &[RobotPlacement],
    horizon: Time,
) -> Result<Option<Time>, ScenarioError> {
    let mut sim = AsyncSimulator::new(
        ring.clone(),
        algorithm,
        ObliviousAsync::new(schedule),
        placements.to_vec(),
    )?;
    let mut ledger = CoverLedger::new(ring.node_count());
    ledger.note(&sim.positions(), 0);
    let ticks = horizon.saturating_mul(3);
    for t in 1..=ticks {
        if ledger.covered() {
            break;
        }
        sim.tick_quiet();
        ledger.note(&sim.positions(), t);
    }
    Ok(ledger.first_cover)
}

/// Runs a pure-Bernoulli unit replica-by-replica on the serial engines:
/// the fallback for SSYNC/ASYNC scheduling, and the reference the batch
/// route is tested bit-identical against.
fn bernoulli_serial_first_covers(
    unit: &WorkUnit,
    p: f64,
    placements: &[RobotPlacement],
) -> Result<Vec<Option<Time>>, ScenarioError> {
    let ring = RingTopology::new(unit.ring_size)?;
    let mut firsts = Vec::with_capacity(unit.replicas);
    for r in 0..unit.replicas {
        let batch = (r / LANES) as u64;
        let lane = (r % LANES) as u32;
        let stream =
            BernoulliReplicas::new(ring.clone(), p, derive_stream_seed(unit.seed, batch))?;
        let schedule = stream.lane(lane);
        let first = with_algorithm!(unit.algorithm, |alg| match unit.scheduler {
            UnitScheduler::Sync | UnitScheduler::Ssync => serial_replica_sync(
                &ring,
                alg,
                schedule,
                placements,
                unit.scheduler,
                unit.horizon,
            )?,
            UnitScheduler::Async =>
                serial_replica_async(&ring, alg, schedule, placements, unit.horizon)?,
        });
        firsts.push(first);
    }
    Ok(firsts)
}

/// Runs a static-ring unit on the serial engines (async scheduler
/// included); deterministic, so the planner clamps it to one replica.
fn static_serial_first_covers(
    unit: &WorkUnit,
    placements: &[RobotPlacement],
) -> Result<Vec<Option<Time>>, ScenarioError> {
    let ring = RingTopology::new(unit.ring_size)?;
    let mut firsts = Vec::with_capacity(unit.replicas);
    for _ in 0..unit.replicas {
        let schedule = AlwaysPresent::new(ring.clone());
        let first = with_algorithm!(unit.algorithm, |alg| match unit.scheduler {
            UnitScheduler::Sync | UnitScheduler::Ssync => serial_replica_sync(
                &ring,
                alg,
                schedule,
                placements,
                unit.scheduler,
                unit.horizon,
            )?,
            UnitScheduler::Async =>
                serial_replica_async(&ring, alg, schedule, placements, unit.horizon)?,
        });
        firsts.push(first);
    }
    Ok(firsts)
}

/// Runs a unit through the scenario harness (generator-built schedules
/// and the adaptive proof adversaries): replica `r` is the scenario
/// seeded `derive_stream_seed(unit.seed, r)`.
fn scenario_first_covers(
    unit: &WorkUnit,
    placements: &[RobotPlacement],
) -> Result<Vec<Option<Time>>, ScenarioError> {
    let dynamics = unit
        .dynamics
        .as_dynamics_choice()
        .expect("pure Bernoulli units never take the scenario route");
    let scheduler = match unit.scheduler {
        UnitScheduler::Sync => SchedulerChoice::Fsync,
        UnitScheduler::Ssync => SchedulerChoice::SsyncRoundRobin,
        UnitScheduler::Async => unreachable!("async is restricted to oblivious dynamics"),
    };
    let mut firsts = Vec::with_capacity(unit.replicas);
    for r in 0..unit.replicas {
        let scenario = Scenario::new(
            unit.ring_size,
            dynring_analysis::PlacementSpec::Explicit(placements.to_vec()),
            unit.algorithm,
            dynamics,
            unit.horizon,
        )
        .with_seed(derive_stream_seed(unit.seed, r as u64))
        .with_scheduler(scheduler);
        firsts.push(dynring_analysis::run_scenario(&scenario)?.first_cover);
    }
    Ok(firsts)
}

/// Executes one planned unit on its natural route.
///
/// # Errors
///
/// [`CampaignError::Scenario`] when the unit is ill-formed for the
/// engines (placement/ring mismatch, invalid probability, …).
pub fn execute_unit(planned: &PlannedUnit) -> Result<UnitRecord, CampaignError> {
    execute_unit_on(planned, route_unit(&planned.unit))
}

/// Executes one planned unit on an explicit route — the natural one, or
/// `Route::Serial` forced onto a batch-eligible unit (the lane-vs-serial
/// equivalence tests; both routes must measure identical results).
///
/// # Errors
///
/// See [`execute_unit`]; additionally [`CampaignError::InvalidSpec`] when
/// `Route::Batch` is forced onto a unit that is not batch-eligible.
pub fn execute_unit_on(planned: &PlannedUnit, route: Route) -> Result<UnitRecord, CampaignError> {
    let unit = &planned.unit;
    if route.is_batch() && !route_unit(unit).is_batch() {
        return Err(CampaignError::InvalidSpec(format!(
            "unit {} ({} × {}) is not batch-eligible",
            planned.hash,
            unit.dynamics.name(),
            unit.scheduler.name()
        )));
    }
    let placements = unit.placement.build(unit.ring_size);
    let firsts = match (route, unit.dynamics) {
        (Route::Batch(arity), UnitDynamics::Bernoulli { p }) => {
            let ring = RingTopology::new(unit.ring_size).map_err(ScenarioError::from)?;
            let sweep = BatchSweep {
                algorithm: unit.algorithm,
                ring: &ring,
                placements: &placements,
                p,
                horizon: unit.horizon,
                replicas: unit.replicas,
                seed: unit.seed,
                scheduler: match unit.scheduler {
                    UnitScheduler::Sync => SchedulerChoice::Fsync,
                    UnitScheduler::Ssync => SchedulerChoice::SsyncRoundRobin,
                    UnitScheduler::Async => unreachable!("eligibility checked above"),
                },
            };
            // Thread-level sharding lives at the campaign layer (units in
            // parallel), so the sweep itself stays single-threaded.
            sweep.first_covers_at(arity, 1)?
        }
        (Route::Serial, UnitDynamics::Bernoulli { p }) => {
            bernoulli_serial_first_covers(unit, p, &placements)?
        }
        (Route::Serial, UnitDynamics::Static) if unit.scheduler == UnitScheduler::Async => {
            static_serial_first_covers(unit, &placements)?
        }
        (Route::Serial, _) => scenario_first_covers(unit, &placements)?,
        (Route::Batch(_), _) => unreachable!("eligibility checked above"),
    };
    Ok(UnitRecord {
        hash: planned.hash.clone(),
        index: planned.index,
        route: route.name().to_string(),
        unit: unit.clone(),
        result: UnitMeasurement::from_first_covers(&firsts),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CampaignSpec, ExplicitRobot, PlacementAxis};
    use dynring_analysis::PlacementSpec;

    fn unit(dynamics: UnitDynamics, scheduler: UnitScheduler) -> PlannedUnit {
        let unit = WorkUnit {
            ring_size: 6,
            robots: 3,
            placement: PlacementSpec::EvenlySpaced { count: 3 },
            algorithm: AlgorithmChoice::Pef3Plus,
            dynamics,
            scheduler,
            horizon: 400,
            seed: 0xFEED,
            replicas: if dynamics.is_stochastic() { 70 } else { 1 },
        };
        PlannedUnit { index: 0, hash: unit.content_hash(), unit }
    }

    #[test]
    fn routing_is_bernoulli_times_lane_uniform_schedulers_exactly() {
        // The unit-level routing-decision pin of the acceptance criteria:
        // batch iff (pure Bernoulli, FSYNC or SSYNC); every other
        // combination is serial. The 70-replica test units pad to two
        // 64-lane groups or one 128-lane group — the tie goes wide.
        let b = UnitDynamics::Bernoulli { p: 0.5 };
        assert_eq!(
            route_unit(&unit(b, UnitScheduler::Sync).unit),
            Route::Batch(BatchArity::Lanes128)
        );
        assert_eq!(
            route_unit(&unit(b, UnitScheduler::Ssync).unit),
            Route::Batch(BatchArity::Lanes128)
        );
        assert_eq!(route_unit(&unit(b, UnitScheduler::Async).unit), Route::Serial);
        for dynamics in [
            UnitDynamics::Static,
            UnitDynamics::BernoulliRecurrent { p: 0.5, bound: 8 },
            UnitDynamics::Markov { p_off: 0.15, p_on: 0.4 },
            UnitDynamics::SweepingOutage { dwell: 3 },
            UnitDynamics::TIntervalConnected { stability: 4 },
            UnitDynamics::PointedBlocker { budget: 4 },
            UnitDynamics::SingleConfiner,
            UnitDynamics::TwoConfiner { patience: 64 },
            UnitDynamics::SsyncBlocker,
        ] {
            assert_eq!(
                route_unit(&unit(dynamics, UnitScheduler::Sync).unit),
                Route::Serial,
                "{}",
                dynamics.name()
            );
        }
        // And the executed record names its route — arity-free, so the
        // stored bytes of batch-eligible units never depend on the lane
        // width the engine happened to pick.
        let record = execute_unit(&unit(b, UnitScheduler::Sync)).expect("runs");
        assert_eq!(record.route, "batch");
        let record = execute_unit(&unit(UnitDynamics::Static, UnitScheduler::Sync))
            .expect("runs");
        assert_eq!(record.route, "serial");
        // The arity accessor: observable on the route, absent serially.
        assert_eq!(
            route_unit(&unit(b, UnitScheduler::Sync).unit).arity(),
            Some(BatchArity::Lanes128)
        );
        assert_eq!(Route::Serial.arity(), None);
    }

    #[test]
    fn batch_route_equals_forced_serial_bit_for_bit() {
        // 70 replicas: ragged at every arity (one full 64-lane group plus
        // a partial one, or one padded wide group), so the ghost-lane
        // masking is exercised on the batch side while the serial side
        // never builds the padding lanes. Pinned at all three arities.
        let planned = unit(UnitDynamics::Bernoulli { p: 0.5 }, UnitScheduler::Sync);
        let serial = execute_unit_on(&planned, Route::Serial).expect("serial runs");
        for arity in BatchArity::ALL {
            let batch =
                execute_unit_on(&planned, Route::Batch(arity)).expect("batch runs");
            assert_eq!(batch.result, serial.result, "arity={}", arity.name());
            assert_eq!(batch.result.replicas, 70);
            assert!(batch.result.covered > 0, "{:?}", batch.result);
        }
    }

    #[test]
    fn ssync_batch_route_equals_forced_serial_bit_for_bit() {
        // The widened route of this change: a pure-Bernoulli SSYNC unit
        // runs on the batch engine via round-robin activation words, and
        // its stored record must be byte-identical to the forced-serial
        // run (which plays `RoundRobinSingle` on the serial engine) — at
        // every arity, including the natural route.
        let planned = unit(UnitDynamics::Bernoulli { p: 0.7 }, UnitScheduler::Ssync);
        let serial = execute_unit_on(&planned, Route::Serial).expect("serial runs");
        assert_eq!(serial.route, "serial");
        for arity in BatchArity::ALL {
            let batch =
                execute_unit_on(&planned, Route::Batch(arity)).expect("batch runs");
            assert_eq!(batch.result, serial.result, "arity={}", arity.name());
        }
        let natural = execute_unit(&planned).expect("runs");
        assert_eq!(natural.route, "batch");
        assert_eq!(natural.result, serial.result);
        let json_batch = serde_json::to_string(&natural.result).expect("serialize");
        let json_serial = serde_json::to_string(&serial.result).expect("serialize");
        assert_eq!(json_batch, json_serial, "stored measurement bytes drifted");
    }

    #[test]
    fn batch_route_equals_forced_serial_for_explicit_placements() {
        // The new spec axis: arbitrary (non-tower) placements with mixed
        // chirality and initial directions, lane-vs-serial equivalent.
        let robots = [
            ExplicitRobot { node: 0, mirrored: false, start_right: true },
            ExplicitRobot { node: 1, mirrored: true, start_right: false },
            ExplicitRobot { node: 4, mirrored: true, start_right: true },
        ];
        let placements: Vec<RobotPlacement> =
            robots.iter().map(ExplicitRobot::build).collect();
        let work = WorkUnit {
            ring_size: 7,
            robots: 3,
            placement: PlacementSpec::Explicit(placements),
            algorithm: AlgorithmChoice::Pef3Plus,
            dynamics: UnitDynamics::Bernoulli { p: 0.5 },
            scheduler: UnitScheduler::Sync,
            horizon: 500,
            seed: 0xBEEF,
            replicas: 66,
        };
        let planned = PlannedUnit { index: 0, hash: work.content_hash(), unit: work };
        let batch = execute_unit_on(&planned, route_unit(&planned.unit)).expect("batch runs");
        assert_eq!(batch.route, "batch");
        let serial = execute_unit_on(&planned, Route::Serial).expect("serial runs");
        assert_eq!(batch.result, serial.result);
        assert!(batch.result.covered > 0, "{:?}", batch.result);
    }

    #[test]
    fn forcing_batch_onto_ineligible_units_errors() {
        let planned = unit(UnitDynamics::Static, UnitScheduler::Sync);
        for arity in BatchArity::ALL {
            assert!(matches!(
                execute_unit_on(&planned, Route::Batch(arity)),
                Err(CampaignError::InvalidSpec(_))
            ));
        }
    }

    #[test]
    fn ssync_and_async_schedulers_produce_plausible_covers() {
        let sync = execute_unit(&unit(UnitDynamics::Bernoulli { p: 0.9 }, UnitScheduler::Sync))
            .expect("runs");
        let ssync =
            execute_unit(&unit(UnitDynamics::Bernoulli { p: 0.9 }, UnitScheduler::Ssync))
                .expect("runs");
        let asynch =
            execute_unit(&unit(UnitDynamics::Bernoulli { p: 0.9 }, UnitScheduler::Async))
                .expect("runs");
        assert_eq!(ssync.route, "batch");
        assert_eq!(asynch.route, "serial");
        assert!(sync.result.covered > 0);
        assert!(ssync.result.covered > 0);
        assert!(asynch.result.covered > 0);
        // One robot per round covers strictly later than all-at-once.
        assert!(
            ssync.result.mean_cover_time() > sync.result.mean_cover_time(),
            "{} vs {}",
            ssync.result.mean_cover_time(),
            sync.result.mean_cover_time()
        );
    }

    #[test]
    fn adversary_units_confine_and_report_zero_survival() {
        let work = WorkUnit {
            ring_size: 6,
            robots: 1,
            placement: PlacementSpec::EvenlySpaced { count: 1 },
            algorithm: AlgorithmChoice::Pef3Plus,
            dynamics: UnitDynamics::SingleConfiner,
            scheduler: UnitScheduler::Sync,
            horizon: 400,
            seed: 1,
            replicas: 1,
        };
        let planned = PlannedUnit { index: 0, hash: work.content_hash(), unit: work };
        let record = execute_unit(&planned).expect("runs");
        assert_eq!(record.route, "serial");
        assert_eq!(record.result.covered, 0, "{:?}", record.result);
        assert_eq!(record.result.survival_rate(), 0.0);
    }

    #[test]
    fn campaign_replicas_match_the_monte_carlo_sweep() {
        // A batch-route unit over evenly-spaced placements is exactly a
        // Monte Carlo sweep point: same seeds, same first covers.
        use dynring_analysis::{run_replicas_with, MonteCarloConfig};
        let planned = unit(UnitDynamics::Bernoulli { p: 0.5 }, UnitScheduler::Sync);
        let record = execute_unit(&planned).expect("runs");
        let cfg = MonteCarloConfig {
            ring_size: 6,
            robots: 3,
            presence_probability: 0.5,
            horizon: 400,
            replicas: 70,
            seed: 0xFEED,
            algorithm: AlgorithmChoice::Pef3Plus,
        };
        let summary = run_replicas_with(&cfg, 1).expect("valid config");
        assert_eq!(record.result.covered, summary.covered);
        assert_eq!(record.result.min_cover_time, summary.min_cover_time);
        assert_eq!(record.result.max_cover_time, summary.max_cover_time);
        assert_eq!(record.result.mean_cover_time(), summary.mean_cover_time);
    }

    #[test]
    fn scenario_route_units_replay_bit_for_bit() {
        for dynamics in [
            UnitDynamics::BernoulliRecurrent { p: 0.5, bound: 8 },
            UnitDynamics::Markov { p_off: 0.2, p_on: 0.4 },
            UnitDynamics::PointedBlocker { budget: 3 },
        ] {
            let planned = unit(dynamics, UnitScheduler::Sync);
            let a = execute_unit(&planned).expect("runs");
            let b = execute_unit(&planned).expect("runs");
            assert_eq!(a, b, "{}", dynamics.name());
        }
    }

    #[test]
    fn a_spec_unit_executes_end_to_end_per_route() {
        // Smoke over the planner → executor seam, covering both routes
        // and all three schedulers from one spec.
        let spec = CampaignSpec {
            name: "seam".into(),
            ring_sizes: vec![5],
            robots: vec![2],
            placements: vec![PlacementAxis::EvenlySpaced, PlacementAxis::Adjacent { start: 1 }],
            algorithms: vec![AlgorithmChoice::Pef3Plus],
            dynamics: vec![UnitDynamics::Bernoulli { p: 0.6 }, UnitDynamics::Static],
            schedulers: vec![UnitScheduler::Sync, UnitScheduler::Ssync, UnitScheduler::Async],
            seeds: vec![3],
            horizon: 300,
            replicas: 4,
        };
        let plan = spec.plan().expect("valid spec");
        assert_eq!(plan.units.len(), 12);
        for planned in &plan.units {
            let record = execute_unit(planned).expect("unit runs");
            let expected = route_unit(&planned.unit).name();
            assert_eq!(record.route, expected);
            assert_eq!(record.result.replicas, planned.unit.replicas);
        }
    }
}
