//! Deterministic plan partitioning for multi-process campaigns.
//!
//! A campaign plan is split into `N` disjoint, contiguous unit ranges —
//! shard `i` owns `shard_range(total, N, i)` of the plan, balanced to
//! within one unit. Each shard runs as an independent process appending
//! to its own chained v2 store (records keep their *global* plan index),
//! and `merge` folds the shard stores back into one canonical store that
//! is byte-identical to an uninterrupted serial run (see
//! [`crate::merge`]).
//!
//! The partition is written down as a *shard manifest*: a JSON file
//! naming the spec hash, the shard count and every shard's store path and
//! unit range. The manifest is the rendezvous point of the distributed
//! run — `campaign work --index i` reads its shard store path from it,
//! the supervisor persists per-shard restart attempts into it (fsynced
//! before a restarted worker is declared live), and `campaign merge`
//! uses it to refuse overlapping or foreign shard stores by name.
//! Manifest writes are atomic (temp file + fsync + rename), so a crash
//! mid-update can never leave a torn manifest wedging the campaign.

use std::fs::File;
use std::io::Write;
use std::ops::Range;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::spec::CampaignPlan;
use crate::CampaignError;

/// The manifest schema generation (bumped on shape changes).
pub const MANIFEST_SCHEMA: &str = "dynring-shard-manifest-v1";

/// Which shard of how many a run executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSel {
    /// 0-based shard index.
    pub index: usize,
    /// Total shard count.
    pub count: usize,
}

impl ShardSel {
    /// Validates the selection (`count ≥ 1`, `index < count`).
    ///
    /// # Errors
    ///
    /// [`CampaignError::InvalidSpec`] naming the bad field.
    pub fn validate(&self) -> Result<(), CampaignError> {
        if self.count == 0 {
            return Err(CampaignError::InvalidSpec(
                "shard count must be at least 1".into(),
            ));
        }
        if self.index >= self.count {
            return Err(CampaignError::InvalidSpec(format!(
                "shard index {} out of range for {} shards",
                self.index, self.count
            )));
        }
        Ok(())
    }

    /// This shard's unit range within a plan of `total` units.
    pub fn range(&self, total: usize) -> Range<usize> {
        shard_range(total, self.count, self.index)
    }
}

/// The balanced contiguous partition: shard `index` of `count` owns a
/// range of `total / count` units, with the first `total % count` shards
/// carrying one extra. Ranges are disjoint, cover `0..total` exactly, and
/// are a pure function of `(total, count, index)` — every process
/// computes the same partition from the spec alone.
pub fn shard_range(total: usize, count: usize, index: usize) -> Range<usize> {
    let count = count.max(1);
    let base = total / count;
    let extra = total % count;
    let start = index * base + index.min(extra);
    let len = base + usize::from(index < extra);
    start..(start + len).min(total)
}

/// One shard's slot in the manifest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardEntry {
    /// 0-based shard index.
    pub index: usize,
    /// Path of this shard's JSONL store.
    pub store: String,
    /// First plan index of the shard's range (inclusive).
    pub start: usize,
    /// Units in the shard's range.
    pub units: usize,
    /// Worker launch attempts recorded by the supervisor (0 = never
    /// started). Persisted — and fsynced — before each (re)start, so a
    /// supervisor resumed after a crash sees the true retry history.
    pub attempts: usize,
}

/// The shard manifest: the partition of one campaign over `shards`
/// worker stores.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardManifest {
    /// [`MANIFEST_SCHEMA`] at write time.
    pub schema: String,
    /// Campaign name (informational).
    pub name: String,
    /// The owning spec's content hash; shard stores and merges are
    /// refused against any other spec.
    pub spec_hash: String,
    /// Units in the full plan.
    pub planned_units: usize,
    /// Shard count.
    pub shards: usize,
    /// One entry per shard, in index order.
    pub entries: Vec<ShardEntry>,
}

impl ShardManifest {
    /// Builds the manifest for `plan` split into `shards` ranges, with
    /// shard stores named `<name>.shard-I-of-N.jsonl` under `store_dir`.
    /// The shard count is clamped to the plan size (no empty shards).
    pub fn build(plan: &CampaignPlan, shards: usize, store_dir: &Path) -> Self {
        let shards = shards.clamp(1, plan.units.len().max(1));
        let entries = (0..shards)
            .map(|index| {
                let range = shard_range(plan.units.len(), shards, index);
                ShardEntry {
                    index,
                    store: store_dir
                        .join(format!("{}.shard-{index}-of-{shards}.jsonl", plan.name))
                        .display()
                        .to_string(),
                    start: range.start,
                    units: range.len(),
                    attempts: 0,
                }
            })
            .collect();
        ShardManifest {
            schema: MANIFEST_SCHEMA.to_string(),
            name: plan.name.clone(),
            spec_hash: plan.spec_hash.clone(),
            planned_units: plan.units.len(),
            shards,
            entries,
        }
    }

    /// Checks internal consistency: schema, one entry per shard in index
    /// order, and every range equal to the [`shard_range`] recomputation
    /// (the partition is canonical, not advisory).
    ///
    /// # Errors
    ///
    /// [`CampaignError::CorruptStore`] naming the inconsistency.
    pub fn validate(&self) -> Result<(), CampaignError> {
        if self.schema != MANIFEST_SCHEMA {
            return Err(CampaignError::CorruptStore(format!(
                "shard manifest schema {} is not {MANIFEST_SCHEMA}",
                self.schema
            )));
        }
        if self.entries.len() != self.shards {
            return Err(CampaignError::CorruptStore(format!(
                "shard manifest names {} shards but carries {} entries",
                self.shards,
                self.entries.len()
            )));
        }
        for (i, entry) in self.entries.iter().enumerate() {
            let range = shard_range(self.planned_units, self.shards, i);
            if entry.index != i || entry.start != range.start || entry.units != range.len() {
                return Err(CampaignError::CorruptStore(format!(
                    "shard manifest entry {i} does not match the canonical \
                     partition (index {}, start {}, {} units; expected start {}, {} units)",
                    entry.index,
                    entry.start,
                    entry.units,
                    range.start,
                    range.len()
                )));
            }
        }
        Ok(())
    }

    /// Checks the manifest belongs to `plan`.
    ///
    /// # Errors
    ///
    /// [`CampaignError::SpecMismatch`] on a foreign spec,
    /// [`CampaignError::CorruptStore`] on a name/size drift.
    pub fn matches(&self, plan: &CampaignPlan) -> Result<(), CampaignError> {
        if self.spec_hash != plan.spec_hash {
            return Err(CampaignError::SpecMismatch {
                expected: plan.spec_hash.clone(),
                found: self.spec_hash.clone(),
            });
        }
        if self.name != plan.name || self.planned_units != plan.units.len() {
            return Err(CampaignError::CorruptStore(format!(
                "shard manifest names campaign {}/{} units, the plan is {}/{} units",
                self.name,
                self.planned_units,
                plan.name,
                plan.units.len()
            )));
        }
        Ok(())
    }

    /// The entry of shard `index`.
    ///
    /// # Errors
    ///
    /// [`CampaignError::InvalidSpec`] when out of range.
    pub fn entry(&self, index: usize) -> Result<&ShardEntry, CampaignError> {
        self.entries.get(index).ok_or_else(|| {
            CampaignError::InvalidSpec(format!(
                "shard index {index} out of range for {} shards",
                self.shards
            ))
        })
    }

    /// Writes the manifest atomically: serialize to `<path>.tmp`, fsync,
    /// rename over `path`. A crash at any point leaves either the old
    /// manifest or the new one, never a torn file — the property the
    /// supervisor's restart bookkeeping relies on.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Io`] / [`CampaignError::Json`].
    pub fn write(&self, path: &Path) -> Result<(), CampaignError> {
        let json = serde_json::to_string_pretty(self)? + "\n";
        let tmp: PathBuf = {
            let mut name = path.file_name().unwrap_or_default().to_os_string();
            name.push(".tmp");
            path.with_file_name(name)
        };
        let mut file = File::create(&tmp)?;
        file.write_all(json.as_bytes())?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Loads and validates a manifest.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Io`] / [`CampaignError::Json`] /
    /// [`CampaignError::CorruptStore`] (see [`ShardManifest::validate`]).
    pub fn load(path: &Path) -> Result<Self, CampaignError> {
        let json = std::fs::read_to_string(path)?;
        let manifest: ShardManifest = serde_json::from_str(&json)?;
        manifest.validate()?;
        Ok(manifest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CampaignSpec, PlacementAxis, UnitDynamics, UnitScheduler};
    use dynring_analysis::AlgorithmChoice;

    fn plan() -> CampaignPlan {
        CampaignSpec {
            name: "shardtest".into(),
            ring_sizes: vec![4, 5],
            robots: vec![1, 2],
            placements: vec![PlacementAxis::EvenlySpaced],
            algorithms: vec![AlgorithmChoice::Pef3Plus],
            dynamics: vec![UnitDynamics::Bernoulli { p: 0.5 }],
            schedulers: vec![UnitScheduler::Sync],
            seeds: vec![1, 2, 3],
            horizon: 100,
            replicas: 2,
        }
        .plan()
        .expect("valid spec")
    }

    #[test]
    fn ranges_partition_the_plan_exactly() {
        for total in [0usize, 1, 5, 12, 13, 100] {
            for count in [1usize, 2, 3, 4, 7, 13] {
                let mut covered = Vec::new();
                for index in 0..count {
                    let range = shard_range(total, count, index);
                    // Disjoint and contiguous: each range starts where the
                    // previous ended.
                    assert_eq!(range.start, covered.len(), "total={total} count={count}");
                    covered.extend(range);
                }
                assert_eq!(covered, (0..total).collect::<Vec<_>>());
                // Balanced to within one unit.
                let sizes: Vec<usize> =
                    (0..count).map(|i| shard_range(total, count, i).len()).collect();
                let min = sizes.iter().min().unwrap();
                let max = sizes.iter().max().unwrap();
                assert!(max - min <= 1, "total={total} count={count} sizes={sizes:?}");
            }
        }
    }

    #[test]
    fn shard_sel_validates_bounds() {
        assert!(ShardSel { index: 0, count: 0 }.validate().is_err());
        assert!(ShardSel { index: 3, count: 3 }.validate().is_err());
        assert!(ShardSel { index: 2, count: 3 }.validate().is_ok());
    }

    #[test]
    fn manifest_round_trips_and_validates() {
        let plan = plan();
        let dir = std::env::temp_dir().join("dynring_shard_manifest_test");
        let _ = std::fs::create_dir_all(&dir);
        let manifest = ShardManifest::build(&plan, 3, &dir);
        assert_eq!(manifest.shards, 3);
        assert_eq!(
            manifest.entries.iter().map(|e| e.units).sum::<usize>(),
            plan.units.len()
        );
        manifest.validate().expect("consistent");
        manifest.matches(&plan).expect("matches its plan");

        let path = dir.join("manifest.json");
        manifest.write(&path).expect("writes");
        let loaded = ShardManifest::load(&path).expect("loads");
        assert_eq!(loaded, manifest);

        // A foreign spec is refused by hash.
        let mut other = plan.clone();
        other.spec_hash = "ffffffffffffffff".into();
        assert!(matches!(
            manifest.matches(&other),
            Err(CampaignError::SpecMismatch { .. })
        ));

        // A tampered range is refused as non-canonical.
        let mut bent = manifest.clone();
        bent.entries[1].start += 1;
        assert!(bent.validate().is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn shard_count_is_clamped_to_the_plan() {
        let plan = plan();
        let manifest = ShardManifest::build(&plan, 1000, Path::new("/tmp"));
        assert_eq!(manifest.shards, plan.units.len());
        assert!(manifest.entries.iter().all(|e| e.units == 1));
    }
}
