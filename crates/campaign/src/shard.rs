//! Deterministic plan partitioning for multi-process campaigns.
//!
//! A campaign plan is split into `N` disjoint, contiguous unit ranges —
//! shard `i` owns `shard_range(total, N, i)` of the plan, balanced to
//! within one unit. Each shard runs as an independent process appending
//! to its own chained v2 store (records keep their *global* plan index),
//! and `merge` folds the shard stores back into one canonical store that
//! is byte-identical to an uninterrupted serial run (see
//! [`crate::merge`]).
//!
//! The partition is written down as a *shard manifest*: a JSON file
//! naming the spec hash, the shard count and every shard's store path and
//! unit range. The manifest is the rendezvous point of the distributed
//! run — `campaign work --index i` reads its shard store path from it,
//! the supervisor persists per-shard restart attempts into it (fsynced
//! before a restarted worker is declared live), and `campaign merge`
//! uses it to refuse overlapping or foreign shard stores by name.
//! Manifest writes are atomic (temp file + fsync + rename), so a crash
//! mid-update can never leave a torn manifest wedging the campaign.
//!
//! Schema v2 adds *generations*: when the supervisor steals a
//! quarantined or straggling shard's remaining range
//! ([`ShardManifest::split_entry`]), the parent entry is retired with its
//! range truncated to what its store actually holds, and child entries
//! of the next generation are appended covering the rest. The entries of
//! a v2 manifest therefore form an arbitrary exact partition of the plan
//! (validated as such) instead of the canonical balanced one — but they
//! are still disjoint and complete, so the merge story is unchanged. v1
//! manifests (always canonical) still load.

use std::fs::File;
use std::io::Write;
use std::ops::Range;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::spec::CampaignPlan;
use crate::CampaignError;

/// The manifest schema generation (bumped on shape changes).
pub const MANIFEST_SCHEMA: &str = "dynring-shard-manifest-v2";

/// The previous manifest schema (canonical balanced partitions only);
/// still accepted by [`ShardManifest::load`].
pub const MANIFEST_SCHEMA_V1: &str = "dynring-shard-manifest-v1";

/// Which slice of the plan a run executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardSel {
    /// Shard `index` of the canonical `count`-way balanced partition
    /// ([`shard_range`]).
    Balanced {
        /// 0-based shard index.
        index: usize,
        /// Total shard count.
        count: usize,
    },
    /// An explicit plan-order range — the shape of generation sub-shards,
    /// whose ranges are whatever a steal left behind, not a canonical
    /// recomputation.
    Range {
        /// First plan index (inclusive).
        start: usize,
        /// Units in the range.
        units: usize,
    },
}

impl ShardSel {
    /// Validates the selection against a plan of `total` units.
    ///
    /// # Errors
    ///
    /// [`CampaignError::InvalidSpec`] naming the bad field.
    pub fn validate(&self, total: usize) -> Result<(), CampaignError> {
        match self {
            ShardSel::Balanced { index, count } => {
                if *count == 0 {
                    return Err(CampaignError::InvalidSpec(
                        "shard count must be at least 1".into(),
                    ));
                }
                if index >= count {
                    return Err(CampaignError::InvalidSpec(format!(
                        "shard index {index} out of range for {count} shards"
                    )));
                }
            }
            ShardSel::Range { start, units } => {
                if start.saturating_add(*units) > total {
                    return Err(CampaignError::InvalidSpec(format!(
                        "shard range {start}..{} exceeds the {total}-unit plan",
                        start + units
                    )));
                }
            }
        }
        Ok(())
    }

    /// This shard's unit range within a plan of `total` units.
    pub fn range(&self, total: usize) -> Range<usize> {
        match self {
            ShardSel::Balanced { index, count } => shard_range(total, *count, *index),
            ShardSel::Range { start, units } => *start..(*start + *units).min(total),
        }
    }
}

/// The balanced contiguous partition: shard `index` of `count` owns a
/// range of `total / count` units, with the first `total % count` shards
/// carrying one extra. Ranges are disjoint, cover `0..total` exactly, and
/// are a pure function of `(total, count, index)` — every process
/// computes the same partition from the spec alone.
pub fn shard_range(total: usize, count: usize, index: usize) -> Range<usize> {
    let count = count.max(1);
    let base = total / count;
    let extra = total % count;
    let start = index * base + index.min(extra);
    let len = base + usize::from(index < extra);
    start..(start + len).min(total)
}

/// One shard's slot in the manifest.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ShardEntry {
    /// 0-based shard index.
    pub index: usize,
    /// Path of this shard's JSONL store.
    pub store: String,
    /// First plan index of the shard's range (inclusive).
    pub start: usize,
    /// Units in the shard's range.
    pub units: usize,
    /// Worker launch attempts recorded by the supervisor (0 = never
    /// started). Persisted — and fsynced — before each (re)start, so a
    /// supervisor resumed after a crash sees the true retry history.
    pub attempts: usize,
    /// Split generation: 0 for the original shards, parent's generation
    /// + 1 for sub-shards created by a steal. (v1 manifests: always 0.)
    pub generation: usize,
    /// The entry this sub-shard was split from (`None` for the original
    /// shards).
    pub parent: Option<usize>,
    /// A retired entry is never (re)spawned: its remaining range was
    /// redistributed to child sub-shards and its own range truncated to
    /// the plan-order prefix its store actually holds. The store stays
    /// in place — the merge folds it together with the children.
    pub retired: bool,
}

// Hand-written so the v2-only fields default when absent: v1 manifests
// predate them, and the vendored serde derive has no `#[serde(default)]`
// (a missing field deserializes from `Null`, which only `Option` takes).
impl<'de> serde::Deserialize<'de> for ShardEntry {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        use serde::de::Error as _;
        use serde::__private::take_field;
        let mut obj = match deserializer.deserialize_value()? {
            serde::Value::Object(entries) => entries,
            other => {
                return Err(D::Error::custom(format!(
                    "expected object for ShardEntry, found {}",
                    other.kind()
                )))
            }
        };
        Ok(ShardEntry {
            index: take_field(&mut obj, "index").map_err(D::Error::custom)?,
            store: take_field(&mut obj, "store").map_err(D::Error::custom)?,
            start: take_field(&mut obj, "start").map_err(D::Error::custom)?,
            units: take_field(&mut obj, "units").map_err(D::Error::custom)?,
            attempts: take_field(&mut obj, "attempts").map_err(D::Error::custom)?,
            generation: take_field::<Option<usize>>(&mut obj, "generation")
                .map_err(D::Error::custom)?
                .unwrap_or(0),
            parent: take_field(&mut obj, "parent").map_err(D::Error::custom)?,
            retired: take_field::<Option<bool>>(&mut obj, "retired")
                .map_err(D::Error::custom)?
                .unwrap_or(false),
        })
    }
}

impl ShardEntry {
    /// The entry's plan-order unit range.
    pub fn range(&self) -> Range<usize> {
        self.start..self.start + self.units
    }
}

/// The shard manifest: the partition of one campaign over `shards`
/// worker stores.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardManifest {
    /// [`MANIFEST_SCHEMA`] at write time.
    pub schema: String,
    /// Campaign name (informational).
    pub name: String,
    /// The owning spec's content hash; shard stores and merges are
    /// refused against any other spec.
    pub spec_hash: String,
    /// Units in the full plan.
    pub planned_units: usize,
    /// Shard count.
    pub shards: usize,
    /// One entry per shard, in index order.
    pub entries: Vec<ShardEntry>,
}

impl ShardManifest {
    /// Builds the manifest for `plan` split into `shards` ranges, with
    /// shard stores named `<name>.shard-I-of-N.jsonl` under `store_dir`.
    /// The shard count is clamped to the plan size (no empty shards).
    pub fn build(plan: &CampaignPlan, shards: usize, store_dir: &Path) -> Self {
        let shards = shards.clamp(1, plan.units.len().max(1));
        let entries = (0..shards)
            .map(|index| {
                let range = shard_range(plan.units.len(), shards, index);
                ShardEntry {
                    index,
                    store: store_dir
                        .join(format!("{}.shard-{index}-of-{shards}.jsonl", plan.name))
                        .display()
                        .to_string(),
                    start: range.start,
                    units: range.len(),
                    attempts: 0,
                    generation: 0,
                    parent: None,
                    retired: false,
                }
            })
            .collect();
        ShardManifest {
            schema: MANIFEST_SCHEMA.to_string(),
            name: plan.name.clone(),
            spec_hash: plan.spec_hash.clone(),
            planned_units: plan.units.len(),
            shards,
            entries,
        }
    }

    /// Checks internal consistency. A v1 manifest must be the canonical
    /// balanced partition — every range equal to the [`shard_range`]
    /// recomputation. A v2 manifest (which may carry steal generations)
    /// must instead be an *exact partition*: entries indexed in order,
    /// non-empty ranges disjoint and covering `0..planned_units` with no
    /// gap, generation/parent links consistent, and only retired entries
    /// allowed to be empty.
    ///
    /// # Errors
    ///
    /// [`CampaignError::CorruptStore`] naming the inconsistency.
    pub fn validate(&self) -> Result<(), CampaignError> {
        let v1 = match self.schema.as_str() {
            s if s == MANIFEST_SCHEMA => false,
            s if s == MANIFEST_SCHEMA_V1 => true,
            other => {
                return Err(CampaignError::CorruptStore(format!(
                    "shard manifest schema {other} is neither {MANIFEST_SCHEMA} \
                     nor {MANIFEST_SCHEMA_V1}"
                )));
            }
        };
        if self.entries.len() < self.shards {
            return Err(CampaignError::CorruptStore(format!(
                "shard manifest names {} shards but carries {} entries",
                self.shards,
                self.entries.len()
            )));
        }
        if v1 && self.entries.len() != self.shards {
            return Err(CampaignError::CorruptStore(format!(
                "v1 shard manifest names {} shards but carries {} entries",
                self.shards,
                self.entries.len()
            )));
        }
        for (i, entry) in self.entries.iter().enumerate() {
            if entry.index != i {
                return Err(CampaignError::CorruptStore(format!(
                    "shard manifest entry {i} carries index {}",
                    entry.index
                )));
            }
            if v1 {
                let range = shard_range(self.planned_units, self.shards, i);
                if entry.start != range.start || entry.units != range.len() {
                    return Err(CampaignError::CorruptStore(format!(
                        "shard manifest entry {i} does not match the canonical \
                         partition (start {}, {} units; expected start {}, {} units)",
                        entry.start,
                        entry.units,
                        range.start,
                        range.len()
                    )));
                }
                continue;
            }
            // v2 structural checks per entry.
            if (i < self.shards) != entry.parent.is_none() {
                return Err(CampaignError::CorruptStore(format!(
                    "shard manifest entry {i}: original shards carry no parent, \
                     sub-shards must (parent = {:?}, {} original shards)",
                    entry.parent, self.shards
                )));
            }
            if let Some(parent) = entry.parent {
                let p = self.entries.get(parent).ok_or_else(|| {
                    CampaignError::CorruptStore(format!(
                        "shard manifest entry {i} names missing parent {parent}"
                    ))
                })?;
                if parent >= i || !p.retired || entry.generation != p.generation + 1 {
                    return Err(CampaignError::CorruptStore(format!(
                        "shard manifest entry {i} (generation {}) has an \
                         inconsistent parent {parent} (generation {}, retired {})",
                        entry.generation, p.generation, p.retired
                    )));
                }
            } else if entry.generation != 0 {
                return Err(CampaignError::CorruptStore(format!(
                    "shard manifest entry {i} has generation {} but no parent",
                    entry.generation
                )));
            }
            if entry.units == 0 && !entry.retired {
                return Err(CampaignError::CorruptStore(format!(
                    "shard manifest entry {i} is empty but not retired"
                )));
            }
        }
        if !v1 {
            // The non-empty ranges must partition 0..planned_units exactly.
            let mut ranges: Vec<Range<usize>> = self
                .entries
                .iter()
                .filter(|e| e.units > 0)
                .map(ShardEntry::range)
                .collect();
            ranges.sort_by_key(|r| r.start);
            let mut next = 0usize;
            for range in &ranges {
                if range.start != next {
                    let reason = if range.start > next { "gap" } else { "overlap" };
                    return Err(CampaignError::CorruptStore(format!(
                        "shard manifest ranges have a {reason} at unit {next} \
                         (next range starts at {})",
                        range.start
                    )));
                }
                next = range.end;
            }
            if next != self.planned_units {
                return Err(CampaignError::CorruptStore(format!(
                    "shard manifest ranges cover {next} of {} planned units",
                    self.planned_units
                )));
            }
        }
        Ok(())
    }

    /// The entries a supervisor should (re)spawn workers for: not retired
    /// and owning at least one unit.
    pub fn runnable(&self) -> impl Iterator<Item = &ShardEntry> {
        self.entries.iter().filter(|e| !e.retired && e.units > 0)
    }

    /// Splits entry `parent`'s unexecuted tail into `pieces` child
    /// sub-shards of the next generation — the manifest side of a steal.
    ///
    /// `done` is the plan-order prefix the parent's store actually holds
    /// (its records are kept and merged). The parent is retired with
    /// `units = done`, and children are appended covering
    /// `[start+done, start+units)` as a balanced sub-partition, with
    /// stores named `<store stem>-g<generation>-<k>.jsonl` next to the
    /// parent store. The schema is promoted to v2. Returns the child
    /// entry indices. The caller must [`ShardManifest::write`] before
    /// acting on the split.
    ///
    /// # Errors
    ///
    /// [`CampaignError::InvalidSpec`] when `parent` is out of range,
    /// already retired, `done` exceeds its range, or the tail is empty.
    pub fn split_entry(
        &mut self,
        parent: usize,
        done: usize,
        pieces: usize,
    ) -> Result<Vec<usize>, CampaignError> {
        let entry = self.entry(parent)?.clone();
        if entry.retired {
            return Err(CampaignError::InvalidSpec(format!(
                "shard {parent} is already retired"
            )));
        }
        if done > entry.units {
            return Err(CampaignError::InvalidSpec(format!(
                "shard {parent} holds {done} units but owns only {}",
                entry.units
            )));
        }
        let remaining = entry.units - done;
        if remaining == 0 {
            return Err(CampaignError::InvalidSpec(format!(
                "shard {parent} has no units left to steal"
            )));
        }
        let pieces = pieces.clamp(1, remaining);
        let tail_start = entry.start + done;
        let generation = entry.generation + 1;
        let stem = {
            let path = Path::new(&entry.store);
            let name = path.file_stem().and_then(|s| s.to_str()).unwrap_or("shard");
            let dir = path.parent().unwrap_or_else(|| Path::new("."));
            (dir.to_path_buf(), name.to_string())
        };
        let mut children = Vec::with_capacity(pieces);
        for k in 0..pieces {
            let sub = shard_range(remaining, pieces, k);
            let index = self.entries.len();
            self.entries.push(ShardEntry {
                index,
                store: stem
                    .0
                    .join(format!("{}-g{generation}-{k}.jsonl", stem.1))
                    .display()
                    .to_string(),
                start: tail_start + sub.start,
                units: sub.len(),
                attempts: 0,
                generation,
                parent: Some(parent),
                retired: false,
            });
            children.push(index);
        }
        let e = &mut self.entries[parent];
        e.units = done;
        e.retired = true;
        self.schema = MANIFEST_SCHEMA.to_string();
        Ok(children)
    }

    /// Checks the manifest belongs to `plan`.
    ///
    /// # Errors
    ///
    /// [`CampaignError::SpecMismatch`] on a foreign spec,
    /// [`CampaignError::CorruptStore`] on a name/size drift.
    pub fn matches(&self, plan: &CampaignPlan) -> Result<(), CampaignError> {
        if self.spec_hash != plan.spec_hash {
            return Err(CampaignError::SpecMismatch {
                expected: plan.spec_hash.clone(),
                found: self.spec_hash.clone(),
            });
        }
        if self.name != plan.name || self.planned_units != plan.units.len() {
            return Err(CampaignError::CorruptStore(format!(
                "shard manifest names campaign {}/{} units, the plan is {}/{} units",
                self.name,
                self.planned_units,
                plan.name,
                plan.units.len()
            )));
        }
        Ok(())
    }

    /// The entry of shard `index`.
    ///
    /// # Errors
    ///
    /// [`CampaignError::InvalidSpec`] when out of range.
    pub fn entry(&self, index: usize) -> Result<&ShardEntry, CampaignError> {
        self.entries.get(index).ok_or_else(|| {
            CampaignError::InvalidSpec(format!(
                "shard index {index} out of range for {} shards",
                self.shards
            ))
        })
    }

    /// Writes the manifest atomically: serialize to `<path>.tmp`, fsync,
    /// rename over `path`. A crash at any point leaves either the old
    /// manifest or the new one, never a torn file — the property the
    /// supervisor's restart bookkeeping relies on.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Io`] / [`CampaignError::Json`].
    pub fn write(&self, path: &Path) -> Result<(), CampaignError> {
        let json = serde_json::to_string_pretty(self)? + "\n";
        let tmp: PathBuf = {
            let mut name = path.file_name().unwrap_or_default().to_os_string();
            name.push(".tmp");
            path.with_file_name(name)
        };
        let mut file = File::create(&tmp)?;
        file.write_all(json.as_bytes())?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Loads and validates a manifest.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Io`] / [`CampaignError::Json`] /
    /// [`CampaignError::CorruptStore`] (see [`ShardManifest::validate`]).
    pub fn load(path: &Path) -> Result<Self, CampaignError> {
        let json = std::fs::read_to_string(path)?;
        let manifest: ShardManifest = serde_json::from_str(&json)?;
        manifest.validate()?;
        Ok(manifest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CampaignSpec, PlacementAxis, UnitDynamics, UnitScheduler};
    use dynring_analysis::AlgorithmChoice;

    fn plan() -> CampaignPlan {
        CampaignSpec {
            name: "shardtest".into(),
            ring_sizes: vec![4, 5],
            robots: vec![1, 2],
            placements: vec![PlacementAxis::EvenlySpaced],
            algorithms: vec![AlgorithmChoice::Pef3Plus],
            dynamics: vec![UnitDynamics::Bernoulli { p: 0.5 }],
            schedulers: vec![UnitScheduler::Sync],
            seeds: vec![1, 2, 3],
            horizon: 100,
            replicas: 2,
        }
        .plan()
        .expect("valid spec")
    }

    #[test]
    fn ranges_partition_the_plan_exactly() {
        for total in [0usize, 1, 5, 12, 13, 100] {
            for count in [1usize, 2, 3, 4, 7, 13] {
                let mut covered = Vec::new();
                for index in 0..count {
                    let range = shard_range(total, count, index);
                    // Disjoint and contiguous: each range starts where the
                    // previous ended.
                    assert_eq!(range.start, covered.len(), "total={total} count={count}");
                    covered.extend(range);
                }
                assert_eq!(covered, (0..total).collect::<Vec<_>>());
                // Balanced to within one unit.
                let sizes: Vec<usize> =
                    (0..count).map(|i| shard_range(total, count, i).len()).collect();
                let min = sizes.iter().min().unwrap();
                let max = sizes.iter().max().unwrap();
                assert!(max - min <= 1, "total={total} count={count} sizes={sizes:?}");
            }
        }
    }

    #[test]
    fn shard_sel_validates_bounds() {
        assert!(ShardSel::Balanced { index: 0, count: 0 }.validate(10).is_err());
        assert!(ShardSel::Balanced { index: 3, count: 3 }.validate(10).is_err());
        assert!(ShardSel::Balanced { index: 2, count: 3 }.validate(10).is_ok());
        assert!(ShardSel::Range { start: 4, units: 6 }.validate(10).is_ok());
        assert!(ShardSel::Range { start: 4, units: 7 }.validate(10).is_err());
        assert_eq!(ShardSel::Range { start: 4, units: 3 }.range(10), 4..7);
    }

    #[test]
    fn manifest_round_trips_and_validates() {
        let plan = plan();
        let dir = std::env::temp_dir().join("dynring_shard_manifest_test");
        let _ = std::fs::create_dir_all(&dir);
        let manifest = ShardManifest::build(&plan, 3, &dir);
        assert_eq!(manifest.shards, 3);
        assert_eq!(
            manifest.entries.iter().map(|e| e.units).sum::<usize>(),
            plan.units.len()
        );
        manifest.validate().expect("consistent");
        manifest.matches(&plan).expect("matches its plan");

        let path = dir.join("manifest.json");
        manifest.write(&path).expect("writes");
        let loaded = ShardManifest::load(&path).expect("loads");
        assert_eq!(loaded, manifest);

        // A foreign spec is refused by hash.
        let mut other = plan.clone();
        other.spec_hash = "ffffffffffffffff".into();
        assert!(matches!(
            manifest.matches(&other),
            Err(CampaignError::SpecMismatch { .. })
        ));

        // A tampered range is refused: shifting one start opens a gap
        // and an overlap at once.
        let mut bent = manifest.clone();
        bent.entries[1].start += 1;
        assert!(bent.validate().is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn v1_manifests_still_load_and_demand_the_canonical_partition() {
        let plan = plan();
        let mut manifest = ShardManifest::build(&plan, 2, Path::new("/tmp"));
        manifest.schema = MANIFEST_SCHEMA_V1.to_string();
        let json = serde_json::to_string(&manifest).expect("serializes");
        // Strip the v2-only fields textually: a real v1 file never wrote
        // them, and the serde defaults must fill them back in on load.
        let v1_json = json.replace(",\"generation\":0,\"parent\":null,\"retired\":false", "");
        assert!(
            !v1_json.contains("generation") && v1_json != json,
            "v2-only fields must be stripped: {v1_json}"
        );
        let dir = std::env::temp_dir().join("dynring_shard_manifest_v1_test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("manifest-v1.json");
        std::fs::write(&path, v1_json).expect("writes");
        let loaded = ShardManifest::load(&path).expect("v1 loads");
        assert_eq!(loaded.entries, manifest.entries);

        // v1 is strictly canonical: a non-canonical (but exact) partition
        // that v2 would accept is refused under the v1 schema.
        let mut bent = manifest.clone();
        bent.entries[0].units += 1;
        bent.entries[1].start += 1;
        bent.entries[1].units -= 1;
        assert!(bent.validate().is_err());
        bent.schema = MANIFEST_SCHEMA.to_string();
        bent.validate().expect("v2 accepts any exact partition");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn split_entry_retires_the_parent_and_partitions_the_tail() {
        let plan = plan();
        let total = plan.units.len();
        let mut manifest = ShardManifest::build(&plan, 3, Path::new("/tmp"));
        let parent_range = manifest.entries[1].range();
        let done = 2.min(parent_range.len() - 1);
        let children = manifest.split_entry(1, done, 2).expect("splits");
        assert_eq!(children, vec![3, 4]);
        manifest.validate().expect("split manifest stays an exact partition");

        let parent = &manifest.entries[1];
        assert!(parent.retired);
        assert_eq!(parent.units, done);
        let covered: usize = manifest.entries.iter().map(|e| e.units).sum();
        assert_eq!(covered, total);
        for &c in &children {
            let child = &manifest.entries[c];
            assert_eq!(child.parent, Some(1));
            assert_eq!(child.generation, 1);
            assert_eq!(child.attempts, 0);
            assert!(child.store.contains("-g1-"), "store {}", child.store);
        }
        assert_eq!(manifest.runnable().count(), 4);

        // A child can be split again (generation 2), and the manifest
        // still validates as an exact partition.
        let grand = manifest.split_entry(children[0], 0, 2).expect("re-splits");
        manifest.validate().expect("still exact");
        assert!(manifest.entries[grand[0]].generation == 2);

        // Refusals: retired parent, done beyond range, empty tail.
        assert!(manifest.split_entry(1, 0, 2).is_err());
        assert!(manifest.split_entry(0, total, 2).is_err());
        let full = manifest.entries[2].units;
        assert!(manifest.split_entry(2, full, 2).is_err());
    }

    #[test]
    fn shard_count_is_clamped_to_the_plan() {
        let plan = plan();
        let manifest = ShardManifest::build(&plan, 1000, Path::new("/tmp"));
        assert_eq!(manifest.shards, plan.units.len());
        assert!(manifest.entries.iter().all(|e| e.units == 1));
    }
}
