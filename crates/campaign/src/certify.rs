//! `dynring certify`: after-the-fact verification of a campaign store as
//! a replay bundle.
//!
//! Level 1 is *structural*: the whole file is re-scanned and every line
//! re-verified — header present and matching the plan, every record's
//! content hash, digest and chain link recomputed, plan membership and
//! ordering checked, the seal validated — without executing anything.
//! Level 2 adds *behavioral* spot-checks: a deterministic sample of
//! units (seeded, both routes covered when both are present) is
//! re-executed from scratch and the fresh measurements are compared
//! field-by-field against the stored ones.
//!
//! Unlike [`ResultStore::load`], which refuses at the first problem,
//! certification collects *every* divergence: one greppable
//! `CERTIFY-FAIL unit=… field=… expected=… got=…` line each, plus a
//! machine-readable [`CertifyVerdict`]. See `docs/CERTIFY.md`.

use serde::{Deserialize, Serialize};

use dynring_analysis::seeds::sample_indices;

use crate::executor::{execute_unit, route_unit};
use crate::spec::{CampaignSpec, PlannedUnit};
use crate::store::{ResultStore, ScanLine, StoreVerifier};
use crate::CampaignError;

/// Knobs of one certification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CertifyOptions {
    /// 1 = structural (scan + chain + plan), 2 = structural plus sampled
    /// re-execution.
    pub level: u8,
    /// Units to re-execute at level 2 (clamped to the record count; both
    /// routes are forced into the sample when both are present).
    pub sample: usize,
    /// Seed of the level-2 sample (recorded in the verdict, so a sampled
    /// certification is itself replayable).
    pub seed: u64,
}

impl Default for CertifyOptions {
    fn default() -> Self {
        CertifyOptions { level: 1, sample: 8, seed: 0xCE47 }
    }
}

/// One divergence found by certification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CertifyFailure {
    /// The offending unit's hash, or `-` for store-level failures.
    pub unit: String,
    /// Which check diverged (`chain-mismatch`, `covered`, `seal`, …).
    pub field: String,
    /// The recomputed / re-executed value.
    pub expected: String,
    /// What the store carried.
    pub got: String,
}

impl CertifyFailure {
    fn new(unit: &str, field: &str, expected: String, got: String) -> Self {
        CertifyFailure {
            unit: unit.to_string(),
            field: field.to_string(),
            expected: despace(expected),
            got: despace(got),
        }
    }

    /// The greppable one-line form:
    /// `CERTIFY-FAIL unit=… field=… expected=… got=…`.
    pub fn render(&self) -> String {
        format!(
            "CERTIFY-FAIL unit={} field={} expected={} got={}",
            self.unit, self.field, self.expected, self.got
        )
    }
}

/// Keeps every `key=value` token of the greppable line space-free.
fn despace(s: String) -> String {
    if s.contains(' ') {
        s.replace(' ', "-")
    } else {
        s
    }
}

/// The machine-readable outcome of one certification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CertifyVerdict {
    /// Store path.
    pub store: String,
    /// Level that ran.
    pub level: u8,
    /// `true` iff no failure was found.
    pub pass: bool,
    /// The plan's spec hash.
    pub spec_hash: String,
    /// Records in the store.
    pub records: usize,
    /// Records carrying chain metadata.
    pub chained: usize,
    /// Legacy (unchained) records.
    pub legacy: usize,
    /// Whether the store ends in a seal line.
    pub sealed: bool,
    /// Whether the file carried a torn trailing write.
    pub torn_tail: bool,
    /// The final chain head, when a header seeded one.
    pub chain_head: Option<String>,
    /// Units re-executed (level 2).
    pub replayed: usize,
    /// The sample seed (level 2; replay the certification with it).
    pub sample_seed: u64,
    /// Every divergence, in discovery order.
    pub failures: Vec<CertifyFailure>,
}

/// Certifies `store` against `spec` at `opts.level`. A failing store is
/// an `Ok` verdict with `pass == false` — certification only errors when
/// it cannot *run* (bad level, unreadable file, invalid spec).
///
/// # Errors
///
/// [`CampaignError::InvalidSpec`] on a level outside `1..=2` or an
/// invalid spec; [`CampaignError::Io`] when the file is unreadable.
pub fn certify(
    spec: &CampaignSpec,
    store: &ResultStore,
    opts: &CertifyOptions,
) -> Result<CertifyVerdict, CampaignError> {
    if !(1..=2).contains(&opts.level) {
        return Err(CampaignError::InvalidSpec(format!(
            "certify level must be 1 or 2, not {}",
            opts.level
        )));
    }
    let plan = spec.plan()?;
    let scan = store.scan()?;
    let mut failures = Vec::new();
    let mut verifier = StoreVerifier::new();
    for entry in scan.lines {
        match entry {
            ScanLine::Corrupt { line, offset, reason } => failures.push(CertifyFailure::new(
                "-",
                "parse",
                "parseable-line".into(),
                format!("{reason}:line{line}:offset{offset}"),
            )),
            ScanLine::Parsed { store_line, .. } => {
                for v in verifier.accept(*store_line) {
                    failures.push(CertifyFailure::new(&v.unit, v.reason, v.expected, v.got));
                }
            }
        }
    }
    if scan.torn_bytes > 0 {
        failures.push(CertifyFailure::new(
            "-",
            "tail",
            "newline-terminated-file".into(),
            format!("torn:{}bytes", scan.torn_bytes),
        ));
    }
    match &verifier.header {
        None => failures.push(CertifyFailure::new(
            "-",
            "header",
            "header-line".into(),
            "missing".into(),
        )),
        Some(header) => {
            if header.spec_hash != plan.spec_hash {
                failures.push(CertifyFailure::new(
                    "-",
                    "spec-hash",
                    plan.spec_hash.clone(),
                    header.spec_hash.clone(),
                ));
            }
            if header.name != plan.name {
                failures.push(CertifyFailure::new(
                    "-",
                    "name",
                    plan.name.clone(),
                    header.name.clone(),
                ));
            }
            if header.planned_units != plan.units.len() {
                failures.push(CertifyFailure::new(
                    "-",
                    "planned-units",
                    plan.units.len().to_string(),
                    header.planned_units.to_string(),
                ));
            }
        }
    }
    for record in &verifier.records {
        let planned = plan.units.get(record.index);
        if planned.map(|p| p.hash.as_str()) != Some(record.hash.as_str()) {
            failures.push(CertifyFailure::new(
                &record.hash,
                "membership",
                planned.map_or_else(|| "in-plan".to_string(), |p| p.hash.clone()),
                record.hash.clone(),
            ));
        }
        let expected_route = route_unit(&record.unit).name();
        if record.route != expected_route {
            failures.push(CertifyFailure::new(
                &record.hash,
                "route",
                expected_route.to_string(),
                record.route.clone(),
            ));
        }
    }
    if verifier.legacy > 0 {
        failures.push(CertifyFailure::new(
            "-",
            "chain",
            "chained-records".into(),
            format!("unchained:{}", verifier.legacy),
        ));
    }
    if !verifier.sealed {
        failures.push(CertifyFailure::new(
            "-",
            "seal",
            "sealed-footer".into(),
            "unsealed".into(),
        ));
    }
    if verifier.records.len() != plan.units.len() {
        failures.push(CertifyFailure::new(
            "-",
            "complete",
            plan.units.len().to_string(),
            verifier.records.len().to_string(),
        ));
    }

    let mut replayed = 0usize;
    if opts.level >= 2 {
        let records = &verifier.records;
        let mut chosen = sample_indices(opts.seed, records.len(), opts.sample);
        // Route coverage: when the store mixes batch- and serial-routed
        // units, a sample that happens to land on only one route would
        // leave the other engine unexercised — swap in the first record
        // of each missing route from the back of the sample.
        let mut replace_at = chosen.len();
        for route in ["batch", "serial"] {
            if let Some(first) = records.iter().position(|r| r.route == route) {
                if replace_at > 0 && !chosen.iter().any(|&i| records[i].route == route) {
                    replace_at -= 1;
                    chosen[replace_at] = first;
                }
            }
        }
        chosen.sort_unstable();
        chosen.dedup();
        for i in chosen {
            let record = &records[i];
            let planned = PlannedUnit {
                index: record.index,
                hash: record.hash.clone(),
                unit: record.unit.clone(),
            };
            replayed += 1;
            match execute_unit(&planned) {
                Err(e) => failures.push(CertifyFailure::new(
                    &record.hash,
                    "execute",
                    "replayable-unit".into(),
                    e.to_string(),
                )),
                Ok(fresh) => {
                    for (field, expected, got) in fresh.result.diff(&record.result) {
                        failures.push(CertifyFailure::new(&record.hash, field, expected, got));
                    }
                }
            }
        }
    }

    Ok(CertifyVerdict {
        store: store.path().display().to_string(),
        level: opts.level,
        pass: failures.is_empty(),
        spec_hash: plan.spec_hash,
        records: verifier.records.len(),
        chained: verifier.chained,
        legacy: verifier.legacy,
        sealed: verifier.sealed,
        torn_tail: scan.torn_bytes > 0,
        chain_head: verifier.chain_head,
        replayed,
        sample_seed: opts.seed,
        failures,
    })
}

/// Renders the verdict for the terminal: one `CERTIFY-FAIL` line per
/// divergence, then a one-line summary.
pub fn render_verdict(verdict: &CertifyVerdict) -> String {
    use std::fmt::Write as _;

    let mut out = String::new();
    for failure in &verdict.failures {
        let _ = writeln!(out, "{}", failure.render());
    }
    let _ = writeln!(
        out,
        "certify: {} level={} store={} records={} chained={} legacy={} sealed={} replayed={} failures={}",
        if verdict.pass { "PASS" } else { "FAIL" },
        verdict.level,
        verdict.store,
        verdict.records,
        verdict.chained,
        verdict.legacy,
        verdict.sealed,
        verdict.replayed,
        verdict.failures.len(),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_campaign, RunOptions};
    use crate::spec::{PlacementAxis, UnitDynamics, UnitScheduler};
    use dynring_analysis::AlgorithmChoice;

    fn spec() -> CampaignSpec {
        CampaignSpec {
            name: "certify".into(),
            ring_sizes: vec![4, 5],
            robots: vec![1],
            placements: vec![PlacementAxis::EvenlySpaced],
            algorithms: vec![AlgorithmChoice::Pef1],
            dynamics: vec![UnitDynamics::Bernoulli { p: 0.7 }, UnitDynamics::Static],
            schedulers: vec![UnitScheduler::Sync],
            seeds: vec![1, 2],
            horizon: 200,
            replicas: 2,
        }
    }

    fn temp(name: &str) -> ResultStore {
        let path = std::env::temp_dir().join(format!("dynring_certify_test_{name}.jsonl"));
        let _ = std::fs::remove_file(&path);
        ResultStore::new(path)
    }

    #[test]
    fn complete_campaigns_certify_at_both_levels() {
        let spec = spec();
        let store = temp("pass");
        run_campaign(&spec, &store, &RunOptions::default()).expect("runs");
        let v1 = certify(&spec, &store, &CertifyOptions::default()).expect("certifies");
        assert!(v1.pass, "{:?}", v1.failures);
        assert!(v1.sealed);
        assert_eq!(v1.records, 8);
        assert_eq!(v1.chained, 8);
        assert_eq!(v1.legacy, 0);
        let v2 = certify(
            &spec,
            &store,
            &CertifyOptions { level: 2, sample: 3, seed: 11 },
        )
        .expect("certifies");
        assert!(v2.pass, "{:?}", v2.failures);
        assert!(v2.replayed >= 3, "route forcing may only grow the sample");
        // Both routes exist in this spec, so both must be replayed.
        let text = render_verdict(&v2);
        assert!(text.contains("certify: PASS level=2"), "{text}");
        let _ = std::fs::remove_file(store.path());
    }

    #[test]
    fn incomplete_and_unsealed_stores_fail_level_1() {
        let spec = spec();
        let store = temp("partial");
        run_campaign(
            &spec,
            &store,
            &RunOptions { max_units: Some(3), ..RunOptions::default() },
        )
        .expect("runs");
        let v = certify(&spec, &store, &CertifyOptions::default()).expect("certifies");
        assert!(!v.pass);
        let fields: Vec<&str> = v.failures.iter().map(|f| f.field.as_str()).collect();
        assert!(fields.contains(&"seal"), "{fields:?}");
        assert!(fields.contains(&"complete"), "{fields:?}");
        let _ = std::fs::remove_file(store.path());
    }

    #[test]
    fn bad_levels_error_instead_of_passing() {
        let spec = spec();
        let store = temp("level");
        assert!(matches!(
            certify(&spec, &store, &CertifyOptions { level: 3, ..CertifyOptions::default() }),
            Err(CampaignError::InvalidSpec(_))
        ));
    }

    #[test]
    fn verdicts_round_trip_through_json() {
        let spec = spec();
        let store = temp("json");
        run_campaign(&spec, &store, &RunOptions::default()).expect("runs");
        let v = certify(&spec, &store, &CertifyOptions::default()).expect("certifies");
        let json = serde_json::to_string_pretty(&v).expect("serialize");
        let back: CertifyVerdict = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(v, back);
        let _ = std::fs::remove_file(store.path());
    }
}
