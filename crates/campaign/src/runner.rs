//! The campaign driver: plan → skip completed → shard pending units over
//! threads → append records in plan order.
//!
//! Execution is wave-based: pending units are split into fixed chunks,
//! each wave fans out over `workers` threads via
//! [`dynring_analysis::parallel::par_map`] (which returns results in
//! input order), and the wave's records are appended to the store in
//! plan order before the next wave starts. An interruption therefore
//! loses at most one wave of work, and the store is always a plan-order
//! prefix — the invariant behind byte-exact resume. Because unit
//! execution and routing are pure functions of the unit, the store bytes
//! are identical for every `workers` value.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use dynring_analysis::parallel::{available_workers, par_map};
use dynring_obs::{labeled, names};

use crate::events::{Event, EventLedger, LedgerAppender, EVENTS_SCHEMA};
use crate::executor::{execute_unit, route_unit, UnitRecord};
use crate::fault::FailPlan;
use crate::shard::ShardSel;
use crate::spec::{CampaignSpec, PlannedUnit};
use crate::store::{ResultStore, StoreHeader};
use crate::CampaignError;

/// Knobs of one `run`/`resume` invocation.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Worker threads (`1` = serial; the default is one per core).
    pub workers: usize,
    /// Stop after this many newly executed units (`None` = run to
    /// completion). The CI smoke uses this to simulate an interruption.
    pub max_units: Option<usize>,
    /// `run` semantics: refuse a store that already has content. `resume`
    /// semantics (`false`): continue wherever the store left off.
    pub fresh: bool,
    /// Test-only fault injection into the store's append path (see
    /// [`crate::fault`]). `None` — always, outside the crash-safety
    /// tests — appends normally.
    pub fault: Option<FailPlan>,
    /// Restrict execution to one shard's slice of the plan (`campaign
    /// work`). The store keeps the full-plan header and global plan
    /// indices — only *which* units this process executes changes — so
    /// `campaign merge` can re-chain shard stores into the serial bytes.
    pub shard: Option<ShardSel>,
    /// Test-only "poison unit": execute normally up to — but not
    /// including — the pending unit with this hash, sync, then return
    /// [`CampaignError::InjectedFault`]. Whatever process (or sub-shard)
    /// draws the unit dies; everything before it survives on disk. `None`
    /// outside the fault-injection tests.
    pub poison: Option<String>,
    /// Out-of-band telemetry: when set, per-unit and per-wave events
    /// are appended to the events ledger at this path (see
    /// [`crate::events`]; the CLI points it at `<store>.events.jsonl`).
    /// Registry counters update regardless. Telemetry never changes
    /// store bytes — see `docs/OBSERVABILITY.md`.
    pub events: Option<PathBuf>,
    /// Test-only deterministic straggler (`DYNRING_WORKER_FAULT=
    /// slow-unit:INDEX:MS`): sleep this many milliseconds before
    /// executing the unit with this hash. Shapes wall time only, never
    /// bytes — the straggler-stealing and latency-histogram tests use
    /// it to avoid flaky timing.
    pub slow_unit: Option<(String, u64)>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            workers: available_workers(),
            max_units: None,
            fresh: true,
            fault: None,
            shard: None,
            poison: None,
            events: None,
            slow_unit: None,
        }
    }
}

/// What one invocation did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// Units in the plan (this shard's slice when [`RunOptions::shard`]
    /// is set).
    pub planned: usize,
    /// Units already in the store (skipped).
    pub skipped: usize,
    /// Units executed and appended by this invocation.
    pub executed: usize,
    /// Units still pending after this invocation (nonzero only when
    /// `max_units` stopped it early).
    pub pending: usize,
}

impl RunOutcome {
    /// `true` when the store now covers the whole plan.
    pub fn is_complete(&self) -> bool {
        self.pending == 0
    }
}

/// Plans `spec`, skips units already in `store`, executes the rest over
/// `opts.workers` threads and appends their records in plan order.
///
/// # Errors
///
/// - [`CampaignError::InvalidSpec`] / [`CampaignError::EmptyPlan`] from
///   planning;
/// - [`CampaignError::StoreExists`] when `opts.fresh` and the store has
///   content (use `resume`);
/// - [`CampaignError::SpecMismatch`] when the store belongs to a
///   different spec;
/// - [`CampaignError::CorruptStore`] / [`CampaignError::Io`] on store
///   damage; [`CampaignError::Scenario`] when a unit is ill-formed (the
///   first failing unit by plan order, matching serial execution).
pub fn run_campaign(
    spec: &CampaignSpec,
    store: &ResultStore,
    opts: &RunOptions,
) -> Result<RunOutcome, CampaignError> {
    let plan = spec.plan()?;
    let loaded = store.load()?;
    if opts.fresh && (loaded.header.is_some() || !loaded.records.is_empty()) {
        return Err(CampaignError::StoreExists(
            store.path().display().to_string(),
        ));
    }
    if let Some(header) = &loaded.header {
        if header.spec_hash != plan.spec_hash {
            return Err(CampaignError::SpecMismatch {
                expected: plan.spec_hash.clone(),
                found: header.spec_hash.clone(),
            });
        }
        if header.name != plan.name || header.planned_units != plan.units.len() {
            return Err(CampaignError::CorruptStore(format!(
                "{}: header names campaign {}/{} units, the plan is {}/{} units",
                store.path().display(),
                header.name,
                header.planned_units,
                plan.name,
                plan.units.len()
            )));
        }
    } else if !loaded.records.is_empty() {
        return Err(CampaignError::CorruptStore(format!(
            "{}: records without a header",
            store.path().display()
        )));
    }
    // Restrict to one shard's slice of the plan when asked. Everything
    // else — header, record shape, chaining — is unchanged, so a shard
    // store is just a normal store whose records happen to be one
    // contiguous plan range.
    let shard_range = match &opts.shard {
        Some(sel) => {
            sel.validate(plan.units.len())?;
            sel.range(plan.units.len())
        }
        None => 0..plan.units.len(),
    };
    let slice = &plan.units[shard_range.clone()];
    // Plan membership: a record must sit at its own plan index. The spec
    // hash already binds the store to the spec, but this also rejects a
    // record *transplanted* from another store of the same spec family.
    for record in &loaded.records {
        let planned = plan.units.get(record.index);
        if planned.map(|p| p.hash.as_str()) != Some(record.hash.as_str()) {
            return Err(CampaignError::CorruptStore(format!(
                "{}: record {} (unit {}) is not the plan's unit at that index",
                store.path().display(),
                record.index,
                record.hash
            )));
        }
        if opts.shard.is_some() && !shard_range.contains(&record.index) {
            return Err(CampaignError::CorruptStore(format!(
                "{}: record {} is outside this shard's range {}..{}",
                store.path().display(),
                record.index,
                shard_range.start,
                shard_range.end
            )));
        }
    }
    let completed = loaded.completed_hashes();
    let pending: Vec<&PlannedUnit> = slice
        .iter()
        .filter(|u| !completed.contains(u.hash.as_str()))
        .collect();
    if loaded.sealed && !pending.is_empty() {
        return Err(CampaignError::CorruptStore(format!(
            "{}: sealed store is missing {} planned units",
            store.path().display(),
            pending.len()
        )));
    }
    let skipped = slice.len() - pending.len();
    let mut budget = opts.max_units.unwrap_or(pending.len()).min(pending.len());
    // A poison unit caps the budget at its own position: everything
    // before it executes and syncs, then the process dies on it.
    let poisoned = opts.poison.as_deref().and_then(|hash| {
        let at = pending[..budget].iter().position(|u| u.hash == hash)?;
        budget = at;
        Some(hash)
    });

    let mut appender = store.appender(&loaded)?;
    appender.set_fault(opts.fault);
    if loaded.header.is_none() {
        appender.append_header(StoreHeader {
            name: plan.name.clone(),
            spec_hash: plan.spec_hash.clone(),
            planned_units: plan.units.len(),
        })?;
    }
    // Out-of-band telemetry: the process registry always counts; the
    // events ledger (when enabled) additionally records per-unit and
    // per-wave observations. Nothing here touches the store appender's
    // bytes.
    let obs = dynring_obs::global();
    let mut ledger = match &opts.events {
        Some(path) => {
            let mut app = EventLedger::new(path).appender()?;
            app.append(Event::RunStart {
                schema: EVENTS_SCHEMA.into(),
                name: plan.name.clone(),
                spec_hash: plan.spec_hash.clone(),
                planned: slice.len(),
                skipped,
            })?;
            Some(app)
        }
        None => None,
    };
    // Waves bound interruption loss; the wave size only shapes latency,
    // never bytes (records are appended in plan order either way). Each
    // wave is fsynced, so a power cut loses at most one wave.
    let workers = opts.workers.max(1);
    let wave_size = (workers * 4).max(8);
    let mut executed = 0usize;
    for wave in pending[..budget].chunks(wave_size) {
        let wave_start = Instant::now();
        let slow = opts.slow_unit.as_ref();
        let results = par_map(wave, workers, |planned| {
            let unit_start = Instant::now();
            // The injected delay counts as unit wall time: the whole
            // point of `slow-unit` is a unit that *measures* slow.
            if let Some((hash, ms)) = slow {
                if planned.hash == *hash {
                    std::thread::sleep(Duration::from_millis(*ms));
                }
            }
            (execute_unit(planned), unit_start.elapsed())
        });
        for (result, wall) in results {
            let record = result?;
            observe_unit(obs, ledger.as_mut(), &record, wall)?;
            appender.append_record(record)?;
            executed += 1;
        }
        appender.sync()?;
        let wave_us = u64::try_from(wave_start.elapsed().as_micros()).unwrap_or(u64::MAX);
        obs.counter(names::CAMPAIGN_WAVES).inc();
        obs.histogram(names::CAMPAIGN_WAVE_WALL_US).record(wave_us);
        if let Some(app) = ledger.as_mut() {
            app.append(Event::Wave { units: wave.len(), wall_us: wave_us })?;
            app.sync()?;
        }
    }
    if let Some(hash) = poisoned {
        return Err(CampaignError::InjectedFault(format!(
            "poison unit {hash} reached after {executed} units"
        )));
    }
    // Seal on completion. A complete-but-unsealed store (a run
    // interrupted between its last record and the seal, or a legacy v1
    // store) gets sealed by the resume that finds it complete; a sealed
    // resume is a pure no-op.
    if executed == pending.len() && !loaded.sealed {
        appender.seal()?;
        appender.sync()?;
    }
    if let Some(app) = ledger.as_mut() {
        app.append(Event::RunEnd { executed, pending: pending.len() - executed })?;
        app.sync()?;
    }
    Ok(RunOutcome {
        planned: slice.len(),
        skipped,
        executed,
        pending: pending.len() - executed,
    })
}

/// Records one executed unit into the process registry and (when
/// enabled) the events ledger. Strictly observational: the record is
/// appended to the store unchanged afterwards.
fn observe_unit(
    obs: &dynring_obs::Registry,
    ledger: Option<&mut LedgerAppender>,
    record: &UnitRecord,
    wall: Duration,
) -> Result<(), CampaignError> {
    let unit = &record.unit;
    let route = route_unit(unit);
    let route_name = route.name();
    let wall_us = u64::try_from(wall.as_micros()).unwrap_or(u64::MAX);
    let uncovered = record.result.replicas.saturating_sub(record.result.covered) as u64;
    let replica_rounds = record.result.total_cover_time + uncovered * unit.horizon;
    obs.counter(&labeled(names::CAMPAIGN_UNITS, &[("route", route_name)])).inc();
    obs.counter(&labeled(names::CAMPAIGN_REPLICA_ROUNDS, &[("route", route_name)]))
        .add(replica_rounds);
    obs.histogram(&labeled(names::CAMPAIGN_UNIT_WALL_US, &[("route", route_name)]))
        .record(wall_us);
    let arity = route.arity().map_or(0, |a| a.lanes() as u64);
    if route.is_batch() {
        obs.counter(&labeled(
            names::CAMPAIGN_BATCH_ARITY_UNITS,
            &[("arity", &arity.to_string())],
        ))
        .inc();
        // The batch-eligible dynamics (pure Bernoulli banks) all
        // support the sparse gather, so the engine's size cutover alone
        // decides the fill mode (a ring has as many edges as nodes).
        let mode = if dynring_engine::sparse_fill_default(unit.robots, unit.ring_size) {
            "sparse"
        } else {
            "full"
        };
        obs.counter(&labeled(names::CAMPAIGN_SPARSE_GATHER_UNITS, &[("mode", mode)])).inc();
    }
    if let Some(app) = ledger {
        app.append(Event::Unit {
            hash: record.hash.clone(),
            index: record.index,
            algorithm: unit.algorithm.name().into(),
            dynamics: unit.dynamics.name().into(),
            scheduler: unit.scheduler.name().into(),
            route: record.route.clone(),
            arity,
            replicas: record.result.replicas,
            covered: record.result.covered,
            replica_rounds,
            wall_us,
        })?;
    }
    Ok(())
}

/// Loads a store and folds it into the report for `spec`.
///
/// # Errors
///
/// See [`run_campaign`] (planning and store errors; nothing is executed).
pub fn load_report(
    spec: &CampaignSpec,
    store: &ResultStore,
) -> Result<crate::CampaignReport, CampaignError> {
    let plan = spec.plan()?;
    let loaded = store.load()?;
    if let Some(header) = &loaded.header {
        if header.spec_hash != plan.spec_hash {
            return Err(CampaignError::SpecMismatch {
                expected: plan.spec_hash.clone(),
                found: header.spec_hash.clone(),
            });
        }
    }
    let mut report = crate::aggregate::aggregate(&plan, &loaded.records);
    report.torn_tail = loaded.torn_tail;
    report.torn_bytes = loaded.torn_bytes;
    report.sealed = loaded.sealed;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{PlacementAxis, UnitDynamics, UnitScheduler};
    use dynring_analysis::AlgorithmChoice;

    fn spec() -> CampaignSpec {
        CampaignSpec {
            name: "runner".into(),
            ring_sizes: vec![4, 5],
            robots: vec![1, 2],
            placements: vec![PlacementAxis::EvenlySpaced],
            algorithms: vec![AlgorithmChoice::Pef3Plus],
            dynamics: vec![UnitDynamics::Bernoulli { p: 0.6 }, UnitDynamics::Static],
            schedulers: vec![UnitScheduler::Sync, UnitScheduler::Ssync],
            seeds: vec![1, 2],
            horizon: 250,
            replicas: 3,
        }
    }

    fn temp(name: &str) -> ResultStore {
        let path = std::env::temp_dir().join(format!("dynring_runner_test_{name}.jsonl"));
        let _ = std::fs::remove_file(&path);
        ResultStore::new(path)
    }

    fn cleanup(store: &ResultStore) {
        let _ = std::fs::remove_file(store.path());
    }

    #[test]
    fn run_interrupt_resume_is_byte_identical_to_one_shot() {
        let spec = spec();
        let total = spec.plan().expect("valid").units.len();
        assert_eq!(total, 32);

        let oneshot = temp("oneshot");
        let outcome = run_campaign(&spec, &oneshot, &RunOptions::default()).expect("runs");
        assert!(outcome.is_complete());
        assert_eq!(outcome.executed, total);

        let resumed = temp("resumed");
        let partial = run_campaign(
            &spec,
            &resumed,
            &RunOptions { max_units: Some(10), ..RunOptions::default() },
        )
        .expect("runs");
        assert_eq!(partial.executed, 10);
        assert_eq!(partial.pending, total - 10);
        let rest = run_campaign(
            &spec,
            &resumed,
            &RunOptions { fresh: false, ..RunOptions::default() },
        )
        .expect("resumes");
        assert_eq!(rest.skipped, 10);
        assert!(rest.is_complete());

        let a = std::fs::read(oneshot.path()).expect("read");
        let b = std::fs::read(resumed.path()).expect("read");
        assert_eq!(a, b, "resume must reproduce the uninterrupted store");
        cleanup(&oneshot);
        cleanup(&resumed);
    }

    #[test]
    fn parallel_and_serial_stores_are_byte_identical() {
        let spec = spec();
        let serial = temp("serial");
        run_campaign(
            &spec,
            &serial,
            &RunOptions { workers: 1, ..RunOptions::default() },
        )
        .expect("runs");
        for workers in [2usize, 4, 8] {
            let parallel = temp(&format!("parallel{workers}"));
            run_campaign(
                &spec,
                &parallel,
                &RunOptions { workers, ..RunOptions::default() },
            )
            .expect("runs");
            let a = std::fs::read(serial.path()).expect("read");
            let b = std::fs::read(parallel.path()).expect("read");
            assert_eq!(a, b, "workers = {workers}");
            cleanup(&parallel);
        }
        cleanup(&serial);
    }

    #[test]
    fn finished_campaigns_resume_as_a_no_op() {
        let spec = spec();
        let store = temp("noop");
        run_campaign(&spec, &store, &RunOptions::default()).expect("runs");
        let before = std::fs::read(store.path()).expect("read");
        let again = run_campaign(
            &spec,
            &store,
            &RunOptions { fresh: false, ..RunOptions::default() },
        )
        .expect("resumes");
        assert_eq!(again.executed, 0);
        assert_eq!(again.skipped, again.planned);
        assert!(again.is_complete());
        let after = std::fs::read(store.path()).expect("read");
        assert_eq!(before, after, "a finished campaign must be a no-op");
        cleanup(&store);
    }

    #[test]
    fn fresh_runs_refuse_existing_stores_and_resume_accepts_them() {
        let spec = spec();
        let store = temp("refuse");
        run_campaign(
            &spec,
            &store,
            &RunOptions { max_units: Some(1), ..RunOptions::default() },
        )
        .expect("runs");
        assert!(matches!(
            run_campaign(&spec, &store, &RunOptions::default()),
            Err(CampaignError::StoreExists(_))
        ));
        cleanup(&store);
    }

    #[test]
    fn stores_are_bound_to_their_spec() {
        let spec = spec();
        let store = temp("bound");
        run_campaign(
            &spec,
            &store,
            &RunOptions { max_units: Some(1), ..RunOptions::default() },
        )
        .expect("runs");
        let mut other = spec.clone();
        other.horizon += 1;
        assert!(matches!(
            run_campaign(
                &other,
                &store,
                &RunOptions { fresh: false, ..RunOptions::default() }
            ),
            Err(CampaignError::SpecMismatch { .. })
        ));
        assert!(matches!(
            load_report(&other, &store),
            Err(CampaignError::SpecMismatch { .. })
        ));
        cleanup(&store);
    }

    #[test]
    fn report_tracks_progress_across_resume() {
        let spec = spec();
        let store = temp("report");
        run_campaign(
            &spec,
            &store,
            &RunOptions { max_units: Some(5), ..RunOptions::default() },
        )
        .expect("runs");
        let partial = load_report(&spec, &store).expect("report");
        assert_eq!(partial.completed_units, 5);
        assert!(!partial.is_complete());
        run_campaign(
            &spec,
            &store,
            &RunOptions { fresh: false, ..RunOptions::default() },
        )
        .expect("resumes");
        let full = load_report(&spec, &store).expect("report");
        assert!(full.is_complete());
        assert!(full.batch_units > 0, "bernoulli×sync units must batch-route");
        assert!(full.serial_units > 0);
        cleanup(&store);
    }
}
