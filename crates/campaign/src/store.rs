//! The append-only JSONL result store.
//!
//! A store is one file: a header line naming the campaign and its spec
//! hash, then one line per completed unit, appended in plan order.
//! Append order + deterministic execution is what makes resume
//! byte-exact: an interrupted store is a plan-order prefix of the
//! uninterrupted one, so `resume` — which appends exactly the missing
//! units, in plan order — reproduces the uninterrupted file bit for bit.
//!
//! Since store schema v2 every appended record is a
//! [`crate::trace::ChainedRecord`]: the unit record plus its result
//! digest and a hash-chain link committing it to the whole prefix, and a
//! completed store ends in a sealed [`StoreFooter`] line. Legacy v1
//! stores (bare `Unit` lines, no footer) still load; they simply cannot
//! be chain-certified.
//!
//! Loading is crash-tolerant but corruption-strict: a trailing partial
//! (or unparseable) line — the write an interruption cut short — is
//! detected and truncated away before appending resumes, while any
//! damage *before* the tail (an unparseable interior line, a broken
//! chain link, a duplicated or reordered record, a forged seal) refuses
//! with one greppable `STORE-CORRUPT line=… offset=… reason=…`
//! diagnostic. Records whose hash is not in the current plan are
//! rejected via the header's spec hash — a store belongs to exactly one
//! spec.

use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use dynring_obs::names as obs_names;
use serde::{Deserialize, Serialize};

use crate::executor::UnitRecord;
use crate::fault::{FailPlan, FaultKind};
use crate::trace::{chain_seed, chain_step, result_digest, ChainedRecord, StoreFooter, STORE_SCHEMA};
use crate::CampaignError;

/// The store's first line: which campaign this file belongs to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoreHeader {
    /// Campaign name (informational).
    pub name: String,
    /// [`crate::CampaignSpec::content_hash`] of the owning spec.
    pub spec_hash: String,
    /// Planned unit count (informational; the plan is re-derived from the
    /// spec on every run).
    pub planned_units: usize,
}

/// One line of the store.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StoreLine {
    /// The header (first line).
    Header(StoreHeader),
    /// A completed unit without chain metadata (legacy v1 stores).
    Unit(UnitRecord),
    /// A completed unit with its digest and chain link (schema v2).
    Chained(ChainedRecord),
    /// The sealed footer of a completed campaign (schema v2).
    Seal(StoreFooter),
}

impl StoreLine {
    /// Short display name, for diagnostics.
    fn describe(&self) -> &'static str {
        match self {
            StoreLine::Header(_) => "header",
            StoreLine::Unit(_) => "record",
            StoreLine::Chained(_) => "record",
            StoreLine::Seal(_) => "seal",
        }
    }
}

/// A parsed store: everything valid on disk plus where valid bytes end.
#[derive(Debug)]
pub struct LoadedStore {
    /// The header, when the file has one.
    pub header: Option<StoreHeader>,
    /// Completed unit records, in file order.
    pub records: Vec<UnitRecord>,
    /// Byte offset just past the last valid line. Anything after this is
    /// a torn write and is truncated before appending resumes.
    pub valid_len: u64,
    /// Whether the file carried bytes past `valid_len`.
    pub torn_tail: bool,
    /// How many bytes past `valid_len` the file carried.
    pub torn_bytes: u64,
    /// The chain head over the loaded lines: the header's seed advanced
    /// by every chained record. `None` for headerless (empty) stores.
    pub chain_head: Option<String>,
    /// Records that carried chain metadata.
    pub chained: usize,
    /// Legacy records without chain metadata (v1 stores).
    pub legacy: usize,
    /// Whether the store ends in a verified seal.
    pub sealed: bool,
}

impl LoadedStore {
    /// The hashes of all completed units.
    pub fn completed_hashes(&self) -> HashSet<&str> {
        self.records.iter().map(|r| r.hash.as_str()).collect()
    }
}

/// One scanned line of the file's newline-terminated region.
#[derive(Debug)]
pub(crate) enum ScanLine {
    /// A line that parsed as a [`StoreLine`].
    Parsed {
        /// 1-based line number.
        line: usize,
        /// Byte offset of the line start.
        offset: u64,
        /// The parsed line (boxed: a record line dwarfs a corrupt entry).
        store_line: Box<StoreLine>,
    },
    /// An interior line that failed UTF-8 or JSON parsing. (A *final*
    /// unparseable line is a torn tail, not a scan entry.)
    Corrupt {
        /// 1-based line number.
        line: usize,
        /// Byte offset of the line start.
        offset: u64,
        /// `invalid-utf8` or `unparseable-json`.
        reason: &'static str,
    },
}

/// The tolerant pass under [`ResultStore::load`] and certification: every
/// line of the valid region with its position, parse failures included.
#[derive(Debug)]
pub(crate) struct StoreScan {
    /// Lines in file order.
    pub lines: Vec<ScanLine>,
    /// Byte offset just past the last newline-terminated line.
    pub valid_len: u64,
    /// Bytes past `valid_len` (a torn trailing write).
    pub torn_bytes: u64,
}

/// One semantic rule violated by an otherwise-parseable line. `reason`,
/// `expected` and `got` are space-free tokens, so both the
/// `STORE-CORRUPT` and `CERTIFY-FAIL` renderings stay one greppable line.
#[derive(Debug)]
pub(crate) struct Violation {
    /// The offending unit's hash, or `-` for non-record lines.
    pub unit: String,
    /// Greppable token naming the broken rule.
    pub reason: &'static str,
    /// What the verifier computed (empty when not applicable).
    pub expected: String,
    /// What the store carried (empty when not applicable).
    pub got: String,
}

impl Violation {
    fn new(unit: &str, reason: &'static str, expected: String, got: String) -> Self {
        Violation { unit: unit.to_string(), reason, expected, got }
    }
}

/// The shared semantic checker behind [`ResultStore::load`] (stop at the
/// first violation) and `dynring certify` (collect them all). Feeding it
/// lines in file order recomputes the content hashes, digests and chain
/// links, and tracks ordering, duplication and the seal.
#[derive(Debug)]
pub(crate) struct StoreVerifier {
    /// The header, once seen.
    pub header: Option<StoreHeader>,
    /// The chain head after every accepted line.
    pub chain_head: Option<String>,
    /// Unit records in file order (legacy and chained alike).
    pub records: Vec<UnitRecord>,
    /// Records that carried chain metadata.
    pub chained: usize,
    /// Legacy records without chain metadata.
    pub legacy: usize,
    /// Whether a seal line was seen.
    pub sealed: bool,
    seen: HashSet<String>,
    last_index: Option<usize>,
}

impl StoreVerifier {
    pub(crate) fn new() -> Self {
        StoreVerifier {
            header: None,
            chain_head: None,
            records: Vec::new(),
            chained: 0,
            legacy: 0,
            sealed: false,
            seen: HashSet::new(),
            last_index: None,
        }
    }

    /// Accepts the next line, returning every rule it violates (empty =
    /// clean). State advances even on violations — using the *stored*
    /// values — so one corrupt line yields its own violations instead of
    /// cascading over the rest of the file.
    pub(crate) fn accept(&mut self, line: StoreLine) -> Vec<Violation> {
        let mut violations = Vec::new();
        if self.sealed {
            violations.push(Violation::new(
                "-",
                "line-after-seal",
                "end-of-file".into(),
                line.describe().into(),
            ));
        }
        match line {
            StoreLine::Header(header) => {
                if self.header.is_some() {
                    violations.push(Violation::new(
                        "-",
                        "duplicate-header",
                        "one-header".into(),
                        "second-header".into(),
                    ));
                } else {
                    if !self.records.is_empty() {
                        violations.push(Violation::new(
                            "-",
                            "header-not-first",
                            "line-1".into(),
                            format!("after-{}-records", self.records.len()),
                        ));
                    }
                    self.chain_head = Some(chain_seed(&header));
                    self.header = Some(header);
                }
            }
            StoreLine::Unit(record) => {
                self.check_record(&record, None, &mut violations);
                self.legacy += 1;
                self.records.push(record);
            }
            StoreLine::Chained(chained) => {
                self.check_record(&chained.record.clone(), Some(&chained), &mut violations);
                self.chained += 1;
                self.records.push(chained.record);
            }
            StoreLine::Seal(footer) => {
                if !self.sealed {
                    self.check_seal(&footer, &mut violations);
                    self.sealed = true;
                }
            }
        }
        violations
    }

    fn check_record(
        &mut self,
        record: &UnitRecord,
        chained: Option<&ChainedRecord>,
        violations: &mut Vec<Violation>,
    ) {
        let computed = record.unit.content_hash();
        if record.hash != computed {
            violations.push(Violation::new(
                &record.hash,
                "unit-hash-mismatch",
                computed,
                record.hash.clone(),
            ));
        }
        if !self.seen.insert(record.hash.clone()) {
            violations.push(Violation::new(
                &record.hash,
                "duplicate-unit",
                "one-record-per-unit".into(),
                record.hash.clone(),
            ));
        }
        if let Some(last) = self.last_index {
            if record.index <= last {
                violations.push(Violation::new(
                    &record.hash,
                    "order",
                    format!("index>{last}"),
                    record.index.to_string(),
                ));
            }
        }
        self.last_index = Some(record.index);
        if let Some(chained) = chained {
            let digest = result_digest(record);
            if chained.digest != digest {
                violations.push(Violation::new(
                    &record.hash,
                    "digest-mismatch",
                    digest,
                    chained.digest.clone(),
                ));
            }
            // The chain consumes the *stored* digest: a corrupt result
            // breaks the digest check alone, a corrupt chain field breaks
            // the chain check alone.
            match &self.chain_head {
                Some(head) => {
                    let expected = chain_step(head, &record.hash, &chained.digest);
                    if chained.chain != expected {
                        violations.push(Violation::new(
                            &record.hash,
                            "chain-mismatch",
                            expected,
                            chained.chain.clone(),
                        ));
                    }
                }
                None => violations.push(Violation::new(
                    &record.hash,
                    "chain-unseeded",
                    "header-before-records".into(),
                    "no-header".into(),
                )),
            }
            self.chain_head = Some(chained.chain.clone());
        }
    }

    fn check_seal(&mut self, footer: &StoreFooter, violations: &mut Vec<Violation>) {
        if footer.seal != footer.expected_seal() {
            violations.push(Violation::new(
                "-",
                "seal-mismatch",
                footer.expected_seal(),
                footer.seal.clone(),
            ));
        }
        if footer.schema != STORE_SCHEMA {
            violations.push(Violation::new(
                "-",
                "schema-mismatch",
                STORE_SCHEMA.into(),
                footer.schema.clone(),
            ));
        }
        if footer.units != self.records.len() {
            violations.push(Violation::new(
                "-",
                "unit-count-mismatch",
                self.records.len().to_string(),
                footer.units.to_string(),
            ));
        }
        match (&self.header, &self.chain_head) {
            (Some(header), Some(head)) => {
                if footer.chain_head != *head {
                    violations.push(Violation::new(
                        "-",
                        "chain-head-mismatch",
                        head.clone(),
                        footer.chain_head.clone(),
                    ));
                }
                if footer.spec_hash != header.spec_hash {
                    violations.push(Violation::new(
                        "-",
                        "seal-spec-mismatch",
                        header.spec_hash.clone(),
                        footer.spec_hash.clone(),
                    ));
                }
                if footer.planned_units != header.planned_units {
                    violations.push(Violation::new(
                        "-",
                        "seal-plan-mismatch",
                        header.planned_units.to_string(),
                        footer.planned_units.to_string(),
                    ));
                }
            }
            _ => violations.push(Violation::new(
                "-",
                "seal-without-header",
                "header-before-seal".into(),
                "no-header".into(),
            )),
        }
    }
}

/// The store handle: a path, plus load/append primitives.
#[derive(Debug, Clone)]
pub struct ResultStore {
    path: PathBuf,
}

impl ResultStore {
    /// A store at `path` (the file need not exist yet).
    pub fn new(path: impl Into<PathBuf>) -> Self {
        ResultStore { path: path.into() }
    }

    /// The store's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Builds the one-line `STORE-CORRUPT` diagnostic.
    fn corrupt(
        &self,
        line: usize,
        offset: u64,
        reason: &str,
        expected: &str,
        got: &str,
    ) -> CampaignError {
        let mut msg = format!("STORE-CORRUPT line={line} offset={offset} reason={reason}");
        if !expected.is_empty() {
            msg.push_str(&format!(" expected={expected}"));
        }
        if !got.is_empty() {
            msg.push_str(&format!(" got={got}"));
        }
        msg.push_str(&format!(" file={}", self.path.display()));
        CampaignError::CorruptStore(msg)
    }

    /// The tolerant line pass: splits the file into newline-terminated
    /// lines, parses each, and records interior parse failures instead of
    /// erroring (certification reports them all; [`ResultStore::load`]
    /// refuses at the first). A missing file is an empty scan; an
    /// unparseable *final* line (or an unterminated tail) is torn, not
    /// corrupt — an interruption can cut a buffer flush anywhere,
    /// including just after a newline.
    ///
    /// Bytes, not a `String`: a torn write can split a multi-byte UTF-8
    /// character, and that tail must be truncated like any other torn
    /// line, not fail the whole pass.
    pub(crate) fn scan(&self) -> Result<StoreScan, CampaignError> {
        let mut bytes = Vec::new();
        match File::open(&self.path) {
            Ok(mut file) => {
                file.read_to_end(&mut bytes)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(StoreScan { lines: Vec::new(), valid_len: 0, torn_bytes: 0 });
            }
            Err(e) => return Err(e.into()),
        }
        let mut lines = Vec::new();
        let mut offset = 0usize;
        let mut valid_len = 0u64;
        let mut line_no = 0usize;
        while offset < bytes.len() {
            let Some(nl) = bytes[offset..].iter().position(|&b| b == b'\n') else {
                // No terminating newline: a torn trailing write.
                break;
            };
            let is_last_line = offset + nl + 1 == bytes.len();
            line_no += 1;
            let entry = match std::str::from_utf8(&bytes[offset..offset + nl]) {
                Err(_) if is_last_line => break,
                Err(_) => ScanLine::Corrupt {
                    line: line_no,
                    offset: offset as u64,
                    reason: "invalid-utf8",
                },
                Ok(text) => match serde_json::from_str::<StoreLine>(text) {
                    Ok(store_line) => ScanLine::Parsed {
                        line: line_no,
                        offset: offset as u64,
                        store_line: Box::new(store_line),
                    },
                    Err(_) if is_last_line => break,
                    Err(_) => ScanLine::Corrupt {
                        line: line_no,
                        offset: offset as u64,
                        reason: "unparseable-json",
                    },
                },
            };
            lines.push(entry);
            offset += nl + 1;
            valid_len = offset as u64;
        }
        Ok(StoreScan {
            lines,
            valid_len,
            torn_bytes: bytes.len() as u64 - valid_len,
        })
    }

    /// Parses and verifies the file (missing file = empty store). A torn
    /// tail ends the valid region; everything before it must parse *and*
    /// satisfy the semantic rules — content hashes, digests, chain
    /// continuity, record ordering, no duplicates, a valid seal if one is
    /// present.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Io`] on unreadable files,
    /// [`CampaignError::CorruptStore`] — one `STORE-CORRUPT line=…
    /// offset=… reason=…` line — when a non-trailing line fails to parse
    /// or verify (truncating the tail cannot repair it).
    pub fn load(&self) -> Result<LoadedStore, CampaignError> {
        let scan = self.scan()?;
        let mut verifier = StoreVerifier::new();
        for entry in scan.lines {
            match entry {
                ScanLine::Corrupt { line, offset, reason } => {
                    return Err(self.corrupt(line, offset, reason, "", ""));
                }
                ScanLine::Parsed { line, offset, store_line } => {
                    if let Some(v) = verifier.accept(*store_line).into_iter().next() {
                        return Err(self.corrupt(line, offset, v.reason, &v.expected, &v.got));
                    }
                }
            }
        }
        Ok(LoadedStore {
            header: verifier.header,
            records: verifier.records,
            valid_len: scan.valid_len,
            torn_tail: scan.torn_bytes > 0,
            torn_bytes: scan.torn_bytes,
            chain_head: verifier.chain_head,
            chained: verifier.chained,
            legacy: verifier.legacy,
            sealed: verifier.sealed,
        })
    }

    /// Opens the file for appending at `valid_len`, truncating any torn
    /// tail first. Creates the file when missing. When bytes were
    /// actually truncated, the truncation is fsynced before the handle is
    /// returned — a power loss must not be able to reorder the truncation
    /// against the appends that follow it.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Io`].
    pub fn open_for_append(&self, valid_len: u64) -> Result<File, CampaignError> {
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(false)
            .open(&self.path)?;
        let on_disk = file.metadata()?.len();
        file.set_len(valid_len)?;
        if on_disk != valid_len {
            file.sync_all()?;
        }
        file.seek(SeekFrom::End(0))?;
        Ok(file)
    }

    /// Serializes one line and appends it (newline-terminated). The raw
    /// primitive behind the appender; writes no chain metadata (tests and
    /// legacy tooling only — campaign execution goes through
    /// [`ResultStore::appender`]).
    ///
    /// # Errors
    ///
    /// [`CampaignError::Io`] / [`CampaignError::Json`].
    pub fn append_line(file: &mut File, line: &StoreLine) -> Result<(), CampaignError> {
        let mut json = serde_json::to_string(line)?;
        json.push('\n');
        file.write_all(json.as_bytes())?;
        Ok(())
    }

    /// A chain-maintaining appender positioned at `loaded.valid_len`
    /// (truncating any torn tail, see [`ResultStore::open_for_append`]).
    /// The appender continues `loaded`'s chain head, so records appended
    /// across any number of interruptions form one continuous chain.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Io`].
    pub fn appender(&self, loaded: &LoadedStore) -> Result<StoreAppender, CampaignError> {
        let file = self.open_for_append(loaded.valid_len)?;
        // Out-of-band I/O accounting (see `docs/OBSERVABILITY.md`):
        // instruments resolve once per appender, counts never feed back
        // into what gets written.
        let obs = dynring_obs::global();
        if loaded.torn_bytes > 0 {
            obs.counter(obs_names::STORE_TORN_TAILS).inc();
            obs.counter(obs_names::STORE_TORN_BYTES).add(loaded.torn_bytes);
        }
        Ok(StoreAppender {
            file,
            header: loaded.header.clone(),
            chain_head: loaded.chain_head.clone(),
            records: loaded.records.len(),
            bytes: loaded.valid_len,
            fault: None,
            bytes_appended: obs.counter(obs_names::STORE_BYTES_APPENDED),
            fsyncs: obs.counter(obs_names::STORE_FSYNCS),
        })
    }
}

/// The schema-v2 append path: wraps each record in its
/// [`ChainedRecord`], tracks the chain head, writes the seal, and hosts
/// the deterministic fault-injection hook the crash-safety proptests
/// drive.
#[derive(Debug)]
pub struct StoreAppender {
    file: File,
    header: Option<StoreHeader>,
    chain_head: Option<String>,
    records: usize,
    bytes: u64,
    fault: Option<FailPlan>,
    bytes_appended: std::sync::Arc<dynring_obs::Counter>,
    fsyncs: std::sync::Arc<dynring_obs::Counter>,
}

impl StoreAppender {
    /// Arms a fault plan (test-only; see [`crate::fault`]).
    pub fn set_fault(&mut self, fault: Option<FailPlan>) {
        self.fault = fault;
    }

    /// Records appended so far (loaded ones included).
    pub fn records(&self) -> usize {
        self.records
    }

    /// The current chain head (`None` until a header exists).
    pub fn chain_head(&self) -> Option<&str> {
        self.chain_head.as_deref()
    }

    /// Appends the header line and seeds the chain.
    ///
    /// # Errors
    ///
    /// [`CampaignError::CorruptStore`] when a header already exists;
    /// [`CampaignError::Io`] / [`CampaignError::Json`] /
    /// [`CampaignError::InjectedFault`] from the write.
    pub fn append_header(&mut self, header: StoreHeader) -> Result<(), CampaignError> {
        if self.header.is_some() {
            return Err(CampaignError::CorruptStore(
                "cannot append a second header".into(),
            ));
        }
        let mut json = serde_json::to_string(&StoreLine::Header(header.clone()))?;
        json.push('\n');
        self.write_line(json.into_bytes(), false)?;
        self.chain_head = Some(chain_seed(&header));
        self.header = Some(header);
        Ok(())
    }

    /// Wraps `record` as the chain's next [`ChainedRecord`] and appends
    /// it.
    ///
    /// # Errors
    ///
    /// [`CampaignError::CorruptStore`] when no header seeded the chain;
    /// [`CampaignError::Io`] / [`CampaignError::Json`] /
    /// [`CampaignError::InjectedFault`] from the write.
    pub fn append_record(&mut self, record: UnitRecord) -> Result<(), CampaignError> {
        let Some(head) = self.chain_head.clone() else {
            return Err(CampaignError::CorruptStore(
                "cannot append a record before the header seeds the chain".into(),
            ));
        };
        let chained = ChainedRecord::next(&head, record);
        let next_head = chained.chain.clone();
        let mut json = serde_json::to_string(&StoreLine::Chained(chained))?;
        json.push('\n');
        self.write_line(json.into_bytes(), true)?;
        self.chain_head = Some(next_head);
        self.records += 1;
        Ok(())
    }

    /// Appends the sealed footer for the current chain head and record
    /// count.
    ///
    /// # Errors
    ///
    /// [`CampaignError::CorruptStore`] without a header;
    /// [`CampaignError::Io`] / [`CampaignError::Json`] /
    /// [`CampaignError::InjectedFault`] from the write.
    pub fn seal(&mut self) -> Result<(), CampaignError> {
        let (Some(header), Some(head)) = (self.header.clone(), self.chain_head.clone()) else {
            return Err(CampaignError::CorruptStore(
                "cannot seal a store without a header".into(),
            ));
        };
        let footer = StoreFooter::new(&header, self.records, head);
        let mut json = serde_json::to_string(&StoreLine::Seal(footer))?;
        json.push('\n');
        self.write_line(json.into_bytes(), false)?;
        Ok(())
    }

    /// Flushes written records to disk (`fdatasync`); the runner calls
    /// this at every wave boundary so an interruption loses at most one
    /// wave even across a power cut.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Io`].
    pub fn sync(&mut self) -> Result<(), CampaignError> {
        self.file.sync_data()?;
        self.fsyncs.inc();
        Ok(())
    }

    /// The write primitive every append funnels through, and the single
    /// point where an armed [`FailPlan`] fires. Crash faults write a
    /// prefix and error; corruption faults damage `buf` (or write it
    /// twice) and let the append proceed.
    fn write_line(&mut self, mut buf: Vec<u8>, is_record: bool) -> Result<(), CampaignError> {
        if let Some(plan) = self.fault {
            match plan.kind() {
                FaultKind::Kill { after_bytes }
                    if self.bytes + buf.len() as u64 > after_bytes =>
                {
                    let keep = after_bytes.saturating_sub(self.bytes) as usize;
                    self.file.write_all(&buf[..keep.min(buf.len())])?;
                    self.file.sync_data()?;
                    return Err(CampaignError::InjectedFault(format!(
                        "kill after {after_bytes} bytes"
                    )));
                }
                FaultKind::TornRecord { record, keep } if is_record && self.records == record => {
                    let keep = keep.min(buf.len() - 1);
                    self.file.write_all(&buf[..keep])?;
                    self.file.sync_data()?;
                    return Err(CampaignError::InjectedFault(format!(
                        "torn write of record {record} ({keep} of {} bytes)",
                        buf.len()
                    )));
                }
                FaultKind::BitFlip { record, byte, xor } if is_record && self.records == record => {
                    let position = byte % buf.len();
                    buf[position] ^= xor;
                }
                FaultKind::DuplicateAppend { record } if is_record && self.records == record => {
                    self.file.write_all(&buf)?;
                    self.bytes += buf.len() as u64;
                    self.bytes_appended.add(buf.len() as u64);
                }
                FaultKind::IoError { record } if is_record && self.records == record => {
                    return Err(CampaignError::Io(format!(
                        "injected io error appending record {record}"
                    )));
                }
                _ => {}
            }
        }
        self.file.write_all(&buf)?;
        self.bytes += buf.len() as u64;
        self.bytes_appended.add(buf.len() as u64);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::UnitMeasurement;
    use crate::spec::{UnitDynamics, UnitScheduler, WorkUnit};
    use dynring_analysis::{AlgorithmChoice, PlacementSpec};

    fn record(i: usize) -> UnitRecord {
        let unit = WorkUnit {
            ring_size: 4 + i,
            robots: 1,
            placement: PlacementSpec::EvenlySpaced { count: 1 },
            algorithm: AlgorithmChoice::Pef1,
            dynamics: UnitDynamics::Bernoulli { p: 0.5 },
            scheduler: UnitScheduler::Sync,
            horizon: 10,
            seed: i as u64,
            replicas: 1,
        };
        UnitRecord {
            hash: unit.content_hash(),
            index: i,
            route: "batch".into(),
            unit,
            result: UnitMeasurement {
                replicas: 1,
                covered: 1,
                total_cover_time: 5,
                min_cover_time: Some(5),
                max_cover_time: Some(5),
            },
        }
    }

    fn temp_store(name: &str) -> ResultStore {
        let path = std::env::temp_dir().join(format!("dynring_store_test_{name}.jsonl"));
        let _ = std::fs::remove_file(&path);
        ResultStore::new(path)
    }

    fn write_store(store: &ResultStore, lines: &[StoreLine]) {
        let mut file = store.open_for_append(0).expect("open");
        for line in lines {
            ResultStore::append_line(&mut file, line).expect("append");
        }
    }

    fn header() -> StoreLine {
        StoreLine::Header(StoreHeader {
            name: "t".into(),
            spec_hash: "0123456789abcdef".into(),
            planned_units: 2,
        })
    }

    /// Writes a chained v2 store (header + n records), unsealed.
    fn write_chained(store: &ResultStore, n: usize) {
        let loaded = store.load().expect("loads");
        let mut appender = store.appender(&loaded).expect("appender");
        let StoreLine::Header(h) = header() else { unreachable!() };
        appender.append_header(h).expect("header");
        for i in 0..n {
            appender.append_record(record(i)).expect("record");
        }
    }

    #[test]
    fn round_trips_header_and_records() {
        let store = temp_store("roundtrip");
        write_store(&store, &[header(), StoreLine::Unit(record(0)), StoreLine::Unit(record(1))]);
        let loaded = store.load().expect("loads");
        assert_eq!(loaded.header.as_ref().map(|h| h.planned_units), Some(2));
        assert_eq!(loaded.records, vec![record(0), record(1)]);
        assert!(!loaded.torn_tail);
        // Bare `Unit` lines are the legacy form: loadable, not chained.
        assert_eq!(loaded.legacy, 2);
        assert_eq!(loaded.chained, 0);
        assert!(!loaded.sealed);
        let _ = std::fs::remove_file(store.path());
    }

    #[test]
    fn missing_file_is_an_empty_store() {
        let store = temp_store("missing");
        let loaded = store.load().expect("loads");
        assert!(loaded.header.is_none());
        assert!(loaded.records.is_empty());
        assert_eq!(loaded.valid_len, 0);
        assert!(loaded.chain_head.is_none());
    }

    #[test]
    fn torn_tail_is_detected_and_truncated_on_append() {
        let store = temp_store("torn");
        write_store(&store, &[header(), StoreLine::Unit(record(0))]);
        let clean_len = store.load().expect("loads").valid_len;
        // Simulate an interrupted write: half a record, no newline.
        let mut file = store.open_for_append(clean_len).expect("open");
        file.write_all(b"{\"Unit\":{\"hash\":\"dead").expect("write");
        drop(file);
        let loaded = store.load().expect("loads");
        assert!(loaded.torn_tail);
        assert_eq!(loaded.torn_bytes, 21);
        assert_eq!(loaded.valid_len, clean_len);
        assert_eq!(loaded.records.len(), 1);
        // Appending after truncation yields the same file as never having
        // torn it.
        let mut file = store.open_for_append(loaded.valid_len).expect("open");
        ResultStore::append_line(&mut file, &StoreLine::Unit(record(1))).expect("append");
        drop(file);
        let reference = temp_store("torn_ref");
        write_store(
            &reference,
            &[header(), StoreLine::Unit(record(0)), StoreLine::Unit(record(1))],
        );
        let a = std::fs::read(store.path()).expect("read");
        let b = std::fs::read(reference.path()).expect("read");
        assert_eq!(a, b);
        let _ = std::fs::remove_file(store.path());
        let _ = std::fs::remove_file(reference.path());
    }

    #[test]
    fn corrupt_interior_lines_error_with_line_and_offset() {
        let store = temp_store("corrupt");
        std::fs::write(
            store.path(),
            "not json\n{\"also\": \"not a store line\"}\n",
        )
        .expect("write");
        let err = store.load().expect_err("interior corruption must refuse");
        let CampaignError::CorruptStore(msg) = &err else {
            panic!("unexpected {err:?}");
        };
        // The satellite diagnostic contract: one greppable line naming
        // the position.
        assert!(msg.contains("STORE-CORRUPT line=1 offset=0"), "{msg}");
        assert!(msg.contains("reason=unparseable-json"), "{msg}");
        let _ = std::fs::remove_file(store.path());
    }

    #[test]
    fn torn_tail_splitting_a_multibyte_character_is_truncated_not_fatal() {
        // A campaign name with non-ASCII characters lands in every line;
        // an interruption can cut the file mid-character. That tail must
        // be truncated like any other torn write.
        let store = temp_store("torn_utf8");
        write_store(&store, &[header(), StoreLine::Unit(record(0))]);
        let clean_len = store.load().expect("loads").valid_len;
        let mut file = store.open_for_append(clean_len).expect("open");
        let torn = "{\"Unit\":{\"hash\":\"café".as_bytes();
        // Cut inside the two-byte 'é'.
        file.write_all(&torn[..torn.len() - 1]).expect("write");
        drop(file);
        let loaded = store.load().expect("a mid-character cut must still load");
        assert!(loaded.torn_tail);
        assert_eq!(loaded.valid_len, clean_len);
        assert_eq!(loaded.records.len(), 1);
        let _ = std::fs::remove_file(store.path());
    }

    #[test]
    fn unparseable_final_line_counts_as_torn() {
        let store = temp_store("torn_final");
        write_store(&store, &[header()]);
        let clean_len = store.load().expect("loads").valid_len;
        let mut file = store.open_for_append(clean_len).expect("open");
        file.write_all(b"{\"Unit\":{\"hash\"\n").expect("write");
        drop(file);
        let loaded = store.load().expect("loads");
        assert!(loaded.torn_tail);
        assert_eq!(loaded.valid_len, clean_len);
        let _ = std::fs::remove_file(store.path());
    }

    #[test]
    fn appender_chains_records_and_seals_verifiably() {
        let store = temp_store("chained");
        write_chained(&store, 2);
        let loaded = store.load().expect("loads");
        assert_eq!(loaded.records.len(), 2);
        assert_eq!(loaded.chained, 2);
        assert_eq!(loaded.legacy, 0);
        assert!(!loaded.sealed);
        // Seal it through a fresh appender (as a resume would).
        let mut appender = store.appender(&loaded).expect("appender");
        appender.seal().expect("seal");
        let sealed = store.load().expect("loads");
        assert!(sealed.sealed);
        assert_eq!(sealed.chain_head, loaded.chain_head);
        let _ = std::fs::remove_file(store.path());
    }

    #[test]
    fn chained_resume_continues_the_chain_across_interruptions() {
        // One appender writing 3 records must equal two appenders writing
        // 2 + 1, byte for byte — the chain head survives the reload.
        let oneshot = temp_store("chain_oneshot");
        write_chained(&oneshot, 3);
        let staged = temp_store("chain_staged");
        write_chained(&staged, 2);
        let loaded = staged.load().expect("loads");
        let mut appender = staged.appender(&loaded).expect("appender");
        appender.append_record(record(2)).expect("record");
        let a = std::fs::read(oneshot.path()).expect("read");
        let b = std::fs::read(staged.path()).expect("read");
        assert_eq!(a, b, "a resumed chain must match an uninterrupted one");
        let _ = std::fs::remove_file(oneshot.path());
        let _ = std::fs::remove_file(staged.path());
    }

    #[test]
    fn broken_chain_links_and_duplicates_refuse_with_named_reasons() {
        // A record transplanted out of order (its chain link no longer
        // follows the previous head).
        let store = temp_store("verify");
        write_chained(&store, 3);
        let text = std::fs::read_to_string(store.path()).expect("read");
        let mut lines: Vec<&str> = text.lines().collect();
        lines.swap(1, 2);
        std::fs::write(store.path(), lines.join("\n") + "\n").expect("write");
        let err = store.load().expect_err("reordered records must refuse");
        assert!(err.to_string().contains("reason="), "{err}");

        // A duplicated record line.
        let store = temp_store("verify_dup");
        write_chained(&store, 2);
        let text = std::fs::read_to_string(store.path()).expect("read");
        let last = text.lines().last().expect("has lines").to_string();
        std::fs::write(store.path(), text + &last + "\n").expect("write");
        let err = store.load().expect_err("duplicated records must refuse");
        assert!(err.to_string().contains("reason=duplicate-unit"), "{err}");
        let _ = std::fs::remove_file(store.path());

        // A forged seal (unit count lies).
        let store = temp_store("verify_seal");
        write_chained(&store, 2);
        let loaded = store.load().expect("loads");
        let footer = StoreFooter::new(
            &loaded.header.clone().expect("header"),
            7,
            loaded.chain_head.clone().expect("head"),
        );
        let mut file = store.open_for_append(loaded.valid_len).expect("open");
        ResultStore::append_line(&mut file, &StoreLine::Seal(footer)).expect("append");
        drop(file);
        let err = store.load().expect_err("a lying seal must refuse");
        assert!(err.to_string().contains("reason=unit-count-mismatch"), "{err}");
        let _ = std::fs::remove_file(store.path());
    }

    #[test]
    fn lines_after_the_seal_refuse() {
        let store = temp_store("after_seal");
        write_chained(&store, 1);
        let loaded = store.load().expect("loads");
        let mut appender = store.appender(&loaded).expect("appender");
        appender.seal().expect("seal");
        appender.append_record(record(1)).expect("append still writes");
        let err = store.load().expect_err("records after the seal must refuse");
        assert!(err.to_string().contains("reason=line-after-seal"), "{err}");
        let _ = std::fs::remove_file(store.path());
    }
}
