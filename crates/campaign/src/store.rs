//! The append-only JSONL result store.
//!
//! A store is one file: a header line naming the campaign and its spec
//! hash, then one line per completed [`UnitRecord`], appended in plan
//! order. Append order + deterministic execution is what makes resume
//! byte-exact: an interrupted store is a plan-order prefix of the
//! uninterrupted one, so `resume` — which appends exactly the missing
//! units, in plan order — reproduces the uninterrupted file bit for bit.
//!
//! Loading is crash-tolerant: a trailing partial line (the write the
//! interruption cut short) is detected and truncated away before
//! appending resumes. Records whose hash is not in the current plan are
//! rejected via the header's spec hash — a store belongs to exactly one
//! spec.

use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::executor::UnitRecord;
use crate::CampaignError;

/// The store's first line: which campaign this file belongs to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoreHeader {
    /// Campaign name (informational).
    pub name: String,
    /// [`crate::CampaignSpec::content_hash`] of the owning spec.
    pub spec_hash: String,
    /// Planned unit count (informational; the plan is re-derived from the
    /// spec on every run).
    pub planned_units: usize,
}

/// One line of the store.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StoreLine {
    /// The header (first line).
    Header(StoreHeader),
    /// A completed unit.
    Unit(UnitRecord),
}

/// A parsed store: everything valid on disk plus where valid bytes end.
#[derive(Debug)]
pub struct LoadedStore {
    /// The header, when the file has one.
    pub header: Option<StoreHeader>,
    /// Completed unit records, in file order.
    pub records: Vec<UnitRecord>,
    /// Byte offset just past the last valid line. Anything after this is
    /// a torn write and is truncated before appending resumes.
    pub valid_len: u64,
    /// Whether the file carried bytes past `valid_len`.
    pub torn_tail: bool,
}

impl LoadedStore {
    /// The hashes of all completed units.
    pub fn completed_hashes(&self) -> HashSet<&str> {
        self.records.iter().map(|r| r.hash.as_str()).collect()
    }
}

/// The store handle: a path, plus load/append primitives.
#[derive(Debug, Clone)]
pub struct ResultStore {
    path: PathBuf,
}

impl ResultStore {
    /// A store at `path` (the file need not exist yet).
    pub fn new(path: impl Into<PathBuf>) -> Self {
        ResultStore { path: path.into() }
    }

    /// The store's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Parses the file (missing file = empty store). Invalid or torn
    /// trailing lines end the valid region; a parse failure anywhere
    /// *before* the last line is a corrupt store and errors.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Io`] on unreadable files,
    /// [`CampaignError::CorruptStore`] when a non-trailing line fails to
    /// parse (truncating the tail cannot repair it).
    pub fn load(&self) -> Result<LoadedStore, CampaignError> {
        // Bytes, not a String: a torn write can split a multi-byte UTF-8
        // character, and that tail must be truncated like any other torn
        // line, not fail the whole load.
        let mut bytes = Vec::new();
        match File::open(&self.path) {
            Ok(mut file) => {
                file.read_to_end(&mut bytes)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(LoadedStore {
                    header: None,
                    records: Vec::new(),
                    valid_len: 0,
                    torn_tail: false,
                });
            }
            Err(e) => return Err(e.into()),
        }
        let mut header = None;
        let mut records = Vec::new();
        let mut valid_len = 0u64;
        let mut offset = 0usize;
        while offset < bytes.len() {
            let Some(nl) = bytes[offset..].iter().position(|&b| b == b'\n') else {
                // No terminating newline: a torn trailing write.
                break;
            };
            let is_last_line = offset + nl + 1 == bytes.len();
            let Ok(line) = std::str::from_utf8(&bytes[offset..offset + nl]) else {
                if is_last_line {
                    break;
                }
                return Err(CampaignError::CorruptStore(format!(
                    "{}: invalid UTF-8 at offset {offset}",
                    self.path.display()
                )));
            };
            let parsed: Result<StoreLine, _> = serde_json::from_str(line);
            match parsed {
                Ok(StoreLine::Header(h)) => {
                    if header.is_some() || !records.is_empty() {
                        return Err(CampaignError::CorruptStore(format!(
                            "{}: duplicate header at offset {offset}",
                            self.path.display()
                        )));
                    }
                    header = Some(h);
                }
                Ok(StoreLine::Unit(record)) => records.push(record),
                Err(_) if is_last_line => {
                    // The final (newline-terminated but unparseable) line:
                    // also treated as torn — an interruption can land
                    // after the newline of a partial buffer flush.
                    break;
                }
                Err(e) => {
                    return Err(CampaignError::CorruptStore(format!(
                        "{}: unparseable line at offset {offset}: {e}",
                        self.path.display()
                    )));
                }
            }
            offset += nl + 1;
            valid_len = offset as u64;
        }
        Ok(LoadedStore {
            header,
            records,
            valid_len,
            torn_tail: (valid_len as usize) < bytes.len(),
        })
    }

    /// Opens the file for appending at `valid_len`, truncating any torn
    /// tail first. Creates the file when missing.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Io`].
    pub fn open_for_append(&self, valid_len: u64) -> Result<File, CampaignError> {
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(false)
            .open(&self.path)?;
        file.set_len(valid_len)?;
        file.seek(SeekFrom::End(0))?;
        Ok(file)
    }

    /// Serializes one line and appends it (newline-terminated).
    ///
    /// # Errors
    ///
    /// [`CampaignError::Io`] / [`CampaignError::Json`].
    pub fn append_line(file: &mut File, line: &StoreLine) -> Result<(), CampaignError> {
        let mut json = serde_json::to_string(line)?;
        json.push('\n');
        file.write_all(json.as_bytes())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::UnitMeasurement;
    use crate::spec::{UnitDynamics, UnitScheduler, WorkUnit};
    use dynring_analysis::{AlgorithmChoice, PlacementSpec};

    fn record(i: usize) -> UnitRecord {
        let unit = WorkUnit {
            ring_size: 4 + i,
            robots: 1,
            placement: PlacementSpec::EvenlySpaced { count: 1 },
            algorithm: AlgorithmChoice::Pef1,
            dynamics: UnitDynamics::Bernoulli { p: 0.5 },
            scheduler: UnitScheduler::Sync,
            horizon: 10,
            seed: i as u64,
            replicas: 1,
        };
        UnitRecord {
            hash: unit.content_hash(),
            index: i,
            route: "batch".into(),
            unit,
            result: UnitMeasurement {
                replicas: 1,
                covered: 1,
                total_cover_time: 5,
                min_cover_time: Some(5),
                max_cover_time: Some(5),
            },
        }
    }

    fn temp_store(name: &str) -> ResultStore {
        let path = std::env::temp_dir().join(format!("dynring_store_test_{name}.jsonl"));
        let _ = std::fs::remove_file(&path);
        ResultStore::new(path)
    }

    fn write_store(store: &ResultStore, lines: &[StoreLine]) {
        let mut file = store.open_for_append(0).expect("open");
        for line in lines {
            ResultStore::append_line(&mut file, line).expect("append");
        }
    }

    fn header() -> StoreLine {
        StoreLine::Header(StoreHeader {
            name: "t".into(),
            spec_hash: "0123456789abcdef".into(),
            planned_units: 2,
        })
    }

    #[test]
    fn round_trips_header_and_records() {
        let store = temp_store("roundtrip");
        write_store(&store, &[header(), StoreLine::Unit(record(0)), StoreLine::Unit(record(1))]);
        let loaded = store.load().expect("loads");
        assert_eq!(loaded.header.as_ref().map(|h| h.planned_units), Some(2));
        assert_eq!(loaded.records, vec![record(0), record(1)]);
        assert!(!loaded.torn_tail);
        let _ = std::fs::remove_file(store.path());
    }

    #[test]
    fn missing_file_is_an_empty_store() {
        let store = temp_store("missing");
        let loaded = store.load().expect("loads");
        assert!(loaded.header.is_none());
        assert!(loaded.records.is_empty());
        assert_eq!(loaded.valid_len, 0);
    }

    #[test]
    fn torn_tail_is_detected_and_truncated_on_append() {
        let store = temp_store("torn");
        write_store(&store, &[header(), StoreLine::Unit(record(0))]);
        let clean_len = store.load().expect("loads").valid_len;
        // Simulate an interrupted write: half a record, no newline.
        let mut file = store.open_for_append(clean_len).expect("open");
        file.write_all(b"{\"Unit\":{\"hash\":\"dead").expect("write");
        drop(file);
        let loaded = store.load().expect("loads");
        assert!(loaded.torn_tail);
        assert_eq!(loaded.valid_len, clean_len);
        assert_eq!(loaded.records.len(), 1);
        // Appending after truncation yields the same file as never having
        // torn it.
        let mut file = store.open_for_append(loaded.valid_len).expect("open");
        ResultStore::append_line(&mut file, &StoreLine::Unit(record(1))).expect("append");
        drop(file);
        let reference = temp_store("torn_ref");
        write_store(
            &reference,
            &[header(), StoreLine::Unit(record(0)), StoreLine::Unit(record(1))],
        );
        let a = std::fs::read(store.path()).expect("read");
        let b = std::fs::read(reference.path()).expect("read");
        assert_eq!(a, b);
        let _ = std::fs::remove_file(store.path());
        let _ = std::fs::remove_file(reference.path());
    }

    #[test]
    fn corrupt_interior_lines_error_instead_of_silently_dropping() {
        let store = temp_store("corrupt");
        std::fs::write(
            store.path(),
            "not json\n{\"also\": \"not a store line\"}\n",
        )
        .expect("write");
        assert!(matches!(store.load(), Err(CampaignError::CorruptStore(_))));
        let _ = std::fs::remove_file(store.path());
    }

    #[test]
    fn torn_tail_splitting_a_multibyte_character_is_truncated_not_fatal() {
        // A campaign name with non-ASCII characters lands in every line;
        // an interruption can cut the file mid-character. That tail must
        // be truncated like any other torn write.
        let store = temp_store("torn_utf8");
        write_store(&store, &[header(), StoreLine::Unit(record(0))]);
        let clean_len = store.load().expect("loads").valid_len;
        let mut file = store.open_for_append(clean_len).expect("open");
        let torn = "{\"Unit\":{\"hash\":\"café".as_bytes();
        // Cut inside the two-byte 'é'.
        file.write_all(&torn[..torn.len() - 1]).expect("write");
        drop(file);
        let loaded = store.load().expect("a mid-character cut must still load");
        assert!(loaded.torn_tail);
        assert_eq!(loaded.valid_len, clean_len);
        assert_eq!(loaded.records.len(), 1);
        let _ = std::fs::remove_file(store.path());
    }

    #[test]
    fn unparseable_final_line_counts_as_torn() {
        let store = temp_store("torn_final");
        write_store(&store, &[header()]);
        let clean_len = store.load().expect("loads").valid_len;
        let mut file = store.open_for_append(clean_len).expect("open");
        file.write_all(b"{\"Unit\":{\"hash\"\n").expect("write");
        drop(file);
        let loaded = store.load().expect("loads");
        assert!(loaded.torn_tail);
        assert_eq!(loaded.valid_len, clean_len);
        let _ = std::fs::remove_file(store.path());
    }
}
