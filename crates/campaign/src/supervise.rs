//! The shard supervisor: spawn `campaign work` children, watch their
//! liveness, restart crashed or hung shards with bounded backoff, and
//! quarantine shards that keep dying.
//!
//! Liveness is judged by the shard store's mtime: [`crate::run_campaign`]
//! fsyncs every wave, so a healthy worker advances its store file at
//! wave cadence and a worker whose store has not moved for
//! [`SuperviseOptions::heartbeat_timeout_ms`] is hung — it is killed and
//! treated like any other death. On death the supervisor loads the shard
//! store (crash-safe by construction: a torn tail truncates away) and
//! either marks the shard complete, schedules a restart after
//! exponential backoff with deterministic per-shard jitter
//! ([`dynring_analysis::seeds::backoff_jitter_ms`]), or — once
//! `max_retries` restarts are spent — quarantines it with a greppable
//! `SHARD-FAIL shard=… attempts=… reason=…` line. A quarantined shard
//! never wedges the campaign: the other shards run to completion, the
//! supervisor returns a partial outcome, and a later `campaign resume
//! --procs` picks the quarantined shard's partial store back up.
//!
//! The manifest's per-shard attempt counters are persisted (written to a
//! temp file, fsynced, renamed) *before* each spawn, so a supervisor
//! that itself crashes mid-restart never under-counts attempts on
//! resume.
//!
//! With stealing enabled (the default), exhausting a shard's retries no
//! longer quarantines it outright: the supervisor *re-shards* — it reads
//! the plan-order prefix the dead shard's store holds, retires the entry
//! at that prefix, and splits the rest into child sub-shards handed to
//! fresh worker slots ([`crate::shard::ShardManifest::split_entry`]),
//! announced by a greppable `SHARD-STEAL shard=… done=… remaining=…
//! pieces=…` line. The split is fsynced into the manifest *before* any
//! child spawns, so an arbitrarily-killed supervisor resumes the
//! re-sharded topology exactly. Splits strictly shrink (an empty parent
//! splits into at least two pieces), so a deterministic poison converges
//! to a terminal one-unit quarantine — `SHARD-FAIL … range=X..Y …` names
//! exactly the units still missing — while everything else completes.
//! A shard that outlives the whole surviving fleet past
//! [`SuperviseOptions::steal_after_ms`] is treated the same way
//! (`reason=straggler`): killed, retired at its prefix, remainder stolen.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant, SystemTime};

use dynring_analysis::seeds::backoff_jitter_ms;
use dynring_obs::names as obs_names;
use serde::Serialize;

use crate::events::{Event, EventLedger, LedgerAppender};
use crate::fault::SHARD_ATTEMPT_ENV;
use crate::metrics::coarse_rate;
use crate::shard::ShardManifest;
use crate::store::ResultStore;
use crate::CampaignError;

/// Exponential backoff is capped here regardless of attempt count.
const BACKOFF_CAP_MS: u64 = 30_000;

/// Knobs of one supervisor invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuperviseOptions {
    /// Worker threads per child process.
    pub workers_per_proc: usize,
    /// Restarts allowed per shard before quarantine (`0` = one attempt,
    /// no retries).
    pub max_retries: usize,
    /// Base of the per-shard exponential backoff (doubles per failed
    /// attempt, capped at 30s, plus deterministic jitter in
    /// `0..=backoff_ms`).
    pub backoff_ms: u64,
    /// A shard whose store mtime stalls longer than this is declared
    /// hung, killed and retried.
    pub heartbeat_timeout_ms: u64,
    /// Supervisor poll interval.
    pub poll_ms: u64,
    /// Print a per-shard progress table to stderr roughly once a second.
    pub progress: bool,
    /// With `progress`: emit JSON lines instead of the table.
    pub progress_json: bool,
    /// Steal the remaining range of an exhausted shard into child
    /// sub-shards instead of quarantining it (`--no-steal` disables,
    /// restoring the PR-7 give-up behaviour).
    pub steal: bool,
    /// Straggler threshold: a shard still running this long after its
    /// spawn while every other shard has settled is killed and its
    /// remainder stolen. `None` disables straggler stealing.
    pub steal_after_ms: Option<u64>,
    /// Out-of-band telemetry: append supervisor lifecycle events
    /// (spawn, stall, retry, steal, quarantine) to the events ledger at
    /// this path — the CLI points it at the canonical store's
    /// `<store>.events.jsonl` — and forward `--metrics-out` to every
    /// worker child, so per-unit events land in the shard stores' own
    /// ledgers. `None` disables both.
    pub events: Option<PathBuf>,
}

impl Default for SuperviseOptions {
    fn default() -> Self {
        SuperviseOptions {
            workers_per_proc: 1,
            max_retries: 3,
            backoff_ms: 250,
            heartbeat_timeout_ms: 30_000,
            poll_ms: 50,
            progress: false,
            progress_json: false,
            steal: true,
            steal_after_ms: None,
            events: None,
        }
    }
}

/// A quarantined shard: `max_retries` restarts were spent, it still did
/// not complete, and (with stealing on) its range could not shrink any
/// further.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ShardFailure {
    /// Shard index.
    pub shard: usize,
    /// Attempts started (initial spawn included).
    pub attempts: usize,
    /// Space-free reason token: `exit-status-N`, `killed`, `stalled`,
    /// `exited-incomplete`, `store-corrupt` or `straggler`.
    pub reason: String,
    /// First plan index of the units actually lost (the shard's range
    /// minus its completed prefix).
    pub start: usize,
    /// Units lost.
    pub units: usize,
}

/// What one supervisor invocation did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuperviseOutcome {
    /// Shards in the manifest.
    pub shards: usize,
    /// Shards whose stores now hold their full unit range.
    pub completed: usize,
    /// Restarts performed (beyond initial spawns).
    pub restarts: usize,
    /// Steals performed: exhausted or straggling shards whose remainder
    /// was re-sharded onto child sub-shards.
    pub steals: usize,
    /// Shards given up on. Empty iff the campaign can merge completely.
    pub quarantined: Vec<ShardFailure>,
}

impl SuperviseOutcome {
    /// `true` when every shard completed (safe to merge and seal).
    pub fn is_complete(&self) -> bool {
        self.completed == self.shards
    }
}

/// One row of the `campaign status` / `--progress` view.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ShardProgress {
    /// Shard index (or position in the `status STORE…` argument list).
    pub shard: usize,
    /// Store path.
    pub store: String,
    /// Records in the store.
    pub completed: usize,
    /// Units this store is expected to hold (the shard's range; for a
    /// standalone store, the header's planned units).
    pub total: usize,
    /// Recent execution rate; `None` when not observable (static view,
    /// or fewer than two samples).
    pub units_per_sec: Option<f64>,
    /// Seconds to completion at `units_per_sec`; `None` when unknown.
    pub eta_secs: Option<f64>,
    /// Whether the store carries a seal.
    pub sealed: bool,
    /// Whether a torn trailing line was truncated away on load.
    pub torn: bool,
    /// Bytes of torn trailing data ignored on load (0 when clean).
    pub torn_bytes: u64,
    /// Worker attempts recorded in the shard manifest; `None` when no
    /// manifest is in view (plain `status STORE…`).
    pub attempts: Option<usize>,
    /// One-word state: `sealed`, `complete`, `torn`, `open`, `empty`,
    /// `running`, `backoff` or `quarantined`.
    pub state: String,
}

/// Reads one store into a static [`ShardProgress`] row. Rate/ETA are
/// derived coarsely from the store's events ledger when a telemetered
/// run left one (`<store>.events.jsonl`, first-to-last unit-event
/// spacing); otherwise they are `None` — the supervisor's `--progress`
/// view overrides them with its live two-observation rate. `total`
/// overrides the denominator when the caller knows the shard's range
/// (manifest); otherwise the header's planned units are used.
///
/// # Errors
///
/// Store loading errors ([`CampaignError::CorruptStore`] etc.).
pub fn shard_progress(
    store: &ResultStore,
    shard: usize,
    total: Option<usize>,
) -> Result<ShardProgress, CampaignError> {
    let loaded = store.load()?;
    let total =
        total.or_else(|| loaded.header.as_ref().map(|h| h.planned_units)).unwrap_or(0);
    let completed = loaded.records.len();
    // A static view has no second observation to derive a rate from —
    // but a telemetered run left unit timestamps in the store's events
    // ledger. Derive a coarse units/sec (and ETA) from those, so
    // one-shot `campaign status` reports rate too.
    let remaining = total.saturating_sub(completed);
    let mut units_per_sec = None;
    let mut eta_secs = None;
    if remaining > 0 {
        if let Ok(ledger) = EventLedger::for_store(store.path()).load() {
            if let Some(rate) = coarse_rate(&ledger.events) {
                units_per_sec = Some(rate);
                eta_secs = Some(remaining as f64 / rate);
            }
        }
    }
    let state = if loaded.sealed {
        "sealed"
    } else if total > 0 && completed >= total {
        "complete"
    } else if loaded.torn_tail {
        "torn"
    } else if loaded.header.is_none() {
        "empty"
    } else {
        "open"
    };
    Ok(ShardProgress {
        shard,
        store: store.path().display().to_string(),
        completed,
        total,
        units_per_sec,
        eta_secs,
        sealed: loaded.sealed,
        torn: loaded.torn_tail,
        torn_bytes: loaded.torn_bytes,
        attempts: None,
        state: state.into(),
    })
}

/// Renders progress rows as one aligned table (the non-`--json` form of
/// `campaign status` and the supervisor's `--progress` ticker).
pub fn render_progress(rows: &[ShardProgress]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<5} {:>9} {:>8} {:>8}  {:<11} {}\n",
        "SHARD", "DONE", "UNITS/S", "ETA", "STATE", "STORE"
    ));
    for row in rows {
        let done = format!("{}/{}", row.completed, row.total);
        let rate = match row.units_per_sec {
            Some(r) if r > 0.0 => format!("{r:.1}"),
            _ => "-".into(),
        };
        let eta = match row.eta_secs {
            Some(e) if e.is_finite() => format!("{e:.0}s"),
            _ => "-".into(),
        };
        out.push_str(&format!(
            "{:<5} {:>9} {:>8} {:>8}  {:<11} {}\n",
            row.shard, done, rate, eta, row.state, row.store
        ));
    }
    out
}

/// How a dead worker left its shard store.
enum ShardHealth {
    Complete,
    Incomplete,
    Corrupt,
}

fn shard_health(store: &ResultStore, units: usize) -> ShardHealth {
    match store.load() {
        Ok(loaded) if loaded.records.len() >= units => ShardHealth::Complete,
        Ok(_) => ShardHealth::Incomplete,
        Err(_) => ShardHealth::Corrupt,
    }
}

/// Backoff before spawn number `attempts + 1`: exponential in the
/// attempts already spent, capped, plus deterministic per-shard jitter.
fn backoff_delay(shard: usize, attempts: usize, base_ms: u64) -> Duration {
    let shift = (attempts.saturating_sub(1)).min(6) as u32;
    let exp = base_ms.saturating_mul(1u64 << shift).min(BACKOFF_CAP_MS);
    Duration::from_millis(exp + backoff_jitter_ms(shard as u64, attempts as u64, base_ms))
}

struct WorkerSlot {
    shard: usize,
    store: ResultStore,
    log: PathBuf,
    units: usize,
    child: Option<Child>,
    spawned: Instant,
    restart_at: Option<Instant>,
    done: bool,
    quarantined: bool,
    sample: Option<(Instant, usize)>,
    rate: Option<f64>,
}

impl WorkerSlot {
    fn settled(&self) -> bool {
        self.done || self.quarantined
    }
}

fn mtime(path: &Path) -> Option<SystemTime> {
    std::fs::metadata(path).ok().and_then(|m| m.modified().ok())
}

fn spawn_worker(
    exe: &Path,
    spec_path: &Path,
    manifest_path: &Path,
    slot: &mut WorkerSlot,
    attempt: usize,
    workers: usize,
    ledger: &mut Option<LedgerAppender>,
) -> Result<(), CampaignError> {
    let telemetry = ledger.is_some();
    let log = std::fs::OpenOptions::new().create(true).append(true).open(&slot.log)?;
    let mut command = Command::new(exe);
    command
        .arg("campaign")
        .arg("work")
        .arg("--spec")
        .arg(spec_path)
        .arg("--manifest")
        .arg(manifest_path)
        .arg("--index")
        .arg(slot.shard.to_string())
        .arg("--workers")
        .arg(workers.to_string());
    if telemetry {
        // Forward telemetry: the child snapshots its own registry and
        // appends per-unit events to its shard store's ledger.
        command
            .arg("--metrics-out")
            .arg(format!("{}.metrics.json", slot.store.path().display()));
    }
    let child = command
        .env(SHARD_ATTEMPT_ENV, attempt.to_string())
        .stdin(Stdio::null())
        .stdout(Stdio::from(log.try_clone()?))
        .stderr(Stdio::from(log))
        .spawn()?;
    slot.child = Some(child);
    slot.spawned = Instant::now();
    slot.restart_at = None;
    dynring_obs::global().counter(obs_names::SUPERVISOR_SPAWNS).inc();
    if let Some(app) = ledger.as_mut() {
        app.append(Event::Spawn { shard: slot.shard, attempt })?;
    }
    Ok(())
}

/// Runs every shard of `manifest` as a supervised `campaign work` child
/// of `exe` (the current binary), restarting dead or hung shards until
/// each completes or exhausts its retries. Shards whose stores are
/// already complete (a resumed campaign) are skipped without spawning.
///
/// Returns the outcome even when shards were quarantined — the caller
/// decides the exit code. Only infrastructure trouble (spawn failure,
/// manifest persistence) is an `Err`.
///
/// # Errors
///
/// [`CampaignError::Io`] on spawn/poll/manifest-write failure.
pub fn supervise(
    exe: &Path,
    spec_path: &Path,
    manifest_path: &Path,
    manifest: &mut ShardManifest,
    opts: &SuperviseOptions,
) -> Result<SuperviseOutcome, CampaignError> {
    let now0 = Instant::now();
    let obs = dynring_obs::global();
    let mut ledger: Option<LedgerAppender> = match &opts.events {
        Some(path) => Some(EventLedger::new(path).appender()?),
        None => None,
    };
    let mut slots: Vec<WorkerSlot> = manifest
        .entries
        .iter()
        .map(|e| {
            let store = ResultStore::new(Path::new(&e.store));
            // Retired entries hold exactly their truncated prefix; they
            // are never spawned. Everything else is probed.
            let done =
                e.retired || matches!(shard_health(&store, e.units), ShardHealth::Complete);
            WorkerSlot {
                shard: e.index,
                log: PathBuf::from(format!("{}.log", e.store)),
                store,
                units: e.units,
                child: None,
                spawned: now0,
                restart_at: None,
                done,
                quarantined: false,
                sample: None,
                rate: None,
            }
        })
        .collect();

    // Count the initial spawns as attempts and persist them (fsynced)
    // before any child exists, so a crashed supervisor never forgets an
    // attempt it already started.
    for slot in slots.iter().filter(|s| !s.done) {
        manifest.entries[slot.shard].attempts += 1;
    }
    manifest.write(manifest_path)?;
    for slot in slots.iter_mut().filter(|s| !s.done) {
        let attempt = manifest.entries[slot.shard].attempts - 1;
        spawn_worker(
            exe,
            spec_path,
            manifest_path,
            slot,
            attempt,
            opts.workers_per_proc,
            &mut ledger,
        )?;
    }

    let timeout = Duration::from_millis(opts.heartbeat_timeout_ms.max(1));
    let poll = Duration::from_millis(opts.poll_ms.clamp(10, 1000));
    let mut restarts = 0usize;
    let mut steals = 0usize;
    let mut quarantined: Vec<ShardFailure> = Vec::new();
    let mut last_progress = Instant::now() - Duration::from_secs(3600);

    loop {
        let mut settled = true;
        // Steals decided during the pass; processed after it, because a
        // split appends entries and slots mid-iteration.
        let mut steal_requests: Vec<(usize, usize, bool, String)> = Vec::new();
        let settled_before = slots.iter().filter(|s| s.settled()).count();
        let fleet = slots.len();
        for (idx, slot) in slots.iter_mut().enumerate() {
            if slot.settled() {
                continue;
            }
            settled = false;
            // 1. A running child: reap it, kill it if its heartbeat
            //    (store mtime) stalled past the timeout, or kill it as a
            //    straggler when the rest of the fleet has settled and it
            //    overstayed `steal_after_ms`.
            let death: Option<String> = match &mut slot.child {
                Some(child) => match child.try_wait()? {
                    Some(status) => {
                        slot.child = None;
                        Some(match status.code() {
                            Some(code) => format!("exit-status-{code}"),
                            None => "killed".into(),
                        })
                    }
                    None => {
                        let spawned_for = slot.spawned.elapsed();
                        let age = mtime(slot.store.path())
                            .and_then(|m| SystemTime::now().duration_since(m).ok())
                            .unwrap_or(spawned_for);
                        let straggling = opts.steal
                            && opts
                                .steal_after_ms
                                .is_some_and(|ms| spawned_for > Duration::from_millis(ms))
                            && settled_before + 1 >= fleet;
                        if spawned_for > timeout && age > timeout {
                            let _ = child.kill();
                            let _ = child.wait();
                            slot.child = None;
                            Some("stalled".into())
                        } else if straggling {
                            let _ = child.kill();
                            let _ = child.wait();
                            slot.child = None;
                            Some("straggler".into())
                        } else {
                            None
                        }
                    }
                },
                None => None,
            };
            if let Some(mut reason) = death {
                if reason == "stalled" {
                    obs.counter(obs_names::SUPERVISOR_STALLS).inc();
                    if let Some(app) = ledger.as_mut() {
                        app.append(Event::Stall { shard: slot.shard })?;
                    }
                }
                match shard_health(&slot.store, slot.units) {
                    // Completed before dying (normal exit, or a fault
                    // that fired after the last unit): the shard is done
                    // regardless of how the process ended.
                    ShardHealth::Complete => {
                        slot.done = true;
                        continue;
                    }
                    ShardHealth::Corrupt => reason = "store-corrupt".into(),
                    ShardHealth::Incomplete => {
                        if reason == "exit-status-0" {
                            reason = "exited-incomplete".into();
                        }
                    }
                }
                let attempts = manifest.entries[slot.shard].attempts;
                let exhausted =
                    matches!(reason.as_str(), "store-corrupt") || attempts > opts.max_retries;
                if exhausted || reason == "straggler" {
                    // Steal what remains instead of giving up: retire the
                    // shard at the plan-order prefix its store holds and
                    // re-shard the rest — as long as the split can still
                    // shrink. A corrupt store contributes nothing (its
                    // records cannot be trusted), so its whole range must
                    // be re-run and its empty retirement only shrinks
                    // when split at least two ways.
                    let corrupt = matches!(reason.as_str(), "store-corrupt");
                    let done = if corrupt {
                        0
                    } else {
                        slot.store.load().map(|l| l.records.len()).unwrap_or(0)
                    };
                    let done = done.min(slot.units);
                    let remaining = slot.units - done;
                    let splittable =
                        opts.steal && remaining > 0 && (done > 0 || remaining >= 2);
                    if splittable {
                        steal_requests.push((idx, done, corrupt, reason));
                    } else if reason == "straggler" {
                        // Could not shrink (a 1-unit shard with nothing
                        // done): fall back to an ordinary retry.
                        let delay = backoff_delay(slot.shard, attempts, opts.backoff_ms);
                        eprintln!(
                            "SHARD-RETRY shard={} attempt={} backoff-ms={} reason={reason}",
                            slot.shard,
                            attempts,
                            delay.as_millis()
                        );
                        obs.counter(obs_names::SUPERVISOR_RETRIES).inc();
                        if let Some(app) = ledger.as_mut() {
                            app.append(Event::Retry {
                                shard: slot.shard,
                                attempt: attempts,
                                reason,
                                backoff_ms: delay.as_millis() as u64,
                            })?;
                        }
                        slot.restart_at = Some(Instant::now() + delay);
                    } else {
                        let entry = &manifest.entries[slot.shard];
                        let (start, units) = (entry.start + done, remaining);
                        slot.quarantined = true;
                        println!(
                            "SHARD-FAIL shard={} attempts={attempts} range={start}..{} \
                             reason={reason}",
                            slot.shard,
                            start + units
                        );
                        obs.counter(obs_names::SUPERVISOR_QUARANTINES).inc();
                        if let Some(app) = ledger.as_mut() {
                            app.append(Event::Quarantine {
                                shard: slot.shard,
                                attempts,
                                reason: reason.clone(),
                                start,
                                units,
                            })?;
                        }
                        quarantined.push(ShardFailure {
                            shard: slot.shard,
                            attempts,
                            reason,
                            start,
                            units,
                        });
                    }
                } else {
                    let delay = backoff_delay(slot.shard, attempts, opts.backoff_ms);
                    eprintln!(
                        "SHARD-RETRY shard={} attempt={} backoff-ms={} reason={reason}",
                        slot.shard,
                        attempts,
                        delay.as_millis()
                    );
                    obs.counter(obs_names::SUPERVISOR_RETRIES).inc();
                    if let Some(app) = ledger.as_mut() {
                        app.append(Event::Retry {
                            shard: slot.shard,
                            attempt: attempts,
                            reason,
                            backoff_ms: delay.as_millis() as u64,
                        })?;
                    }
                    slot.restart_at = Some(Instant::now() + delay);
                }
                continue;
            }
            // 2. A shard waiting out its backoff: restart it, persisting
            //    the bumped attempt counter (fsynced) first.
            if slot.child.is_none() {
                if let Some(at) = slot.restart_at {
                    if Instant::now() >= at {
                        manifest.entries[slot.shard].attempts += 1;
                        manifest.write(manifest_path)?;
                        let attempt = manifest.entries[slot.shard].attempts - 1;
                        spawn_worker(
                            exe,
                            spec_path,
                            manifest_path,
                            slot,
                            attempt,
                            opts.workers_per_proc,
                            &mut ledger,
                        )?;
                        restarts += 1;
                    }
                }
            }
        }
        // 3. Perform the steals: split the manifest, fsync it, then (and
        //    only then) spawn child workers — the crash-safety order the
        //    resume topology relies on.
        for (idx, done, corrupt, reason) in steal_requests {
            let parent = slots[idx].shard;
            let attempts = manifest.entries[parent].attempts;
            // Hand the remainder to as many pieces as there are settled
            // slots to reuse — at least two when nothing was salvaged,
            // so every split strictly shrinks.
            let idle = slots.iter().filter(|s| s.done).count();
            let remaining = slots[idx].units - done;
            let mut pieces = idle.clamp(1, remaining);
            if done == 0 {
                pieces = pieces.max(2).min(remaining);
            }
            if corrupt {
                // Move the untrustworthy store aside: the retired entry
                // is empty, so nothing may ever read these bytes again.
                let path = slots[idx].store.path().to_path_buf();
                let aside = format!("{}.corrupt-{attempts}", path.display());
                let _ = std::fs::rename(&path, aside);
            }
            let children = manifest.split_entry(parent, done, pieces)?;
            for &c in &children {
                manifest.entries[c].attempts = 1;
            }
            manifest.write(manifest_path)?;
            println!(
                "SHARD-STEAL shard={parent} attempts={attempts} reason={reason} \
                 done={done} remaining={remaining} pieces={} children={}..{}",
                children.len(),
                children[0],
                children[children.len() - 1] + 1
            );
            obs.counter(obs_names::SUPERVISOR_STEALS).inc();
            if let Some(app) = ledger.as_mut() {
                app.append(Event::Steal {
                    shard: parent,
                    reason: reason.clone(),
                    done,
                    remaining,
                    pieces: children.len(),
                })?;
            }
            slots[idx].done = true;
            slots[idx].units = done;
            steals += 1;
            for &c in &children {
                let entry = &manifest.entries[c];
                let mut slot = WorkerSlot {
                    shard: c,
                    store: ResultStore::new(Path::new(&entry.store)),
                    log: PathBuf::from(format!("{}.log", entry.store)),
                    units: entry.units,
                    child: None,
                    spawned: Instant::now(),
                    restart_at: None,
                    done: false,
                    quarantined: false,
                    sample: None,
                    rate: None,
                };
                spawn_worker(
                    exe,
                    spec_path,
                    manifest_path,
                    &mut slot,
                    0,
                    opts.workers_per_proc,
                    &mut ledger,
                )?;
                slots.push(slot);
            }
            settled = false;
        }
        if opts.progress && last_progress.elapsed() >= Duration::from_millis(1000) {
            last_progress = Instant::now();
            let rows: Vec<ShardProgress> = slots
                .iter_mut()
                .map(|slot| {
                    let attempts = manifest.entries[slot.shard].attempts;
                    progress_row(slot, Some(attempts))
                })
                .collect();
            if opts.progress_json {
                for row in &rows {
                    if let Ok(line) = serde_json::to_string(row) {
                        eprintln!("{line}");
                    }
                }
            } else {
                eprint!("{}", render_progress(&rows));
            }
        }
        if settled {
            break;
        }
        std::thread::sleep(poll);
    }
    if let Some(app) = ledger.as_mut() {
        app.sync()?;
    }

    Ok(SuperviseOutcome {
        shards: slots.len(),
        completed: slots.iter().filter(|s| s.done).count(),
        restarts,
        steals,
        quarantined,
    })
}

/// Builds one live progress row, updating the slot's rate estimate from
/// the previous observation.
fn progress_row(slot: &mut WorkerSlot, attempts: Option<usize>) -> ShardProgress {
    let mut row = shard_progress(&slot.store, slot.shard, Some(slot.units)).unwrap_or(
        ShardProgress {
            shard: slot.shard,
            store: slot.store.path().display().to_string(),
            completed: 0,
            total: slot.units,
            units_per_sec: None,
            eta_secs: None,
            sealed: false,
            torn: false,
            torn_bytes: 0,
            attempts: None,
            state: "corrupt".into(),
        },
    );
    row.attempts = attempts;
    let now = Instant::now();
    if let Some((t0, c0)) = slot.sample {
        let dt = now.duration_since(t0).as_secs_f64();
        if dt > 0.0 && row.completed >= c0 {
            slot.rate = Some((row.completed - c0) as f64 / dt);
        }
    }
    slot.sample = Some((now, row.completed));
    if slot.quarantined {
        row.state = "quarantined".into();
    } else if slot.child.is_some() {
        row.state = "running".into();
        row.units_per_sec = slot.rate;
        if let Some(rate) = slot.rate.filter(|r| *r > 0.0) {
            row.eta_secs = Some((row.total.saturating_sub(row.completed)) as f64 / rate);
        }
    } else if slot.restart_at.is_some() {
        row.state = "backoff".into();
    }
    row
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let base = 100;
        let d1 = backoff_delay(0, 1, base).as_millis() as u64;
        let d2 = backoff_delay(0, 2, base).as_millis() as u64;
        let d4 = backoff_delay(0, 4, base).as_millis() as u64;
        assert!((100..=200).contains(&d1), "{d1}");
        assert!((200..=300).contains(&d2), "{d2}");
        assert!((800..=900).contains(&d4), "{d4}");
        // Deep attempts stay bounded: cap + one jitter unit.
        let deep = backoff_delay(3, 40, base).as_millis() as u64;
        assert!(deep <= BACKOFF_CAP_MS + base, "{deep}");
        // Deterministic.
        assert_eq!(backoff_delay(2, 3, base), backoff_delay(2, 3, base));
    }

    #[test]
    fn progress_table_renders_one_aligned_row_per_shard() {
        let rows = vec![
            ShardProgress {
                shard: 0,
                store: "a.jsonl".into(),
                completed: 3,
                total: 8,
                units_per_sec: Some(2.5),
                eta_secs: Some(2.0),
                sealed: false,
                torn: false,
                torn_bytes: 0,
                attempts: Some(1),
                state: "running".into(),
            },
            ShardProgress {
                shard: 1,
                store: "b.jsonl".into(),
                completed: 8,
                total: 8,
                units_per_sec: None,
                eta_secs: None,
                sealed: true,
                torn: false,
                torn_bytes: 0,
                attempts: None,
                state: "sealed".into(),
            },
        ];
        let table = render_progress(&rows);
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("SHARD") && lines[0].contains("ETA"));
        assert!(lines[1].contains("3/8") && lines[1].contains("2.5"));
        assert!(lines[2].contains("8/8") && lines[2].contains("sealed"));
        let json = serde_json::to_string(&rows[0]).expect("progress rows serialize");
        assert!(json.contains("\"state\""), "{json}");
    }
}
