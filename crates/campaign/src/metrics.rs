//! Ledger aggregation: the analysis behind `dynring metrics
//! show|diff|top` and the coarse rate/ETA of one-shot `campaign
//! status`.
//!
//! The events ledger ([`crate::events`]) records *observations*; this
//! module folds one or more loaded ledgers into a
//! per-(algorithm × dynamics × scheduler × route) breakdown —
//! unit counts, wall-time totals and log₂-bucket quantiles
//! (via [`dynring_obs::Histogram`]), replica-rounds throughput — plus
//! a retry/steal/quarantine fault summary, turning post-hoc campaign
//! forensics ("where did the last 3 hours go") into one command.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::events::{Event, EventRecord, LoadedLedger};
use dynring_obs::Histogram;

/// One (algorithm × dynamics × scheduler × route) cell of the
/// breakdown.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsGroup {
    /// Algorithm display name.
    pub algorithm: String,
    /// Dynamics display name.
    pub dynamics: String,
    /// Scheduler display name.
    pub scheduler: String,
    /// `"batch"` or `"serial"`.
    pub route: String,
    /// Units executed.
    pub units: usize,
    /// Replicas executed.
    pub replicas: u64,
    /// Replicas that covered within the horizon.
    pub covered: u64,
    /// Replica-rounds advanced (cover times + full horizon per
    /// uncovered replica).
    pub replica_rounds: u64,
    /// Summed per-unit wall time in microseconds (worker-time, not
    /// elapsed time: parallel units add up).
    pub wall_us: u64,
    /// Median unit wall time (log₂-bucket estimate, microseconds).
    pub p50_us: u64,
    /// 90th-percentile unit wall time.
    pub p90_us: u64,
    /// 99th-percentile unit wall time.
    pub p99_us: u64,
    /// Maximum unit wall time (exact).
    pub max_us: u64,
    /// Units per worker-second (`units / (wall_us / 1e6)`).
    pub units_per_sec: f64,
    /// Replica-rounds per worker-second — the batch-vs-serial
    /// throughput comparison.
    pub replica_rounds_per_sec: f64,
}

/// Lifecycle / fault totals across the aggregated ledgers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultSummary {
    /// Worker spawns (initial and restarts).
    pub spawns: usize,
    /// Shard retries scheduled.
    pub retries: usize,
    /// Heartbeat stalls (workers killed for a frozen store mtime).
    pub stalls: usize,
    /// Work-stealing re-shards.
    pub steals: usize,
    /// Shards quarantined.
    pub quarantines: usize,
    /// Units lost to quarantine.
    pub lost_units: usize,
    /// Torn ledger tails truncated.
    pub torn_tails: usize,
    /// Merges performed.
    pub merges: usize,
}

/// Everything `dynring metrics show` reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LedgerSummary {
    /// The events-ledger schema this summary was folded from
    /// ([`crate::events::EVENTS_SCHEMA`]).
    pub schema: String,
    /// Ledger files aggregated.
    pub ledgers: usize,
    /// Events read.
    pub events: usize,
    /// Corrupt interior lines skipped on load.
    pub skipped_lines: usize,
    /// Torn trailing bytes still on disk at load time.
    pub torn_bytes: u64,
    /// Unit events.
    pub units: usize,
    /// Wave events.
    pub waves: usize,
    /// Summed per-unit wall microseconds across every group.
    pub wall_us: u64,
    /// Wall-clock span (ms) between the first and last event.
    pub span_ms: u64,
    /// Lifecycle / fault totals.
    pub faults: FaultSummary,
    /// Per-(algorithm × dynamics × scheduler × route) breakdown,
    /// sorted by key.
    pub groups: Vec<MetricsGroup>,
}

struct GroupAcc {
    units: usize,
    replicas: u64,
    covered: u64,
    replica_rounds: u64,
    wall: Histogram,
}

/// Folds loaded ledgers into one summary.
pub fn summarize(ledgers: &[LoadedLedger]) -> LedgerSummary {
    let mut groups: BTreeMap<(String, String, String, String), GroupAcc> = BTreeMap::new();
    let mut faults = FaultSummary::default();
    let mut events = 0usize;
    let mut skipped_lines = 0usize;
    let mut torn_bytes = 0u64;
    let mut waves = 0usize;
    let mut t_min = u64::MAX;
    let mut t_max = 0u64;
    for ledger in ledgers {
        events += ledger.events.len();
        skipped_lines += ledger.skipped_lines;
        torn_bytes += ledger.torn_bytes;
        for record in &ledger.events {
            t_min = t_min.min(record.t_ms);
            t_max = t_max.max(record.t_ms);
            match &record.event {
                Event::Unit {
                    algorithm,
                    dynamics,
                    scheduler,
                    route,
                    replicas,
                    covered,
                    replica_rounds,
                    wall_us,
                    ..
                } => {
                    let key = (
                        algorithm.clone(),
                        dynamics.clone(),
                        scheduler.clone(),
                        route.clone(),
                    );
                    let acc = groups.entry(key).or_insert_with(|| GroupAcc {
                        units: 0,
                        replicas: 0,
                        covered: 0,
                        replica_rounds: 0,
                        wall: Histogram::new(),
                    });
                    acc.units += 1;
                    acc.replicas += *replicas as u64;
                    acc.covered += *covered as u64;
                    acc.replica_rounds += replica_rounds;
                    acc.wall.record(*wall_us);
                }
                Event::Wave { .. } => waves += 1,
                Event::Spawn { .. } => faults.spawns += 1,
                Event::Stall { .. } => faults.stalls += 1,
                Event::Retry { .. } => faults.retries += 1,
                Event::Steal { .. } => faults.steals += 1,
                Event::Quarantine { units, .. } => {
                    faults.quarantines += 1;
                    faults.lost_units += units;
                }
                Event::Merge { .. } => faults.merges += 1,
                Event::TornTail { .. } => faults.torn_tails += 1,
                Event::RunStart { .. } | Event::RunEnd { .. } => {}
            }
        }
    }
    let mut out_groups = Vec::with_capacity(groups.len());
    let mut units = 0usize;
    let mut wall_us = 0u64;
    for ((algorithm, dynamics, scheduler, route), acc) in groups {
        let wall = acc.wall.sum();
        units += acc.units;
        wall_us += wall;
        let secs = wall as f64 / 1e6;
        let (units_per_sec, replica_rounds_per_sec) = if secs > 0.0 {
            (acc.units as f64 / secs, acc.replica_rounds as f64 / secs)
        } else {
            (0.0, 0.0)
        };
        out_groups.push(MetricsGroup {
            algorithm,
            dynamics,
            scheduler,
            route,
            units: acc.units,
            replicas: acc.replicas,
            covered: acc.covered,
            replica_rounds: acc.replica_rounds,
            wall_us: wall,
            p50_us: acc.wall.quantile(0.50),
            p90_us: acc.wall.quantile(0.90),
            p99_us: acc.wall.quantile(0.99),
            max_us: acc.wall.max(),
            units_per_sec,
            replica_rounds_per_sec,
        });
    }
    LedgerSummary {
        schema: crate::events::EVENTS_SCHEMA.to_string(),
        ledgers: ledgers.len(),
        events,
        skipped_lines,
        torn_bytes,
        units,
        waves,
        wall_us,
        span_ms: t_max.saturating_sub(t_min),
        faults,
        groups: out_groups,
    }
}

/// Coarse execution rate from unit-event timestamps: units per
/// wall-clock second between the first and last [`Event::Unit`].
/// `None` with fewer than two unit events or a zero span — the
/// one-shot `campaign status` rate/ETA source when no live supervisor
/// is observing.
pub fn coarse_rate(events: &[EventRecord]) -> Option<f64> {
    let mut first = None;
    let mut last = 0u64;
    let mut count = 0usize;
    for record in events {
        if matches!(record.event, Event::Unit { .. }) {
            first.get_or_insert(record.t_ms);
            last = last.max(record.t_ms);
            count += 1;
        }
    }
    let first = first?;
    if count < 2 || last <= first {
        return None;
    }
    Some((count - 1) as f64 * 1000.0 / (last - first) as f64)
}

/// Human duration from microseconds: `850us`, `12.5ms`, `3.2s`.
fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.1}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.1}ms", us as f64 / 1e3)
    } else {
        format!("{us}us")
    }
}

/// Human rate: `6.3M/s`, `98.3/s`.
fn fmt_rate(r: f64) -> String {
    if r >= 1e6 {
        format!("{:.1}M/s", r / 1e6)
    } else if r >= 1e3 {
        format!("{:.1}k/s", r / 1e3)
    } else {
        format!("{r:.1}/s")
    }
}

fn group_label(g: &MetricsGroup) -> String {
    format!("{} × {} × {} × {}", g.algorithm, g.dynamics, g.scheduler, g.route)
}

fn render_group_table(groups: &[&MetricsGroup]) -> String {
    let mut out = String::new();
    let width = groups.iter().map(|g| group_label(g).len()).max().unwrap_or(5).max(5);
    out.push_str(&format!(
        "{:<width$} {:>6} {:>9} {:>9} {:>9} {:>9} {:>9} {:>11}\n",
        "GROUP", "UNITS", "WALL", "P50", "P99", "MAX", "UNITS/S", "RROUNDS/S"
    ));
    for g in groups {
        out.push_str(&format!(
            "{:<width$} {:>6} {:>9} {:>9} {:>9} {:>9} {:>9} {:>11}\n",
            group_label(g),
            g.units,
            fmt_us(g.wall_us),
            fmt_us(g.p50_us),
            fmt_us(g.p99_us),
            fmt_us(g.max_us),
            fmt_rate(g.units_per_sec),
            fmt_rate(g.replica_rounds_per_sec),
        ));
    }
    out
}

fn render_fault_line(s: &LedgerSummary) -> String {
    let f = &s.faults;
    format!(
        "spawns={} retries={} stalls={} steals={} quarantines={} lost-units={} \
         merges={} torn-tails={} skipped-lines={} torn-bytes={}\n",
        f.spawns,
        f.retries,
        f.stalls,
        f.steals,
        f.quarantines,
        f.lost_units,
        f.merges,
        f.torn_tails,
        s.skipped_lines,
        s.torn_bytes
    )
}

/// Renders the `metrics show` view: totals, the per-group breakdown,
/// and the fault summary.
pub fn render_summary(s: &LedgerSummary) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{} ledger(s), {} events, {} units in {} waves, {} worker-time, {:.1}s span\n",
        s.ledgers,
        s.events,
        s.units,
        s.waves,
        fmt_us(s.wall_us),
        s.span_ms as f64 / 1e3
    ));
    let refs: Vec<&MetricsGroup> = s.groups.iter().collect();
    if !refs.is_empty() {
        out.push_str(&render_group_table(&refs));
    }
    out.push_str(&render_fault_line(s));
    out
}

/// Renders the `metrics top` view: groups by descending wall time,
/// truncated to `limit` — "where did the time go".
pub fn render_top(s: &LedgerSummary, limit: usize) -> String {
    let mut refs: Vec<&MetricsGroup> = s.groups.iter().collect();
    refs.sort_by(|a, b| b.wall_us.cmp(&a.wall_us).then_with(|| group_label(a).cmp(&group_label(b))));
    refs.truncate(limit.max(1));
    render_group_table(&refs)
}

/// Renders the `metrics diff` view: per-group wall/throughput of `b`
/// against baseline `a` (groups matched by key; missing sides shown
/// as `-`).
pub fn render_diff(a: &LedgerSummary, b: &LedgerSummary) -> String {
    let mut keys: Vec<String> = Vec::new();
    let index = |s: &LedgerSummary| -> BTreeMap<String, MetricsGroup> {
        s.groups.iter().map(|g| (group_label(g), g.clone())).collect()
    };
    let ia = index(a);
    let ib = index(b);
    for k in ia.keys().chain(ib.keys()) {
        if !keys.contains(k) {
            keys.push(k.clone());
        }
    }
    keys.sort();
    let width = keys.iter().map(String::len).max().unwrap_or(5).max(5);
    let mut out = String::new();
    out.push_str(&format!(
        "{:<width$} {:>13} {:>13} {:>9} {:>13}\n",
        "GROUP", "WALL A", "WALL B", "ΔWALL%", "UNITS/S A→B"
    ));
    for k in &keys {
        let (ga, gb) = (ia.get(k), ib.get(k));
        let wall = |g: Option<&MetricsGroup>| g.map_or("-".to_string(), |g| fmt_us(g.wall_us));
        let delta = match (ga, gb) {
            (Some(ga), Some(gb)) if ga.wall_us > 0 => {
                let pct = (gb.wall_us as f64 - ga.wall_us as f64) * 100.0 / ga.wall_us as f64;
                format!("{pct:+.1}%")
            }
            _ => "-".into(),
        };
        let rates = format!(
            "{}→{}",
            ga.map_or("-".to_string(), |g| fmt_rate(g.units_per_sec)),
            gb.map_or("-".to_string(), |g| fmt_rate(g.units_per_sec))
        );
        out.push_str(&format!(
            "{:<width$} {:>13} {:>13} {:>9} {:>13}\n",
            k,
            wall(ga),
            wall(gb),
            delta,
            rates
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(route: &str, wall_us: u64, t_ms: u64) -> EventRecord {
        EventRecord {
            t_ms,
            event: Event::Unit {
                hash: "h".into(),
                index: 0,
                algorithm: "PEF_3+".into(),
                dynamics: "bernoulli(p=0.5)".into(),
                scheduler: "sync".into(),
                route: route.into(),
                arity: if route == "batch" { 64 } else { 0 },
                replicas: 8,
                covered: 6,
                replica_rounds: 1000,
                wall_us,
            },
        }
    }

    fn ledger(events: Vec<EventRecord>) -> LoadedLedger {
        LoadedLedger { events, valid_len: 0, torn_bytes: 0, skipped_lines: 0 }
    }

    #[test]
    fn summarize_groups_by_route_and_computes_throughput() {
        let l = ledger(vec![
            unit("batch", 1_000, 0),
            unit("batch", 3_000, 500),
            unit("serial", 10_000, 1000),
            EventRecord { t_ms: 1100, event: Event::Retry { shard: 0, attempt: 1, reason: "stalled".into(), backoff_ms: 50 } },
            EventRecord { t_ms: 1200, event: Event::Stall { shard: 0 } },
        ]);
        let s = summarize(&[l]);
        assert_eq!(s.units, 3);
        assert_eq!(s.groups.len(), 2);
        assert_eq!(s.faults.retries, 1);
        assert_eq!(s.faults.stalls, 1);
        assert_eq!(s.span_ms, 1200);
        let batch = s.groups.iter().find(|g| g.route == "batch").expect("batch group");
        assert_eq!(batch.units, 2);
        assert_eq!(batch.wall_us, 4_000);
        assert_eq!(batch.replica_rounds, 2000);
        assert!((batch.units_per_sec - 500.0).abs() < 1e-9, "{}", batch.units_per_sec);
        assert!((batch.replica_rounds_per_sec - 500_000.0).abs() < 1e-6);
        assert_eq!(batch.max_us, 3_000);
        let text = render_summary(&s);
        assert!(text.contains("batch"), "{text}");
        assert!(text.contains("retries=1"), "{text}");
        let top = render_top(&s, 1);
        assert!(top.contains("serial") && !top.contains("batch"), "{top}");
    }

    #[test]
    fn coarse_rate_needs_two_units_and_a_span() {
        assert_eq!(coarse_rate(&[]), None);
        assert_eq!(coarse_rate(&[unit("batch", 1, 100)]), None);
        assert_eq!(coarse_rate(&[unit("batch", 1, 100), unit("batch", 1, 100)]), None);
        let r = coarse_rate(&[
            unit("batch", 1, 0),
            unit("batch", 1, 500),
            unit("batch", 1, 1000),
        ])
        .expect("rate");
        assert!((r - 2.0).abs() < 1e-9, "{r}");
    }

    #[test]
    fn diff_reports_missing_sides_and_percent() {
        let a = summarize(&[ledger(vec![unit("batch", 1_000, 0), unit("batch", 1_000, 1)])]);
        let b = summarize(&[ledger(vec![unit("batch", 3_000, 0), unit("serial", 5, 1)])]);
        let text = render_diff(&a, &b);
        assert!(text.contains("+50.0%"), "{text}");
        assert!(text.contains('-'), "{text}");
    }
}
