//! The declarative campaign specification and its planner.
//!
//! A [`CampaignSpec`] is a JSON document describing a grid over ring
//! sizes, team sizes, placements, algorithms, dynamics / schedule
//! classes, schedulers and seeds. [`CampaignSpec::plan`] expands the
//! grid into a deterministic list of [`WorkUnit`]s, each identified by a
//! content hash of its canonical JSON — the key under which the result
//! store records it, and the reason `resume` can skip completed units
//! no matter when or where they ran.
//!
//! Expansion order is fixed and part of the format contract:
//! `ring_size → placement → robots → algorithm → dynamics → scheduler →
//! seed`, skipping combinations with `k ≥ n` (a ring must have strictly
//! more nodes than robots). Deterministic dynamics (static rings,
//! scripted outages, the proof adversaries) have their replica count
//! clamped to 1 — every replica would be identical.

use serde::{Deserialize, Serialize};

use dynring_analysis::{AlgorithmChoice, DynamicsChoice, PlacementSpec};
use dynring_engine::{Chirality, LocalDir, RobotPlacement};
use dynring_graph::{NodeId, Time};

use crate::CampaignError;

/// The dynamics / schedule-class axis of a campaign.
///
/// [`UnitDynamics::Bernoulli`] is the *pure* per-edge presence stream the
/// 64-replica batch engine executes natively; everything else maps onto
/// the serial scenario runner's [`DynamicsChoice`] suite.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum UnitDynamics {
    /// Pure Bernoulli presence (batch-eligible under the sync scheduler).
    Bernoulli {
        /// Per-edge presence probability.
        p: f64,
    },
    /// The static ring.
    Static,
    /// Bernoulli presence repaired to a hard recurrence bound.
    BernoulliRecurrent {
        /// Per-edge presence probability.
        p: f64,
        /// Recurrence bound enforced by repair.
        bound: Time,
    },
    /// Markov on/off edges (repaired to recurrence).
    Markov {
        /// P(present → absent).
        p_off: f64,
        /// P(absent → present).
        p_on: f64,
    },
    /// One deterministic moving outage.
    SweepingOutage {
        /// Rounds the outage stays on each edge.
        dwell: Time,
    },
    /// A T-interval-connected schedule.
    TIntervalConnected {
        /// Minimum all-present rounds between outages.
        stability: Time,
    },
    /// The greedy budget-constrained blocker.
    PointedBlocker {
        /// Per-edge consecutive-absence budget.
        budget: Time,
    },
    /// The Theorem 5.1 single-robot confiner.
    SingleConfiner,
    /// The Theorem 4.1 two-robot confiner.
    TwoConfiner {
        /// Rounds to wait for a designated move before stalemate.
        patience: Time,
    },
    /// The SSYNC blocker (forces round-robin activation).
    SsyncBlocker,
}

impl UnitDynamics {
    /// Display name (used in reports and aggregation keys).
    pub fn name(&self) -> &'static str {
        match self {
            UnitDynamics::Bernoulli { .. } => "bernoulli",
            UnitDynamics::Static => "static",
            UnitDynamics::BernoulliRecurrent { .. } => "bernoulli+recurrence",
            UnitDynamics::Markov { .. } => "markov",
            UnitDynamics::SweepingOutage { .. } => "sweeping-outage",
            UnitDynamics::TIntervalConnected { .. } => "t-interval-connected",
            UnitDynamics::PointedBlocker { .. } => "pointed-blocker",
            UnitDynamics::SingleConfiner => "thm5.1-confiner",
            UnitDynamics::TwoConfiner { .. } => "thm4.1-confiner",
            UnitDynamics::SsyncBlocker => "ssync-blocker",
        }
    }

    /// Whether different seeds produce different executions. Deterministic
    /// dynamics get their replica budget clamped to 1 at plan time.
    pub fn is_stochastic(&self) -> bool {
        matches!(
            self,
            UnitDynamics::Bernoulli { .. }
                | UnitDynamics::BernoulliRecurrent { .. }
                | UnitDynamics::Markov { .. }
                | UnitDynamics::TIntervalConnected { .. }
        )
    }

    /// Whether this is the pure Bernoulli stream the batch engine runs
    /// natively (one half of the batch-eligibility rule; the other is the
    /// sync scheduler).
    pub fn is_pure_bernoulli(&self) -> bool {
        matches!(self, UnitDynamics::Bernoulli { .. })
    }

    /// The serial scenario runner's equivalent, for units that fall back
    /// to [`dynring_analysis::run_scenario`]. `None` for the pure
    /// Bernoulli stream, which has no `DynamicsChoice` counterpart (it is
    /// executed through the replica-lane machinery instead).
    pub fn as_dynamics_choice(&self) -> Option<DynamicsChoice> {
        Some(match *self {
            UnitDynamics::Bernoulli { .. } => return None,
            UnitDynamics::Static => DynamicsChoice::Static,
            UnitDynamics::BernoulliRecurrent { p, bound } => {
                DynamicsChoice::BernoulliRecurrent { p, bound }
            }
            UnitDynamics::Markov { p_off, p_on } => DynamicsChoice::Markov { p_off, p_on },
            UnitDynamics::SweepingOutage { dwell } => DynamicsChoice::SweepingOutage { dwell },
            UnitDynamics::TIntervalConnected { stability } => {
                DynamicsChoice::TIntervalConnected { stability }
            }
            UnitDynamics::PointedBlocker { budget } => DynamicsChoice::PointedBlocker { budget },
            UnitDynamics::SingleConfiner => DynamicsChoice::SingleConfiner,
            UnitDynamics::TwoConfiner { patience } => DynamicsChoice::TwoConfiner { patience },
            UnitDynamics::SsyncBlocker => DynamicsChoice::SsyncBlocker,
        })
    }
}

/// The activation-scheduler axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UnitScheduler {
    /// FSYNC: every robot every round (the paper's model; batch-eligible).
    Sync,
    /// SSYNC round-robin: one robot per round, in id order.
    Ssync,
    /// ASYNC: robots advance one Look/Compute/Move *phase* per tick on the
    /// phase-split simulator. Only oblivious dynamics (`bernoulli`,
    /// `static`) are supported; cover times are reported in ticks, and a
    /// unit's horizon buys `3 × horizon` ticks (one full L-C-M cycle per
    /// horizon round).
    Async,
}

impl UnitScheduler {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            UnitScheduler::Sync => "sync",
            UnitScheduler::Ssync => "ssync",
            UnitScheduler::Async => "async",
        }
    }
}

/// One robot of an explicit placement: node plus the full local frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExplicitRobot {
    /// Node index.
    pub node: usize,
    /// Mirrored chirality?
    pub mirrored: bool,
    /// Initial local direction is Right?
    pub start_right: bool,
}

impl ExplicitRobot {
    /// The engine placement this robot describes.
    pub fn build(&self) -> RobotPlacement {
        RobotPlacement::at(NodeId::new(self.node))
            .with_chirality(if self.mirrored {
                Chirality::Mirrored
            } else {
                Chirality::Standard
            })
            .with_dir(if self.start_right {
                LocalDir::Right
            } else {
                LocalDir::Left
            })
    }
}

/// The placement axis. The parameterized entries cross with the `robots`
/// axis; an explicit entry fixes its own team size (arbitrary non-tower
/// placements, beyond what the sweep CLIs can express).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PlacementAxis {
    /// Robots spread evenly, mixed chirality (the standard sweep shape).
    EvenlySpaced,
    /// Robots on consecutive nodes from `start`.
    Adjacent {
        /// First node.
        start: usize,
    },
    /// A fully explicit, per-robot placement (fixes `k`; the `robots`
    /// axis does not apply).
    Explicit {
        /// The robots, in id order.
        robots: Vec<ExplicitRobot>,
    },
}

/// A fully specified, hashable unit of campaign work: one point of the
/// grid, `replicas` stochastic replicas deep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkUnit {
    /// Ring size `n`.
    pub ring_size: usize,
    /// Robots `k`.
    pub robots: usize,
    /// Initial placements (materialized from the axis entry).
    pub placement: PlacementSpec,
    /// The algorithm under test.
    pub algorithm: AlgorithmChoice,
    /// The dynamics / schedule class.
    pub dynamics: UnitDynamics,
    /// The activation scheduler.
    pub scheduler: UnitScheduler,
    /// Rounds per replica (ticks ÷ 3 under the async scheduler).
    pub horizon: Time,
    /// Base seed; replica `r` derives its stream from it (see
    /// [`dynring_analysis::seeds::derive_stream_seed`]).
    pub seed: u64,
    /// Stochastic replicas (1 for deterministic dynamics).
    pub replicas: usize,
}

/// FNV-1a over a byte string: the unit/spec content hash. Stability
/// matters (stores outlive binaries), so the constants are pinned by a
/// test.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

impl WorkUnit {
    /// The unit's content hash: FNV-1a over its canonical (compact,
    /// field-ordered) JSON. Two units are the same experiment iff their
    /// hashes match; the result store is keyed by this.
    pub fn content_hash(&self) -> String {
        let json = serde_json::to_string(self).expect("unit serialization is infallible");
        format!("{:016x}", fnv1a64(json.as_bytes()))
    }
}

/// One planned unit: its position in the expansion (the store's append
/// order) plus the unit and its content hash.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlannedUnit {
    /// Position in the deterministic expansion.
    pub index: usize,
    /// [`WorkUnit::content_hash`] of `unit`.
    pub hash: String,
    /// The unit itself.
    pub unit: WorkUnit,
}

/// The expanded campaign: what `run` executes and `resume` completes.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignPlan {
    /// Campaign name (echoed into the store header and the report).
    pub name: String,
    /// Content hash of the spec that produced this plan.
    pub spec_hash: String,
    /// Units in expansion order.
    pub units: Vec<PlannedUnit>,
}

/// The declarative campaign specification (the JSON document `dynring
/// campaign run --spec` consumes). See `docs/CAMPAIGNS.md` for the
/// format.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// Campaign name.
    pub name: String,
    /// Ring sizes `n` (each ≥ 2).
    pub ring_sizes: Vec<usize>,
    /// Team sizes `k` (crossed with the parameterized placement entries;
    /// combinations with `k ≥ n` are skipped).
    pub robots: Vec<usize>,
    /// Placement axis entries.
    pub placements: Vec<PlacementAxis>,
    /// Algorithms under test.
    pub algorithms: Vec<AlgorithmChoice>,
    /// Dynamics / schedule classes.
    pub dynamics: Vec<UnitDynamics>,
    /// Activation schedulers.
    pub schedulers: Vec<UnitScheduler>,
    /// Base seeds (one unit per seed; replicas derive from it).
    pub seeds: Vec<u64>,
    /// Rounds per replica.
    pub horizon: Time,
    /// Stochastic replicas per unit (clamped to 1 for deterministic
    /// dynamics).
    pub replicas: usize,
}

impl CampaignSpec {
    /// The spec's content hash (recorded in the store header so `resume`
    /// refuses to mix results of different campaigns).
    pub fn content_hash(&self) -> String {
        let json = serde_json::to_string(self).expect("spec serialization is infallible");
        format!("{:016x}", fnv1a64(json.as_bytes()))
    }

    /// Rejects duplicate entries within one axis: a duplicate expands
    /// into two units with the *same* content hash, which the store
    /// dedupes — silently breaking the plan/store correspondence (and
    /// with it byte-exact resume and report counts).
    fn check_axis_unique<T: Serialize>(label: &str, axis: &[T]) -> Result<(), CampaignError> {
        let mut encodings: Vec<String> = axis
            .iter()
            .map(|v| serde_json::to_string(v).expect("axis serialization is infallible"))
            .collect();
        encodings.sort_unstable();
        for pair in encodings.windows(2) {
            if pair[0] == pair[1] {
                return Err(CampaignError::InvalidSpec(format!(
                    "axis `{label}` contains a duplicate entry: {}",
                    pair[0]
                )));
            }
        }
        Ok(())
    }

    fn validate(&self) -> Result<(), CampaignError> {
        let invalid = |msg: String| Err(CampaignError::InvalidSpec(msg));
        if self.name.is_empty() {
            return invalid("campaign name must not be empty".into());
        }
        for (label, empty) in [
            ("ring_sizes", self.ring_sizes.is_empty()),
            ("placements", self.placements.is_empty()),
            ("algorithms", self.algorithms.is_empty()),
            ("dynamics", self.dynamics.is_empty()),
            ("schedulers", self.schedulers.is_empty()),
            ("seeds", self.seeds.is_empty()),
        ] {
            if empty {
                return invalid(format!("axis `{label}` must not be empty"));
            }
        }
        Self::check_axis_unique("ring_sizes", &self.ring_sizes)?;
        Self::check_axis_unique("robots", &self.robots)?;
        Self::check_axis_unique("placements", &self.placements)?;
        Self::check_axis_unique("algorithms", &self.algorithms)?;
        Self::check_axis_unique("dynamics", &self.dynamics)?;
        Self::check_axis_unique("schedulers", &self.schedulers)?;
        Self::check_axis_unique("seeds", &self.seeds)?;
        let crosses_robots = self
            .placements
            .iter()
            .any(|p| !matches!(p, PlacementAxis::Explicit { .. }));
        if crosses_robots && self.robots.is_empty() {
            return invalid(
                "axis `robots` must not be empty when a parameterized placement is present"
                    .into(),
            );
        }
        if let Some(n) = self.ring_sizes.iter().find(|&&n| n < 2) {
            return invalid(format!("ring size {n} is too small (need n ≥ 2)"));
        }
        if self.robots.contains(&0) {
            return invalid("team size 0 is not a team".into());
        }
        if self.horizon == 0 {
            return invalid("horizon must be at least 1 round".into());
        }
        if self.replicas == 0 {
            return invalid("replicas must be at least 1".into());
        }
        if self.schedulers.contains(&UnitScheduler::Async) {
            if let Some(d) = self.dynamics.iter().find(|d| {
                !matches!(d, UnitDynamics::Bernoulli { .. } | UnitDynamics::Static)
            }) {
                return invalid(format!(
                    "the async scheduler supports only oblivious dynamics \
                     (`bernoulli`, `static`); the spec also lists `{}`",
                    d.name()
                ));
            }
        }
        for placement in &self.placements {
            if let PlacementAxis::Explicit { robots } = placement {
                if robots.is_empty() {
                    return invalid("an explicit placement must list at least one robot".into());
                }
                let mut nodes: Vec<usize> = robots.iter().map(|r| r.node).collect();
                nodes.sort_unstable();
                nodes.dedup();
                if nodes.len() != robots.len() {
                    return invalid(
                        "explicit placements must be tower-free (distinct nodes)".into(),
                    );
                }
                // NodeId is u32-backed; reject unrepresentable indices
                // here instead of panicking inside ExplicitRobot::build.
                if let Some(r) = robots.iter().find(|r| u32::try_from(r.node).is_err()) {
                    return invalid(format!(
                        "explicit placement node {} does not fit a u32 node id",
                        r.node
                    ));
                }
            }
        }
        Ok(())
    }

    /// Expands the grid into the deterministic unit list.
    ///
    /// # Errors
    ///
    /// [`CampaignError::InvalidSpec`] naming the offending field, or
    /// [`CampaignError::EmptyPlan`] when every combination was skipped
    /// (e.g. all teams at least as large as all rings).
    pub fn plan(&self) -> Result<CampaignPlan, CampaignError> {
        self.validate()?;
        let mut units = Vec::new();
        for &n in &self.ring_sizes {
            for placement_axis in &self.placements {
                // (k, placement) choices for this axis entry on ring n.
                let choices: Vec<(usize, PlacementSpec)> = match placement_axis {
                    PlacementAxis::EvenlySpaced => self
                        .robots
                        .iter()
                        .map(|&k| (k, PlacementSpec::EvenlySpaced { count: k }))
                        .collect(),
                    PlacementAxis::Adjacent { start } => self
                        .robots
                        .iter()
                        .map(|&k| (k, PlacementSpec::Adjacent { count: k, start: *start }))
                        .collect(),
                    PlacementAxis::Explicit { robots } => {
                        let placements: Vec<RobotPlacement> =
                            robots.iter().map(ExplicitRobot::build).collect();
                        vec![(placements.len(), PlacementSpec::Explicit(placements))]
                    }
                };
                for (k, placement) in choices {
                    // A ring needs strictly more nodes than robots; an
                    // explicit placement must also fit the ring.
                    if k >= n {
                        continue;
                    }
                    if let PlacementSpec::Explicit(robots) = &placement {
                        if robots.iter().any(|r| r.node.index() >= n) {
                            continue;
                        }
                    }
                    for &algorithm in &self.algorithms {
                        for &dynamics in &self.dynamics {
                            let replicas = if dynamics.is_stochastic() {
                                self.replicas
                            } else {
                                1
                            };
                            for &scheduler in &self.schedulers {
                                for &seed in &self.seeds {
                                    let unit = WorkUnit {
                                        ring_size: n,
                                        robots: k,
                                        placement: placement.clone(),
                                        algorithm,
                                        dynamics,
                                        scheduler,
                                        horizon: self.horizon,
                                        seed,
                                        replicas,
                                    };
                                    units.push(PlannedUnit {
                                        index: units.len(),
                                        hash: unit.content_hash(),
                                        unit,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        if units.is_empty() {
            return Err(CampaignError::EmptyPlan);
        }
        Ok(CampaignPlan {
            name: self.name.clone(),
            spec_hash: self.content_hash(),
            units,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn tiny_spec() -> CampaignSpec {
        CampaignSpec {
            name: "tiny".into(),
            ring_sizes: vec![4, 6],
            robots: vec![1, 3],
            placements: vec![PlacementAxis::EvenlySpaced],
            algorithms: vec![AlgorithmChoice::Pef3Plus, AlgorithmChoice::KeepDirection],
            dynamics: vec![UnitDynamics::Bernoulli { p: 0.5 }, UnitDynamics::Static],
            schedulers: vec![UnitScheduler::Sync, UnitScheduler::Ssync],
            seeds: vec![1, 2],
            horizon: 200,
            replicas: 8,
        }
    }

    #[test]
    fn plan_is_deterministic_and_hash_keyed() {
        let spec = tiny_spec();
        let a = spec.plan().expect("valid spec");
        let b = spec.plan().expect("valid spec");
        assert_eq!(a, b);
        // 2 rings × 2 teams × 2 algorithms × 2 dynamics × 2 schedulers ×
        // 2 seeds, no skips (k < n everywhere).
        assert_eq!(a.units.len(), 64);
        let mut hashes: Vec<&str> = a.units.iter().map(|u| u.hash.as_str()).collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), 64, "unit hashes must be unique");
        for (i, u) in a.units.iter().enumerate() {
            assert_eq!(u.index, i);
            assert_eq!(u.hash, u.unit.content_hash());
        }
    }

    #[test]
    fn oversized_teams_are_skipped_deterministically() {
        let mut spec = tiny_spec();
        spec.ring_sizes = vec![2, 6];
        spec.robots = vec![1, 3];
        let plan = spec.plan().expect("valid spec");
        // On n = 2 only k = 1 survives.
        assert!(plan
            .units
            .iter()
            .all(|u| u.unit.robots < u.unit.ring_size));
        assert_eq!(plan.units.len(), 16 + 32);
    }

    #[test]
    fn deterministic_dynamics_clamp_replicas() {
        let plan = tiny_spec().plan().expect("valid spec");
        for u in &plan.units {
            let expected = if u.unit.dynamics.is_stochastic() { 8 } else { 1 };
            assert_eq!(u.unit.replicas, expected, "{:?}", u.unit.dynamics);
        }
    }

    #[test]
    fn explicit_placements_fix_team_size_and_must_be_tower_free() {
        let mut spec = tiny_spec();
        spec.placements = vec![PlacementAxis::Explicit {
            robots: vec![
                ExplicitRobot { node: 0, mirrored: false, start_right: true },
                ExplicitRobot { node: 2, mirrored: true, start_right: false },
            ],
        }];
        let plan = spec.plan().expect("valid spec");
        assert!(plan.units.iter().all(|u| u.unit.robots == 2));
        // Tower: rejected at validation, not at execution.
        spec.placements = vec![PlacementAxis::Explicit {
            robots: vec![
                ExplicitRobot { node: 1, mirrored: false, start_right: false },
                ExplicitRobot { node: 1, mirrored: false, start_right: false },
            ],
        }];
        assert!(matches!(spec.plan(), Err(CampaignError::InvalidSpec(_))));
    }

    #[test]
    fn explicit_placements_outside_the_ring_are_skipped() {
        let mut spec = tiny_spec();
        spec.ring_sizes = vec![4, 8];
        spec.placements = vec![PlacementAxis::Explicit {
            robots: vec![
                ExplicitRobot { node: 0, mirrored: false, start_right: true },
                ExplicitRobot { node: 5, mirrored: false, start_right: false },
            ],
        }];
        let plan = spec.plan().expect("valid spec");
        // Node 5 does not exist on the 4-ring: only n = 8 units remain.
        assert!(plan.units.iter().all(|u| u.unit.ring_size == 8));
    }

    #[test]
    fn async_rejects_non_oblivious_dynamics() {
        let mut spec = tiny_spec();
        spec.schedulers = vec![UnitScheduler::Async];
        spec.dynamics = vec![
            UnitDynamics::Bernoulli { p: 0.5 },
            UnitDynamics::PointedBlocker { budget: 3 },
        ];
        let err = spec.plan().expect_err("async + adaptive must be rejected");
        assert!(err.to_string().contains("pointed-blocker"), "{err}");
    }

    #[test]
    fn bad_specs_are_named() {
        let mut spec = tiny_spec();
        spec.seeds.clear();
        assert!(spec.plan().expect_err("empty axis").to_string().contains("seeds"));
        let mut spec = tiny_spec();
        spec.ring_sizes = vec![1];
        assert!(spec.plan().is_err());
        let mut spec = tiny_spec();
        spec.replicas = 0;
        assert!(spec.plan().is_err());
        let mut spec = tiny_spec();
        spec.ring_sizes = vec![2];
        spec.robots = vec![3];
        assert!(matches!(spec.plan(), Err(CampaignError::EmptyPlan)));
    }

    #[test]
    fn duplicate_axis_entries_are_rejected() {
        // A duplicate expands into two units with the same hash; the
        // store would dedupe them and break the plan/store
        // correspondence (resume byte-identity, report counts), so the
        // planner refuses.
        let mut spec = tiny_spec();
        spec.seeds = vec![1, 2, 1];
        let err = spec.plan().expect_err("duplicate seeds");
        assert!(err.to_string().contains("seeds"), "{err}");
        let mut spec = tiny_spec();
        spec.dynamics.push(UnitDynamics::Bernoulli { p: 0.5 });
        let err = spec.plan().expect_err("duplicate dynamics");
        assert!(err.to_string().contains("dynamics"), "{err}");
        let mut spec = tiny_spec();
        spec.placements.push(PlacementAxis::EvenlySpaced);
        assert!(spec.plan().is_err());
    }

    #[test]
    fn unrepresentable_explicit_nodes_error_instead_of_panicking() {
        let mut spec = tiny_spec();
        spec.placements = vec![PlacementAxis::Explicit {
            robots: vec![ExplicitRobot {
                node: u32::MAX as usize + 1,
                mirrored: false,
                start_right: false,
            }],
        }];
        let err = spec.plan().expect_err("oversized node index");
        assert!(err.to_string().contains("u32"), "{err}");
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = tiny_spec();
        let json = serde_json::to_string_pretty(&spec).expect("serialize");
        let back: CampaignSpec = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(spec, back);
        assert_eq!(spec.content_hash(), back.content_hash());
    }

    #[test]
    fn fnv_constants_are_pinned() {
        // Offset basis hashes of the empty string and a known vector —
        // stores are keyed by this function, so it must never drift.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
