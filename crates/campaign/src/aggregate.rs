//! Folding a result store into cover-time / survival summary reports.
//!
//! The aggregator groups completed units by `(algorithm, dynamics,
//! scheduler)` — the axes a reader compares — and folds the integer
//! accumulators of every [`UnitRecord`] in the group. All statistics
//! derive from integer sums, so a report is a pure function of the store
//! and byte-identical across machines (the property the pinned
//! campaign-smoke summary relies on).
//!
//! Route accounting is family-based: the stored route string only names
//! the engine family (`"batch"`/`"serial"`), and the report additionally
//! breaks the batch family down by lane arity. The arity is recomputed
//! from each unit via [`route_unit`] — it is a pure function of the unit,
//! deliberately never stored, so the breakdown costs no record bytes.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use dynring_analysis::stats::Summary;
use dynring_graph::Time;

use crate::executor::{route_unit, UnitRecord};
use crate::spec::CampaignPlan;

/// One `(algorithm, dynamics, scheduler)` cell of the report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignGroup {
    /// Algorithm display name.
    pub algorithm: String,
    /// Dynamics display name.
    pub dynamics: String,
    /// Scheduler display name.
    pub scheduler: String,
    /// Completed units in the group.
    pub units: usize,
    /// Replicas executed across those units.
    pub replicas: usize,
    /// Replicas that completed a first cover within their horizon.
    pub covered: usize,
    /// `covered / replicas`.
    pub survival_rate: f64,
    /// Mean first-cover round over the covered replicas (0 when none).
    pub mean_cover_time: f64,
    /// Minimum first-cover round over the covered replicas.
    pub min_cover_time: Option<Time>,
    /// Maximum first-cover round over the covered replicas.
    pub max_cover_time: Option<Time>,
    /// Distribution of the per-unit survival rates (spread across the
    /// group's grid points and seeds).
    pub unit_survival: Summary,
}

/// The folded report of one campaign store.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Campaign name.
    pub name: String,
    /// Spec content hash.
    pub spec_hash: String,
    /// Units in the plan.
    pub planned_units: usize,
    /// Units completed in the store.
    pub completed_units: usize,
    /// Completed units routed to the batch engine.
    pub batch_units: usize,
    /// The batch family broken down by lane arity: lanes per group (64,
    /// 128, 256) → completed units the engine runs at that width. Sums
    /// to `batch_units`; recomputed from the units, never stored in
    /// records.
    pub batch_units_by_arity: BTreeMap<u64, usize>,
    /// Completed units routed to the serial engines.
    pub serial_units: usize,
    /// Replicas executed across all completed units.
    pub total_replicas: usize,
    /// Covered replicas across all completed units.
    pub covered_replicas: usize,
    /// Whether the store carried a torn trailing write when it was
    /// loaded (the torn bytes are excluded from the aggregation).
    pub torn_tail: bool,
    /// How many trailing bytes the torn write carried.
    pub torn_bytes: u64,
    /// Whether the store ends in a verified seal (see
    /// [`crate::trace::StoreFooter`]).
    pub sealed: bool,
    /// `true` when the store covers only part of the plan. Rendered as a
    /// loud PARTIAL banner so an unmerged shard store is never mistaken
    /// for a finished (merely low-unit-count) campaign.
    pub partial: bool,
    /// `true` when the store's records are exactly the plan's first
    /// `completed_units` units. `false` marks a mid-plan slice — i.e. an
    /// unmerged shard store — whose totals are a window, not a prefix,
    /// of the campaign.
    pub plan_prefix: bool,
    /// Groups, sorted by `(algorithm, dynamics, scheduler)`.
    pub groups: Vec<CampaignGroup>,
}

impl CampaignReport {
    /// `true` when every planned unit has a record.
    pub fn is_complete(&self) -> bool {
        self.completed_units == self.planned_units
    }
}

/// Folds the plan and its completed records into the report. Records not
/// in the plan (a foreign store — normally rejected earlier via the spec
/// hash) are ignored; duplicate hashes count once, first record wins.
pub fn aggregate(plan: &CampaignPlan, records: &[UnitRecord]) -> CampaignReport {
    let planned: BTreeMap<&str, ()> =
        plan.units.iter().map(|u| (u.hash.as_str(), ())).collect();
    let mut seen: BTreeMap<&str, &UnitRecord> = BTreeMap::new();
    for record in records {
        if planned.contains_key(record.hash.as_str()) {
            seen.entry(record.hash.as_str()).or_insert(record);
        }
    }
    let mut batch_units = 0usize;
    let mut batch_units_by_arity: BTreeMap<u64, usize> = BTreeMap::new();
    let mut serial_units = 0usize;
    let mut total_replicas = 0usize;
    let mut covered_replicas = 0usize;

    struct Acc {
        units: usize,
        replicas: usize,
        covered: usize,
        total_cover_time: u64,
        min: Option<Time>,
        max: Option<Time>,
        unit_survivals: Vec<f64>,
    }
    let mut groups: BTreeMap<(String, String, String), Acc> = BTreeMap::new();
    // Iterate in plan order so the per-group survival vectors (and with
    // them the medians) are deterministic. Track whether the completed
    // units form a plan prefix — a gap followed by more records marks a
    // mid-plan slice (an unmerged shard store).
    let mut gap_seen = false;
    let mut plan_prefix = true;
    for planned_unit in &plan.units {
        let Some(record) = seen.get(planned_unit.hash.as_str()) else {
            gap_seen = true;
            continue;
        };
        if gap_seen {
            plan_prefix = false;
        }
        if record.route == "batch" {
            batch_units += 1;
            if let Some(arity) = route_unit(&record.unit).arity() {
                *batch_units_by_arity.entry(arity.lanes() as u64).or_insert(0) += 1;
            }
        } else {
            serial_units += 1;
        }
        total_replicas += record.result.replicas;
        covered_replicas += record.result.covered;
        let key = (
            record.unit.algorithm.name().to_string(),
            record.unit.dynamics.name().to_string(),
            record.unit.scheduler.name().to_string(),
        );
        let acc = groups.entry(key).or_insert(Acc {
            units: 0,
            replicas: 0,
            covered: 0,
            total_cover_time: 0,
            min: None,
            max: None,
            unit_survivals: Vec::new(),
        });
        acc.units += 1;
        acc.replicas += record.result.replicas;
        acc.covered += record.result.covered;
        acc.total_cover_time += record.result.total_cover_time;
        acc.min = match (acc.min, record.result.min_cover_time) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        acc.max = match (acc.max, record.result.max_cover_time) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        acc.unit_survivals.push(record.result.survival_rate());
    }
    let completed_units = batch_units + serial_units;
    let groups = groups
        .into_iter()
        .map(|((algorithm, dynamics, scheduler), acc)| CampaignGroup {
            algorithm,
            dynamics,
            scheduler,
            units: acc.units,
            replicas: acc.replicas,
            covered: acc.covered,
            survival_rate: if acc.replicas == 0 {
                0.0
            } else {
                acc.covered as f64 / acc.replicas as f64
            },
            mean_cover_time: if acc.covered == 0 {
                0.0
            } else {
                acc.total_cover_time as f64 / acc.covered as f64
            },
            min_cover_time: acc.min,
            max_cover_time: acc.max,
            unit_survival: Summary::of(&acc.unit_survivals),
        })
        .collect();
    CampaignReport {
        name: plan.name.clone(),
        spec_hash: plan.spec_hash.clone(),
        planned_units: plan.units.len(),
        completed_units,
        batch_units,
        batch_units_by_arity,
        serial_units,
        total_replicas,
        covered_replicas,
        // Store-level facts; `load_report` overrides them from the load.
        torn_tail: false,
        torn_bytes: 0,
        sealed: false,
        partial: completed_units < plan.units.len(),
        plan_prefix,
        groups,
    }
}

/// Renders the report as an aligned text table.
pub fn render(report: &CampaignReport) -> String {
    use std::fmt::Write as _;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "campaign `{}` (spec {}): {}/{} units complete \
         ({} batch-routed, {} serial), {}/{} replicas covered",
        report.name,
        report.spec_hash,
        report.completed_units,
        report.planned_units,
        report.batch_units,
        report.serial_units,
        report.covered_replicas,
        report.total_replicas,
    );
    if !report.batch_units_by_arity.is_empty() {
        let mix: Vec<String> = report
            .batch_units_by_arity
            .iter()
            .map(|(arity, units)| format!("{units} @ {arity} lanes"))
            .collect();
        let _ = writeln!(out, "batch arity mix: {}", mix.join(", "));
    }
    if report.partial {
        let _ = writeln!(
            out,
            "PARTIAL: {} of {} planned units missing{}",
            report.planned_units - report.completed_units,
            report.planned_units,
            if report.plan_prefix {
                "; resume to continue"
            } else {
                "; this looks like an unmerged shard store — `campaign merge` it \
                 with its sibling shards"
            }
        );
    }
    let _ = writeln!(
        out,
        "{:<22} {:<22} {:<7} {:>5} {:>8} {:>9} {:>12} {:>8} {:>8}",
        "algorithm", "dynamics", "sched", "units", "replicas", "survival", "mean-cover", "min", "max"
    );
    for g in &report.groups {
        let _ = writeln!(
            out,
            "{:<22} {:<22} {:<7} {:>5} {:>8} {:>8.0}% {:>12.1} {:>8} {:>8}",
            g.algorithm,
            g.dynamics,
            g.scheduler,
            g.units,
            g.replicas,
            g.survival_rate * 100.0,
            g.mean_cover_time,
            g.min_cover_time.map_or_else(|| "-".to_string(), |t| t.to_string()),
            g.max_cover_time.map_or_else(|| "-".to_string(), |t| t.to_string()),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{execute_unit, UnitMeasurement};
    use crate::spec::{CampaignSpec, PlacementAxis, UnitDynamics, UnitScheduler};
    use dynring_analysis::AlgorithmChoice;

    fn spec() -> CampaignSpec {
        CampaignSpec {
            name: "agg".into(),
            ring_sizes: vec![5],
            robots: vec![2],
            placements: vec![PlacementAxis::EvenlySpaced],
            algorithms: vec![AlgorithmChoice::Pef3Plus, AlgorithmChoice::KeepDirection],
            dynamics: vec![UnitDynamics::Bernoulli { p: 0.6 }, UnitDynamics::Static],
            schedulers: vec![UnitScheduler::Sync],
            seeds: vec![1, 2],
            horizon: 300,
            replicas: 4,
        }
    }

    #[test]
    fn aggregates_groups_and_totals() {
        let plan = spec().plan().expect("valid spec");
        let records: Vec<_> = plan
            .units
            .iter()
            .map(|u| execute_unit(u).expect("unit runs"))
            .collect();
        let report = aggregate(&plan, &records);
        assert!(report.is_complete());
        assert_eq!(report.completed_units, 8);
        // 2 algorithms × 2 dynamics × 1 scheduler groups.
        assert_eq!(report.groups.len(), 4);
        // Bernoulli×sync units are batch-routed, static ones serial;
        // 4-replica units all pick the 64-lane arity.
        assert_eq!(report.batch_units, 4);
        assert_eq!(report.serial_units, 4);
        assert_eq!(report.batch_units_by_arity.get(&64), Some(&4));
        assert_eq!(
            report.batch_units_by_arity.values().sum::<usize>(),
            report.batch_units
        );
        assert!(render(&report).contains("batch arity mix: 4 @ 64 lanes"));
        // Totals tie out against the groups.
        let group_replicas: usize = report.groups.iter().map(|g| g.replicas).sum();
        assert_eq!(group_replicas, report.total_replicas);
        let group_covered: usize = report.groups.iter().map(|g| g.covered).sum();
        assert_eq!(group_covered, report.covered_replicas);
        // Rendering mentions every group's algorithm.
        let text = render(&report);
        assert!(text.contains("PEF_3+"), "{text}");
        assert!(text.contains("keep-direction"), "{text}");
    }

    #[test]
    fn partial_stores_report_incomplete() {
        let plan = spec().plan().expect("valid spec");
        let records: Vec<_> = plan
            .units
            .iter()
            .take(3)
            .map(|u| execute_unit(u).expect("unit runs"))
            .collect();
        let report = aggregate(&plan, &records);
        assert!(!report.is_complete());
        assert_eq!(report.completed_units, 3);
        assert!(report.partial);
        assert!(report.plan_prefix, "first 3 units are a plan prefix");
        assert!(render(&report).contains("PARTIAL"), "partial must render loudly");
    }

    #[test]
    fn mid_plan_slices_are_labelled_as_unmerged_shards() {
        let plan = spec().plan().expect("valid spec");
        // Units 4.. of the plan: a shard store's slice, not a prefix.
        let records: Vec<_> = plan
            .units
            .iter()
            .skip(4)
            .map(|u| execute_unit(u).expect("unit runs"))
            .collect();
        let report = aggregate(&plan, &records);
        assert!(report.partial);
        assert!(!report.plan_prefix);
        let text = render(&report);
        assert!(text.contains("unmerged shard"), "{text}");
        // A complete store is neither partial nor a mere slice.
        let all: Vec<_> =
            plan.units.iter().map(|u| execute_unit(u).expect("unit runs")).collect();
        let full = aggregate(&plan, &all);
        assert!(!full.partial);
        assert!(full.plan_prefix);
        assert!(!render(&full).contains("PARTIAL"));
    }

    #[test]
    fn duplicate_and_foreign_records_do_not_double_count() {
        let plan = spec().plan().expect("valid spec");
        let record = execute_unit(&plan.units[0]).expect("unit runs");
        let mut foreign = record.clone();
        foreign.hash = "ffffffffffffffff".into();
        let report = aggregate(&plan, &[record.clone(), record, foreign]);
        assert_eq!(report.completed_units, 1);
    }

    #[test]
    fn report_round_trips_through_json() {
        let plan = spec().plan().expect("valid spec");
        let records: Vec<_> = plan
            .units
            .iter()
            .map(|u| execute_unit(u).expect("unit runs"))
            .collect();
        let report = aggregate(&plan, &records);
        let json = serde_json::to_string_pretty(&report).expect("serialize");
        let back: CampaignReport = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(report, back);
    }

    #[test]
    fn measurement_statistics_are_integer_derived() {
        let m = UnitMeasurement {
            replicas: 4,
            covered: 2,
            total_cover_time: 30,
            min_cover_time: Some(10),
            max_cover_time: Some(20),
        };
        assert_eq!(m.mean_cover_time(), 15.0);
        assert_eq!(m.survival_rate(), 0.5);
    }
}
