//! The per-campaign JSONL *events ledger*: out-of-band telemetry that
//! survives the run.
//!
//! A campaign executed with telemetry enabled (`--metrics-out`) appends
//! one JSON line per observation to a sibling of its result store,
//! `<store>.events.jsonl` ([`EventLedger::for_store`]): per-unit
//! execution events from the runner, wave boundaries, and supervisor
//! lifecycle events (spawn, heartbeat stall, retry, steal, quarantine,
//! merge). The ledger is **strictly observational** — nothing in the
//! certify path reads it, and result-store bytes are identical whether
//! it exists or not.
//!
//! Like the store, the ledger is an append-only JSONL file whose final
//! line may be torn by a crash: loading tolerates (and measures) a torn
//! tail, and [`EventLedger::appender`] truncates it away before
//! appending — recording a [`Event::TornTail`] so the loss itself is
//! observable. Unlike the store, a corrupt *interior* line is skipped
//! and counted rather than refused: the ledger is forensic data, and
//! one damaged observation must not make the rest unreadable.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};

use serde::{Deserialize, Serialize};

use crate::CampaignError;

/// Ledger schema tag (stamped on [`Event::RunStart`]); bump on
/// incompatible change.
pub const EVENTS_SCHEMA: &str = "dynring-events-v1";

/// Suffix appended to a store path to name its ledger.
pub const LEDGER_SUFFIX: &str = ".events.jsonl";

/// One observation. Externally tagged JSON: `{"Unit":{...}}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// A `run`/`resume`/`work` invocation started executing.
    RunStart {
        /// Ledger schema tag ([`EVENTS_SCHEMA`]).
        schema: String,
        /// Campaign name.
        name: String,
        /// Spec content hash.
        spec_hash: String,
        /// Units in this invocation's slice of the plan.
        planned: usize,
        /// Units already complete when it started.
        skipped: usize,
    },
    /// One work unit executed.
    Unit {
        /// Unit content hash (the store key).
        hash: String,
        /// Plan index.
        index: usize,
        /// Algorithm display name.
        algorithm: String,
        /// Dynamics display name.
        dynamics: String,
        /// Scheduler display name.
        scheduler: String,
        /// `"batch"` or `"serial"`.
        route: String,
        /// Lane arity of the batch route; 0 on the serial route.
        arity: u64,
        /// Replicas executed.
        replicas: usize,
        /// Replicas that covered within the horizon.
        covered: usize,
        /// Replica-rounds advanced: summed cover times plus the full
        /// horizon for every uncovered replica.
        replica_rounds: u64,
        /// Wall time of the unit's execution in microseconds.
        wall_us: u64,
    },
    /// One runner wave appended and fsynced.
    Wave {
        /// Units in the wave.
        units: usize,
        /// Wall time of the wave in microseconds.
        wall_us: u64,
    },
    /// The invocation finished (cleanly or budget-capped).
    RunEnd {
        /// Units executed by this invocation.
        executed: usize,
        /// Units still pending after it.
        pending: usize,
    },
    /// The supervisor spawned a worker process for a shard.
    Spawn {
        /// Shard index.
        shard: usize,
        /// Attempt number (0 = first spawn).
        attempt: usize,
    },
    /// A worker was killed for a stalled heartbeat.
    Stall {
        /// Shard index.
        shard: usize,
    },
    /// A dead shard was scheduled for restart.
    Retry {
        /// Shard index.
        shard: usize,
        /// Attempts already spent.
        attempt: usize,
        /// Death reason token (`exit-status-N`, `stalled`, …).
        reason: String,
        /// Backoff before the restart, in milliseconds.
        backoff_ms: u64,
    },
    /// An exhausted or straggling shard's remainder was re-sharded.
    Steal {
        /// Parent shard index.
        shard: usize,
        /// Death reason token.
        reason: String,
        /// Units the parent completed before retirement.
        done: usize,
        /// Units re-sharded onto children.
        remaining: usize,
        /// Child sub-shards created.
        pieces: usize,
    },
    /// A shard was given up on.
    Quarantine {
        /// Shard index.
        shard: usize,
        /// Attempts spent.
        attempts: usize,
        /// Death reason token.
        reason: String,
        /// First plan index lost.
        start: usize,
        /// Units lost.
        units: usize,
    },
    /// Shard stores were folded into the canonical store.
    Merge {
        /// Shard stores read.
        shards: usize,
        /// Records written to the canonical store.
        merged: usize,
        /// Whether the canonical store was sealed.
        sealed: bool,
    },
    /// The appender truncated a torn ledger tail (the loss itself).
    TornTail {
        /// Bytes discarded.
        bytes: u64,
    },
}

/// One ledger line: a wall-clock stamp plus the observation.
///
/// Timestamps are Unix epoch milliseconds — the ledger is forensic and
/// *not* deterministic (unlike result stores and metric snapshots);
/// only its aggregations' shapes are.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventRecord {
    /// Unix epoch milliseconds at append time.
    pub t_ms: u64,
    /// The observation.
    pub event: Event,
}

/// Wall clock as Unix epoch milliseconds (0 before the epoch).
pub fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

/// A parsed ledger: every readable observation plus damage accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadedLedger {
    /// Every parseable event, in file order.
    pub events: Vec<EventRecord>,
    /// Bytes up to the end of the last parseable line (the truncation
    /// point an appender would use).
    pub valid_len: u64,
    /// Bytes past `valid_len` (a torn trailing line; 0 when clean).
    pub torn_bytes: u64,
    /// Corrupt *interior* lines skipped (ledgers degrade, not refuse).
    pub skipped_lines: usize,
}

/// Handle to a campaign's events ledger file.
#[derive(Debug, Clone)]
pub struct EventLedger {
    path: PathBuf,
}

impl EventLedger {
    /// A ledger at an explicit path.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        EventLedger { path: path.into() }
    }

    /// The canonical ledger of the store at `store_path`:
    /// `<store>.events.jsonl`.
    pub fn for_store(store_path: &Path) -> Self {
        EventLedger {
            path: PathBuf::from(format!("{}{LEDGER_SUFFIX}", store_path.display())),
        }
    }

    /// The ledger's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Whether the ledger file exists on disk.
    pub fn exists(&self) -> bool {
        self.path.exists()
    }

    /// Parses the ledger. A missing file is an empty ledger; a torn
    /// final line and corrupt interior lines are measured, not errors.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Io`] on filesystem trouble only.
    pub fn load(&self) -> Result<LoadedLedger, CampaignError> {
        let mut bytes = Vec::new();
        match File::open(&self.path) {
            Ok(mut file) => {
                file.read_to_end(&mut bytes)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(LoadedLedger {
                    events: Vec::new(),
                    valid_len: 0,
                    torn_bytes: 0,
                    skipped_lines: 0,
                });
            }
            Err(e) => return Err(e.into()),
        }
        let mut events = Vec::new();
        let mut valid_len = 0u64;
        let mut skipped_lines = 0usize;
        let mut offset = 0usize;
        while offset < bytes.len() {
            let Some(nl) = bytes[offset..].iter().position(|&b| b == b'\n') else {
                // Unterminated final line: torn mid-write.
                break;
            };
            let parsed = std::str::from_utf8(&bytes[offset..offset + nl])
                .ok()
                .and_then(|s| serde_json::from_str::<EventRecord>(s).ok());
            match parsed {
                Some(record) => {
                    events.push(record);
                }
                None => {
                    // A terminated line that does not parse is damage,
                    // not a tear: event lines never contain newlines, so
                    // a torn write is always an *unterminated* prefix.
                    // Skip it and keep reading.
                    skipped_lines += 1;
                }
            }
            offset += nl + 1;
            valid_len = offset as u64;
        }
        Ok(LoadedLedger {
            events,
            valid_len,
            torn_bytes: bytes.len() as u64 - valid_len,
            skipped_lines,
        })
    }

    /// Opens the ledger for appending, truncating any torn tail first
    /// (mirroring [`crate::ResultStore::open_for_append`]) and
    /// recording the truncation itself as an [`Event::TornTail`].
    ///
    /// # Errors
    ///
    /// [`CampaignError::Io`].
    pub fn appender(&self) -> Result<LedgerAppender, CampaignError> {
        let loaded = self.load()?;
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(false)
            .open(&self.path)?;
        let on_disk = file.metadata()?.len();
        file.set_len(loaded.valid_len)?;
        if on_disk != loaded.valid_len {
            file.sync_all()?;
        }
        file.seek(SeekFrom::End(0))?;
        let mut appender = LedgerAppender { file };
        if loaded.torn_bytes > 0 {
            appender.append(Event::TornTail { bytes: loaded.torn_bytes })?;
        }
        Ok(appender)
    }
}

/// An open ledger appender (one JSON line per event).
#[derive(Debug)]
pub struct LedgerAppender {
    file: File,
}

impl LedgerAppender {
    /// Appends `event` stamped with the current wall clock.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Io`] / [`CampaignError::Json`].
    pub fn append(&mut self, event: Event) -> Result<(), CampaignError> {
        self.append_at(now_ms(), event)
    }

    /// Appends `event` with an explicit stamp (deterministic tests).
    ///
    /// # Errors
    ///
    /// [`CampaignError::Io`] / [`CampaignError::Json`].
    pub fn append_at(&mut self, t_ms: u64, event: Event) -> Result<(), CampaignError> {
        let mut json = serde_json::to_string(&EventRecord { t_ms, event })?;
        json.push('\n');
        self.file.write_all(json.as_bytes())?;
        Ok(())
    }

    /// Flushes appended events to disk (`fdatasync`).
    ///
    /// # Errors
    ///
    /// [`CampaignError::Io`].
    pub fn sync(&mut self) -> Result<(), CampaignError> {
        self.file.sync_data()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str) -> EventLedger {
        let path = std::env::temp_dir().join(format!("dynring_events_test_{name}.jsonl"));
        let _ = std::fs::remove_file(&path);
        EventLedger::new(path)
    }

    fn unit_event(index: usize) -> Event {
        Event::Unit {
            hash: format!("h{index}"),
            index,
            algorithm: "PEF_3+".into(),
            dynamics: "bernoulli(p=0.5)".into(),
            scheduler: "sync".into(),
            route: "batch".into(),
            arity: 64,
            replicas: 8,
            covered: 8,
            replica_rounds: 640,
            wall_us: 1500,
        }
    }

    #[test]
    fn missing_ledgers_load_empty() {
        let ledger = temp("missing");
        let loaded = ledger.load().expect("loads");
        assert_eq!(loaded.events.len(), 0);
        assert_eq!(loaded.torn_bytes, 0);
    }

    #[test]
    fn events_round_trip_in_order() {
        let ledger = temp("roundtrip");
        let mut app = ledger.appender().expect("opens");
        app.append_at(10, unit_event(0)).expect("appends");
        app.append_at(20, Event::Wave { units: 1, wall_us: 2000 }).expect("appends");
        app.sync().expect("syncs");
        drop(app);
        let loaded = ledger.load().expect("loads");
        assert_eq!(loaded.events.len(), 2);
        assert_eq!(loaded.events[0].t_ms, 10);
        assert_eq!(loaded.events[0].event, unit_event(0));
        assert_eq!(loaded.torn_bytes, 0);
        assert_eq!(loaded.skipped_lines, 0);
        let _ = std::fs::remove_file(ledger.path());
    }

    #[test]
    fn torn_tails_are_measured_then_truncated_and_recorded() {
        let ledger = temp("torn");
        let mut app = ledger.appender().expect("opens");
        app.append_at(10, unit_event(0)).expect("appends");
        drop(app);
        // Tear: an unterminated half-line at the end.
        let tear = b"{\"t_ms\":20,\"event\":{\"Wave";
        let mut file =
            OpenOptions::new().append(true).open(ledger.path()).expect("opens raw");
        file.write_all(tear).expect("tears");
        drop(file);
        let loaded = ledger.load().expect("loads");
        assert_eq!(loaded.events.len(), 1);
        assert_eq!(loaded.torn_bytes, tear.len() as u64);
        // Reopening truncates the tear and records it.
        let mut app = ledger.appender().expect("reopens");
        app.append_at(30, unit_event(1)).expect("appends");
        drop(app);
        let loaded = ledger.load().expect("loads");
        assert_eq!(loaded.torn_bytes, 0);
        assert_eq!(loaded.events.len(), 3);
        assert_eq!(loaded.events[1].event, Event::TornTail { bytes: tear.len() as u64 });
        assert_eq!(loaded.events[2].event, unit_event(1));
        let _ = std::fs::remove_file(ledger.path());
    }

    #[test]
    fn corrupt_interior_lines_are_skipped_not_fatal() {
        let ledger = temp("interior");
        let mut app = ledger.appender().expect("opens");
        app.append_at(10, unit_event(0)).expect("appends");
        drop(app);
        let mut file =
            OpenOptions::new().append(true).open(ledger.path()).expect("opens raw");
        file.write_all(b"not json at all\n").expect("damages");
        drop(file);
        let mut app = ledger.appender().expect("reopens past damage");
        app.append_at(20, unit_event(1)).expect("appends");
        drop(app);
        let loaded = ledger.load().expect("loads");
        assert_eq!(loaded.events.len(), 2);
        assert_eq!(loaded.skipped_lines, 1);
        assert_eq!(loaded.torn_bytes, 0);
        let _ = std::fs::remove_file(ledger.path());
    }

    #[test]
    fn ledger_path_is_a_store_sibling() {
        let ledger = EventLedger::for_store(Path::new("/tmp/camp.jsonl"));
        assert_eq!(ledger.path(), Path::new("/tmp/camp.jsonl.events.jsonl"));
    }
}
