//! Distributed-campaign properties: arbitrary kill points across shard
//! workers, followed by per-shard resume and a merge, must reproduce the
//! uninterrupted serial store byte for byte — and the merged bundle must
//! certify at level 1 and level 2. Shard stores that cannot belong
//! together (overlapping ranges, foreign specs) must always refuse with
//! a named `MERGE-CONFLICT` / spec-mismatch diagnostic, never merge
//! silently.

use proptest::prelude::*;

use dynring_analysis::AlgorithmChoice;
use dynring_campaign::{
    certify, merge_stores, run_campaign, CampaignError, CampaignSpec, CertifyOptions,
    FailPlan, FaultKind, PlacementAxis, ResultStore, RunOptions, ShardSel, UnitDynamics,
    UnitScheduler,
};

/// Twelve units (batch-routed Bernoulli and serial static), cheap enough
/// to re-run per proptest case.
fn spec() -> CampaignSpec {
    CampaignSpec {
        name: "distributed".into(),
        ring_sizes: vec![4, 5],
        robots: vec![1],
        placements: vec![PlacementAxis::EvenlySpaced],
        algorithms: vec![AlgorithmChoice::Pef1],
        dynamics: vec![UnitDynamics::Bernoulli { p: 0.6 }, UnitDynamics::Static],
        schedulers: vec![UnitScheduler::Sync],
        seeds: vec![1, 2, 3],
        horizon: 100,
        replicas: 2,
    }
}

fn temp_store(tag: &str) -> ResultStore {
    let path = std::env::temp_dir().join(format!("dynring_distributed_{tag}.jsonl"));
    let _ = std::fs::remove_file(&path);
    ResultStore::new(path)
}

fn remove(store: &ResultStore) {
    let _ = std::fs::remove_file(store.path());
}

fn shard_opts(sel: ShardSel, fault: Option<FailPlan>) -> RunOptions {
    RunOptions { workers: 1, max_units: None, fresh: false, fault, shard: Some(sel), poison: None, events: None, slow_unit: None }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// One shard worker killed at an arbitrary byte position, resumed,
    /// then merged with its siblings: the canonical store is
    /// byte-identical to a serial run and certifies at level 1 and 2.
    #[test]
    fn killed_shard_workers_resume_and_merge_byte_identically(
        count in 1usize..4,
        victim in 0usize..4,
        position in 0.0f64..1.0,
    ) {
        let victim = victim % count;
        let spec = spec();
        let tag = format!("{count}_{victim}_{}", (position * 1000.0) as u64);

        let serial = temp_store(&format!("serial_{tag}"));
        run_campaign(&spec, &serial, &RunOptions {
            workers: 1, max_units: None, fresh: true, fault: None, shard: None, poison: None, events: None, slow_unit: None,
        }).expect("serial reference runs");
        let expected = std::fs::read(serial.path()).expect("readable");

        let shards: Vec<ResultStore> =
            (0..count).map(|i| temp_store(&format!("shard{i}_{tag}"))).collect();
        for (i, store) in shards.iter().enumerate() {
            let sel = ShardSel::Balanced { index: i, count };
            if i == victim {
                // Kill mid-write at a position scaled to the reference
                // size; the tear lands in this shard's own store. The
                // fault may also land past the shard's end and never
                // fire — then the shard simply completes.
                let after_bytes =
                    (expected.len() as f64 / count as f64 * position) as u64;
                let kill = FailPlan::new(FaultKind::Kill { after_bytes });
                match run_campaign(&spec, store, &shard_opts(sel, Some(kill))) {
                    Err(CampaignError::InjectedFault(_)) | Ok(_) => {}
                    Err(e) => prop_assert!(false, "unexpected shard error: {e}"),
                }
                // Crash-safe resume of just this shard.
                run_campaign(&spec, store, &shard_opts(sel, None))
                    .expect("killed shard resumes");
            } else {
                run_campaign(&spec, store, &shard_opts(sel, None))
                    .expect("healthy shard runs");
            }
        }

        let merged = temp_store(&format!("merged_{tag}"));
        let outcome = merge_stores(&spec, &shards, &merged).expect("merge succeeds");
        prop_assert!(outcome.sealed);
        let bytes = std::fs::read(merged.path()).expect("readable");
        prop_assert_eq!(&bytes, &expected, "merge must reproduce the serial bytes");

        for level in [1u8, 2] {
            let verdict = certify(
                &spec,
                &merged,
                &CertifyOptions { level, sample: 4, seed: 0xCE47 },
            ).expect("certification runs");
            prop_assert!(verdict.pass, "merged bundle must certify at level {level}");
        }

        remove(&serial);
        remove(&merged);
        for s in &shards { remove(s); }
    }

    /// Shard 0 of N and shard 0 of M both own plan unit 0: merging them
    /// must always refuse with the named overlap conflict.
    #[test]
    fn overlapping_shards_always_refuse_by_name(
        count_a in 2usize..5,
        count_b in 2usize..5,
    ) {
        let spec = spec();
        let tag = format!("overlap_{count_a}_{count_b}");
        let a = temp_store(&format!("a_{tag}"));
        let b = temp_store(&format!("b_{tag}"));
        run_campaign(&spec, &a, &shard_opts(ShardSel::Balanced { index: 0, count: count_a }, None))
            .expect("shard a runs");
        run_campaign(&spec, &b, &shard_opts(ShardSel::Balanced { index: 0, count: count_b }, None))
            .expect("shard b runs");
        let merged = temp_store(&format!("m_{tag}"));
        let err = merge_stores(&spec, &[a.clone(), b.clone()], &merged)
            .expect_err("overlap must refuse");
        let msg = err.to_string();
        prop_assert!(msg.contains("MERGE-CONFLICT"), "{msg}");
        prop_assert!(msg.contains("reason=overlap"), "{msg}");
        remove(&a);
        remove(&b);
        remove(&merged);
    }

    /// A shard store of a mutated spec never merges under the original
    /// spec: refused by hash with the named spec-mismatch conflict.
    #[test]
    fn spec_mismatched_shards_always_refuse_by_name(delta in 1u64..6) {
        let spec = spec();
        let mut other = spec.clone();
        other.horizon += delta;
        let tag = format!("mismatch_{delta}");
        let foreign = temp_store(&format!("f_{tag}"));
        run_campaign(&other, &foreign, &shard_opts(ShardSel::Balanced { index: 0, count: 2 }, None))
            .expect("foreign shard runs");
        let merged = temp_store(&format!("m_{tag}"));
        let err = merge_stores(&spec, std::slice::from_ref(&foreign), &merged)
            .expect_err("foreign spec must refuse");
        let msg = err.to_string();
        prop_assert!(msg.contains("reason=spec-mismatch"), "{msg}");
        remove(&foreign);
        remove(&merged);
    }
}
