//! Campaign determinism properties: `run` → interrupt (either a polite
//! `--max-units` stop or a byte-level truncation mid-record) → `resume`
//! reproduces the uninterrupted store bit for bit, and parallel execution
//! equals serial execution bytewise.

use proptest::prelude::*;

use dynring_analysis::AlgorithmChoice;
use dynring_campaign::{
    run_campaign, CampaignSpec, PlacementAxis, ResultStore, RunOptions, UnitDynamics,
    UnitScheduler,
};

/// A small but varied spec family: every case mixes batch-routed
/// (bernoulli × sync) and serial units.
fn spec_for(ring: usize, robots: usize, p_milli: u64, seeds: usize, replicas: usize) -> CampaignSpec {
    CampaignSpec {
        name: format!("prop-{ring}-{robots}-{p_milli}-{seeds}-{replicas}"),
        ring_sizes: vec![ring, ring + 2],
        robots: vec![1, robots],
        placements: vec![PlacementAxis::EvenlySpaced],
        algorithms: vec![AlgorithmChoice::Pef3Plus, AlgorithmChoice::BounceOnMissingEdge],
        dynamics: vec![
            UnitDynamics::Bernoulli { p: p_milli as f64 / 1000.0 },
            UnitDynamics::Static,
        ],
        schedulers: vec![UnitScheduler::Sync, UnitScheduler::Ssync],
        seeds: (0..seeds as u64).collect(),
        horizon: 150,
        replicas,
    }
}

fn temp_store(tag: &str) -> ResultStore {
    let path = std::env::temp_dir().join(format!("dynring_determinism_{tag}.jsonl"));
    let _ = std::fs::remove_file(&path);
    ResultStore::new(path)
}

fn remove(store: &ResultStore) {
    let _ = std::fs::remove_file(store.path());
}

fn run_to_completion(spec: &CampaignSpec, store: &ResultStore, workers: usize) -> Vec<u8> {
    run_campaign(
        spec,
        store,
        &RunOptions { workers, max_units: None, fresh: true, fault: None, shard: None, poison: None, events: None, slow_unit: None },
    )
    .expect("campaign runs");
    std::fs::read(store.path()).expect("store readable")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn truncated_store_resumes_to_identical_bytes(
        ring in 4usize..6,
        robots in 2usize..4,
        p_milli in 350u64..750,
        seeds in 1usize..3,
        replicas in 1usize..6,
        cut_fraction in 0.05f64..0.95,
    ) {
        let spec = spec_for(ring, robots, p_milli, seeds, replicas);
        let tag = format!("trunc_{ring}_{robots}_{p_milli}_{seeds}_{replicas}");

        let reference = temp_store(&format!("{tag}_ref"));
        let expected = run_to_completion(&spec, &reference, 1);

        // Interrupt by chopping the finished store at an arbitrary byte —
        // mid-line cuts model a torn write, line-aligned cuts model a
        // clean kill between records.
        let interrupted = temp_store(&format!("{tag}_cut"));
        let cut = ((expected.len() as f64 * cut_fraction) as usize).max(1);
        std::fs::write(interrupted.path(), &expected[..cut]).expect("write truncated store");

        let outcome = run_campaign(
            &spec,
            &interrupted,
            &RunOptions { workers: 2, max_units: None, fresh: false, fault: None, shard: None, poison: None, events: None, slow_unit: None },
        );
        // A cut inside the header line leaves no header: the runner then
        // rebuilds the store from scratch, which must also converge.
        prop_assert!(outcome.is_ok(), "resume failed: {:?}", outcome);
        let resumed = std::fs::read(interrupted.path()).expect("store readable");
        prop_assert_eq!(
            &resumed,
            &expected,
            "resume after a {cut}-byte truncation diverged"
        );
        remove(&reference);
        remove(&interrupted);
    }

    #[test]
    fn parallel_execution_equals_serial_bytewise(
        ring in 4usize..6,
        robots in 2usize..4,
        p_milli in 350u64..750,
        replicas in 1usize..6,
        workers in 2usize..9,
    ) {
        let spec = spec_for(ring, robots, p_milli, 1, replicas);
        let tag = format!("par_{ring}_{robots}_{p_milli}_{replicas}_{workers}");
        let serial = temp_store(&format!("{tag}_serial"));
        let parallel = temp_store(&format!("{tag}_par"));
        let a = run_to_completion(&spec, &serial, 1);
        let b = run_to_completion(&spec, &parallel, workers);
        prop_assert_eq!(&a, &b, "workers = {}", workers);
        remove(&serial);
        remove(&parallel);
    }

    #[test]
    fn interrupt_points_compose_with_resume(
        stop_a in 1usize..6,
        stop_b in 1usize..6,
    ) {
        // Polite interruptions (--max-units) at two successive points,
        // then a finishing resume: still byte-identical to one shot.
        let spec = spec_for(4, 2, 500, 1, 3);
        let reference = temp_store("compose_ref");
        let expected = run_to_completion(&spec, &reference, 1);

        let staged = temp_store("compose_staged");
        run_campaign(
            &spec,
            &staged,
            &RunOptions { workers: 1, max_units: Some(stop_a), fresh: true, fault: None, shard: None, poison: None, events: None, slow_unit: None },
        )
        .expect("first stage runs");
        run_campaign(
            &spec,
            &staged,
            &RunOptions { workers: 3, max_units: Some(stop_b), fresh: false, fault: None, shard: None, poison: None, events: None, slow_unit: None },
        )
        .expect("second stage runs");
        run_campaign(
            &spec,
            &staged,
            &RunOptions { workers: 2, max_units: None, fresh: false, fault: None, shard: None, poison: None, events: None, slow_unit: None },
        )
        .expect("finishing stage runs");
        let staged_bytes = std::fs::read(staged.path()).expect("store readable");
        prop_assert_eq!(&staged_bytes, &expected);
        remove(&reference);
        remove(&staged);
    }
}
