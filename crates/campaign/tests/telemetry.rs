//! Telemetry is strictly out-of-band: a campaign run with the events
//! ledger and registry instrumentation enabled produces a result store
//! *byte-identical* to a plain run (and it still certifies at level 2),
//! the ledger narrates the run faithfully (RunStart → Unit… → Wave… →
//! RunEnd), an arbitrarily torn ledger tail heals on reopen without
//! losing intact events, and the `slow-unit` straggler injection shows
//! up in the recorded wall times — never in the bytes.

use proptest::prelude::*;

use dynring_analysis::AlgorithmChoice;
use dynring_campaign::{
    certify, run_campaign, summarize, CampaignSpec, CertifyOptions, Event, EventLedger,
    PlacementAxis, ResultStore, RunOptions, UnitDynamics, UnitScheduler, EVENTS_SCHEMA,
};

/// A small spec family mixing batch-routed (bernoulli) and serial
/// (static) units, so both routes land in the ledger.
fn spec_for(ring: usize, robots: usize, seeds: usize) -> CampaignSpec {
    CampaignSpec {
        name: format!("telemetry-{ring}-{robots}-{seeds}"),
        ring_sizes: vec![ring],
        robots: vec![1, robots],
        placements: vec![PlacementAxis::EvenlySpaced],
        algorithms: vec![AlgorithmChoice::Pef3Plus, AlgorithmChoice::KeepDirection],
        dynamics: vec![UnitDynamics::Bernoulli { p: 0.7 }, UnitDynamics::Static],
        schedulers: vec![UnitScheduler::Sync],
        seeds: (0..seeds as u64).collect(),
        horizon: 120,
        replicas: 8,
    }
}

fn temp_store(tag: &str) -> ResultStore {
    let path = std::env::temp_dir().join(format!("dynring_telemetry_{tag}.jsonl"));
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(format!("{}.events.jsonl", path.display()));
    ResultStore::new(path)
}

fn cleanup(store: &ResultStore) {
    let _ = std::fs::remove_file(store.path());
    let _ = std::fs::remove_file(EventLedger::for_store(store.path()).path());
}

fn opts(events: Option<std::path::PathBuf>) -> RunOptions {
    RunOptions {
        workers: 2,
        max_units: None,
        fresh: true,
        fault: None,
        shard: None,
        poison: None,
        events,
        slow_unit: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn telemetered_run_is_byte_identical_and_certifies(
        ring in 4usize..7,
        robots in 2usize..4,
        seeds in 1usize..3,
    ) {
        let spec = spec_for(ring, robots, seeds);
        let plain = temp_store("plain");
        run_campaign(&spec, &plain, &opts(None)).expect("plain run");
        let plain_bytes = std::fs::read(plain.path()).expect("plain bytes");

        let tele = temp_store("tele");
        let ledger = EventLedger::for_store(tele.path());
        run_campaign(&spec, &tele, &opts(Some(ledger.path().to_path_buf())))
            .expect("telemetered run");
        let tele_bytes = std::fs::read(tele.path()).expect("tele bytes");

        prop_assert_eq!(&plain_bytes, &tele_bytes, "telemetry must never change store bytes");
        let verdict = certify(
            &spec,
            &tele,
            &CertifyOptions { level: 2, sample: 4, seed: 0xCE47 },
        )
        .expect("certify runs");
        prop_assert!(verdict.pass, "telemetered store must certify at level 2");

        // The ledger narrates the run: header first, seal last, one Unit
        // event per planned unit, at least one Wave.
        let loaded = ledger.load().expect("ledger loads");
        let planned = spec.plan().expect("plans").units.len();
        prop_assert_eq!(loaded.torn_bytes, 0);
        prop_assert_eq!(loaded.skipped_lines, 0);
        match &loaded.events.first().expect("nonempty").event {
            Event::RunStart { schema, planned: p, .. } => {
                prop_assert_eq!(schema.as_str(), EVENTS_SCHEMA);
                prop_assert_eq!(*p, planned);
            }
            other => prop_assert!(false, "first event must be RunStart, got {other:?}"),
        }
        let ends_clean = matches!(
            loaded.events.last().expect("nonempty").event,
            Event::RunEnd { pending: 0, .. }
        );
        prop_assert!(ends_clean, "last event must be RunEnd with nothing pending");
        let units = loaded
            .events
            .iter()
            .filter(|r| matches!(r.event, Event::Unit { .. }))
            .count();
        prop_assert_eq!(units, planned);
        let has_wave = loaded.events.iter().any(|r| matches!(r.event, Event::Wave { .. }));
        prop_assert!(has_wave, "at least one Wave event expected");

        // And the aggregator agrees with the raw ledger.
        let summary = summarize(&[loaded]);
        prop_assert_eq!(summary.units, planned);
        prop_assert_eq!(summary.faults.spawns, 0);
        prop_assert_eq!(summary.faults.lost_units, 0);
        cleanup(&plain);
        cleanup(&tele);
    }

    #[test]
    fn torn_ledger_tail_heals_on_reopen(cut in 1usize..200) {
        let spec = spec_for(4, 2, 1);
        let store = temp_store("torn");
        let ledger = EventLedger::for_store(store.path());
        run_campaign(&spec, &store, &opts(Some(ledger.path().to_path_buf())))
            .expect("telemetered run");
        let bytes = std::fs::read(ledger.path()).expect("ledger bytes");
        let before = ledger.load().expect("pre-tear load");
        prop_assert!(!before.events.is_empty());

        // Tear the tail at an arbitrary byte offset.
        let cut = cut.min(bytes.len() - 1);
        std::fs::write(ledger.path(), &bytes[..bytes.len() - cut]).expect("tears");
        let torn = ledger.load().expect("torn load is not fatal");
        let tear_bytes = torn.torn_bytes;
        prop_assert!(torn.events.len() <= before.events.len());

        // Reopen for append: the tail truncates, the tear is recorded,
        // and new events land cleanly after it.
        let mut app = ledger.appender().expect("reopens past tear");
        app.append(Event::RunEnd { executed: 0, pending: 0 }).expect("appends");
        app.sync().expect("syncs");
        let healed = ledger.load().expect("healed load");
        prop_assert_eq!(healed.torn_bytes, 0);
        prop_assert_eq!(healed.skipped_lines, 0);
        if tear_bytes > 0 {
            let tear_recorded = healed
                .events
                .iter()
                .any(|r| r.event == Event::TornTail { bytes: tear_bytes });
            prop_assert!(tear_recorded, "the tear must be recorded as a TornTail event");
        }
        let ends_with_run_end = matches!(
            healed.events.last().expect("nonempty").event,
            Event::RunEnd { .. }
        );
        prop_assert!(ends_with_run_end, "appends after healing must land");
        cleanup(&store);
    }
}

#[test]
fn slow_unit_inflates_ledger_wall_time_not_bytes() {
    let spec = spec_for(5, 2, 1);
    let target = spec.plan().expect("plans").units[1].hash.clone();

    let plain = temp_store("fast");
    run_campaign(&spec, &plain, &opts(None)).expect("plain run");
    let plain_bytes = std::fs::read(plain.path()).expect("plain bytes");

    let slow = temp_store("slow");
    let ledger = EventLedger::for_store(slow.path());
    let mut o = opts(Some(ledger.path().to_path_buf()));
    o.slow_unit = Some((target.clone(), 120));
    run_campaign(&spec, &slow, &o).expect("slow run");
    let slow_bytes = std::fs::read(slow.path()).expect("slow bytes");
    assert_eq!(plain_bytes, slow_bytes, "slow-unit shapes time, never bytes");

    let loaded = ledger.load().expect("ledger loads");
    let wall = loaded
        .events
        .iter()
        .find_map(|r| match &r.event {
            Event::Unit { hash, wall_us, .. } if *hash == target => Some(*wall_us),
            _ => None,
        })
        .expect("target unit event present");
    assert!(
        wall >= 120_000,
        "injected 120ms must show in the unit's wall time, got {wall}us"
    );
    cleanup(&plain);
    cleanup(&slow);
}
