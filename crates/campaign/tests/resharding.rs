//! Work-stealing re-sharding properties, driven at the library level the
//! same way the supervisor drives them between processes:
//!
//! - an exhausted shard killed at an *arbitrary* byte position, split at
//!   its plan-order prefix into sub-shards (one of which is itself killed
//!   and resumed), must merge back into the canonical store byte for byte;
//! - a poisoned unit — whichever worker executes it dies — must narrow,
//!   split by split, to a terminal quarantine of exactly that unit's
//!   1-unit sub-range, with every other planned unit complete;
//! - an injected append-time I/O error must leave a clean (untorn) prefix
//!   that resumes byte-identically;
//! - the supervisor's restart jitter must be deterministic and strictly
//!   below its base backoff.

use std::path::PathBuf;

use proptest::prelude::*;

use dynring_analysis::seeds::backoff_jitter_ms;
use dynring_analysis::AlgorithmChoice;
use dynring_campaign::{
    merge_manifest, run_campaign, CampaignError, CampaignSpec, FailPlan, FaultKind,
    PlacementAxis, ResultStore, RunOptions, ShardManifest, ShardSel, UnitDynamics,
    UnitScheduler,
};

/// Twelve cheap units (batch-routed Bernoulli and serial static).
fn spec() -> CampaignSpec {
    CampaignSpec {
        name: "resharding".into(),
        ring_sizes: vec![4, 5],
        robots: vec![1],
        placements: vec![PlacementAxis::EvenlySpaced],
        algorithms: vec![AlgorithmChoice::Pef1],
        dynamics: vec![UnitDynamics::Bernoulli { p: 0.6 }, UnitDynamics::Static],
        schedulers: vec![UnitScheduler::Sync],
        seeds: vec![1, 2, 3],
        horizon: 100,
        replicas: 2,
    }
}

/// A per-case scratch directory (cases run concurrently across tests).
fn case_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dynring_resharding_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn entry_opts(start: usize, units: usize) -> RunOptions {
    RunOptions {
        workers: 1,
        fresh: false,
        shard: Some(ShardSel::Range { start, units }),
        ..RunOptions::default()
    }
}

/// Runs one manifest entry to completion.
fn run_entry(spec: &CampaignSpec, manifest: &ShardManifest, idx: usize) {
    let e = &manifest.entries[idx];
    run_campaign(spec, &ResultStore::new(&e.store), &entry_opts(e.start, e.units))
        .expect("entry runs");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Kill → steal → (kill a child → resume it) → merge, at arbitrary
    /// kill points and split widths: the folded store is byte-identical
    /// to the uninterrupted serial run.
    #[test]
    fn kill_steal_resume_interleavings_merge_byte_identically(
        count in 1usize..4,
        victim in 0usize..4,
        kill_pos in 0.0f64..1.0,
        pieces in 1usize..4,
        child_kill_pos in 0.0f64..1.0,
    ) {
        let victim = victim % count;
        let spec = spec();
        let tag = format!(
            "steal_{count}_{victim}_{}_{pieces}_{}",
            (kill_pos * 1000.0) as u64,
            (child_kill_pos * 1000.0) as u64
        );
        let dir = case_dir(&tag);

        let serial = ResultStore::new(dir.join("serial.jsonl"));
        run_campaign(&spec, &serial, &RunOptions::default()).expect("serial runs");
        let expected = std::fs::read(serial.path()).expect("readable");

        let mut manifest = ShardManifest::build(&spec.plan().expect("plan"), count, &dir);
        for i in 0..manifest.entries.len() {
            if i != victim {
                run_entry(&spec, &manifest, i);
            }
        }

        // The victim dies mid-write at an arbitrary byte position; its
        // torn tail truncates away on load, leaving a plan-order prefix.
        let parent = manifest.entries[victim].clone();
        let parent_store = ResultStore::new(&parent.store);
        let after_bytes = (expected.len() as f64 / count as f64 * kill_pos) as u64;
        let kill = FailPlan::new(FaultKind::Kill { after_bytes });
        match run_campaign(&spec, &parent_store, &RunOptions {
            fault: Some(kill),
            ..entry_opts(parent.start, parent.units)
        }) {
            Err(CampaignError::InjectedFault(_)) | Ok(_) => {}
            Err(e) => prop_assert!(false, "unexpected shard error: {e}"),
        }
        let done = parent_store
            .load()
            .map(|l| l.records.len())
            .unwrap_or(0)
            .min(parent.units);

        if done < parent.units {
            // Steal the tail, exactly as the supervisor records it.
            let children =
                manifest.split_entry(victim, done, pieces).expect("splits");
            manifest.validate().expect("split manifest stays exact");
            for (k, &c) in children.iter().enumerate() {
                let e = manifest.entries[c].clone();
                let child_store = ResultStore::new(&e.store);
                if k == 0 {
                    // One stolen sub-shard is itself killed and resumed:
                    // a steal is no less crash-safe than a plain shard.
                    let child_kill = FailPlan::new(FaultKind::Kill {
                        after_bytes: (expected.len() as f64 / count as f64
                            * child_kill_pos) as u64,
                    });
                    match run_campaign(&spec, &child_store, &RunOptions {
                        fault: Some(child_kill),
                        ..entry_opts(e.start, e.units)
                    }) {
                        Err(CampaignError::InjectedFault(_)) | Ok(_) => {}
                        Err(e) => prop_assert!(false, "unexpected child error: {e}"),
                    }
                }
                run_campaign(&spec, &child_store, &entry_opts(e.start, e.units))
                    .expect("child completes");
            }
        }

        let merged = ResultStore::new(dir.join("merged.jsonl"));
        let outcome = merge_manifest(&spec, &manifest, &merged).expect("folds");
        prop_assert!(outcome.sealed);
        let bytes = std::fs::read(merged.path()).expect("readable");
        prop_assert_eq!(&bytes, &expected, "steal fold must reproduce the serial bytes");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A poisoned unit narrows to a terminal 1-unit quarantine: applying
    /// the supervisor's steal rule (`split while done > 0 or the tail can
    /// still shrink`) converges, the quarantined range is exactly the
    /// poisoned unit, and every other planned unit ends up complete.
    #[test]
    fn poison_units_narrow_to_exactly_their_own_unit(
        count in 1usize..4,
        poison in 0usize..12,
        pieces_seed in 0usize..6,
    ) {
        let spec = spec();
        let plan = spec.plan().expect("plan");
        prop_assume!(poison < plan.units.len());
        let poison_hash = plan.units[poison].hash.clone();
        let tag = format!("poison_{count}_{poison}_{pieces_seed}");
        let dir = case_dir(&tag);
        let mut manifest = ShardManifest::build(&plan, count, &dir);

        let mut quarantined: Option<(usize, usize)> = None;
        // Strictly-shrinking splits over ≤12 units must settle well
        // within a bounded number of rounds; a miss means divergence.
        for _round in 0..64 {
            let incomplete: Vec<usize> = manifest
                .entries
                .iter()
                .filter(|e| !e.retired && e.units > 0)
                .filter(|e| {
                    let loaded = ResultStore::new(&e.store).load();
                    loaded.map(|l| l.records.len() < e.units).unwrap_or(true)
                })
                .map(|e| e.index)
                .collect();
            if incomplete.is_empty() {
                break;
            }
            for idx in incomplete {
                let e = manifest.entries[idx].clone();
                let store = ResultStore::new(&e.store);
                let poisoned = run_campaign(&spec, &store, &RunOptions {
                    poison: Some(poison_hash.clone()), events: None, slow_unit: None,
                    ..entry_opts(e.start, e.units)
                });
                let died = matches!(poisoned, Err(CampaignError::InjectedFault(_)));
                if !died {
                    poisoned.expect("unpoisoned entry completes");
                    continue;
                }
                let done = store
                    .load()
                    .map(|l| l.records.len())
                    .unwrap_or(0)
                    .min(e.units);
                let remaining = e.units - done;
                let splittable = remaining > 0 && (done > 0 || remaining >= 2);
                if splittable {
                    let mut pieces = (pieces_seed % 3 + 1).min(remaining);
                    if done == 0 {
                        pieces = pieces.max(2).min(remaining);
                    }
                    manifest.split_entry(idx, done, pieces).expect("splits");
                    manifest.validate().expect("split manifest stays exact");
                } else {
                    prop_assert!(
                        quarantined.is_none(),
                        "only one range may ever be quarantined"
                    );
                    quarantined = Some((e.start + done, remaining));
                }
            }
            if quarantined.is_some() {
                // Finish every entry that doesn't hold the poison, then
                // stop driving.
                for i in 0..manifest.entries.len() {
                    let e = manifest.entries[i].clone();
                    let holds_poison =
                        (e.start..e.start + e.units).contains(&poison);
                    if !e.retired && e.units > 0 && !holds_poison {
                        run_entry(&spec, &manifest, i);
                    }
                }
                break;
            }
        }

        let (q_start, q_units) = quarantined.expect("poison must end in quarantine");
        prop_assert_eq!(q_units, 1, "terminal quarantine must be a single unit");
        prop_assert_eq!(q_start, poison, "quarantine must name the poisoned unit");

        // Everything except the poisoned unit is complete: the merge
        // holds back exactly one unit and refuses to seal.
        let merged = ResultStore::new(dir.join("merged.jsonl"));
        let outcome = merge_manifest(&spec, &manifest, &merged).expect("partial fold");
        prop_assert!(!outcome.sealed);
        prop_assert_eq!(outcome.missing, 1, "exactly the poisoned unit is missing");
        prop_assert_eq!(outcome.merged, poison, "plan-order prefix up to the poison");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// An injected append-time I/O error fails the run *cleanly*: the
    /// store keeps an untorn plan-order prefix of exactly the records
    /// before the error, and a plain resume is byte-identical to an
    /// uninterrupted run.
    #[test]
    fn io_errors_leave_a_clean_prefix_that_resumes_byte_identically(
        record in 0usize..14,
    ) {
        let spec = spec();
        let tag = format!("ioerr_{record}");
        let dir = case_dir(&tag);
        let reference = ResultStore::new(dir.join("reference.jsonl"));
        run_campaign(&spec, &reference, &RunOptions::default()).expect("reference runs");
        let expected = std::fs::read(reference.path()).expect("readable");

        let store = ResultStore::new(dir.join("faulted.jsonl"));
        let opts = RunOptions {
            workers: 1,
            fault: Some(FailPlan::new(FaultKind::IoError { record })),
            ..RunOptions::default()
        };
        match run_campaign(&spec, &store, &opts) {
            Err(CampaignError::Io(msg)) => {
                prop_assert!(msg.contains("injected io error"), "{msg}");
                let loaded = store.load().expect("prefix loads");
                prop_assert!(!loaded.torn_tail, "io error must not tear the store");
                prop_assert_eq!(loaded.records.len(), record);
                run_campaign(&spec, &store, &RunOptions {
                    fresh: false,
                    ..RunOptions::default()
                })
                .expect("resume completes");
            }
            Ok(outcome) => {
                // The trigger record lay past the plan: nothing fired.
                prop_assert!(outcome.is_complete());
                prop_assert!(record >= outcome.planned);
            }
            Err(e) => prop_assert!(false, "unexpected error: {e}"),
        }
        let bytes = std::fs::read(store.path()).expect("readable");
        prop_assert_eq!(&bytes, &expected, "resume must reproduce the reference bytes");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Restart jitter is a pure function of `(shard, attempt)`, strictly
    /// below its base, and zero for degenerate bases.
    #[test]
    fn backoff_jitter_is_deterministic_and_strictly_bounded(
        shard in 0u64..10_000,
        attempt in 0u64..1_000,
        base in 1u64..60_000,
    ) {
        let j = backoff_jitter_ms(shard, attempt, base);
        prop_assert_eq!(j, backoff_jitter_ms(shard, attempt, base), "stable across calls");
        prop_assert!(j < base, "jitter {j} must stay strictly below base {base}");
        prop_assert_eq!(backoff_jitter_ms(shard, attempt, 0), 0);
    }
}
