//! Crash-safety properties under deterministic fault injection: for
//! *every* injected fault, a subsequent `campaign resume` either
//! reproduces the uninterrupted store byte for byte or refuses with a
//! named diagnostic — it never silently drops, duplicates or alters a
//! unit.
//!
//! Crash faults (`Kill`, `TornRecord`) leave a torn tail the resume
//! truncates and re-executes, so they must *always* converge to the
//! reference bytes. Corruption faults (`BitFlip`, `DuplicateAppend`)
//! leave a fully-written but damaged store; resume must detect the
//! damage (`STORE-CORRUPT …`) unless the damage sits in the torn-tail
//! region, where truncation provably heals it back to the reference.

use proptest::prelude::*;

use dynring_analysis::AlgorithmChoice;
use dynring_campaign::{
    run_campaign, CampaignError, CampaignSpec, CertifyOptions, FailPlan, FaultKind,
    PlacementAxis, ResultStore, RunOptions, StoreLine, UnitDynamics, UnitScheduler,
};

/// Four units (two batch-routed Bernoulli, two serial static), cheap
/// enough to re-run hundreds of times.
fn spec() -> CampaignSpec {
    CampaignSpec {
        name: "faults".into(),
        ring_sizes: vec![4],
        robots: vec![1],
        placements: vec![PlacementAxis::EvenlySpaced],
        algorithms: vec![AlgorithmChoice::Pef1],
        dynamics: vec![UnitDynamics::Bernoulli { p: 0.6 }, UnitDynamics::Static],
        schedulers: vec![UnitScheduler::Sync],
        seeds: vec![1, 2],
        horizon: 100,
        replicas: 2,
    }
}

fn temp_store(tag: &str) -> ResultStore {
    let path = std::env::temp_dir().join(format!("dynring_faults_{tag}.jsonl"));
    let _ = std::fs::remove_file(&path);
    ResultStore::new(path)
}

fn remove(store: &ResultStore) {
    let _ = std::fs::remove_file(store.path());
}

/// The uninterrupted reference bytes for [`spec`] (serial, no faults).
fn reference_bytes(tag: &str) -> Vec<u8> {
    let store = temp_store(tag);
    run_campaign(
        &spec(),
        &store,
        &RunOptions { workers: 1, max_units: None, fresh: true, fault: None, shard: None, poison: None, events: None, slow_unit: None },
    )
    .expect("reference campaign runs");
    let bytes = std::fs::read(store.path()).expect("store readable");
    remove(&store);
    bytes
}

/// Runs with `fault` armed, then resumes without it; returns the faulted
/// run's result and the final store bytes (when resume succeeded) or the
/// resume error.
fn run_faulted_then_resume(
    tag: &str,
    fault: FailPlan,
) -> (Result<(), CampaignError>, Result<Vec<u8>, CampaignError>) {
    let store = temp_store(tag);
    let faulted = run_campaign(
        &spec(),
        &store,
        &RunOptions { workers: 1, max_units: None, fresh: true, fault: Some(fault), shard: None, poison: None, events: None, slow_unit: None },
    )
    .map(|_| ());
    let resumed = run_campaign(
        &spec(),
        &store,
        &RunOptions { workers: 1, max_units: None, fresh: false, fault: None, shard: None, poison: None, events: None, slow_unit: None },
    )
    .map(|_| std::fs::read(store.path()).expect("store readable"));
    remove(&store);
    (faulted, resumed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Kill at any byte position: the run aborts with the injected-fault
    /// error and resume converges to the reference bytes.
    #[test]
    fn kill_at_any_byte_resumes_byte_identically(position in 0.0f64..1.0) {
        let expected = reference_bytes("kill_ref");
        let after_bytes = (expected.len() as f64 * position) as u64;
        let (faulted, resumed) = run_faulted_then_resume(
            &format!("kill_{after_bytes}"),
            FailPlan::new(FaultKind::Kill { after_bytes }),
        );
        prop_assert!(
            matches!(faulted, Err(CampaignError::InjectedFault(_))),
            "a kill inside the written region must abort the run: {faulted:?}"
        );
        let bytes = resumed.expect("resume after a kill must succeed");
        prop_assert_eq!(&bytes, &expected, "kill after {} bytes", after_bytes);
    }

    /// A torn single-record write: same contract as a kill.
    #[test]
    fn torn_record_writes_resume_byte_identically(record in 0usize..4, keep in 0usize..200) {
        let expected = reference_bytes("torn_ref");
        let (faulted, resumed) = run_faulted_then_resume(
            &format!("torn_{record}_{keep}"),
            FailPlan::new(FaultKind::TornRecord { record, keep }),
        );
        prop_assert!(
            matches!(faulted, Err(CampaignError::InjectedFault(_))),
            "a torn record write must abort the run: {faulted:?}"
        );
        let bytes = resumed.expect("resume after a torn write must succeed");
        prop_assert_eq!(&bytes, &expected, "record {} torn at {} bytes", record, keep);
    }

    /// A silent bit flip inside a record line: the faulted run completes,
    /// and resume either refuses with the named diagnostic or — when the
    /// flip hit the final record's newline, merging it into the seal and
    /// turning both into a torn tail — heals back to the reference bytes.
    #[test]
    fn bit_flips_are_detected_or_healed(
        record in 0usize..4,
        byte in 0usize..4096,
        xor in 1u8..=255,
    ) {
        let expected = reference_bytes("flip_ref");
        let (faulted, resumed) = run_faulted_then_resume(
            &format!("flip_{record}_{byte}_{xor}"),
            FailPlan::new(FaultKind::BitFlip { record, byte, xor }),
        );
        prop_assert!(faulted.is_ok(), "a bit flip must not abort the run: {faulted:?}");
        match resumed {
            Ok(bytes) => prop_assert_eq!(
                &bytes,
                &expected,
                "a resume that accepts a flipped store must have healed it \
                 (record {}, byte {}, xor {:#04x})",
                record,
                byte,
                xor
            ),
            Err(e) => {
                let msg = e.to_string();
                prop_assert!(
                    msg.contains("STORE-CORRUPT"),
                    "refusal must carry the named diagnostic, got: {}",
                    msg
                );
            }
        }
    }

    /// A duplicated record append: the faulted run completes, and resume
    /// must refuse naming the duplicated unit — never absorb or
    /// double-count it.
    #[test]
    fn duplicate_appends_refuse_with_a_named_diagnostic(record in 0usize..4) {
        let (faulted, resumed) = run_faulted_then_resume(
            &format!("dup_{record}"),
            FailPlan::new(FaultKind::DuplicateAppend { record }),
        );
        prop_assert!(faulted.is_ok(), "a duplicate append must not abort the run: {faulted:?}");
        let err = resumed.expect_err("a duplicated record must refuse to resume");
        let msg = err.to_string();
        prop_assert!(
            msg.contains("reason=duplicate-unit"),
            "refusal must name the duplicate, got: {}",
            msg
        );
    }

    /// The universal contract over seeded plans of all four kinds:
    /// byte-identity or a named refusal, nothing else.
    #[test]
    fn every_seeded_fault_resumes_identically_or_refuses_by_name(seed in 0u64..64) {
        let expected = reference_bytes("seeded_ref");
        let plan = FailPlan::from_seed(seed, 4, expected.len() as u64 + 64);
        let (_, resumed) = run_faulted_then_resume(&format!("seeded_{seed}"), plan);
        match resumed {
            Ok(bytes) => prop_assert_eq!(&bytes, &expected, "seed {} ({:?})", seed, plan.kind()),
            Err(e) => {
                let msg = e.to_string();
                prop_assert!(
                    msg.contains("STORE-CORRUPT"),
                    "seed {} ({:?}): refusal must be named, got: {}",
                    seed,
                    plan.kind(),
                    msg
                );
            }
        }
    }

    /// Satellite pin: flipping a random byte of a random *interior*
    /// record (any record line but the last, newline included) makes load
    /// fail with the positional `STORE-CORRUPT line=… offset=…`
    /// diagnostic — interior damage is never absorbed by truncation.
    #[test]
    fn interior_record_flips_always_refuse_load(pick in 0.0f64..1.0, xor in 1u8..=255) {
        let store = temp_store("interior_flip");
        run_campaign(
            &spec(),
            &store,
            &RunOptions { workers: 1, max_units: None, fresh: true, fault: None, shard: None, poison: None, events: None, slow_unit: None },
        )
        .expect("campaign runs");
        let mut bytes = std::fs::read(store.path()).expect("store readable");
        // Region: from the start of the first record line to the start of
        // the last record line — every flip there is interior damage
        // (later lines follow), so truncation cannot repair it.
        let newlines: Vec<usize> =
            bytes.iter().enumerate().filter(|(_, &b)| b == b'\n').map(|(i, _)| i).collect();
        let start = newlines[0] + 1; // past the header line
        let end = newlines[newlines.len() - 3] + 1; // start of the last record line
        let target = start + ((end - start - 1) as f64 * pick) as usize;
        bytes[target] ^= xor;
        std::fs::write(store.path(), &bytes).expect("write flipped store");
        let err = store.load().expect_err("interior damage must refuse");
        let msg = err.to_string();
        prop_assert!(
            msg.contains("STORE-CORRUPT line=") && msg.contains("offset="),
            "diagnostic must be positional, got: {}",
            msg
        );
        remove(&store);
    }
}

/// Satellite pin: a result altered *consistently* (digest, chain and seal
/// all recomputed, so the structure is intact) passes level 1 but is
/// caught by a level-2 re-execution naming the diverging field.
#[test]
fn certify_level_2_catches_a_consistently_altered_result() {
    use dynring_campaign::trace::{chain_seed, ChainedRecord, StoreFooter};
    use dynring_campaign::{certify, render_verdict};

    let spec = spec();
    let store = temp_store("altered");
    run_campaign(
        &spec,
        &store,
        &RunOptions { workers: 1, max_units: None, fresh: true, fault: None, shard: None, poison: None, events: None, slow_unit: None },
    )
    .expect("campaign runs");

    // Rewrite the store: bump one record's total_cover_time, then rebuild
    // every digest, chain link and the seal so the bundle is internally
    // consistent — the forgery a replay (and only a replay) can catch.
    let text = std::fs::read_to_string(store.path()).expect("store readable");
    let mut header = None;
    let mut head = String::new();
    let mut records = Vec::new();
    let mut forged_unit = String::new();
    for line in text.lines() {
        match serde_json::from_str::<StoreLine>(line).expect("store line parses") {
            StoreLine::Header(h) => {
                head = chain_seed(&h);
                header = Some(h);
            }
            StoreLine::Chained(chained) => records.push(chained.record),
            StoreLine::Unit(record) => records.push(record),
            StoreLine::Seal(_) => {}
        }
    }
    records[1].result.total_cover_time += 1;
    forged_unit.push_str(&records[1].hash);
    let header = header.expect("store has a header");
    let mut out = serde_json::to_string(&StoreLine::Header(header.clone())).expect("json");
    out.push('\n');
    let n = records.len();
    for record in records {
        let chained = ChainedRecord::next(&head, record);
        head = chained.chain.clone();
        out.push_str(&serde_json::to_string(&StoreLine::Chained(chained)).expect("json"));
        out.push('\n');
    }
    let footer = StoreFooter::new(&header, n, head);
    out.push_str(&serde_json::to_string(&StoreLine::Seal(footer)).expect("json"));
    out.push('\n');
    std::fs::write(store.path(), out).expect("write forged store");

    let v1 = certify(&spec, &store, &CertifyOptions { level: 1, sample: 0, seed: 0 })
        .expect("certifies");
    assert!(v1.pass, "a consistent forgery must pass level 1: {:?}", v1.failures);
    let v2 = certify(&spec, &store, &CertifyOptions { level: 2, sample: 64, seed: 3 })
        .expect("certifies");
    assert!(!v2.pass, "level 2 must catch the forgery");
    let caught = v2
        .failures
        .iter()
        .any(|f| f.unit == forged_unit && f.field == "total_cover_time");
    assert!(caught, "the diverging field must be named: {:?}", v2.failures);
    let text = render_verdict(&v2);
    assert!(text.contains("CERTIFY-FAIL unit="), "{text}");
    remove(&store);
}
