//! Lane-word arithmetic: the machine-word abstraction under every
//! bit-sliced layer of the workspace.
//!
//! A [`LaneWord`] is a fixed-width register of 64, 128 or 256 **lanes**
//! — one bit per replica — with the boolean algebra the batch engine's
//! circuits need (AND/OR/XOR/NOT, whole-register shifts, per-lane bit
//! access, tail masking). `u64` implements it directly (the original
//! 64-lane engine, zero cost); [`LaneWords<N>`] widens it to `N`
//! consecutive `u64` *planes* (`Lanes128`, `Lanes256`).
//!
//! The plane decomposition is load-bearing for determinism: lane `l` of
//! a wide word is lane `l % 64` of plane `l / 64`, and every consumer
//! (presence streams, activation words, coverage) derives its per-plane
//! state so that plane `w` of an `N`-plane run is bit-for-bit the
//! 64-lane run of the `w`-th seed block. Widening the arity therefore
//! never changes what any single replica computes.

/// Lanes carried by one `u64` plane. Every [`LaneWord`] arity is a whole
/// number of planes.
pub const LANES_PER_WORD: usize = 64;

/// A fixed-arity word of replica lanes: the register type the batch
/// engine is generic over.
///
/// Implementations must keep `LANES == 64 * WORDS`, represent lane `l`
/// as bit `l % 64` of plane `l / 64`, and make the bit operators act
/// lane-wise. `u64` (64 lanes) and [`LaneWords<N>`] (`64·N` lanes) are
/// the in-tree arities; [`Lanes128`] and [`Lanes256`] are the widened
/// aliases the routing layer selects between.
pub trait LaneWord:
    Copy
    + std::fmt::Debug
    + PartialEq
    + Eq
    + Send
    + Sync
    + 'static
    + std::ops::BitAnd<Output = Self>
    + std::ops::BitOr<Output = Self>
    + std::ops::BitXor<Output = Self>
    + std::ops::Not<Output = Self>
{
    /// Number of 64-bit planes.
    const WORDS: usize;
    /// Number of lanes (`64 * WORDS`).
    const LANES: usize;
    /// All lanes clear.
    const ZERO: Self;
    /// All lanes set.
    const ONES: Self;

    /// Broadcasts one bit to every lane.
    fn splat(bit: bool) -> Self {
        if bit {
            Self::ONES
        } else {
            Self::ZERO
        }
    }

    /// Plane `i` (lanes `[64·i, 64·i + 64)`).
    fn word(&self, i: usize) -> u64;

    /// Replaces plane `i`.
    fn set_word(&mut self, i: usize, word: u64);

    /// Lane `l`'s bit.
    fn get(&self, lane: usize) -> bool;

    /// Sets or clears lane `l`'s bit.
    fn set(&mut self, lane: usize, bit: bool);

    /// Ones in lanes `[0, lanes)`, zeros above — the ghost-lane mask for
    /// a ragged final batch (`lanes ≤ LANES`).
    fn tail_mask(lanes: usize) -> Self;

    /// Whole-register shift towards higher lanes; `bits ≥ LANES` yields
    /// [`LaneWord::ZERO`].
    fn shl(self, bits: u32) -> Self;

    /// Whole-register shift towards lower lanes; `bits ≥ LANES` yields
    /// [`LaneWord::ZERO`].
    fn shr(self, bits: u32) -> Self;

    /// Number of set lanes.
    fn count_ones(&self) -> u32;
}

impl LaneWord for u64 {
    const WORDS: usize = 1;
    const LANES: usize = LANES_PER_WORD;
    const ZERO: Self = 0;
    const ONES: Self = u64::MAX;

    #[inline]
    fn word(&self, i: usize) -> u64 {
        debug_assert_eq!(i, 0);
        *self
    }

    #[inline]
    fn set_word(&mut self, i: usize, word: u64) {
        debug_assert_eq!(i, 0);
        *self = word;
    }

    #[inline]
    fn get(&self, lane: usize) -> bool {
        debug_assert!(lane < 64);
        (*self >> lane) & 1 == 1
    }

    #[inline]
    fn set(&mut self, lane: usize, bit: bool) {
        debug_assert!(lane < 64);
        let mask = 1u64 << lane;
        if bit {
            *self |= mask;
        } else {
            *self &= !mask;
        }
    }

    #[inline]
    fn tail_mask(lanes: usize) -> Self {
        debug_assert!(lanes <= 64);
        if lanes >= 64 {
            u64::MAX
        } else {
            (1u64 << lanes) - 1
        }
    }

    #[inline]
    fn shl(self, bits: u32) -> Self {
        if bits >= 64 {
            0
        } else {
            self << bits
        }
    }

    #[inline]
    fn shr(self, bits: u32) -> Self {
        if bits >= 64 {
            0
        } else {
            self >> bits
        }
    }

    #[inline]
    fn count_ones(&self) -> u32 {
        u64::count_ones(*self)
    }
}

/// `N` consecutive `u64` planes: a `64·N`-lane [`LaneWord`].
///
/// Lane `l` is bit `l % 64` of plane `l / 64`. A bare `[u64; N]` cannot
/// carry the operator impls, hence the newtype; the inner array is
/// public so circuits can reach planes without the accessor calls.
#[derive(Copy, Clone, PartialEq, Eq, Hash)]
pub struct LaneWords<const N: usize>(pub [u64; N]);

/// Two-plane, 128-lane arity.
pub type Lanes128 = LaneWords<2>;

/// Four-plane, 256-lane arity.
pub type Lanes256 = LaneWords<4>;

impl<const N: usize> std::fmt::Debug for LaneWords<N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LaneWords[")?;
        for (i, w) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{w:#018x}")?;
        }
        write!(f, "]")
    }
}

impl<const N: usize> std::ops::BitAnd for LaneWords<N> {
    type Output = Self;
    #[inline]
    fn bitand(mut self, rhs: Self) -> Self {
        for (a, b) in self.0.iter_mut().zip(rhs.0) {
            *a &= b;
        }
        self
    }
}

impl<const N: usize> std::ops::BitOr for LaneWords<N> {
    type Output = Self;
    #[inline]
    fn bitor(mut self, rhs: Self) -> Self {
        for (a, b) in self.0.iter_mut().zip(rhs.0) {
            *a |= b;
        }
        self
    }
}

impl<const N: usize> std::ops::BitXor for LaneWords<N> {
    type Output = Self;
    #[inline]
    fn bitxor(mut self, rhs: Self) -> Self {
        for (a, b) in self.0.iter_mut().zip(rhs.0) {
            *a ^= b;
        }
        self
    }
}

impl<const N: usize> std::ops::Not for LaneWords<N> {
    type Output = Self;
    #[inline]
    fn not(mut self) -> Self {
        for a in self.0.iter_mut() {
            *a = !*a;
        }
        self
    }
}

impl<const N: usize> LaneWord for LaneWords<N> {
    const WORDS: usize = N;
    const LANES: usize = LANES_PER_WORD * N;
    const ZERO: Self = LaneWords([0; N]);
    const ONES: Self = LaneWords([u64::MAX; N]);

    #[inline]
    fn word(&self, i: usize) -> u64 {
        self.0[i]
    }

    #[inline]
    fn set_word(&mut self, i: usize, word: u64) {
        self.0[i] = word;
    }

    #[inline]
    fn get(&self, lane: usize) -> bool {
        debug_assert!(lane < Self::LANES);
        (self.0[lane / 64] >> (lane % 64)) & 1 == 1
    }

    #[inline]
    fn set(&mut self, lane: usize, bit: bool) {
        debug_assert!(lane < Self::LANES);
        let mask = 1u64 << (lane % 64);
        if bit {
            self.0[lane / 64] |= mask;
        } else {
            self.0[lane / 64] &= !mask;
        }
    }

    fn tail_mask(lanes: usize) -> Self {
        debug_assert!(lanes <= Self::LANES);
        let mut out = Self::ZERO;
        for (i, w) in out.0.iter_mut().enumerate() {
            let lo = i * 64;
            *w = if lanes >= lo + 64 {
                u64::MAX
            } else if lanes <= lo {
                0
            } else {
                (1u64 << (lanes - lo)) - 1
            };
        }
        out
    }

    fn shl(self, bits: u32) -> Self {
        let mut out = Self::ZERO;
        if (bits as usize) >= Self::LANES {
            return out;
        }
        let skip = (bits / 64) as usize;
        let s = bits % 64;
        for i in skip..N {
            let mut w = self.0[i - skip] << s;
            if s > 0 && i > skip {
                w |= self.0[i - skip - 1] >> (64 - s);
            }
            out.0[i] = w;
        }
        out
    }

    fn shr(self, bits: u32) -> Self {
        let mut out = Self::ZERO;
        if (bits as usize) >= Self::LANES {
            return out;
        }
        let skip = (bits / 64) as usize;
        let s = bits % 64;
        for i in 0..N - skip {
            let mut w = self.0[i + skip] >> s;
            if s > 0 && i + skip + 1 < N {
                w |= self.0[i + skip + 1] << (64 - s);
            }
            out.0[i] = w;
        }
        out
    }

    #[inline]
    fn count_ones(&self) -> u32 {
        self.0.iter().map(|w| w.count_ones()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::eq_op)] // `x ^ x == 0` is the identity under test
    fn exercise_arity<W: LaneWord>() {
        assert_eq!(W::LANES, 64 * W::WORDS);
        assert_eq!(W::splat(false), W::ZERO);
        assert_eq!(W::splat(true), W::ONES);
        assert_eq!(W::ZERO.count_ones(), 0);
        assert_eq!(W::ONES.count_ones() as usize, W::LANES);
        assert_eq!(!W::ZERO, W::ONES);
        assert_eq!(W::ONES & W::ZERO, W::ZERO);
        assert_eq!(W::ONES | W::ZERO, W::ONES);
        assert_eq!(W::ONES ^ W::ONES, W::ZERO);

        // Per-lane get/set round-trips and lands in the right plane.
        for lane in [0, 1, 63 % W::LANES, W::LANES / 2, W::LANES - 1] {
            let mut w = W::ZERO;
            w.set(lane, true);
            assert!(w.get(lane), "lane {lane}");
            assert_eq!(w.count_ones(), 1);
            assert_eq!(w.word(lane / 64), 1u64 << (lane % 64));
            w.set(lane, false);
            assert_eq!(w, W::ZERO);
        }

        // Tail masks: exactly the first `lanes` bits.
        for lanes in [0, 1, 63, 64, W::LANES - 1, W::LANES] {
            let mask = W::tail_mask(lanes);
            assert_eq!(mask.count_ones() as usize, lanes, "tail_mask({lanes})");
            for lane in 0..W::LANES {
                assert_eq!(mask.get(lane), lane < lanes, "lane {lane} of tail_mask({lanes})");
            }
        }

        // Shifts move lanes, including across plane boundaries.
        let shifts = [0u32, 1, 63, 64, 65, (W::LANES - 1) as u32];
        for shift in shifts.into_iter().filter(|&s| (s as usize) < W::LANES) {
            let mut one = W::ZERO;
            one.set(0, true);
            let shifted = one.shl(shift);
            assert_eq!(shifted.count_ones(), 1, "shl {shift}");
            assert!(shifted.get(shift as usize));
            assert_eq!(shifted.shr(shift), one, "shr undoes shl {shift}");
        }
        assert_eq!(W::ONES.shl(W::LANES as u32), W::ZERO);
        assert_eq!(W::ONES.shr(W::LANES as u32), W::ZERO);
    }

    #[test]
    fn u64_is_the_64_lane_word() {
        assert_eq!(<u64 as LaneWord>::WORDS, 1);
        exercise_arity::<u64>();
    }

    #[test]
    fn wide_words_carry_128_and_256_lanes() {
        assert_eq!(Lanes128::WORDS, 2);
        assert_eq!(Lanes256::LANES, 256);
        exercise_arity::<Lanes128>();
        exercise_arity::<Lanes256>();
    }

    #[test]
    fn wide_ops_act_per_plane() {
        let a = LaneWords([0xF0F0, 0x1234]);
        let b = LaneWords([0x0FF0, 0xFF00]);
        assert_eq!(a & b, LaneWords([0x00F0, 0x1200]));
        assert_eq!(a | b, LaneWords([0xFFF0, 0xFF34]));
        assert_eq!(a ^ b, LaneWords([0xFF00, 0xED34]));
        assert_eq!((!a).0[0], !0xF0F0u64);
    }

    #[test]
    fn cross_plane_shifts_carry_bits() {
        let a: Lanes128 = LaneWords([1u64 << 63, 0]);
        assert_eq!(a.shl(1), LaneWords([0, 1]));
        assert_eq!(LaneWords([0u64, 1]).shr(1), LaneWords([1u64 << 63, 0]));
        let spread: Lanes256 = LaneWords([u64::MAX, 0, 0, 0]);
        assert_eq!(spread.shl(128), LaneWords([0, 0, u64::MAX, 0]));
    }
}
