//! The growing-common-prefix convergence framework of Braud-Santoni,
//! Dubois, Kaaouachi & Petit (*"The next 700 impossibility results in
//! time-varying graphs"*), as used by the paper's Theorems 4.1 and 5.1.
//!
//! The framework's theorem: take a sequence of evolving graphs
//! `G_0, G_1, G_2, …` such that each `G_{i+1}` agrees with `G_i` on an
//! ever-growing time prefix. The sequence then converges to a limit evolving
//! graph `Gω` (defined by those prefixes), and the execution of any
//! deterministic algorithm on `Gω` coincides, on every prefix, with its
//! execution on the corresponding `G_i`.
//!
//! [`PrefixChain`] materializes such a sequence: each pushed schedule must
//! agree with the chain on the previously agreed prefix and extend it
//! strictly. [`PrefixChain::limit`] then assembles `Gω` as a
//! [`ScriptedSchedule`]. The impossibility experiments in
//! `dynring-adversary` capture adversarial runs at growing horizons, push
//! them into a chain, and replay the limit — executing the proof instead of
//! merely citing it.

use serde::{Deserialize, Serialize};

use crate::{
    EdgeSchedule, EdgeSet, GraphError, RingTopology, ScriptedSchedule, TailBehavior, Time,
};

/// A sequence of schedules with strictly growing common prefixes, and its
/// limit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefixChain {
    ring: RingTopology,
    /// The agreed frames so far (the union of all agreed prefixes).
    frames: Vec<EdgeSet>,
    /// Lengths of the successive agreed prefixes (strictly increasing).
    prefix_lengths: Vec<Time>,
}

impl PrefixChain {
    /// An empty chain over `ring` (agreed prefix of length 0).
    pub fn new(ring: RingTopology) -> Self {
        PrefixChain {
            ring,
            frames: Vec::new(),
            prefix_lengths: Vec::new(),
        }
    }

    /// The ring.
    pub fn ring(&self) -> &RingTopology {
        &self.ring
    }

    /// Length of the longest agreed prefix so far.
    pub fn agreed_prefix(&self) -> Time {
        self.frames.len() as Time
    }

    /// Number of schedules pushed so far.
    pub fn len(&self) -> usize {
        self.prefix_lengths.len()
    }

    /// `true` when no schedule was pushed yet.
    pub fn is_empty(&self) -> bool {
        self.prefix_lengths.is_empty()
    }

    /// The successive agreed prefix lengths.
    pub fn prefix_lengths(&self) -> &[Time] {
        &self.prefix_lengths
    }

    /// Pushes the next schedule of the sequence, agreeing with the chain up
    /// to (at least) the previous prefix and extending the agreed prefix to
    /// `prefix`.
    ///
    /// # Errors
    ///
    /// - [`GraphError::PrefixNotGrowing`] if `prefix` does not strictly
    ///   extend the previous agreed prefix;
    /// - [`GraphError::PrefixMismatch`] if the schedule disagrees with the
    ///   already-agreed frames.
    pub fn push<S: EdgeSchedule>(&mut self, schedule: &S, prefix: Time) -> Result<(), GraphError> {
        let previous = self.agreed_prefix();
        if prefix <= previous {
            return Err(GraphError::PrefixNotGrowing {
                previous,
                proposed: prefix,
            });
        }
        // Verify agreement on the existing prefix.
        for (t, frame) in self.frames.iter().enumerate() {
            if &schedule.edges_at(t as Time) != frame {
                return Err(GraphError::PrefixMismatch { at: t as Time });
            }
        }
        // Extend with the newly agreed frames.
        for t in previous..prefix {
            self.frames.push(schedule.edges_at(t));
        }
        self.prefix_lengths.push(prefix);
        Ok(())
    }

    /// Assembles the limit evolving graph `Gω` from the agreed frames.
    ///
    /// `tail` governs instants beyond the last agreed prefix; the
    /// impossibility constructions use [`TailBehavior::AllPresent`] (their
    /// removal intervals are all finite and contained in the prefixes).
    pub fn limit(&self, tail: TailBehavior) -> ScriptedSchedule {
        ScriptedSchedule::new(self.ring.clone(), self.frames.clone(), tail)
            .expect("agreed frames share the chain's ring")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AbsenceIntervals, EdgeId, RingTopology};

    fn ring(n: usize) -> RingTopology {
        RingTopology::new(n).expect("valid ring")
    }

    /// Builds the kind of sequence used in the proof of Theorem 5.1:
    /// element `k` carries removals `[10j + 5, 10j + 10)` for every `j < k`,
    /// so element `k + 1` differs from element `k` only beyond time
    /// `10k + 5`, and element `k` is "settled" up to time `10k`.
    fn proof_like_sequence(r: &RingTopology, rounds: usize) -> Vec<AbsenceIntervals> {
        let mut schedules = Vec::new();
        let mut current = AbsenceIntervals::new(r.clone());
        schedules.push(current.clone());
        for i in 0..rounds {
            let start = (i as Time) * 10 + 5;
            let edge = EdgeId::new(i % r.edge_count());
            current.remove_during(edge, start, start + 5);
            schedules.push(current.clone());
        }
        schedules
    }

    /// Prefix at which element `i` of [`proof_like_sequence`] is settled.
    fn settled_prefix(i: usize) -> Time {
        if i == 0 {
            1
        } else {
            (i as Time) * 10
        }
    }

    #[test]
    fn chain_accepts_growing_prefixes_and_builds_limit() {
        let r = ring(4);
        let seq = proof_like_sequence(&r, 5);
        let mut chain = PrefixChain::new(r.clone());
        for (i, g) in seq.iter().enumerate() {
            chain
                .push(g, settled_prefix(i))
                .expect("prefix grows and agrees");
        }
        assert_eq!(chain.len(), 6);
        assert_eq!(chain.agreed_prefix(), 50);
        let limit = chain.limit(TailBehavior::AllPresent);
        // The limit must agree with each sequence element on its prefix.
        for (i, g) in seq.iter().enumerate() {
            for t in 0..settled_prefix(i) {
                assert_eq!(limit.edges_at(t), g.edges_at(t), "element {i}, t {t}");
            }
        }
    }

    #[test]
    fn chain_rejects_non_growing_prefix() {
        let r = ring(3);
        let g = AbsenceIntervals::new(r.clone());
        let mut chain = PrefixChain::new(r);
        chain.push(&g, 5).expect("first push");
        let err = chain.push(&g, 5);
        assert_eq!(
            err,
            Err(GraphError::PrefixNotGrowing {
                previous: 5,
                proposed: 5
            })
        );
    }

    #[test]
    fn chain_rejects_disagreeing_schedule() {
        let r = ring(3);
        let g0 = AbsenceIntervals::new(r.clone());
        let mut g1 = AbsenceIntervals::new(r.clone());
        g1.remove_during(EdgeId::new(0), 2, 4); // disagrees inside prefix
        let mut chain = PrefixChain::new(r);
        chain.push(&g0, 5).expect("first push");
        let err = chain.push(&g1, 10);
        assert_eq!(err, Err(GraphError::PrefixMismatch { at: 2 }));
    }

    #[test]
    fn limit_of_finite_removals_is_connected_over_time() {
        // Mirrors the Gω argument: all removal intervals are finite and
        // disjoint, so every edge is infinitely often present in the limit.
        let r = ring(4);
        let seq = proof_like_sequence(&r, 8);
        let mut chain = PrefixChain::new(r.clone());
        for (i, g) in seq.iter().enumerate() {
            chain.push(g, settled_prefix(i)).expect("growing");
        }
        let limit = chain.limit(TailBehavior::AllPresent);
        let verdict = crate::classes::certify_connected_over_time(&limit, 90, 6);
        assert!(verdict.is_certified(), "verdict {verdict:?}");
    }

    #[test]
    fn empty_chain_limit_is_tail_only() {
        let chain = PrefixChain::new(ring(3));
        assert!(chain.is_empty());
        let limit = chain.limit(TailBehavior::AllPresent);
        assert!(limit.edges_at(0).is_full());
    }

    #[test]
    fn serde_round_trip() {
        let r = ring(3);
        let mut chain = PrefixChain::new(r.clone());
        chain
            .push(&AbsenceIntervals::new(r), 4)
            .expect("first push");
        let json = serde_json::to_string(&chain).expect("serialize");
        let back: PrefixChain = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(chain, back);
    }
}
