//! Evolving-graph substrate for *connected-over-time* rings.
//!
//! This crate implements the dynamic-graph model of
//! Bournat, Dubois & Petit, *"Computability of Perpetual Exploration in
//! Highly Dynamic Rings"* (ICDCS 2017), which itself builds on the
//! *evolving graph* model of Xuan, Ferreira & Jarry and the
//! *time-varying graph* classification of Casteigts et al.
//!
//! An evolving graph is a sequence `G_0, G_1, …` of spanning subgraphs of a
//! static *underlying graph* — here, an anonymous unoriented ring. Edges may
//! appear and disappear arbitrarily from one instant to the next; the only
//! assumption made by the paper is *connectivity over time*: every edge that
//! is not *eventually missing* reappears infinitely often, and the graph of
//! recurrent edges (the *eventual underlying graph*) is connected. On a ring
//! this means **at most one edge is eventually missing**.
//!
//! # What lives here
//!
//! - [`RingTopology`]: the static ring (including the 2-node multigraph
//!   ring), with global [`GlobalDir`] orientation helpers.
//! - [`EdgeSet`]: a compact bit-set of ring edges — one per time instant.
//! - [`EdgeSchedule`]: the trait for edge-presence functions `(e, t) ↦ bool`,
//!   with implementations ranging from [`AlwaysPresent`] through scripted,
//!   periodic, stochastic and proof-construction schedules
//!   ([`AbsenceIntervals`] mirrors the paper's `G \ {(e, τ)}` operator).
//! - [`classes`]: finite-horizon analysis of dynamic-graph classes
//!   (instant connectivity, T-interval-connectivity, recurrence gaps,
//!   connected-over-time certificates).
//! - [`journey`]: temporal reachability — foremost journeys, temporal
//!   eccentricity and diameter.
//! - [`convergence`]: the growing-common-prefix convergence framework of
//!   Braud-Santoni, Dubois, Kaaouachi & Petit used by the paper's
//!   impossibility proofs to build the limit graph `Gω`.
//!
//! # Example
//!
//! ```rust
//! use dynring_graph::{RingTopology, EdgeSchedule, AbsenceIntervals, EdgeId};
//!
//! # fn main() -> Result<(), dynring_graph::GraphError> {
//! let ring = RingTopology::new(6)?;
//! // A ring where edge 2 vanishes forever at time 10 (an eventual missing
//! // edge) and edge 0 blinks off during [3, 5).
//! let mut sched = AbsenceIntervals::new(ring.clone());
//! sched.remove_from(EdgeId::new(2), 10);
//! sched.remove_during(EdgeId::new(0), 3, 5);
//! assert!(sched.is_present(EdgeId::new(0), 2));
//! assert!(!sched.is_present(EdgeId::new(0), 4));
//! assert!(!sched.is_present(EdgeId::new(2), 1_000_000));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classes;
pub mod convergence;
mod edge_set;
mod error;
pub mod generators;
mod ids;
pub mod journey;
mod lane;
mod orientation;
pub mod render;
mod ring;
mod schedule;

pub use edge_set::EdgeSet;
pub use error::GraphError;
pub use ids::{EdgeId, NodeId};
pub use lane::{LaneWord, LaneWords, Lanes128, Lanes256, LANES_PER_WORD};
pub use orientation::GlobalDir;
pub use ring::RingTopology;
pub use schedule::{
    AbsenceIntervals, AlwaysPresent, BernoulliLane, BernoulliReplicaBank, BernoulliReplicas,
    BernoulliSchedule, EdgeSchedule, Minus, PeriodicSchedule, RemovalTable, ScriptedSchedule,
    TailBehavior, TimeInterval, WithEventualMissing,
};

/// Discrete global time, as in the paper: time is mapped to `ℕ`.
///
/// Instant `t` indexes the snapshot `G_t`; the round executed "at time `t`"
/// reads and moves through `G_t` and produces the configuration observed at
/// time `t + 1`.
pub type Time = u64;
