//! Finite-horizon analysis of dynamic-graph classes.
//!
//! The paper's hypotheses live at infinity ("infinitely often", "eventually
//! missing"), which no finite run can observe directly. This module computes
//! the standard finite *witnesses* used throughout the experiments:
//!
//! - per-instant connectivity and [`t_interval_connectivity`]
//!   (the Kuhn–Lynch–Oshman class assumed by related work \[10, 18, 20\]);
//! - per-edge [`max_recurrence_gaps`] — a hard recurrence bound over the
//!   window *is* a proof of connectivity-over-time restricted to that
//!   window;
//! - [`certify_connected_over_time`], the certificate used by every
//!   experiment: at most one edge may behave as "missing", every other edge
//!   must recur within the bound.

use serde::{Deserialize, Serialize};

use crate::{EdgeId, EdgeSchedule, EdgeSet, GlobalDir, NodeId, RingTopology, Time};

/// The paper's `OneEdge(u, t, t')` predicate (§2.1): one adjacent edge of
/// `u` is continuously missing during `[t, t']` while the other adjacent
/// edge is continuously present during `[t, t']`.
///
/// Returns the continuously *missing* edge when the predicate holds.
/// The interval is inclusive on both ends, matching the paper.
pub fn one_edge<S: EdgeSchedule>(
    schedule: &S,
    node: NodeId,
    from: Time,
    to: Time,
) -> Option<EdgeId> {
    let ring = schedule.ring();
    let cw = ring.edge_towards(node, GlobalDir::Clockwise);
    let ccw = ring.edge_towards(node, GlobalDir::CounterClockwise);
    let all = |edge: EdgeId, want: bool| (from..=to).all(|t| schedule.is_present(edge, t) == want);
    if all(cw, false) && all(ccw, true) {
        Some(cw)
    } else if all(ccw, false) && all(cw, true) {
        Some(ccw)
    } else {
        None
    }
}

/// `true` when the snapshot `edges` leaves the ring connected.
///
/// A ring stays connected iff at most one of its edges is absent (removing
/// one edge yields a chain; removing two disconnects). The 2-node multigraph
/// ring is connected iff at least one of its two parallel edges is present —
/// which the same rule already expresses.
pub fn is_connected(ring: &RingTopology, edges: &EdgeSet) -> bool {
    assert_eq!(
        edges.universe(),
        ring.edge_count(),
        "snapshot universe does not match ring"
    );
    edges.absent_count() <= 1
}

/// Maximum absence run per edge over `[0, horizon)`, including runs touching
/// the window's boundaries.
///
/// A result of `0` means the edge was present at every instant; a result of
/// `horizon` means it was never present. If the maximum gap of an edge is
/// `g`, the edge is present at least once in every window of `g + 1`
/// instants.
pub fn max_recurrence_gaps<S: EdgeSchedule>(schedule: &S, horizon: Time) -> Vec<Time> {
    let ring = schedule.ring();
    let mut current = vec![0u64; ring.edge_count()];
    let mut best = vec![0u64; ring.edge_count()];
    for t in 0..horizon {
        let snapshot = schedule.edges_at(t);
        for e in ring.edges() {
            let i = e.index();
            if snapshot.contains(e) {
                current[i] = 0;
            } else {
                current[i] += 1;
                best[i] = best[i].max(current[i]);
            }
        }
    }
    best
}

/// The largest `T ≥ 1` such that the intersection of every window of `T`
/// consecutive snapshots within `[0, horizon)` is a connected spanning
/// subgraph, or `0` when even single snapshots are sometimes disconnected.
///
/// `T = 1` is the "constantly connected" class; larger `T` is the
/// `T`-interval-connectivity of Kuhn, Lynch & Oshman.
pub fn t_interval_connectivity<S: EdgeSchedule>(schedule: &S, horizon: Time) -> Time {
    if horizon == 0 {
        return 0;
    }
    let ring = schedule.ring();
    let snapshots: Vec<EdgeSet> = (0..horizon).map(|t| schedule.edges_at(t)).collect();
    if !snapshots.iter().all(|s| is_connected(ring, s)) {
        return 0;
    }
    let mut t_best: Time = 1;
    'grow: for t in 2..=horizon {
        for start in 0..=(horizon - t) {
            let mut inter = snapshots[start as usize].clone();
            for s in &snapshots[start as usize + 1..(start + t) as usize] {
                inter.intersect_with(s);
            }
            if !is_connected(ring, &inter) {
                break 'grow;
            }
        }
        t_best = t;
    }
    t_best
}

/// Edges absent during the entire final `tail` instants of `[0, horizon)` —
/// the finite-horizon witnesses for "eventually missing".
pub fn eventually_missing_witnesses<S: EdgeSchedule>(
    schedule: &S,
    horizon: Time,
    tail: Time,
) -> Vec<EdgeId> {
    let ring = schedule.ring();
    let start = horizon.saturating_sub(tail);
    ring.edges()
        .filter(|&e| (start..horizon).all(|t| !schedule.is_present(e, t)))
        .collect()
}

/// Aggregate per-instant connectivity statistics over a window.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConnectivitySummary {
    /// Number of instants inspected.
    pub instants: Time,
    /// Instants at which the snapshot was connected.
    pub connected_instants: Time,
    /// Longest run of consecutive disconnected snapshots.
    pub longest_disconnection: Time,
    /// Mean number of present edges per snapshot (×1000, to stay integral).
    pub mean_present_millis: u64,
}

impl ConnectivitySummary {
    /// Analyzes `schedule` over `[0, horizon)`.
    pub fn analyze<S: EdgeSchedule>(schedule: &S, horizon: Time) -> Self {
        let ring = schedule.ring();
        let mut connected = 0;
        let mut run = 0;
        let mut longest = 0;
        let mut present_total: u64 = 0;
        for t in 0..horizon {
            let snap = schedule.edges_at(t);
            present_total += snap.len() as u64;
            if is_connected(ring, &snap) {
                connected += 1;
                run = 0;
            } else {
                run += 1;
                longest = longest.max(run);
            }
        }
        let mean_present_millis = (present_total * 1000).checked_div(horizon).unwrap_or(0);
        ConnectivitySummary {
            instants: horizon,
            connected_instants: connected,
            longest_disconnection: longest,
            mean_present_millis,
        }
    }
}

/// Outcome of [`certify_connected_over_time`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CotVerdict {
    /// The window certifies connected-over-time behaviour: every edge except
    /// (at most) one recurs within `recurrence_bound`.
    Certified {
        /// The edge behaving as the eventual missing edge, if any.
        missing_edge: Option<EdgeId>,
        /// Largest recurrence gap observed among recurring edges.
        max_gap: Time,
    },
    /// Two or more edges exceeded the recurrence bound: over this window the
    /// eventual underlying graph would be disconnected.
    Violated {
        /// The offending edges.
        edges: Vec<EdgeId>,
    },
}

impl CotVerdict {
    /// `true` for [`CotVerdict::Certified`].
    pub fn is_certified(&self) -> bool {
        matches!(self, CotVerdict::Certified { .. })
    }
}

/// Certifies that `schedule`, restricted to `[0, horizon)`, is compatible
/// with the connected-over-time class: at most one edge may have a
/// recurrence gap exceeding `recurrence_bound` (that edge plays the role of
/// the eventual missing edge), every other edge must recur within the bound.
///
/// This is the obligation the paper's adversaries must honour — their edge
/// removals must keep every non-sacrificed edge recurring — and every
/// adversary in `dynring-adversary` is tested against this certificate.
pub fn certify_connected_over_time<S: EdgeSchedule>(
    schedule: &S,
    horizon: Time,
    recurrence_bound: Time,
) -> CotVerdict {
    let gaps = max_recurrence_gaps(schedule, horizon);
    let mut offenders: Vec<EdgeId> = Vec::new();
    let mut max_ok_gap = 0;
    for (i, &gap) in gaps.iter().enumerate() {
        if gap > recurrence_bound {
            offenders.push(EdgeId::new(i));
        } else {
            max_ok_gap = max_ok_gap.max(gap);
        }
    }
    match offenders.len() {
        0 => CotVerdict::Certified {
            missing_edge: None,
            max_gap: max_ok_gap,
        },
        1 => CotVerdict::Certified {
            missing_edge: Some(offenders[0]),
            max_gap: max_ok_gap,
        },
        _ => CotVerdict::Violated { edges: offenders },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AbsenceIntervals, AlwaysPresent, PeriodicSchedule, RingTopology};

    fn ring(n: usize) -> RingTopology {
        RingTopology::new(n).expect("valid ring")
    }

    #[test]
    fn ring_connectivity_rule() {
        let r = ring(5);
        assert!(is_connected(&r, &EdgeSet::full(5)));
        assert!(is_connected(&r, &EdgeSet::from_indices(5, [0, 1, 2, 3])));
        assert!(!is_connected(&r, &EdgeSet::from_indices(5, [0, 1, 2])));
    }

    #[test]
    fn two_node_multigraph_connectivity() {
        let r = ring(2);
        assert!(is_connected(&r, &EdgeSet::from_indices(2, [0])));
        assert!(is_connected(&r, &EdgeSet::from_indices(2, [1])));
        assert!(!is_connected(&r, &EdgeSet::empty(2)));
    }

    #[test]
    fn recurrence_gaps_on_static_ring_are_zero() {
        let g = AlwaysPresent::new(ring(4));
        assert_eq!(max_recurrence_gaps(&g, 50), vec![0, 0, 0, 0]);
    }

    #[test]
    fn recurrence_gaps_count_boundary_runs() {
        let mut g = AbsenceIntervals::new(ring(3));
        g.remove_during(EdgeId::new(0), 0, 4); // leading run of 4
        g.remove_during(EdgeId::new(1), 6, 10); // trailing run of 4 (horizon 10)
        let gaps = max_recurrence_gaps(&g, 10);
        assert_eq!(gaps, vec![4, 4, 0]);
    }

    #[test]
    fn never_present_edge_has_gap_equal_to_horizon() {
        let mut g = AbsenceIntervals::new(ring(3));
        g.remove_from(EdgeId::new(2), 0);
        let gaps = max_recurrence_gaps(&g, 25);
        assert_eq!(gaps[2], 25);
    }

    #[test]
    fn t_interval_connectivity_of_static_ring_is_horizon() {
        let g = AlwaysPresent::new(ring(4));
        assert_eq!(t_interval_connectivity(&g, 12), 12);
    }

    #[test]
    fn t_interval_connectivity_detects_alternating_holes() {
        // Period 2: even instants miss e0, odd instants miss e1. Every
        // single snapshot is connected, but any window of 2 has both holes.
        let r = ring(4);
        let frames = vec![
            EdgeSet::from_indices(4, [1, 2, 3]),
            EdgeSet::from_indices(4, [0, 2, 3]),
        ];
        let g = PeriodicSchedule::new(r, frames).expect("valid period");
        assert_eq!(t_interval_connectivity(&g, 20), 1);
    }

    #[test]
    fn t_interval_connectivity_zero_when_disconnected_instant() {
        let mut g = AbsenceIntervals::new(ring(4));
        g.remove_during(EdgeId::new(0), 5, 6);
        g.remove_during(EdgeId::new(2), 5, 6);
        assert_eq!(t_interval_connectivity(&g, 10), 0);
    }

    #[test]
    fn missing_witnesses() {
        let mut g = AbsenceIntervals::new(ring(4));
        g.remove_from(EdgeId::new(3), 40);
        g.remove_during(EdgeId::new(0), 10, 20);
        let witnesses = eventually_missing_witnesses(&g, 100, 30);
        assert_eq!(witnesses, vec![EdgeId::new(3)]);
    }

    #[test]
    fn summary_counts_disconnections() {
        let mut g = AbsenceIntervals::new(ring(4));
        g.remove_during(EdgeId::new(0), 2, 5);
        g.remove_during(EdgeId::new(2), 3, 5); // overlap [3,5) disconnects
        let s = ConnectivitySummary::analyze(&g, 10);
        assert_eq!(s.instants, 10);
        assert_eq!(s.connected_instants, 8);
        assert_eq!(s.longest_disconnection, 2);
        assert!(s.mean_present_millis > 3000 && s.mean_present_millis < 4000);
    }

    #[test]
    fn cot_certificate_accepts_one_missing_edge() {
        let mut g = AbsenceIntervals::new(ring(5));
        g.remove_from(EdgeId::new(1), 10);
        g.remove_during(EdgeId::new(0), 3, 6);
        let verdict = certify_connected_over_time(&g, 100, 8);
        assert_eq!(
            verdict,
            CotVerdict::Certified {
                missing_edge: Some(EdgeId::new(1)),
                max_gap: 3
            }
        );
    }

    #[test]
    fn cot_certificate_rejects_two_missing_edges() {
        let mut g = AbsenceIntervals::new(ring(5));
        g.remove_from(EdgeId::new(1), 10);
        g.remove_from(EdgeId::new(3), 20);
        let verdict = certify_connected_over_time(&g, 100, 8);
        assert_eq!(
            verdict,
            CotVerdict::Violated {
                edges: vec![EdgeId::new(1), EdgeId::new(3)]
            }
        );
        assert!(!verdict.is_certified());
    }

    #[test]
    fn one_edge_predicate() {
        let mut g = AbsenceIntervals::new(ring(5));
        // v2's clockwise edge is e2, counter-clockwise edge is e1.
        g.remove_during(EdgeId::new(2), 3, 10);
        let node = crate::NodeId::new(2);
        assert_eq!(one_edge(&g, node, 3, 9), Some(EdgeId::new(2)));
        // Outside the removal window the predicate fails (both present).
        assert_eq!(one_edge(&g, node, 0, 2), None);
        // Straddling the boundary fails too (e2 not continuously missing).
        assert_eq!(one_edge(&g, node, 0, 9), None);
        // If the other edge also drops out, the predicate fails.
        g.remove_during(EdgeId::new(1), 5, 6);
        assert_eq!(one_edge(&g, node, 3, 9), None);
        assert_eq!(one_edge(&g, node, 7, 9), Some(EdgeId::new(2)));
    }

    #[test]
    fn one_edge_on_multigraph_ring() {
        let mut g = AbsenceIntervals::new(ring(2));
        g.remove_from(EdgeId::new(1), 0);
        // Node 0: cw edge e0 present, ccw edge e1 missing.
        assert_eq!(
            one_edge(&g, crate::NodeId::new(0), 0, 50),
            Some(EdgeId::new(1))
        );
    }

    #[test]
    fn cot_certificate_on_pristine_ring() {
        let g = AlwaysPresent::new(ring(3));
        assert_eq!(
            certify_connected_over_time(&g, 50, 4),
            CotVerdict::Certified {
                missing_edge: None,
                max_gap: 0
            }
        );
    }
}
