//! Edge-presence schedules: the "dynamics" of an evolving graph.
//!
//! A schedule is a total function `(edge, time) ↦ present?`. The paper's
//! evolving graph `G = {G_0, G_1, …}` is recovered by taking
//! [`EdgeSchedule::edges_at`] for each instant. The proofs repeatedly use the
//! operator `G \ {(e_1, τ_1), …, (e_k, τ_k)}` (remove edge `e_i` during time
//! set `τ_i`); [`RemovalTable`], [`Minus`] and [`AbsenceIntervals`] implement
//! exactly that operator.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{EdgeId, EdgeSet, GraphError, RingTopology, Time};

/// A half-open interval of time `[start, end)`; `end = None` means "forever".
///
/// The paper writes inclusive time sets `{t, …, t′}`; the equivalent here is
/// `TimeInterval::bounded(t, t′ + 1)`.
///
/// ```rust
/// use dynring_graph::TimeInterval;
/// let i = TimeInterval::bounded(3, 7);
/// assert!(i.contains(3) && i.contains(6) && !i.contains(7));
/// assert!(TimeInterval::from_instant(5).contains(1_000_000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TimeInterval {
    start: Time,
    end: Option<Time>,
}

impl TimeInterval {
    /// The bounded interval `[start, end)`. An interval with `end <= start`
    /// is empty (it contains no instant); empty intervals are accepted and
    /// behave as no-ops when inserted into a [`RemovalTable`].
    pub fn bounded(start: Time, end: Time) -> Self {
        TimeInterval {
            start,
            end: Some(end),
        }
    }

    /// The unbounded interval `[start, ∞)`.
    pub fn from_instant(start: Time) -> Self {
        TimeInterval { start, end: None }
    }

    /// Start of the interval (inclusive).
    pub fn start(&self) -> Time {
        self.start
    }

    /// End of the interval (exclusive), `None` when unbounded.
    pub fn end(&self) -> Option<Time> {
        self.end
    }

    /// `true` when the interval contains no instant.
    pub fn is_empty(&self) -> bool {
        matches!(self.end, Some(end) if end <= self.start)
    }

    /// `true` when the interval is `[start, ∞)`.
    pub fn is_unbounded(&self) -> bool {
        self.end.is_none()
    }

    /// `true` when `t` lies in the interval.
    pub fn contains(&self, t: Time) -> bool {
        t >= self.start && self.end.is_none_or(|end| t < end)
    }

    /// `true` when the two intervals overlap or touch (so that merging them
    /// yields a single interval).
    pub fn touches(&self, other: &TimeInterval) -> bool {
        if self.is_empty() || other.is_empty() {
            return false;
        }
        let (a, b) = if self.start <= other.start {
            (self, other)
        } else {
            (other, self)
        };
        a.end.is_none_or(|end| end >= b.start)
    }

    /// Merges two touching intervals into their union.
    ///
    /// # Panics
    ///
    /// Panics if the intervals neither overlap nor touch.
    pub fn merge(&self, other: &TimeInterval) -> TimeInterval {
        assert!(self.touches(other), "cannot merge disjoint intervals");
        let start = self.start.min(other.start);
        let end = match (self.end, other.end) {
            (Some(a), Some(b)) => Some(a.max(b)),
            _ => None,
        };
        TimeInterval { start, end }
    }
}

impl fmt::Display for TimeInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.end {
            Some(end) => write!(f, "[{}, {})", self.start, end),
            None => write!(f, "[{}, ∞)", self.start),
        }
    }
}

/// Per-edge table of *absence* intervals — the `\ {(e, τ)}` operator.
///
/// Intervals for a given edge are kept sorted, non-empty and merged, so the
/// table is a canonical representation of "when is each edge forcibly
/// absent".
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RemovalTable {
    absences: BTreeMap<EdgeId, Vec<TimeInterval>>,
}

impl RemovalTable {
    /// An empty table (nothing removed).
    pub fn new() -> Self {
        RemovalTable::default()
    }

    /// Marks `edge` absent during `interval`. Empty intervals are ignored.
    pub fn insert(&mut self, edge: EdgeId, interval: TimeInterval) {
        if interval.is_empty() {
            return;
        }
        let entry = self.absences.entry(edge).or_default();
        entry.push(interval);
        entry.sort_by_key(|iv| iv.start());
        // Merge touching intervals to keep the representation canonical.
        let mut merged: Vec<TimeInterval> = Vec::with_capacity(entry.len());
        for iv in entry.drain(..) {
            match merged.last_mut() {
                Some(last) if last.touches(&iv) => *last = last.merge(&iv),
                _ => merged.push(iv),
            }
        }
        *entry = merged;
    }

    /// `true` when `edge` is marked absent at time `t`.
    pub fn is_absent(&self, edge: EdgeId, t: Time) -> bool {
        let Some(intervals) = self.absences.get(&edge) else {
            return false;
        };
        // Binary search on start times; the candidate interval is the last
        // one starting at or before `t`.
        let idx = intervals.partition_point(|iv| iv.start() <= t);
        idx > 0 && intervals[idx - 1].contains(t)
    }

    /// The (canonical) absence intervals recorded for `edge`.
    pub fn intervals(&self, edge: EdgeId) -> &[TimeInterval] {
        self.absences.get(&edge).map_or(&[], Vec::as_slice)
    }

    /// Iterates over `(edge, intervals)` pairs in edge order.
    pub fn iter(&self) -> impl Iterator<Item = (EdgeId, &[TimeInterval])> + '_ {
        self.absences.iter().map(|(&e, v)| (e, v.as_slice()))
    }

    /// Edges that are absent forever after some time (unbounded interval).
    pub fn eventually_missing(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.absences.iter().filter_map(|(&e, ivs)| {
            ivs.iter().any(TimeInterval::is_unbounded).then_some(e)
        })
    }

    /// `true` when the table removes nothing.
    pub fn is_empty(&self) -> bool {
        self.absences.is_empty()
    }
}

/// A total edge-presence function: the dynamics of an evolving graph.
///
/// Implementations must be *pure*: the same `(edge, t)` always yields the
/// same answer. Adaptive adversaries (whose choices depend on robot
/// configurations) live one level up, in `dynring-engine`'s `Dynamics`
/// trait; any adaptive run can be captured back into a pure
/// [`ScriptedSchedule`].
pub trait EdgeSchedule {
    /// The ring whose edges this schedule drives.
    fn ring(&self) -> &RingTopology;

    /// `true` when `edge` is present at time `t`.
    ///
    /// # Panics
    ///
    /// Implementations may panic when `edge` is not an edge of
    /// [`EdgeSchedule::ring`] (hot-path implementations downgrade the
    /// check to a debug assertion; use [`EdgeSchedule::try_is_present`]
    /// when validity is not guaranteed).
    fn is_present(&self, edge: EdgeId, t: Time) -> bool;

    /// Fallible presence query: returns [`GraphError::EdgeOutOfRange`]
    /// instead of panicking on a foreign edge, so callers that cannot
    /// guarantee validity keep the error-handling path.
    ///
    /// # Errors
    ///
    /// [`GraphError::EdgeOutOfRange`] when `edge` is not an edge of
    /// [`EdgeSchedule::ring`].
    fn try_is_present(&self, edge: EdgeId, t: Time) -> Result<bool, GraphError> {
        self.ring().check_edge(edge)?;
        Ok(self.is_present(edge, t))
    }

    /// The snapshot `E_t`: every edge present at time `t`.
    fn edges_at(&self, t: Time) -> EdgeSet {
        let mut set = EdgeSet::empty_for(self.ring());
        self.edges_at_into(t, &mut set);
        set
    }

    /// Writes the snapshot `E_t` into `out` without allocating.
    ///
    /// `out` is re-targeted to this schedule's universe ([`EdgeSet::reset`])
    /// so any scratch set can be passed in; its allocation is reused. The
    /// default implementation queries [`EdgeSchedule::is_present`] per
    /// edge; implementations with a cheaper snapshot representation should
    /// override it — this is the hot path of the round engine.
    fn edges_at_into(&self, t: Time, out: &mut EdgeSet) {
        out.reset(self.ring().edge_count());
        for e in self.ring().edges() {
            if self.is_present(e, t) {
                out.insert(e);
            }
        }
    }

    /// Samples the single 64-edge presence word `word` — the memberships
    /// of edges `[64·word, 64·word + 64)` — of the snapshot `E_t`, when
    /// the schedule has cheap word-level random access.
    ///
    /// Returns `None` when the schedule has no such access (the default);
    /// callers then fall back to per-edge [`EdgeSchedule::is_present`]
    /// queries or the full [`EdgeSchedule::edges_at_into`] scan. A
    /// `Some(bits)` answer must be **bit-for-bit** the corresponding word
    /// of `edges_at(t)`, including the masked tail: bits at positions at
    /// or beyond the universe are zero.
    ///
    /// This is the sparse-sampling entry point for large rings: consumers
    /// that only need the few words covering robot positions (the engine's
    /// probe path) request exactly those instead of filling all
    /// `n.div_ceil(64)` words.
    ///
    /// # Panics
    ///
    /// Implementations may panic when `word` is not a word index of the
    /// ring (`word ≥ edge_count().div_ceil(64)`).
    fn sampled_presence_word(&self, _t: Time, _word: usize) -> Option<u64> {
        None
    }

    /// Union of the snapshots over `[0, horizon)` — a finite-horizon
    /// approximation of the underlying graph's edge set `E_G`.
    fn footprint(&self, horizon: Time) -> EdgeSet {
        let mut acc = EdgeSet::empty_for(self.ring());
        let mut frame = EdgeSet::empty_for(self.ring());
        for t in 0..horizon {
            self.edges_at_into(t, &mut frame);
            acc.union_with(&frame);
        }
        acc
    }
}

impl<S: EdgeSchedule + ?Sized> EdgeSchedule for &S {
    fn ring(&self) -> &RingTopology {
        (**self).ring()
    }

    fn is_present(&self, edge: EdgeId, t: Time) -> bool {
        (**self).is_present(edge, t)
    }

    fn try_is_present(&self, edge: EdgeId, t: Time) -> Result<bool, GraphError> {
        (**self).try_is_present(edge, t)
    }

    fn edges_at(&self, t: Time) -> EdgeSet {
        (**self).edges_at(t)
    }

    fn edges_at_into(&self, t: Time, out: &mut EdgeSet) {
        (**self).edges_at_into(t, out);
    }

    fn sampled_presence_word(&self, t: Time, word: usize) -> Option<u64> {
        (**self).sampled_presence_word(t, word)
    }
}

impl<S: EdgeSchedule + ?Sized> EdgeSchedule for Box<S> {
    fn ring(&self) -> &RingTopology {
        (**self).ring()
    }

    fn is_present(&self, edge: EdgeId, t: Time) -> bool {
        (**self).is_present(edge, t)
    }

    fn try_is_present(&self, edge: EdgeId, t: Time) -> Result<bool, GraphError> {
        (**self).try_is_present(edge, t)
    }

    fn edges_at(&self, t: Time) -> EdgeSet {
        (**self).edges_at(t)
    }

    fn edges_at_into(&self, t: Time, out: &mut EdgeSet) {
        (**self).edges_at_into(t, out);
    }

    fn sampled_presence_word(&self, t: Time, word: usize) -> Option<u64> {
        (**self).sampled_presence_word(t, word)
    }
}

/// The static ring: every edge present at every instant.
///
/// This is the graph `G` used as the starting point of both impossibility
/// proofs ("all the edges of `U_G` are present at each time").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AlwaysPresent {
    ring: RingTopology,
}

impl AlwaysPresent {
    /// Creates the static schedule over `ring`.
    pub fn new(ring: RingTopology) -> Self {
        AlwaysPresent { ring }
    }
}

impl EdgeSchedule for AlwaysPresent {
    fn ring(&self) -> &RingTopology {
        &self.ring
    }

    fn is_present(&self, edge: EdgeId, _t: Time) -> bool {
        self.ring
            .check_edge(edge)
            .unwrap_or_else(|e| panic!("{e}"));
        true
    }

    fn edges_at(&self, _t: Time) -> EdgeSet {
        EdgeSet::full_for(&self.ring)
    }

    fn edges_at_into(&self, _t: Time, out: &mut EdgeSet) {
        out.reset(self.ring.edge_count());
        out.fill();
    }

    fn sampled_presence_word(&self, _t: Time, word: usize) -> Option<u64> {
        Some(presence_word_mask(self.ring.edge_count(), word))
    }
}

/// The mask of meaningful bits in 64-edge word `word` of a ring with
/// `universe` edges (the [`EdgeSet`] masked-tail invariant at word level).
///
/// # Panics
///
/// Panics when `word` is not a word index of the ring.
fn presence_word_mask(universe: usize, word: usize) -> u64 {
    assert!(
        word < universe.div_ceil(64),
        "word {word} outside universe of {universe} edges"
    );
    let bits = universe - word * 64;
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// What a [`ScriptedSchedule`] does after its recorded frames run out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum TailBehavior {
    /// Repeat the last frame forever (an eventual fixed graph).
    HoldLast,
    /// Cycle through the frames again (periodic continuation).
    Cycle,
    /// All edges present forever (the safe, connected-over-time default).
    #[default]
    AllPresent,
    /// All edges absent forever. **Not** connected-over-time; intended for
    /// negative tests only.
    AllAbsent,
}

/// A schedule given explicitly as a finite list of snapshots plus a
/// [`TailBehavior`] for all later instants.
///
/// This is the workhorse for captured adversarial runs, generated random
/// dynamics, and the convergence framework.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScriptedSchedule {
    ring: RingTopology,
    frames: Vec<EdgeSet>,
    tail: TailBehavior,
}

impl ScriptedSchedule {
    /// Creates a scripted schedule from explicit frames.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::FrameSizeMismatch`] when any frame's universe
    /// differs from the ring's edge count.
    pub fn new(
        ring: RingTopology,
        frames: Vec<EdgeSet>,
        tail: TailBehavior,
    ) -> Result<Self, GraphError> {
        for frame in &frames {
            if frame.universe() != ring.edge_count() {
                return Err(GraphError::FrameSizeMismatch {
                    expected: ring.edge_count(),
                    found: frame.universe(),
                });
            }
        }
        Ok(ScriptedSchedule { ring, frames, tail })
    }

    /// An empty script (tail behaviour applies from time 0).
    pub fn empty(ring: RingTopology, tail: TailBehavior) -> Self {
        ScriptedSchedule {
            ring,
            frames: Vec::new(),
            tail,
        }
    }

    /// Records `schedule`'s first `horizon` snapshots into a script.
    pub fn capture<S: EdgeSchedule>(schedule: &S, horizon: Time, tail: TailBehavior) -> Self {
        let frames = (0..horizon).map(|t| schedule.edges_at(t)).collect();
        ScriptedSchedule {
            ring: schedule.ring().clone(),
            frames,
            tail,
        }
    }

    /// Appends one frame.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::FrameSizeMismatch`] when the frame's universe
    /// differs from the ring's edge count.
    pub fn push_frame(&mut self, frame: EdgeSet) -> Result<(), GraphError> {
        if frame.universe() != self.ring.edge_count() {
            return Err(GraphError::FrameSizeMismatch {
                expected: self.ring.edge_count(),
                found: frame.universe(),
            });
        }
        self.frames.push(frame);
        Ok(())
    }

    /// Number of explicitly recorded frames.
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    /// The recorded frames.
    pub fn frames(&self) -> &[EdgeSet] {
        &self.frames
    }

    /// The configured tail behaviour.
    pub fn tail(&self) -> TailBehavior {
        self.tail
    }

    /// Replaces the tail behaviour.
    pub fn set_tail(&mut self, tail: TailBehavior) {
        self.tail = tail;
    }

    /// The single source of truth for "what plays at time `t`": a recorded
    /// frame, the full ring, or the empty ring. Both [`EdgeSchedule`]
    /// query paths go through this, so per-edge and whole-snapshot views
    /// cannot drift.
    fn frame_at(&self, t: Time) -> ScriptedFrame<'_> {
        let len = self.frames.len() as Time;
        if t < len {
            return ScriptedFrame::Recorded(&self.frames[t as usize]);
        }
        match self.tail {
            TailBehavior::HoldLast => match self.frames.last() {
                Some(last) => ScriptedFrame::Recorded(last),
                None => ScriptedFrame::Full,
            },
            TailBehavior::Cycle => match self.frames.get((t % len.max(1)) as usize) {
                Some(frame) => ScriptedFrame::Recorded(frame),
                None => ScriptedFrame::Full,
            },
            TailBehavior::AllPresent => ScriptedFrame::Full,
            TailBehavior::AllAbsent => ScriptedFrame::Empty,
        }
    }
}

/// What a [`ScriptedSchedule`] plays at one instant.
enum ScriptedFrame<'a> {
    Recorded(&'a EdgeSet),
    Full,
    Empty,
}

impl EdgeSchedule for ScriptedSchedule {
    fn ring(&self) -> &RingTopology {
        &self.ring
    }

    fn is_present(&self, edge: EdgeId, t: Time) -> bool {
        self.ring
            .check_edge(edge)
            .unwrap_or_else(|e| panic!("{e}"));
        match self.frame_at(t) {
            ScriptedFrame::Recorded(frame) => frame.contains(edge),
            ScriptedFrame::Full => true,
            ScriptedFrame::Empty => false,
        }
    }

    fn edges_at(&self, t: Time) -> EdgeSet {
        let mut out = EdgeSet::empty_for(&self.ring);
        self.edges_at_into(t, &mut out);
        out
    }

    fn edges_at_into(&self, t: Time, out: &mut EdgeSet) {
        match self.frame_at(t) {
            ScriptedFrame::Recorded(frame) => out.copy_from(frame),
            ScriptedFrame::Full => {
                out.reset(self.ring.edge_count());
                out.fill();
            }
            ScriptedFrame::Empty => out.reset(self.ring.edge_count()),
        }
    }
}

/// A periodically varying graph (the class studied in Flocchini–Mans–Santoro
/// and Ilcinkas–Wade): the frame at time `t` is `frames[t mod p]`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeriodicSchedule {
    ring: RingTopology,
    frames: Vec<EdgeSet>,
}

impl PeriodicSchedule {
    /// Creates a periodic schedule cycling through `frames`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EmptyPeriod`] when `frames` is empty and
    /// [`GraphError::FrameSizeMismatch`] when a frame has the wrong universe.
    pub fn new(ring: RingTopology, frames: Vec<EdgeSet>) -> Result<Self, GraphError> {
        if frames.is_empty() {
            return Err(GraphError::EmptyPeriod);
        }
        for frame in &frames {
            if frame.universe() != ring.edge_count() {
                return Err(GraphError::FrameSizeMismatch {
                    expected: ring.edge_count(),
                    found: frame.universe(),
                });
            }
        }
        Ok(PeriodicSchedule { ring, frames })
    }

    /// The period `p`.
    pub fn period(&self) -> usize {
        self.frames.len()
    }
}

impl EdgeSchedule for PeriodicSchedule {
    fn ring(&self) -> &RingTopology {
        &self.ring
    }

    fn is_present(&self, edge: EdgeId, t: Time) -> bool {
        self.ring
            .check_edge(edge)
            .unwrap_or_else(|e| panic!("{e}"));
        self.frames[(t % self.frames.len() as Time) as usize].contains(edge)
    }

    fn edges_at(&self, t: Time) -> EdgeSet {
        self.frames[(t % self.frames.len() as Time) as usize].clone()
    }

    fn edges_at_into(&self, t: Time, out: &mut EdgeSet) {
        out.copy_from(&self.frames[(t % self.frames.len() as Time) as usize]);
    }
}

/// `inner` with extra absences applied — the proofs' `G \ {(e, τ), …}`.
///
/// ```rust
/// use dynring_graph::{AlwaysPresent, EdgeSchedule, EdgeId, Minus,
///                     RingTopology, TimeInterval};
///
/// # fn main() -> Result<(), dynring_graph::GraphError> {
/// let ring = RingTopology::new(4)?;
/// let mut g = Minus::new(AlwaysPresent::new(ring));
/// g.remove(EdgeId::new(1), TimeInterval::bounded(2, 5));
/// assert!(g.is_present(EdgeId::new(1), 1));
/// assert!(!g.is_present(EdgeId::new(1), 4));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Minus<S> {
    inner: S,
    removals: RemovalTable,
}

impl<S: EdgeSchedule> Minus<S> {
    /// Wraps `inner` with an empty removal table.
    pub fn new(inner: S) -> Self {
        Minus {
            inner,
            removals: RemovalTable::new(),
        }
    }

    /// Marks `edge` absent during `interval`.
    ///
    /// # Panics
    ///
    /// Panics when `edge` is not an edge of the inner ring.
    pub fn remove(&mut self, edge: EdgeId, interval: TimeInterval) -> &mut Self {
        self.inner
            .ring()
            .check_edge(edge)
            .unwrap_or_else(|e| panic!("{e}"));
        self.removals.insert(edge, interval);
        self
    }

    /// The wrapped schedule.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The removal table.
    pub fn removals(&self) -> &RemovalTable {
        &self.removals
    }

    /// Unwraps, returning the inner schedule and the removal table.
    pub fn into_parts(self) -> (S, RemovalTable) {
        (self.inner, self.removals)
    }
}

impl<S: EdgeSchedule> EdgeSchedule for Minus<S> {
    fn ring(&self) -> &RingTopology {
        self.inner.ring()
    }

    fn is_present(&self, edge: EdgeId, t: Time) -> bool {
        self.inner.is_present(edge, t) && !self.removals.is_absent(edge, t)
    }

    fn edges_at_into(&self, t: Time, out: &mut EdgeSet) {
        self.inner.edges_at_into(t, out);
        for (edge, _) in self.removals.iter() {
            if self.removals.is_absent(edge, t) {
                out.remove(edge);
            }
        }
    }
}

/// A static ring from which edges are carved out by absence intervals.
///
/// Equivalent to `Minus<AlwaysPresent>` but ubiquitous enough in the proofs
/// to deserve its own named type: "all edges are always present except …".
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AbsenceIntervals {
    ring: RingTopology,
    removals: RemovalTable,
}

impl AbsenceIntervals {
    /// A static ring with no absences yet.
    pub fn new(ring: RingTopology) -> Self {
        AbsenceIntervals {
            ring,
            removals: RemovalTable::new(),
        }
    }

    /// Marks `edge` absent during `[start, end)`. Empty intervals are
    /// ignored.
    ///
    /// # Panics
    ///
    /// Panics when `edge` is not an edge of the ring.
    pub fn remove_during(&mut self, edge: EdgeId, start: Time, end: Time) -> &mut Self {
        self.remove(edge, TimeInterval::bounded(start, end))
    }

    /// Marks `edge` absent forever from `start` on — an *eventual missing
    /// edge*.
    ///
    /// # Panics
    ///
    /// Panics when `edge` is not an edge of the ring.
    pub fn remove_from(&mut self, edge: EdgeId, start: Time) -> &mut Self {
        self.remove(edge, TimeInterval::from_instant(start))
    }

    /// Marks `edge` absent during `interval`.
    ///
    /// # Panics
    ///
    /// Panics when `edge` is not an edge of the ring.
    pub fn remove(&mut self, edge: EdgeId, interval: TimeInterval) -> &mut Self {
        self.ring
            .check_edge(edge)
            .unwrap_or_else(|e| panic!("{e}"));
        self.removals.insert(edge, interval);
        self
    }

    /// The removal table.
    pub fn removals(&self) -> &RemovalTable {
        &self.removals
    }
}

impl EdgeSchedule for AbsenceIntervals {
    fn ring(&self) -> &RingTopology {
        &self.ring
    }

    fn is_present(&self, edge: EdgeId, t: Time) -> bool {
        self.ring
            .check_edge(edge)
            .unwrap_or_else(|e| panic!("{e}"));
        !self.removals.is_absent(edge, t)
    }

    fn edges_at_into(&self, t: Time, out: &mut EdgeSet) {
        out.reset(self.ring.edge_count());
        out.fill();
        for (edge, _) in self.removals.iter() {
            if self.removals.is_absent(edge, t) {
                out.remove(edge);
            }
        }
    }
}

/// `inner` with one designated *eventual missing edge*: `edge` is absent
/// forever from time `from` on.
///
/// On a ring this is the extreme point of the connected-over-time class: the
/// eventual underlying graph is the chain obtained by deleting `edge`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WithEventualMissing<S> {
    inner: S,
    edge: EdgeId,
    from: Time,
}

impl<S: EdgeSchedule> WithEventualMissing<S> {
    /// Kills `edge` forever from time `from` on.
    ///
    /// # Panics
    ///
    /// Panics when `edge` is not an edge of the inner ring.
    pub fn new(inner: S, edge: EdgeId, from: Time) -> Self {
        inner
            .ring()
            .check_edge(edge)
            .unwrap_or_else(|e| panic!("{e}"));
        WithEventualMissing { inner, edge, from }
    }

    /// The designated eventual missing edge.
    pub fn missing_edge(&self) -> EdgeId {
        self.edge
    }

    /// The time from which the edge is gone.
    pub fn missing_from(&self) -> Time {
        self.from
    }

    /// The wrapped schedule.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: EdgeSchedule> EdgeSchedule for WithEventualMissing<S> {
    fn ring(&self) -> &RingTopology {
        self.inner.ring()
    }

    fn is_present(&self, edge: EdgeId, t: Time) -> bool {
        if edge == self.edge && t >= self.from {
            return false;
        }
        self.inner.is_present(edge, t)
    }

    fn edges_at_into(&self, t: Time, out: &mut EdgeSet) {
        self.inner.edges_at_into(t, out);
        if t >= self.from {
            out.remove(self.edge);
        }
    }
}

/// Memoryless random dynamics: each `(edge, t)` is present independently
/// with probability `p`, decided by a deterministic hash of
/// `(seed, edge, t)` — so the schedule is pure, reproducible and offers
/// random access in time.
///
/// Almost surely every edge recurs infinitely often (for `p > 0`), making
/// the infinite schedule connected-over-time with probability 1; over a
/// finite horizon, pair it with
/// [`crate::generators::enforce_recurrence`] for a hard guarantee.
///
/// # The word-parallel bit-sliced sampler
///
/// Presence bits are drawn 64 edges at a time. `p` is quantized to
/// `p_k = round(p · 2^K) / 2^K` with `K = 16`
/// ([`BernoulliSchedule::SLICE_RESOLUTION_BITS`]) and trailing zero bits
/// of the numerator are stripped, leaving a `k ≤ K`-bit pattern
/// `b_1 b_2 … b_k` (MSB first). One fresh [`mix64`] word `r_j` is drawn
/// per `(time, 64-edge word, level j)` and combined LSB-first through the
/// AND/OR ladder
///
/// ```text
/// acc ← 0;  for j = k … 1:  acc ← if b_j { r_j | acc } else { r_j & acc }
/// ```
///
/// which realizes, in every bit lane simultaneously, the comparison
/// "k fresh random bits < p_k" — i.e. 64 independent Bernoulli(`p_k`)
/// draws per level-`k` ladder, at `k` hashes per 64 edges instead of 64.
/// Common probabilities are cheap: `p = 0.5` needs one hash per word,
/// `p = 0.75` two. The trade-off is resolution: realized rates are exact
/// multiples of `2^-16` (error ≤ `2^-17`, far below statistical noise at
/// any feasible horizon).
///
/// This sampler defines the schedule's deterministic stream (changing `K`
/// would change every snapshot). The pre-word-parallel per-edge stream
/// survives as [`BernoulliSchedule::reference_is_present`] (crate feature
/// `reference`, on by default) for distribution-equivalence tests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BernoulliSchedule {
    ring: RingTopology,
    presence_probability: f64,
    seed: u64,
}

/// How a [`BernoulliSchedule`] realizes its probability: degenerate
/// constants, or an AND/OR ladder over `levels` random words following the
/// bits of `pattern` (bit `j` of `pattern` is consumed at ladder level
/// `j`, i.e. LSB first).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlicePlan {
    /// `p` quantizes to 0: no edge is ever present.
    Never,
    /// `p` quantizes to 1: every edge is always present.
    Always,
    /// The general case: `levels` slice words realize `pattern / 2^levels`.
    Sliced {
        /// Numerator of the realized probability (odd, `< 2^levels`).
        pattern: u64,
        /// Number of slice words (≤ [`BernoulliSchedule::SLICE_RESOLUTION_BITS`]).
        levels: u32,
    },
}

impl SlicePlan {
    /// Quantizes `p` to a sampling plan at the sampler's resolution
    /// (shared by the per-edge and per-replica streams).
    fn quantize(p: f64) -> SlicePlan {
        let scale = 1u64 << BernoulliSchedule::SLICE_RESOLUTION_BITS;
        let scaled = (p * scale as f64).round() as u64;
        if scaled == 0 {
            SlicePlan::Never
        } else if scaled >= scale {
            SlicePlan::Always
        } else {
            let strip = scaled.trailing_zeros();
            SlicePlan::Sliced {
                pattern: scaled >> strip,
                levels: BernoulliSchedule::SLICE_RESOLUTION_BITS - strip,
            }
        }
    }

    /// Hash draws the plan spends per ladder pass (0 for the degenerate
    /// probabilities).
    fn levels(self) -> u32 {
        match self {
            SlicePlan::Never | SlicePlan::Always => 0,
            SlicePlan::Sliced { levels, .. } => levels,
        }
    }

    /// Runs the AND/OR slice ladder, drawing one fresh random word per
    /// level through `draw`: every bit lane of the result is an
    /// independent Bernoulli(`p_k`) sample.
    fn ladder(self, mut draw: impl FnMut(u32) -> u64) -> u64 {
        match self {
            SlicePlan::Never => 0,
            SlicePlan::Always => u64::MAX,
            SlicePlan::Sliced { pattern, levels } => {
                let mut acc = 0u64;
                for level in 0..levels {
                    let r = draw(level);
                    acc = if (pattern >> level) & 1 == 1 {
                        r | acc
                    } else {
                        r & acc
                    };
                }
                acc
            }
        }
    }
}

impl BernoulliSchedule {
    /// Probability resolution of the bit-sliced sampler: realized rates
    /// are exact multiples of `2^-SLICE_RESOLUTION_BITS`.
    pub const SLICE_RESOLUTION_BITS: u32 = 16;

    /// Creates Bernoulli dynamics with presence probability `p`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidProbability`] unless `0 ≤ p ≤ 1`.
    pub fn new(ring: RingTopology, p: f64, seed: u64) -> Result<Self, GraphError> {
        if !(0.0..=1.0).contains(&p) {
            return Err(GraphError::InvalidProbability { value: p });
        }
        Ok(BernoulliSchedule {
            ring,
            presence_probability: p,
            seed,
        })
    }

    /// The presence probability `p`.
    pub fn presence_probability(&self) -> f64 {
        self.presence_probability
    }

    /// The seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of hash draws the sampler spends per 64-edge word (0 for
    /// the degenerate probabilities) — the cost side of the
    /// precision/cost trade-off.
    pub fn slice_levels(&self) -> u32 {
        self.slice_plan().levels()
    }

    /// Quantizes `p` to the sampling plan. Cheap enough to recompute per
    /// call, which keeps the struct free of derived fields (and the serde
    /// representation unchanged).
    fn slice_plan(&self) -> SlicePlan {
        SlicePlan::quantize(self.presence_probability)
    }

    /// One fresh random word per `(seed, t, 64-edge word, ladder level)`.
    fn slice_word(&self, t: Time, word: usize, level: u32) -> u64 {
        let lane = ((word as u64) << 32) | u64::from(level);
        mix64(mix64(self.seed ^ mix64(t)) ^ lane)
    }

    /// Samples the presence bits of edges `[64·word, 64·word + 64)` at
    /// time `t` in one AND/OR ladder pass.
    fn sample_word(&self, plan: SlicePlan, t: Time, word: usize) -> u64 {
        plan.ladder(|level| self.slice_word(t, word, level))
    }

    /// The presence decision without the edge-validity check (hot path):
    /// the edge's lane of its word's ladder.
    fn present_unchecked(&self, edge: EdgeId, t: Time) -> bool {
        let i = edge.index();
        (self.sample_word(self.slice_plan(), t, i / 64) >> (i % 64)) & 1 == 1
    }
}

/// The reference per-edge sampler: the exact pre-word-parallel stream,
/// kept for distribution-equivalence tests (gated behind the `reference`
/// feature, which is on by default).
#[cfg(any(test, feature = "reference"))]
impl BernoulliSchedule {
    /// The exact integer threshold equivalent of the historical f64
    /// compare: for **every** 64-bit hash `h`,
    /// `h < threshold  ⇔  ((h >> 11) as f64 / 2^53) < p`.
    ///
    /// `None` encodes "always present" (`p = 1`, whose threshold `2^64`
    /// does not fit in a `u64`). The equivalence holds because the f64
    /// compare only reads `h >> 11` (an exactly representable 53-bit
    /// integer), `p · 2^53` is exact (scaling by a power of two), and
    /// `m < p · 2^53  ⇔  m < ceil(p · 2^53)` for integer `m`.
    pub fn reference_threshold(p: f64) -> Option<u64> {
        debug_assert!((0.0..=1.0).contains(&p));
        let t53 = (p * (1u64 << 53) as f64).ceil() as u64;
        if t53 >= 1u64 << 53 {
            None
        } else {
            Some(t53 << 11)
        }
    }

    /// Presence under the reference (pre-PR-2) per-edge stream: one
    /// `mix64` per `(edge, t)`, compared against the integer threshold.
    /// Statistically equivalent to the word-parallel stream (both are
    /// Bernoulli(≈`p`)) but bit-for-bit different.
    ///
    /// # Panics
    ///
    /// Panics when `edge` is not an edge of the ring.
    pub fn reference_is_present(&self, edge: EdgeId, t: Time) -> bool {
        self.ring.check_edge(edge).unwrap_or_else(|e| panic!("{e}"));
        let h = mix64(self.seed ^ mix64((edge.raw() as u64) << 32 ^ t));
        match Self::reference_threshold(self.presence_probability) {
            None => true,
            Some(threshold) => h < threshold,
        }
    }
}

/// SplitMix64 finalizer — a high-quality 64-bit mixing function.
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl EdgeSchedule for BernoulliSchedule {
    fn ring(&self) -> &RingTopology {
        &self.ring
    }

    /// # Panics
    ///
    /// Only debug builds panic on a foreign edge: this is the sparse-probe
    /// hot path, so release builds skip the range check. Use
    /// [`EdgeSchedule::try_is_present`] for the checked,
    /// [`GraphError`]-returning variant.
    fn is_present(&self, edge: EdgeId, t: Time) -> bool {
        debug_assert!(
            self.ring.check_edge(edge).is_ok(),
            "edge {edge} outside ring with {} edges",
            self.ring.edge_count()
        );
        self.present_unchecked(edge, t)
    }

    fn edges_at_into(&self, t: Time, out: &mut EdgeSet) {
        out.reset(self.ring.edge_count());
        let plan = self.slice_plan();
        for word in 0..out.word_count() {
            out.set_word(word, self.sample_word(plan, t, word));
        }
    }

    /// One slice-ladder pass for the requested word only — bit-for-bit
    /// the word [`EdgeSchedule::edges_at_into`] would have written (tail
    /// bits masked), at `slice_levels` hashes instead of a full-ring fill.
    fn sampled_presence_word(&self, t: Time, word: usize) -> Option<u64> {
        let mask = presence_word_mask(self.ring.edge_count(), word);
        Some(self.sample_word(self.slice_plan(), t, word) & mask)
    }
}

/// The **per-replica** Bernoulli stream: the bit-sliced sampler of
/// [`BernoulliSchedule`] with the 64 lanes of each ladder word reassigned
/// from *64 edges* to *64 independent replicas of one edge*.
///
/// [`BernoulliReplicas::presence_word`] returns, for one `(edge, t)`, a
/// word whose bit `l` is an independent Bernoulli(`p_k`) draw — the
/// presence of `edge` at `t` in replica `l`. One slice ladder
/// (`slice_levels` hashes) therefore feeds all 64 replicas at once, which
/// is what makes the lockstep batch engine's stochastic Look phase cost
/// one ladder per *edge* per round instead of one per *replica*.
///
/// Every lane is a well-defined pure schedule in its own right:
/// [`BernoulliReplicas::lane`] derives the scalar [`BernoulliLane`] view
/// of lane `l`, and the batch engine's lane `l` is bit-for-bit the serial
/// engine run against that schedule. Lanes draw from disjoint bit
/// positions of shared hash words, so they are pairwise independent
/// Bernoulli streams with a common `(seed, edge, t, level)` keying — the
/// replica analogue of "one `mix64` per 64 edges per level".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BernoulliReplicas {
    ring: RingTopology,
    presence_probability: f64,
    seed: u64,
}

impl BernoulliReplicas {
    /// Creates the 64-replica Bernoulli stream with presence probability
    /// `p`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidProbability`] unless `0 ≤ p ≤ 1`.
    pub fn new(ring: RingTopology, p: f64, seed: u64) -> Result<Self, GraphError> {
        if !(0.0..=1.0).contains(&p) {
            return Err(GraphError::InvalidProbability { value: p });
        }
        Ok(BernoulliReplicas {
            ring,
            presence_probability: p,
            seed,
        })
    }

    /// The ring whose edges are scheduled (identically keyed in every
    /// replica, independently sampled per replica).
    pub fn ring(&self) -> &RingTopology {
        &self.ring
    }

    /// The presence probability `p`.
    pub fn presence_probability(&self) -> f64 {
        self.presence_probability
    }

    /// The base seed shared by all 64 lanes.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Hash draws per `(edge, t)` ladder pass — the cost of feeding all
    /// 64 replicas one edge's presence bits.
    pub fn slice_levels(&self) -> u32 {
        SlicePlan::quantize(self.presence_probability).levels()
    }

    /// The hash prefix shared by every draw at time `t` (hoisted out of
    /// the per-edge loop on the hot path), mixed `mix64`-strong.
    fn time_prefix(&self, t: Time) -> u64 {
        mix64(self.seed ^ mix64(t))
    }

    /// One draw: a single widening-multiply fold (the wyhash "mum"
    /// primitive) of the `(edge, level)` key against the golden-ratio
    /// constant. The replica stream's snapshot fill is hash-throughput
    /// bound — one draw per edge per level feeds all 64 replicas — so
    /// this stream deliberately uses a one-multiply mixer where the
    /// per-edge stream uses the three-multiply `mix64`; the per-round
    /// prefix stays `mix64`-strong, and the lane rate/independence tests
    /// hold the stream to Bernoulli(`p_k`) empirically.
    fn draw(prefix: u64, edge: usize, level: u32) -> u64 {
        let key = prefix ^ (((edge as u64) << 32) | u64::from(level));
        let product = u128::from(key) * u128::from(0x9e37_79b9_7f4a_7c15u64);
        (product as u64) ^ ((product >> 64) as u64)
    }

    /// The presence word of `edge` at time `t`: bit `l` is the presence
    /// of `edge` in replica `l`.
    ///
    /// # Panics
    ///
    /// Debug builds panic on a foreign edge (hot path: release builds
    /// skip the range check).
    pub fn presence_word(&self, edge: EdgeId, t: Time) -> u64 {
        debug_assert!(
            self.ring.check_edge(edge).is_ok(),
            "edge {edge} outside ring with {} edges",
            self.ring.edge_count()
        );
        let prefix = self.time_prefix(t);
        let e = edge.index();
        SlicePlan::quantize(self.presence_probability)
            .ladder(|level| Self::draw(prefix, e, level))
    }

    /// Writes the presence word of every edge at time `t` into `out`
    /// (`out[e]` is [`BernoulliReplicas::presence_word`] of edge `e`) —
    /// the batch engine's whole-snapshot fill.
    ///
    /// # Panics
    ///
    /// Panics when `out.len()` differs from the ring's edge count.
    pub fn presence_words_into(&self, t: Time, out: &mut [u64]) {
        assert_eq!(
            out.len(),
            self.ring.edge_count(),
            "presence buffer must hold one word per edge"
        );
        match SlicePlan::quantize(self.presence_probability) {
            SlicePlan::Never => out.fill(0),
            SlicePlan::Always => out.fill(u64::MAX),
            SlicePlan::Sliced { pattern, levels } => {
                // The ladder inlined with `pattern`/`levels` hoisted out
                // of the per-edge loop: at p = 0.5 this is exactly one
                // `mix64` per edge for all 64 replicas.
                let prefix = self.time_prefix(t);
                for (e, slot) in out.iter_mut().enumerate() {
                    let mut acc = 0u64;
                    for level in 0..levels {
                        let r = Self::draw(prefix, e, level);
                        acc = if (pattern >> level) & 1 == 1 { r | acc } else { r & acc };
                    }
                    *slot = acc;
                }
            }
        }
    }

    /// The sparse counterpart of
    /// [`BernoulliReplicas::presence_words_into`]: writes the presence
    /// words of just the listed edges into their slots of `out`
    /// (`out[e]` for each `e` in `edges`; other slots are untouched).
    /// Duplicate edges are allowed — the stream is a pure function of
    /// `(edge, t)`, so repeated draws store the same word. Bit-for-bit
    /// identical to the full fill, with the same plan/prefix hoisting.
    ///
    /// # Panics
    ///
    /// Panics when an edge index is at or beyond `out.len()`; `out` is
    /// expected to span the ring's edges as in the full fill.
    pub fn presence_words_sparse_into(&self, t: Time, edges: &[u32], out: &mut [u64]) {
        match SlicePlan::quantize(self.presence_probability) {
            SlicePlan::Never => {
                for &e in edges {
                    out[e as usize] = 0;
                }
            }
            SlicePlan::Always => {
                for &e in edges {
                    out[e as usize] = u64::MAX;
                }
            }
            SlicePlan::Sliced { pattern, levels } => {
                let prefix = self.time_prefix(t);
                for &e in edges {
                    let mut acc = 0u64;
                    for level in 0..levels {
                        let r = Self::draw(prefix, e as usize, level);
                        acc = if (pattern >> level) & 1 == 1 { r | acc } else { r & acc };
                    }
                    out[e as usize] = acc;
                }
            }
        }
    }

    /// The compact-list counterpart of
    /// [`BernoulliReplicas::presence_words_sparse_into`]: writes the
    /// presence word of `edges[i]` into `out[i]` (not `out[edges[i]]`),
    /// so a caller can gather a handful of edges into a small dense
    /// buffer instead of scattering into a ring-sized one. Duplicate
    /// edges are allowed. Bit-for-bit identical to the full fill.
    ///
    /// # Panics
    ///
    /// Panics when `out` is shorter than `edges`.
    pub fn presence_list_words_into(&self, t: Time, edges: &[u32], out: &mut [u64]) {
        assert!(
            out.len() >= edges.len(),
            "compact presence buffer must hold one word per listed edge"
        );
        match SlicePlan::quantize(self.presence_probability) {
            SlicePlan::Never => out[..edges.len()].fill(0),
            SlicePlan::Always => out[..edges.len()].fill(u64::MAX),
            SlicePlan::Sliced { pattern, levels } => {
                let prefix = self.time_prefix(t);
                for (&e, slot) in edges.iter().zip(out.iter_mut()) {
                    let mut acc = 0u64;
                    for level in 0..levels {
                        let r = Self::draw(prefix, e as usize, level);
                        acc = if (pattern >> level) & 1 == 1 { r | acc } else { r & acc };
                    }
                    *slot = acc;
                }
            }
        }
    }

    /// The fused Look-phase gather of the lockstep batch engine: for each
    /// of the 64 lane positions `positions[l]` (node indices on the
    /// ring), packs the presence bit of that lane's clockwise edge (edge
    /// `positions[l]`) and counter-clockwise edge (edge
    /// `positions[l] − 1 mod n`) into bit `l` of the returned
    /// `(clockwise, counter_clockwise)` pair.
    ///
    /// Bit-for-bit identical to drawing each edge's
    /// [`BernoulliReplicas::presence_word`] and masking out bit `l`, but
    /// with the slice plan and time prefix hoisted and **no intermediate
    /// edge-list or word buffers** — per round and lane the engine pays
    /// exactly `2 · slice_levels` widening multiplies and nothing else,
    /// which is what keeps the wide-arity batch round sampling-bound
    /// rather than memory-bound.
    ///
    /// # Panics
    ///
    /// Debug builds panic when a position is not a node of the ring
    /// (hot path: release builds skip the range check).
    pub fn presence_pair_bits(&self, t: Time, positions: &[u32]) -> (u64, u64) {
        let n = self.ring.node_count() as u32;
        debug_assert!(
            positions.iter().all(|&v| v < n),
            "lane positions must be nodes of the ring with {n} nodes"
        );
        match SlicePlan::quantize(self.presence_probability) {
            SlicePlan::Never => (0, 0),
            SlicePlan::Always => (u64::MAX, u64::MAX),
            SlicePlan::Sliced { pattern, levels } => {
                let prefix = self.time_prefix(t);
                let mut cw = 0u64;
                let mut ccw = 0u64;
                let mut mask = 1u64;
                if levels == 1 {
                    // One-level ladders (p = 0.5 among them) are the hot
                    // case: the quantizer strips trailing zeros so the
                    // pattern LSB is always set, and a one-level ladder
                    // *is* its draw — no accumulator, no pattern branch.
                    for &v in positions {
                        let e_cw = v as usize;
                        let e_ccw = (if v == 0 { n - 1 } else { v - 1 }) as usize;
                        cw |= Self::draw(prefix, e_cw, 0) & mask;
                        ccw |= Self::draw(prefix, e_ccw, 0) & mask;
                        mask = mask.rotate_left(1);
                    }
                    return (cw, ccw);
                }
                for &v in positions {
                    let e_cw = v as usize;
                    let e_ccw = (if v == 0 { n - 1 } else { v - 1 }) as usize;
                    let mut acc_cw = 0u64;
                    let mut acc_ccw = 0u64;
                    for level in 0..levels {
                        let r_cw = Self::draw(prefix, e_cw, level);
                        let r_ccw = Self::draw(prefix, e_ccw, level);
                        if (pattern >> level) & 1 == 1 {
                            acc_cw |= r_cw;
                            acc_ccw |= r_ccw;
                        } else {
                            acc_cw &= r_cw;
                            acc_ccw &= r_ccw;
                        }
                    }
                    cw |= acc_cw & mask;
                    ccw |= acc_ccw & mask;
                    mask = mask.rotate_left(1);
                }
                (cw, ccw)
            }
        }
    }

    /// The scalar schedule of lane `lane`: a pure [`EdgeSchedule`] whose
    /// presence bits are exactly this stream's bit `lane` — the derived
    /// per-replica seed of the serial-equivalence contract.
    ///
    /// # Panics
    ///
    /// Panics when `lane ≥` [`crate::LANES_PER_WORD`].
    pub fn lane(&self, lane: u32) -> BernoulliLane {
        assert!(
            (lane as usize) < crate::lane::LANES_PER_WORD,
            "replica lanes are 0..{}, got {lane}",
            crate::lane::LANES_PER_WORD
        );
        BernoulliLane {
            replicas: self.clone(),
            lane,
        }
    }
}

/// One lane of a [`BernoulliReplicas`] stream as a pure scalar
/// [`EdgeSchedule`]: `is_present(e, t)` is bit `lane` of
/// [`BernoulliReplicas::presence_word`]. A serial simulator driven by
/// this schedule reproduces the batch engine's lane `lane` bit for bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BernoulliLane {
    replicas: BernoulliReplicas,
    lane: u32,
}

impl BernoulliLane {
    /// The lane index (0..64).
    pub fn lane(&self) -> u32 {
        self.lane
    }

    /// The replica stream this lane is a view of.
    pub fn replicas(&self) -> &BernoulliReplicas {
        &self.replicas
    }
}

impl EdgeSchedule for BernoulliLane {
    fn ring(&self) -> &RingTopology {
        &self.replicas.ring
    }

    /// # Panics
    ///
    /// Debug builds panic on a foreign edge (sparse-probe hot path; use
    /// [`EdgeSchedule::try_is_present`] for the checked variant).
    fn is_present(&self, edge: EdgeId, t: Time) -> bool {
        (self.replicas.presence_word(edge, t) >> self.lane) & 1 == 1
    }

    fn edges_at_into(&self, t: Time, out: &mut EdgeSet) {
        out.reset(self.replicas.ring.edge_count());
        let plan = SlicePlan::quantize(self.replicas.presence_probability);
        let prefix = self.replicas.time_prefix(t);
        for e in 0..self.replicas.ring.edge_count() {
            let word = plan.ladder(|level| BernoulliReplicas::draw(prefix, e, level));
            if (word >> self.lane) & 1 == 1 {
                out.insert(EdgeId::new(e));
            }
        }
    }
}

/// A bank of independent [`BernoulliReplicas`] streams over the same ring
/// and probability — the wide-arity presence source for the batch engine.
///
/// Plane `w` (a 64-lane block) is the stream seeded `seeds[w]`, so global
/// lane `l` of the bank is lane `l % 64` of stream `l / 64`. A wide batch
/// is thereby a *composite* of ordinary 64-lane batches: running the bank
/// at 128 or 256 lanes produces, plane by plane, exactly the bits a
/// 64-lane run over each seed would — the arity-independence half of the
/// lane-vs-serial equivalence contract.
#[derive(Debug, Clone, PartialEq)]
pub struct BernoulliReplicaBank {
    streams: Vec<BernoulliReplicas>,
}

impl BernoulliReplicaBank {
    /// Creates one 64-lane stream per entry of `seeds`, all over `ring`
    /// with presence probability `p`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidProbability`] unless `0 ≤ p ≤ 1`.
    ///
    /// # Panics
    ///
    /// Panics when `seeds` is empty.
    pub fn new(ring: RingTopology, p: f64, seeds: &[u64]) -> Result<Self, GraphError> {
        assert!(!seeds.is_empty(), "a replica bank needs at least one plane seed");
        let streams = seeds
            .iter()
            .map(|&seed| BernoulliReplicas::new(ring.clone(), p, seed))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(BernoulliReplicaBank { streams })
    }

    /// The ring shared by every plane.
    pub fn ring(&self) -> &RingTopology {
        self.streams[0].ring()
    }

    /// Number of 64-lane planes (words) in the bank.
    pub fn words(&self) -> usize {
        self.streams.len()
    }

    /// Total lane count: `64 · words()`.
    pub fn lanes(&self) -> usize {
        self.streams.len() * crate::lane::LANES_PER_WORD
    }

    /// The 64-lane stream of plane `word`.
    ///
    /// # Panics
    ///
    /// Panics when `word ≥ words()`.
    pub fn stream(&self, word: usize) -> &BernoulliReplicas {
        &self.streams[word]
    }

    /// The scalar schedule of global lane `lane`: lane `lane % 64` of
    /// plane `lane / 64` — the serial-equivalence reference at any arity.
    ///
    /// # Panics
    ///
    /// Panics when `lane ≥ lanes()`.
    pub fn lane(&self, lane: u32) -> BernoulliLane {
        let per = crate::lane::LANES_PER_WORD as u32;
        assert!(
            (lane as usize) < self.lanes(),
            "replica lanes are 0..{}, got {lane}",
            self.lanes()
        );
        self.streams[(lane / per) as usize].lane(lane % per)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> RingTopology {
        RingTopology::new(n).expect("valid ring")
    }

    #[test]
    fn interval_membership() {
        let iv = TimeInterval::bounded(2, 5);
        assert!(!iv.contains(1));
        assert!(iv.contains(2));
        assert!(iv.contains(4));
        assert!(!iv.contains(5));
        assert!(!iv.is_empty());
        assert!(TimeInterval::bounded(3, 3).is_empty());
        assert!(TimeInterval::from_instant(0).contains(u64::MAX));
    }

    #[test]
    fn interval_touching_and_merge() {
        let a = TimeInterval::bounded(0, 3);
        let b = TimeInterval::bounded(3, 6);
        let c = TimeInterval::bounded(7, 9);
        assert!(a.touches(&b));
        assert!(!a.touches(&c));
        assert_eq!(a.merge(&b), TimeInterval::bounded(0, 6));
        let unbounded = TimeInterval::from_instant(5);
        assert!(b.touches(&unbounded));
        assert_eq!(b.merge(&unbounded), TimeInterval::from_instant(3));
    }

    #[test]
    fn removal_table_merges_intervals() {
        let mut table = RemovalTable::new();
        let e = EdgeId::new(0);
        table.insert(e, TimeInterval::bounded(0, 3));
        table.insert(e, TimeInterval::bounded(5, 8));
        table.insert(e, TimeInterval::bounded(2, 6)); // bridges the two
        assert_eq!(table.intervals(e), &[TimeInterval::bounded(0, 8)]);
        assert!(table.is_absent(e, 7));
        assert!(!table.is_absent(e, 8));
    }

    #[test]
    fn removal_table_ignores_empty_interval() {
        let mut table = RemovalTable::new();
        table.insert(EdgeId::new(1), TimeInterval::bounded(4, 4));
        assert!(table.is_empty());
    }

    #[test]
    fn removal_table_eventually_missing() {
        let mut table = RemovalTable::new();
        table.insert(EdgeId::new(2), TimeInterval::bounded(0, 9));
        table.insert(EdgeId::new(3), TimeInterval::from_instant(4));
        let missing: Vec<_> = table.eventually_missing().collect();
        assert_eq!(missing, vec![EdgeId::new(3)]);
    }

    #[test]
    fn always_present_snapshots_are_full() {
        let g = AlwaysPresent::new(ring(5));
        assert!(g.edges_at(0).is_full());
        assert!(g.edges_at(99).is_full());
        assert!(g.is_present(EdgeId::new(4), 12));
        assert!(g.footprint(3).is_full());
    }

    #[test]
    fn scripted_schedule_plays_frames_then_tail() {
        let r = ring(3);
        let frames = vec![
            EdgeSet::from_indices(3, [0]),
            EdgeSet::from_indices(3, [1, 2]),
        ];
        let s = ScriptedSchedule::new(r.clone(), frames.clone(), TailBehavior::AllPresent)
            .expect("valid script");
        assert_eq!(s.edges_at(0), frames[0]);
        assert_eq!(s.edges_at(1), frames[1]);
        assert!(s.edges_at(2).is_full());
        assert_eq!(s.frame_count(), 2);
    }

    #[test]
    fn scripted_tail_behaviours() {
        let r = ring(2);
        let frames = vec![
            EdgeSet::from_indices(2, [0]),
            EdgeSet::from_indices(2, [1]),
        ];
        let hold = ScriptedSchedule::new(r.clone(), frames.clone(), TailBehavior::HoldLast)
            .expect("valid");
        assert_eq!(hold.edges_at(10), frames[1]);
        let cycle =
            ScriptedSchedule::new(r.clone(), frames.clone(), TailBehavior::Cycle).expect("valid");
        assert_eq!(cycle.edges_at(4), frames[0]);
        assert_eq!(cycle.edges_at(5), frames[1]);
        let absent =
            ScriptedSchedule::new(r.clone(), frames, TailBehavior::AllAbsent).expect("valid");
        assert!(absent.edges_at(7).is_empty());
    }

    #[test]
    fn scripted_rejects_mismatched_frames() {
        let r = ring(4);
        let err = ScriptedSchedule::new(r, vec![EdgeSet::empty(3)], TailBehavior::AllPresent);
        assert_eq!(
            err,
            Err(GraphError::FrameSizeMismatch {
                expected: 4,
                found: 3
            })
        );
    }

    #[test]
    fn capture_round_trips_a_schedule() {
        let mut src = AbsenceIntervals::new(ring(4));
        src.remove_during(EdgeId::new(2), 1, 3);
        let cap = ScriptedSchedule::capture(&src, 5, TailBehavior::AllPresent);
        for t in 0..5 {
            assert_eq!(cap.edges_at(t), src.edges_at(t), "frame {t}");
        }
    }

    #[test]
    fn periodic_schedule_cycles() {
        let r = ring(2);
        let frames = vec![
            EdgeSet::from_indices(2, [0]),
            EdgeSet::from_indices(2, [1]),
            EdgeSet::from_indices(2, [0, 1]),
        ];
        let p = PeriodicSchedule::new(r, frames.clone()).expect("valid period");
        assert_eq!(p.period(), 3);
        for t in 0..12u64 {
            assert_eq!(p.edges_at(t), frames[(t % 3) as usize]);
        }
    }

    #[test]
    fn periodic_rejects_empty() {
        assert_eq!(
            PeriodicSchedule::new(ring(2), vec![]),
            Err(GraphError::EmptyPeriod)
        );
    }

    #[test]
    fn minus_applies_removals() {
        let mut g = Minus::new(AlwaysPresent::new(ring(4)));
        g.remove(EdgeId::new(1), TimeInterval::bounded(2, 4));
        g.remove(EdgeId::new(1), TimeInterval::bounded(6, 7));
        assert!(g.is_present(EdgeId::new(1), 1));
        assert!(!g.is_present(EdgeId::new(1), 3));
        assert!(g.is_present(EdgeId::new(1), 5));
        assert!(!g.is_present(EdgeId::new(1), 6));
        assert!(g.is_present(EdgeId::new(0), 3));
    }

    #[test]
    fn absence_intervals_eventual_missing_edge() {
        let mut g = AbsenceIntervals::new(ring(5));
        g.remove_from(EdgeId::new(3), 10);
        assert!(g.is_present(EdgeId::new(3), 9));
        assert!(!g.is_present(EdgeId::new(3), 10));
        assert!(!g.is_present(EdgeId::new(3), 1_000_000));
        let missing: Vec<_> = g.removals().eventually_missing().collect();
        assert_eq!(missing, vec![EdgeId::new(3)]);
    }

    #[test]
    fn with_eventual_missing_wrapper() {
        let g = WithEventualMissing::new(AlwaysPresent::new(ring(4)), EdgeId::new(0), 5);
        assert!(g.is_present(EdgeId::new(0), 4));
        assert!(!g.is_present(EdgeId::new(0), 5));
        assert_eq!(g.missing_edge(), EdgeId::new(0));
        assert_eq!(g.missing_from(), 5);
    }

    // NOTE: PR 2 replaced the per-edge f64 Bernoulli stream with the
    // word-parallel bit-sliced sampler, which defines a *new* deterministic
    // stream. The Bernoulli tests below assert stream-independent
    // properties (determinism, seed sensitivity, extremes, rate) and were
    // re-validated against the new stream; nothing here pins exact
    // snapshots of the old one.
    #[test]
    fn bernoulli_is_deterministic_and_seed_sensitive() {
        let a = BernoulliSchedule::new(ring(6), 0.5, 42).expect("valid p");
        let b = BernoulliSchedule::new(ring(6), 0.5, 42).expect("valid p");
        let c = BernoulliSchedule::new(ring(6), 0.5, 43).expect("valid p");
        let snap_a: Vec<_> = (0..50).map(|t| a.edges_at(t)).collect();
        let snap_b: Vec<_> = (0..50).map(|t| b.edges_at(t)).collect();
        assert_eq!(snap_a, snap_b);
        let snap_c: Vec<_> = (0..50).map(|t| c.edges_at(t)).collect();
        assert_ne!(snap_a, snap_c);
    }

    #[test]
    fn bernoulli_extremes() {
        let never = BernoulliSchedule::new(ring(3), 0.0, 1).expect("valid p");
        let always = BernoulliSchedule::new(ring(3), 1.0, 1).expect("valid p");
        for t in 0..20 {
            assert!(never.edges_at(t).is_empty());
            assert!(always.edges_at(t).is_full());
        }
    }

    #[test]
    fn bernoulli_rejects_bad_probability() {
        assert!(matches!(
            BernoulliSchedule::new(ring(3), 1.5, 0),
            Err(GraphError::InvalidProbability { .. })
        ));
    }

    #[test]
    fn bernoulli_rate_is_plausible() {
        let g = BernoulliSchedule::new(ring(10), 0.7, 7).expect("valid p");
        let total: usize = (0..1000).map(|t| g.edges_at(t).len()).sum();
        let rate = total as f64 / (1000.0 * 10.0);
        assert!((rate - 0.7).abs() < 0.05, "empirical rate {rate}");
    }

    #[test]
    fn slice_plan_cost_follows_probability_resolution() {
        let levels = |p: f64| {
            BernoulliSchedule::new(ring(3), p, 0)
                .expect("valid p")
                .slice_levels()
        };
        // p = 1/2 costs one hash per 64-edge word, p = 3/4 two, and the
        // degenerate probabilities none.
        assert_eq!(levels(0.5), 1);
        assert_eq!(levels(0.75), 2);
        assert_eq!(levels(0.0), 0);
        assert_eq!(levels(1.0), 0);
        // Arbitrary probabilities cap out at the quantization resolution.
        assert!(levels(0.1) <= BernoulliSchedule::SLICE_RESOLUTION_BITS);
        assert!(levels(0.33) <= BernoulliSchedule::SLICE_RESOLUTION_BITS);
    }

    #[test]
    fn bernoulli_word_fill_matches_point_queries() {
        // The acceptance contract of the sparse probe path: `is_present`
        // and `edges_at_into` are two views of one stream.
        for p in [0.1, 0.37, 0.5, 0.9] {
            let g = BernoulliSchedule::new(ring(130), p, 99).expect("valid p");
            for t in 0..50 {
                let set = g.edges_at(t);
                for e in g.ring().edges() {
                    assert_eq!(set.contains(e), g.is_present(e, t), "p={p} t={t} e={e}");
                }
            }
        }
    }

    #[test]
    fn sampled_word_matches_snapshot_word_extraction() {
        // The sparse-sampling contract: a sampled word is bit-for-bit the
        // corresponding word of the full snapshot, including the masked
        // tail at n % 64 != 0.
        for n in [2usize, 63, 64, 65, 127, 130] {
            for p in [0.0, 0.1, 0.5, 0.9, 1.0] {
                let g = BernoulliSchedule::new(ring(n), p, 0xABCD).expect("valid p");
                for t in 0..20u64 {
                    let snapshot = g.edges_at(t);
                    for word in 0..snapshot.word_count() {
                        assert_eq!(
                            g.sampled_presence_word(t, word),
                            Some(snapshot.as_words()[word]),
                            "n={n} p={p} t={t} word={word}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn always_present_sampled_word_is_the_masked_full_word() {
        let g = AlwaysPresent::new(ring(67));
        assert_eq!(g.sampled_presence_word(5, 0), Some(u64::MAX));
        assert_eq!(g.sampled_presence_word(5, 1), Some(0b111));
        let snapshot = g.edges_at(5);
        assert_eq!(g.sampled_presence_word(5, 1), Some(snapshot.as_words()[1]));
    }

    #[test]
    fn sampled_word_defaults_to_none_for_frame_schedules() {
        // Calling through a generic bound on `&S` exercises the
        // forwarding impls, which must propagate the answer unchanged.
        fn via_forwarding<S: EdgeSchedule>(s: S) -> Option<u64> {
            s.sampled_presence_word(0, 0)
        }
        let s = ScriptedSchedule::empty(ring(3), TailBehavior::AllPresent);
        assert_eq!(s.sampled_presence_word(0, 0), None);
        assert_eq!(via_forwarding(&s), None);
        let boxed: Box<dyn EdgeSchedule> = Box::new(s);
        assert_eq!(boxed.sampled_presence_word(0, 0), None);
        let g = BernoulliSchedule::new(ring(3), 0.5, 1).expect("valid p");
        assert_eq!(via_forwarding(&g), g.sampled_presence_word(0, 0));
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn sampled_word_panics_out_of_range() {
        let g = BernoulliSchedule::new(ring(64), 0.5, 1).expect("valid p");
        let _ = g.sampled_presence_word(0, 1);
    }

    #[test]
    fn sparse_fill_matches_point_and_full_fills_for_every_edge_and_lane() {
        // The three replica-word surfaces — point query, full fill,
        // sparse fill (with duplicate edges in the list) — are one
        // stream.
        for p in [0.0, 0.3, 0.5, 0.75, 1.0] {
            let replicas = BernoulliReplicas::new(ring(13), p, 0xFACE).expect("valid p");
            let edges: Vec<u32> = (0..13u32).chain([0, 5, 5, 12]).collect();
            let mut full = vec![0u64; 13];
            let mut sparse = vec![0u64; 13];
            for t in 0..30u64 {
                replicas.presence_words_into(t, &mut full);
                sparse.fill(0);
                replicas.presence_words_sparse_into(t, &edges, &mut sparse);
                assert_eq!(full, sparse, "p={p} t={t}");
                for e in replicas.ring().edges() {
                    assert_eq!(
                        full[e.index()],
                        replicas.presence_word(e, t),
                        "p={p} t={t} e={e}"
                    );
                }
            }
        }
    }

    #[test]
    fn integer_threshold_matches_f64_compare_exactly() {
        // The historical compare mapped h to (h >> 11) / 2^53; its decision
        // can only flip at 2^11-aligned hash values. Sweep every alignment
        // in a window around each probability's threshold (with low bits 0,
        // 1 and all-ones) plus a pseudo-random sample of the full range.
        let old = |h: u64, p: f64| ((h >> 11) as f64 / (1u64 << 53) as f64) < p;
        let new = |h: u64, p: f64| match BernoulliSchedule::reference_threshold(p) {
            None => true,
            Some(threshold) => h < threshold,
        };
        #[allow(clippy::approx_constant)]
        let ps = [
            0.0,
            1e-17,
            f64::EPSILON,
            0.1,
            0.25,
            1.0 / 3.0,
            0.5,
            0.7,
            0.9,
            0.999_999,
            1.0 - f64::EPSILON / 2.0,
            1.0,
        ];
        for &p in &ps {
            let t53 = (p * (1u64 << 53) as f64).ceil() as u64;
            let lo = t53.saturating_sub(64);
            let hi = (t53 + 64).min(1u64 << 53);
            for m in lo..hi {
                for h in [m << 11, (m << 11) | 1, (m << 11) | 0x7ff] {
                    assert_eq!(new(h, p), old(h, p), "p={p} h={h:#018x}");
                }
            }
            let mut state = 0x1234_5678_9abc_def0u64;
            for _ in 0..4096 {
                state = mix64(state);
                assert_eq!(new(state, p), old(state, p), "p={p} h={state:#018x}");
            }
        }
    }

    #[test]
    fn word_and_reference_streams_share_the_rate() {
        // Distribution equivalence: the bit-sliced stream and the reference
        // per-edge stream are different bit sequences drawn from the same
        // Bernoulli(p) distribution.
        for p in [0.1, 0.5, 0.9] {
            let g = BernoulliSchedule::new(ring(64), p, 2024).expect("valid p");
            let horizon = 400u64;
            let mut word_hits = 0usize;
            let mut reference_hits = 0usize;
            for t in 0..horizon {
                for e in g.ring().edges() {
                    word_hits += usize::from(g.is_present(e, t));
                    reference_hits += usize::from(g.reference_is_present(e, t));
                }
            }
            let samples = (64 * horizon) as f64;
            let sigma = (p * (1.0 - p) / samples).sqrt();
            let quantization = 1.0 / (1u64 << 17) as f64;
            for (label, hits) in [("word", word_hits), ("reference", reference_hits)] {
                let rate = hits as f64 / samples;
                assert!(
                    (rate - p).abs() < 4.5 * sigma + quantization,
                    "{label} rate {rate} too far from {p}"
                );
            }
        }
    }

    #[test]
    fn replica_lanes_match_the_word_stream() {
        // The serial-equivalence contract: lane l's scalar schedule reads
        // exactly bit l of the presence word, through both query paths.
        for p in [0.0, 0.3, 0.5, 1.0] {
            let replicas = BernoulliReplicas::new(ring(9), p, 0xFACADE).expect("valid p");
            for t in 0..40u64 {
                for e in replicas.ring().edges() {
                    let word = replicas.presence_word(e, t);
                    for lane in [0u32, 1, 31, 63] {
                        let scalar = replicas.lane(lane);
                        assert_eq!(
                            scalar.is_present(e, t),
                            (word >> lane) & 1 == 1,
                            "p={p} t={t} e={e} lane={lane}"
                        );
                        assert_eq!(
                            scalar.edges_at(t).contains(e),
                            scalar.is_present(e, t),
                            "p={p} t={t} e={e} lane={lane} (snapshot path)"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn replica_word_fill_matches_point_queries() {
        let replicas = BernoulliReplicas::new(ring(13), 0.4, 99).expect("valid p");
        let mut buf = vec![0u64; 13];
        for t in 0..30u64 {
            replicas.presence_words_into(t, &mut buf);
            for e in replicas.ring().edges() {
                assert_eq!(buf[e.index()], replicas.presence_word(e, t), "t={t} e={e}");
            }
        }
    }

    #[test]
    fn replica_lanes_are_distinct_and_rate_correct() {
        // Lanes are independent Bernoulli streams: distinct realizations,
        // shared rate.
        let p = 0.5;
        let replicas = BernoulliReplicas::new(ring(16), p, 2026).expect("valid p");
        let horizon = 500u64;
        let mut lane_bits: Vec<Vec<bool>> = Vec::new();
        for lane in [0u32, 7, 63] {
            let s = replicas.lane(lane);
            let bits: Vec<bool> = (0..horizon)
                .flat_map(|t| s.ring().edges().map(move |e| (e, t)))
                .map(|(e, t)| s.is_present(e, t))
                .collect();
            let rate = bits.iter().filter(|&&b| b).count() as f64 / bits.len() as f64;
            assert!((rate - p).abs() < 0.03, "lane {lane} rate {rate}");
            lane_bits.push(bits);
        }
        assert_ne!(lane_bits[0], lane_bits[1]);
        assert_ne!(lane_bits[1], lane_bits[2]);
    }

    #[test]
    fn replicas_reject_bad_probability() {
        assert!(matches!(
            BernoulliReplicas::new(ring(3), -0.1, 0),
            Err(GraphError::InvalidProbability { .. })
        ));
    }

    #[test]
    fn replica_slice_cost_matches_the_edge_stream() {
        for p in [0.0, 0.5, 0.75, 0.1, 1.0] {
            let edges = BernoulliSchedule::new(ring(4), p, 0).expect("valid p");
            let lanes = BernoulliReplicas::new(ring(4), p, 0).expect("valid p");
            assert_eq!(edges.slice_levels(), lanes.slice_levels(), "p={p}");
        }
    }

    #[test]
    fn try_is_present_reports_foreign_edges() {
        let g = BernoulliSchedule::new(ring(4), 0.5, 1).expect("valid p");
        assert!(matches!(
            g.try_is_present(EdgeId::new(9), 0),
            Err(GraphError::EdgeOutOfRange { .. })
        ));
        assert!(g.try_is_present(EdgeId::new(2), 3).is_ok());
        // The trait default covers every schedule type.
        let s = AlwaysPresent::new(ring(4));
        assert_eq!(s.try_is_present(EdgeId::new(1), 0), Ok(true));
        assert!(s.try_is_present(EdgeId::new(4), 0).is_err());
    }

    #[test]
    fn schedule_trait_object_usable_through_references() {
        let g = AlwaysPresent::new(ring(3));
        fn takes_schedule<S: EdgeSchedule>(s: S) -> usize {
            s.edges_at(0).len()
        }
        assert_eq!(takes_schedule(&g), 3);
        let boxed: Box<dyn EdgeSchedule> = Box::new(g);
        assert_eq!(takes_schedule(&boxed), 3);
    }

    #[test]
    fn serde_round_trip_scripted() {
        let r = ring(3);
        let s = ScriptedSchedule::new(
            r,
            vec![EdgeSet::from_indices(3, [0, 2])],
            TailBehavior::Cycle,
        )
        .expect("valid script");
        let json = serde_json::to_string(&s).expect("serialize");
        let back: ScriptedSchedule = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(s, back);
    }
}
