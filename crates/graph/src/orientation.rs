//! Global ring orientation.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A *global* direction around the ring, as seen by an external observer.
///
/// The ring itself is unoriented and robots have no common orientation; the
/// paper (like this crate) distinguishes clockwise from counter-clockwise
/// purely for presentation and proofs. Robots manipulate *local* directions
/// (left/right, see `dynring-engine`); each robot's chirality maps its local
/// directions onto these global ones.
///
/// ```rust
/// use dynring_graph::GlobalDir;
/// assert_eq!(GlobalDir::Clockwise.opposite(), GlobalDir::CounterClockwise);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GlobalDir {
    /// Towards increasing node indices (node `i` → node `i + 1 mod n`).
    Clockwise,
    /// Towards decreasing node indices (node `i` → node `i - 1 mod n`).
    CounterClockwise,
}

impl GlobalDir {
    /// Both directions, clockwise first.
    pub const ALL: [GlobalDir; 2] = [GlobalDir::Clockwise, GlobalDir::CounterClockwise];

    /// Returns the opposite direction.
    pub fn opposite(self) -> Self {
        match self {
            GlobalDir::Clockwise => GlobalDir::CounterClockwise,
            GlobalDir::CounterClockwise => GlobalDir::Clockwise,
        }
    }

    /// Returns `+1` for clockwise and `-1` for counter-clockwise.
    ///
    /// Useful when accumulating signed progress around the ring.
    pub fn sign(self) -> i64 {
        match self {
            GlobalDir::Clockwise => 1,
            GlobalDir::CounterClockwise => -1,
        }
    }
}

impl fmt::Display for GlobalDir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GlobalDir::Clockwise => write!(f, "cw"),
            GlobalDir::CounterClockwise => write!(f, "ccw"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opposite_is_involutive() {
        for dir in GlobalDir::ALL {
            assert_eq!(dir.opposite().opposite(), dir);
            assert_ne!(dir.opposite(), dir);
        }
    }

    #[test]
    fn signs_are_opposed() {
        assert_eq!(GlobalDir::Clockwise.sign(), 1);
        assert_eq!(GlobalDir::CounterClockwise.sign(), -1);
    }

    #[test]
    fn display() {
        assert_eq!(GlobalDir::Clockwise.to_string(), "cw");
        assert_eq!(GlobalDir::CounterClockwise.to_string(), "ccw");
    }
}
