//! Temporal reachability: journeys in evolving graphs.
//!
//! A *journey* (Xuan–Ferreira–Jarry; "temporal path" elsewhere) is a path
//! whose edges are crossed at strictly increasing times, each edge being
//! present at its crossing instant — exactly the way a robot moves: one hop
//! per round, only through present edges. The paper's connected-over-time
//! assumption says every node is infinitely often reachable from every other
//! one through a journey; this module computes the finite-horizon side of
//! that statement.

use serde::{Deserialize, Serialize};

use crate::{EdgeId, EdgeSchedule, NodeId, Time};

/// One hop of a journey: crossing `edge` during round `depart` (arriving at
/// `depart + 1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hop {
    /// The edge crossed.
    pub edge: EdgeId,
    /// The round at whose snapshot the edge was present and crossed.
    pub depart: Time,
}

impl Hop {
    /// Arrival time of this hop.
    pub fn arrive(&self) -> Time {
        self.depart + 1
    }
}

/// A journey from a source node to a destination node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Journey {
    source: NodeId,
    destination: NodeId,
    hops: Vec<Hop>,
}

impl Journey {
    /// The trivial journey (source = destination, no hops).
    pub fn trivial(node: NodeId) -> Self {
        Journey {
            source: node,
            destination: node,
            hops: Vec::new(),
        }
    }

    /// Source node.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Destination node.
    pub fn destination(&self) -> NodeId {
        self.destination
    }

    /// The hops, in temporal order.
    pub fn hops(&self) -> &[Hop] {
        &self.hops
    }

    /// Number of edges crossed (the journey's *topological length*).
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// `true` for the trivial journey.
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }

    /// Arrival time: when the destination is reached.
    pub fn arrival(&self, start: Time) -> Time {
        self.hops.last().map_or(start, Hop::arrive)
    }

    /// Departure time of the first hop (`None` for the trivial journey).
    pub fn departure(&self) -> Option<Time> {
        self.hops.first().map(|h| h.depart)
    }

    /// Duration from first departure to final arrival (0 for the trivial
    /// journey) — the quantity *fastest* journeys minimize.
    pub fn duration(&self) -> Time {
        match (self.hops.first(), self.hops.last()) {
            (Some(first), Some(last)) => last.arrive() - first.depart,
            _ => 0,
        }
    }
}

/// Foremost (earliest-arrival) reachability from `source` starting at time
/// `start`, explored up to time `horizon` (exclusive).
///
/// `arrivals[v]` is the earliest time at which a walker leaving `source` at
/// `start` can stand on `v` (the source itself gets `start`), or `None` when
/// `v` is unreachable within the horizon. Waiting at a node is always
/// allowed, matching robots blocked by missing edges.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForemostArrivals {
    source: NodeId,
    start: Time,
    horizon: Time,
    arrivals: Vec<Option<Time>>,
    /// parent[v] = (previous node, hop) on a foremost journey to v.
    parents: Vec<Option<(NodeId, Hop)>>,
}

impl ForemostArrivals {
    /// Runs the temporal BFS.
    ///
    /// # Panics
    ///
    /// Panics if `source` is not a node of the schedule's ring.
    pub fn compute<S: EdgeSchedule>(
        schedule: &S,
        source: NodeId,
        start: Time,
        horizon: Time,
    ) -> Self {
        let ring = schedule.ring();
        assert!(ring.contains_node(source), "source {source} out of range");
        let n = ring.node_count();
        let mut arrivals: Vec<Option<Time>> = vec![None; n];
        let mut parents: Vec<Option<(NodeId, Hop)>> = vec![None; n];
        arrivals[source.index()] = Some(start);
        let mut frontier_nonempty = true;
        let mut t = start;
        while t < horizon && frontier_nonempty {
            let snapshot = schedule.edges_at(t);
            let mut newly: Vec<(NodeId, NodeId, Hop)> = Vec::new();
            for e in snapshot.iter() {
                let (a, b) = ring.endpoints(e);
                let reach_a = arrivals[a.index()].is_some_and(|ta| ta <= t);
                let reach_b = arrivals[b.index()].is_some_and(|tb| tb <= t);
                if reach_a && arrivals[b.index()].is_none() {
                    newly.push((b, a, Hop { edge: e, depart: t }));
                }
                if reach_b && arrivals[a.index()].is_none() {
                    newly.push((a, b, Hop { edge: e, depart: t }));
                }
            }
            frontier_nonempty = false;
            for (node, from, hop) in newly {
                if arrivals[node.index()].is_none() {
                    arrivals[node.index()] = Some(t + 1);
                    parents[node.index()] = Some((from, hop));
                    frontier_nonempty = true;
                }
            }
            // Even when nothing new was reached at time t, a later snapshot
            // may open an edge: keep scanning until every node is reached or
            // the horizon ends.
            if arrivals.iter().any(Option::is_none) {
                frontier_nonempty = true;
            }
            t += 1;
        }
        ForemostArrivals {
            source,
            start,
            horizon,
            arrivals,
            parents,
        }
    }

    /// The source node.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Earliest arrival at `node`, or `None` when unreachable in the window.
    pub fn arrival(&self, node: NodeId) -> Option<Time> {
        self.arrivals.get(node.index()).copied().flatten()
    }

    /// `true` when every node is reachable within the window.
    pub fn all_reachable(&self) -> bool {
        self.arrivals.iter().all(Option::is_some)
    }

    /// The latest foremost arrival over all nodes — the *temporal
    /// eccentricity* of the source at `start` — or `None` if some node is
    /// unreachable.
    pub fn eccentricity(&self) -> Option<Time> {
        self.arrivals
            .iter()
            .map(|a| a.map(|t| t - self.start))
            .collect::<Option<Vec<_>>>()
            .map(|ds| ds.into_iter().max().unwrap_or(0))
    }

    /// Reconstructs a foremost journey from the source to `destination`.
    ///
    /// Returns `None` when `destination` is unreachable within the window.
    pub fn journey_to(&self, destination: NodeId) -> Option<Journey> {
        self.arrival(destination)?;
        let mut hops: Vec<Hop> = Vec::new();
        let mut cursor = destination;
        while cursor != self.source {
            let (prev, hop) = self.parents[cursor.index()]?;
            hops.push(hop);
            cursor = prev;
        }
        hops.reverse();
        Some(Journey {
            source: self.source,
            destination,
            hops,
        })
    }
}

/// The *temporal diameter* at `start`: the largest temporal eccentricity
/// over all sources, or `None` when some pair is unreachable within the
/// window.
pub fn temporal_diameter<S: EdgeSchedule>(
    schedule: &S,
    start: Time,
    horizon: Time,
) -> Option<Time> {
    let ring = schedule.ring();
    let mut worst = 0;
    for source in ring.nodes() {
        let fa = ForemostArrivals::compute(schedule, source, start, horizon);
        worst = worst.max(fa.eccentricity()?);
    }
    Some(worst)
}

/// A *shortest* journey from `source` to `destination`: among all journeys
/// departing at or after `start` and arriving before `horizon`, one with
/// the fewest hops (its topological length); among those, one with the
/// earliest arrival.
///
/// On a ring the hop count of a shortest journey is at least the static
/// ring distance, but temporal constraints can force the long way round.
///
/// Returns `None` when `destination` is unreachable within the window.
pub fn shortest_journey<S: EdgeSchedule>(
    schedule: &S,
    source: NodeId,
    destination: NodeId,
    start: Time,
    horizon: Time,
) -> Option<Journey> {
    let ring = schedule.ring();
    assert!(ring.contains_node(source), "source {source} out of range");
    assert!(
        ring.contains_node(destination),
        "destination {destination} out of range"
    );
    if source == destination {
        return Some(Journey::trivial(source));
    }
    let n = ring.node_count();
    // earliest[h][v]: earliest arrival at v using exactly ≤ h hops (with
    // the last hop being the h-th); parent pointers for reconstruction.
    let mut earliest: Vec<Vec<Option<Time>>> = vec![vec![None; n]; n];
    let mut parents: Vec<Vec<Option<(NodeId, Hop)>>> = vec![vec![None; n]; n];
    earliest[0][source.index()] = Some(start);
    for h in 1..n {
        for v in ring.nodes() {
            for dir in crate::GlobalDir::ALL {
                let e = ring.edge_towards(v, dir);
                let u = ring.neighbor(v, dir);
                let Some(ready) = earliest[h - 1][u.index()] else {
                    continue;
                };
                // Earliest instant ≥ ready at which the edge is present.
                let mut t = ready;
                while t < horizon && !schedule.is_present(e, t) {
                    t += 1;
                }
                if t >= horizon {
                    continue;
                }
                let arrive = t + 1;
                if earliest[h][v.index()].is_none_or(|cur| arrive < cur) {
                    earliest[h][v.index()] = Some(arrive);
                    parents[h][v.index()] = Some((u, Hop { edge: e, depart: t }));
                }
            }
        }
        if earliest[h][destination.index()].is_some() {
            // h is minimal: reconstruct backwards.
            let mut hops = Vec::with_capacity(h);
            let mut cursor = destination;
            for level in (1..=h).rev() {
                let (prev, hop) = parents[level][cursor.index()]?;
                hops.push(hop);
                cursor = prev;
            }
            hops.reverse();
            debug_assert_eq!(cursor, source);
            return Some(Journey {
                source,
                destination,
                hops,
            });
        }
    }
    None
}

/// A *fastest* journey from `source` to `destination`: over all departure
/// times in `[start, horizon)`, one minimizing the duration from first
/// departure to arrival (ties broken towards earlier departures).
///
/// Returns `None` when `destination` is unreachable within the window.
pub fn fastest_journey<S: EdgeSchedule>(
    schedule: &S,
    source: NodeId,
    destination: NodeId,
    start: Time,
    horizon: Time,
) -> Option<Journey> {
    let ring = schedule.ring();
    if source == destination {
        return Some(Journey::trivial(source));
    }
    let floor = ring.distance(source, destination) as Time;
    let mut best: Option<Journey> = None;
    for depart in start..horizon {
        let fa = ForemostArrivals::compute(schedule, source, depart, horizon);
        if fa.arrival(destination).is_none() {
            continue;
        }
        let candidate = fa.journey_to(destination).expect("arrival implies journey");
        let duration = candidate.duration();
        if best.as_ref().is_none_or(|b| duration < b.duration()) {
            best = Some(candidate);
            if duration == floor {
                break; // cannot do better than the static distance
            }
        }
    }
    best
}

/// `true` when a journey from `from` to `to` departing at `start` exists
/// within `[start, horizon)`.
pub fn is_reachable<S: EdgeSchedule>(
    schedule: &S,
    from: NodeId,
    to: NodeId,
    start: Time,
    horizon: Time,
) -> bool {
    ForemostArrivals::compute(schedule, from, start, horizon)
        .arrival(to)
        .is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AbsenceIntervals, AlwaysPresent, RingTopology};

    fn ring(n: usize) -> RingTopology {
        RingTopology::new(n).expect("valid ring")
    }

    #[test]
    fn static_ring_arrivals_match_ring_distance() {
        let r = ring(6);
        let g = AlwaysPresent::new(r.clone());
        let fa = ForemostArrivals::compute(&g, NodeId::new(0), 0, 50);
        for v in r.nodes() {
            let expect = r.distance(NodeId::new(0), v) as Time;
            assert_eq!(fa.arrival(v), Some(expect), "node {v}");
        }
        assert_eq!(fa.eccentricity(), Some(3));
    }

    #[test]
    fn journey_reconstruction_is_consistent() {
        let r = ring(5);
        let g = AlwaysPresent::new(r.clone());
        let fa = ForemostArrivals::compute(&g, NodeId::new(1), 0, 50);
        let j = fa.journey_to(NodeId::new(4)).expect("reachable");
        assert_eq!(j.source(), NodeId::new(1));
        assert_eq!(j.destination(), NodeId::new(4));
        assert_eq!(j.len(), 2); // 1 → 0 → 4 counter-clockwise
        assert_eq!(j.arrival(0), 2);
        // Hops must be temporally increasing and form a path.
        let mut cursor = NodeId::new(1);
        let mut last_depart = None;
        for hop in j.hops() {
            if let Some(prev) = last_depart {
                assert!(hop.depart > prev);
            }
            last_depart = Some(hop.depart);
            cursor = r.traverse(cursor, hop.edge).expect("adjacent edge");
        }
        assert_eq!(cursor, NodeId::new(4));
    }

    #[test]
    fn blocked_edge_forces_waiting() {
        // Ring of 3; edges e0 (v0-v1), e1 (v1-v2), e2 (v2-v0). Remove e0 and
        // e2 until time 5: v0 is isolated and can only leave at t = 5.
        let mut g = AbsenceIntervals::new(ring(3));
        g.remove_during(EdgeId::new(0), 0, 5);
        g.remove_during(EdgeId::new(2), 0, 5);
        let fa = ForemostArrivals::compute(&g, NodeId::new(0), 0, 50);
        assert_eq!(fa.arrival(NodeId::new(0)), Some(0));
        assert_eq!(fa.arrival(NodeId::new(1)), Some(6));
        assert_eq!(fa.arrival(NodeId::new(2)), Some(6));
    }

    #[test]
    fn unreachable_when_cut_forever() {
        // Cut both edges around v2 forever: unreachable.
        let mut g = AbsenceIntervals::new(ring(4));
        g.remove_from(EdgeId::new(1), 0); // v1-v2
        g.remove_from(EdgeId::new(2), 0); // v2-v3
        let fa = ForemostArrivals::compute(&g, NodeId::new(0), 0, 100);
        assert_eq!(fa.arrival(NodeId::new(2)), None);
        assert!(!fa.all_reachable());
        assert_eq!(fa.eccentricity(), None);
        assert!(fa.journey_to(NodeId::new(2)).is_none());
        assert!(!is_reachable(&g, NodeId::new(0), NodeId::new(2), 0, 100));
    }

    #[test]
    fn one_missing_edge_reroutes_the_long_way() {
        let mut g = AbsenceIntervals::new(ring(6));
        g.remove_from(EdgeId::new(0), 0); // v0-v1 dead forever
        let fa = ForemostArrivals::compute(&g, NodeId::new(0), 0, 100);
        // v1 is now 5 hops away (the long way round).
        assert_eq!(fa.arrival(NodeId::new(1)), Some(5));
        let j = fa.journey_to(NodeId::new(1)).expect("reachable");
        assert_eq!(j.len(), 5);
    }

    #[test]
    fn temporal_diameter_static() {
        let g = AlwaysPresent::new(ring(8));
        assert_eq!(temporal_diameter(&g, 0, 100), Some(4));
    }

    #[test]
    fn later_start_time_is_respected() {
        let mut g = AbsenceIntervals::new(ring(3));
        g.remove_during(EdgeId::new(0), 0, 10);
        g.remove_during(EdgeId::new(2), 0, 10);
        let fa = ForemostArrivals::compute(&g, NodeId::new(0), 10, 100);
        assert_eq!(fa.arrival(NodeId::new(1)), Some(11));
    }

    #[test]
    fn trivial_journey() {
        let j = Journey::trivial(NodeId::new(2));
        assert!(j.is_empty());
        assert_eq!(j.arrival(7), 7);
        assert_eq!(j.source(), j.destination());
    }

    #[test]
    fn shortest_journey_prefers_fewer_hops_over_earlier_arrival() {
        // Ring of 6, from v0 to v1. Edge e0 (v0–v1, one hop) only opens at
        // time 10; the counter-clockwise way (5 hops) is open immediately.
        // Foremost arrives at time 5 the long way; shortest waits and uses
        // one hop.
        let mut g = AbsenceIntervals::new(ring(6));
        g.remove_during(EdgeId::new(0), 0, 10);
        let foremost = ForemostArrivals::compute(&g, NodeId::new(0), 0, 50)
            .journey_to(NodeId::new(1))
            .expect("reachable");
        assert_eq!(foremost.len(), 5);
        assert_eq!(foremost.arrival(0), 5);
        let shortest =
            shortest_journey(&g, NodeId::new(0), NodeId::new(1), 0, 50).expect("reachable");
        assert_eq!(shortest.len(), 1);
        assert_eq!(shortest.arrival(0), 11);
    }

    #[test]
    fn shortest_journey_takes_long_way_when_forced() {
        // Edge e0 dead forever: the only way from v0 to v1 is 5 hops.
        let mut g = AbsenceIntervals::new(ring(6));
        g.remove_from(EdgeId::new(0), 0);
        let j = shortest_journey(&g, NodeId::new(0), NodeId::new(1), 0, 100)
            .expect("reachable");
        assert_eq!(j.len(), 5);
    }

    #[test]
    fn shortest_journey_unreachable_within_horizon() {
        let mut g = AbsenceIntervals::new(ring(4));
        g.remove_from(EdgeId::new(0), 0);
        g.remove_from(EdgeId::new(3), 0); // v0 isolated forever
        assert!(shortest_journey(&g, NodeId::new(0), NodeId::new(2), 0, 60).is_none());
    }

    #[test]
    fn fastest_journey_waits_for_a_better_departure() {
        // From v0 to v3 on a 6-ring. Early on, the clockwise edges open
        // one instant each, four rounds apart (a slow crawl of duration 9);
        // from time 30 everything is open (duration 3). Fastest departs
        // late.
        let mut g = AbsenceIntervals::new(ring(6));
        // e0 present only at t = 2; e1 only at t = 6; e2 only at t = 10 —
        // until everything reopens at 30.
        g.remove_during(EdgeId::new(0), 0, 2).remove_during(EdgeId::new(0), 3, 30);
        g.remove_during(EdgeId::new(1), 0, 6).remove_during(EdgeId::new(1), 7, 30);
        g.remove_during(EdgeId::new(2), 0, 10).remove_during(EdgeId::new(2), 11, 30);
        for e in 3..6 {
            g.remove_during(EdgeId::new(e), 0, 30);
        }
        let foremost = ForemostArrivals::compute(&g, NodeId::new(0), 0, 100)
            .journey_to(NodeId::new(3))
            .expect("reachable");
        assert_eq!(foremost.arrival(0), 11);
        assert_eq!(foremost.duration(), 9); // departs 2, arrives 11
        let fastest =
            fastest_journey(&g, NodeId::new(0), NodeId::new(3), 0, 100).expect("reachable");
        assert_eq!(fastest.duration(), 3);
        assert!(fastest.departure().expect("has hops") >= 30);
        assert!(foremost.arrival(0) <= fastest.arrival(0));
        assert!(foremost.duration() > fastest.duration());
    }

    #[test]
    fn fastest_equals_foremost_on_static_rings() {
        let g = AlwaysPresent::new(ring(8));
        let fast = fastest_journey(&g, NodeId::new(1), NodeId::new(5), 0, 50)
            .expect("reachable");
        assert_eq!(fast.duration(), 4);
        assert_eq!(fast.len(), 4);
    }

    #[test]
    fn trivial_cases_for_shortest_and_fastest() {
        let g = AlwaysPresent::new(ring(3));
        let s = shortest_journey(&g, NodeId::new(1), NodeId::new(1), 0, 10).expect("trivial");
        assert!(s.is_empty());
        let f = fastest_journey(&g, NodeId::new(2), NodeId::new(2), 0, 10).expect("trivial");
        assert_eq!(f.duration(), 0);
        assert_eq!(f.departure(), None);
    }

    #[test]
    fn horizon_truncates_search() {
        let mut g = AbsenceIntervals::new(ring(3));
        g.remove_during(EdgeId::new(0), 0, 5);
        g.remove_during(EdgeId::new(2), 0, 5);
        // Horizon 4 < opening time 5: unreachable within window.
        let fa = ForemostArrivals::compute(&g, NodeId::new(0), 0, 4);
        assert_eq!(fa.arrival(NodeId::new(1)), None);
    }
}
