//! Error types for the evolving-graph substrate.

use std::error::Error;
use std::fmt;

use crate::{EdgeId, Time};

/// Errors produced while constructing or combining evolving-graph objects.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GraphError {
    /// A ring must have at least two nodes.
    RingTooSmall {
        /// The rejected size.
        size: usize,
    },
    /// A frame (an [`crate::EdgeSet`]) was built for a different ring size.
    FrameSizeMismatch {
        /// Number of edges the schedule's ring has.
        expected: usize,
        /// Number of edges the offending frame has.
        found: usize,
    },
    /// An edge identifier does not exist in the ring.
    EdgeOutOfRange {
        /// The offending edge.
        edge: EdgeId,
        /// Number of edges of the ring.
        edges: usize,
    },
    /// A time interval with `end <= start` (and a bounded end) is empty.
    EmptyInterval {
        /// Interval start (inclusive).
        start: Time,
        /// Interval end (exclusive).
        end: Time,
    },
    /// A periodic schedule needs at least one frame.
    EmptyPeriod,
    /// A probability must lie within `[0, 1]`.
    InvalidProbability {
        /// The rejected value.
        value: f64,
    },
    /// A schedule appended to a [`crate::convergence::PrefixChain`] disagrees
    /// with the chain on the previously agreed prefix.
    PrefixMismatch {
        /// First time instant where the new schedule disagrees.
        at: Time,
    },
    /// A [`crate::convergence::PrefixChain`] entry must strictly extend the
    /// previous agreed prefix.
    PrefixNotGrowing {
        /// Length of the last agreed prefix.
        previous: Time,
        /// The rejected (non-increasing) prefix length.
        proposed: Time,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::RingTooSmall { size } => {
                write!(f, "ring must have at least 2 nodes, got {size}")
            }
            GraphError::FrameSizeMismatch { expected, found } => {
                write!(
                    f,
                    "frame covers {found} edges but the ring has {expected} edges"
                )
            }
            GraphError::EdgeOutOfRange { edge, edges } => {
                write!(f, "edge {edge} out of range for ring with {edges} edges")
            }
            GraphError::EmptyInterval { start, end } => {
                write!(f, "time interval [{start}, {end}) is empty")
            }
            GraphError::EmptyPeriod => write!(f, "periodic schedule needs at least one frame"),
            GraphError::InvalidProbability { value } => {
                write!(f, "probability {value} is outside [0, 1]")
            }
            GraphError::PrefixMismatch { at } => {
                write!(f, "schedule disagrees with the chain prefix at time {at}")
            }
            GraphError::PrefixNotGrowing { previous, proposed } => {
                write!(
                    f,
                    "prefix length {proposed} does not strictly extend previous prefix {previous}"
                )
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let err = GraphError::RingTooSmall { size: 1 };
        let msg = err.to_string();
        assert!(msg.starts_with("ring must"));
        assert!(!msg.ends_with('.'));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<GraphError>();
    }
}
