//! The static ring topology underlying every evolving graph in this crate.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{EdgeId, GlobalDir, GraphError, NodeId};

/// An anonymous, unoriented ring of `n ≥ 2` nodes and `n` edges.
///
/// Edge `i` joins node `i` to node `(i + 1) mod n`. For `n = 2` this yields
/// the *multigraph* ring from §5.2 of the paper: two distinct parallel edges
/// (`e0`, `e1`) between nodes `v0` and `v1`. The 2-node *chain* reading of
/// §5.2 is obtained by scheduling edge `e1` permanently absent (see
/// [`crate::AbsenceIntervals`]).
///
/// Orientation helpers use the external observer's [`GlobalDir`]: clockwise
/// walks towards increasing indices.
///
/// ```rust
/// use dynring_graph::{RingTopology, NodeId, GlobalDir};
///
/// # fn main() -> Result<(), dynring_graph::GraphError> {
/// let ring = RingTopology::new(5)?;
/// let u = NodeId::new(4);
/// assert_eq!(ring.neighbor(u, GlobalDir::Clockwise), NodeId::new(0));
/// assert_eq!(ring.edge_towards(u, GlobalDir::Clockwise).index(), 4);
/// assert_eq!(ring.distance(NodeId::new(0), NodeId::new(4)), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RingTopology {
    nodes: u32,
}

impl RingTopology {
    /// Creates a ring with `n` nodes (and `n` edges).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::RingTooSmall`] if `n < 2`.
    pub fn new(n: usize) -> Result<Self, GraphError> {
        if n < 2 {
            return Err(GraphError::RingTooSmall { size: n });
        }
        let nodes = u32::try_from(n).expect("ring size exceeds u32");
        Ok(RingTopology { nodes })
    }

    /// Number of nodes `n`.
    pub fn node_count(&self) -> usize {
        self.nodes as usize
    }

    /// Number of edges — always equal to the number of nodes.
    pub fn edge_count(&self) -> usize {
        self.nodes as usize
    }

    /// `true` when this is the 2-node multigraph ring.
    pub fn is_multigraph(&self) -> bool {
        self.nodes == 2
    }

    /// Iterates over all nodes in index order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes).map(NodeId::from)
    }

    /// Iterates over all edges in index order.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.nodes).map(EdgeId::from)
    }

    /// `true` when `node` is a node of this ring.
    pub fn contains_node(&self, node: NodeId) -> bool {
        node.raw() < self.nodes
    }

    /// `true` when `edge` is an edge of this ring.
    pub fn contains_edge(&self, edge: EdgeId) -> bool {
        edge.raw() < self.nodes
    }

    /// Validates that `edge` belongs to the ring.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EdgeOutOfRange`] otherwise.
    pub fn check_edge(&self, edge: EdgeId) -> Result<(), GraphError> {
        if self.contains_edge(edge) {
            Ok(())
        } else {
            Err(GraphError::EdgeOutOfRange {
                edge,
                edges: self.edge_count(),
            })
        }
    }

    /// The neighbour of `node` in direction `dir`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a node of this ring.
    pub fn neighbor(&self, node: NodeId, dir: GlobalDir) -> NodeId {
        assert!(self.contains_node(node), "node {node} out of range");
        let n = self.nodes;
        let i = node.raw();
        match dir {
            GlobalDir::Clockwise => NodeId::from((i + 1) % n),
            GlobalDir::CounterClockwise => NodeId::from((i + n - 1) % n),
        }
    }

    /// The edge adjacent to `node` leading towards direction `dir`.
    ///
    /// At node `i`, the clockwise edge is `e_i` and the counter-clockwise
    /// edge is `e_{(i + n - 1) mod n}`. In the 2-node multigraph the two
    /// adjacent edges of each node are distinct parallel edges.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a node of this ring.
    pub fn edge_towards(&self, node: NodeId, dir: GlobalDir) -> EdgeId {
        assert!(self.contains_node(node), "node {node} out of range");
        let n = self.nodes;
        let i = node.raw();
        match dir {
            GlobalDir::Clockwise => EdgeId::from(i),
            GlobalDir::CounterClockwise => EdgeId::from((i + n - 1) % n),
        }
    }

    /// Both adjacent edges of `node`: `(clockwise, counter-clockwise)`.
    pub fn adjacent_edges(&self, node: NodeId) -> (EdgeId, EdgeId) {
        (
            self.edge_towards(node, GlobalDir::Clockwise),
            self.edge_towards(node, GlobalDir::CounterClockwise),
        )
    }

    /// The two endpoints of `edge`, counter-clockwise endpoint first.
    ///
    /// Edge `i` joins node `i` (returned first) and node `(i + 1) mod n`.
    pub fn endpoints(&self, edge: EdgeId) -> (NodeId, NodeId) {
        assert!(self.contains_edge(edge), "edge {edge} out of range");
        let n = self.nodes;
        let i = edge.raw();
        (NodeId::from(i), NodeId::from((i + 1) % n))
    }

    /// Crossing `edge` from `node` lands on the returned node; `None` when
    /// `edge` is not adjacent to `node`.
    pub fn traverse(&self, node: NodeId, edge: EdgeId) -> Option<NodeId> {
        if !self.contains_node(node) || !self.contains_edge(edge) {
            return None;
        }
        for dir in GlobalDir::ALL {
            if self.edge_towards(node, dir) == edge {
                return Some(self.neighbor(node, dir));
            }
        }
        None
    }

    /// The direction in which `edge` leaves `node`, or `None` when `edge` is
    /// not adjacent to `node`.
    pub fn direction_of(&self, node: NodeId, edge: EdgeId) -> Option<GlobalDir> {
        GlobalDir::ALL
            .into_iter()
            .find(|&dir| self.contains_node(node) && self.edge_towards(node, dir) == edge)
    }

    /// Ring distance `d(u, v)`: length of a shortest path in the underlying
    /// (static) ring.
    pub fn distance(&self, u: NodeId, v: NodeId) -> usize {
        let cw = self.directed_distance(u, v, GlobalDir::Clockwise);
        let ccw = self.directed_distance(u, v, GlobalDir::CounterClockwise);
        cw.min(ccw)
    }

    /// Number of hops needed to walk from `u` to `v` going only in direction
    /// `dir` (0 when `u == v`).
    pub fn directed_distance(&self, u: NodeId, v: NodeId, dir: GlobalDir) -> usize {
        assert!(self.contains_node(u), "node {u} out of range");
        assert!(self.contains_node(v), "node {v} out of range");
        let n = self.nodes as i64;
        let delta = (v.raw() as i64 - u.raw() as i64).rem_euclid(n);
        match dir {
            GlobalDir::Clockwise => delta as usize,
            GlobalDir::CounterClockwise => ((n - delta) % n) as usize,
        }
    }

    /// `true` when `u` and `v` are joined by at least one edge.
    pub fn are_adjacent(&self, u: NodeId, v: NodeId) -> bool {
        u != v && self.distance(u, v) == 1
    }

    /// The node reached after walking `steps` hops from `node` in `dir`.
    pub fn walk(&self, node: NodeId, dir: GlobalDir, steps: usize) -> NodeId {
        assert!(self.contains_node(node), "node {node} out of range");
        let n = self.nodes as i64;
        let offset = (steps as i64 % n) * dir.sign();
        let idx = (node.raw() as i64 + offset).rem_euclid(n);
        NodeId::from(idx as u32)
    }
}

impl fmt::Display for RingTopology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ring(n={})", self.nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> RingTopology {
        RingTopology::new(n).expect("valid ring")
    }

    #[test]
    fn rejects_tiny_rings() {
        assert_eq!(
            RingTopology::new(0),
            Err(GraphError::RingTooSmall { size: 0 })
        );
        assert_eq!(
            RingTopology::new(1),
            Err(GraphError::RingTooSmall { size: 1 })
        );
        assert!(RingTopology::new(2).is_ok());
    }

    #[test]
    fn neighbors_wrap_around() {
        let r = ring(5);
        assert_eq!(
            r.neighbor(NodeId::new(4), GlobalDir::Clockwise),
            NodeId::new(0)
        );
        assert_eq!(
            r.neighbor(NodeId::new(0), GlobalDir::CounterClockwise),
            NodeId::new(4)
        );
    }

    #[test]
    fn edges_towards_match_endpoints() {
        let r = ring(6);
        for node in r.nodes() {
            for dir in GlobalDir::ALL {
                let e = r.edge_towards(node, dir);
                let (a, b) = r.endpoints(e);
                assert!(a == node || b == node, "edge {e} must touch {node}");
                assert_eq!(r.traverse(node, e), Some(r.neighbor(node, dir)));
                assert_eq!(r.direction_of(node, e), Some(dir));
            }
        }
    }

    #[test]
    fn multigraph_ring_has_two_parallel_edges() {
        let r = ring(2);
        assert!(r.is_multigraph());
        let (cw0, ccw0) = r.adjacent_edges(NodeId::new(0));
        assert_eq!(cw0, EdgeId::new(0));
        assert_eq!(ccw0, EdgeId::new(1));
        let (cw1, ccw1) = r.adjacent_edges(NodeId::new(1));
        assert_eq!(cw1, EdgeId::new(1));
        assert_eq!(ccw1, EdgeId::new(0));
        // Both edges join the same pair of nodes.
        assert_eq!(r.endpoints(EdgeId::new(0)), (NodeId::new(0), NodeId::new(1)));
        assert_eq!(r.endpoints(EdgeId::new(1)), (NodeId::new(1), NodeId::new(0)));
    }

    #[test]
    fn distances() {
        let r = ring(8);
        assert_eq!(r.distance(NodeId::new(0), NodeId::new(0)), 0);
        assert_eq!(r.distance(NodeId::new(0), NodeId::new(3)), 3);
        assert_eq!(r.distance(NodeId::new(0), NodeId::new(5)), 3);
        assert_eq!(
            r.directed_distance(NodeId::new(0), NodeId::new(5), GlobalDir::Clockwise),
            5
        );
        assert_eq!(
            r.directed_distance(NodeId::new(0), NodeId::new(5), GlobalDir::CounterClockwise),
            3
        );
    }

    #[test]
    fn walk_is_consistent_with_neighbor() {
        let r = ring(7);
        let mut node = NodeId::new(3);
        for step in 1..=14 {
            node = r.neighbor(node, GlobalDir::Clockwise);
            assert_eq!(r.walk(NodeId::new(3), GlobalDir::Clockwise, step), node);
        }
    }

    #[test]
    fn walk_zero_steps_is_identity() {
        let r = ring(4);
        for node in r.nodes() {
            for dir in GlobalDir::ALL {
                assert_eq!(r.walk(node, dir, 0), node);
            }
        }
    }

    #[test]
    fn adjacency() {
        let r = ring(4);
        assert!(r.are_adjacent(NodeId::new(0), NodeId::new(1)));
        assert!(r.are_adjacent(NodeId::new(0), NodeId::new(3)));
        assert!(!r.are_adjacent(NodeId::new(0), NodeId::new(2)));
        assert!(!r.are_adjacent(NodeId::new(2), NodeId::new(2)));
    }

    #[test]
    fn traverse_rejects_non_adjacent_edges() {
        let r = ring(6);
        assert_eq!(r.traverse(NodeId::new(0), EdgeId::new(3)), None);
        assert_eq!(r.direction_of(NodeId::new(0), EdgeId::new(3)), None);
    }

    #[test]
    fn display() {
        assert_eq!(ring(9).to_string(), "ring(n=9)");
    }
}
