//! A compact set of ring edges — the snapshot `E_t` of an evolving graph.

use std::fmt;

use serde::de::Error as _;
use serde::{Deserialize, Deserializer, Serialize, Serializer};

use crate::{EdgeId, RingTopology};

const WORD_BITS: usize = 64;

/// A set of edges of a ring with a fixed edge count, stored as a bit-set.
///
/// One `EdgeSet` is exactly one snapshot `E_t` of an evolving graph
/// `G = (V, E_0), (V, E_1), …`. The set knows its *universe size* (the ring's
/// edge count), so complements and "is the graph connected?" questions are
/// well-defined.
///
/// ```rust
/// use dynring_graph::{EdgeSet, EdgeId};
///
/// let mut set = EdgeSet::empty(5);
/// set.insert(EdgeId::new(1));
/// set.insert(EdgeId::new(3));
/// assert_eq!(set.len(), 2);
/// assert!(set.contains(EdgeId::new(3)));
/// let missing: Vec<_> = set.absent().map(|e| e.index()).collect();
/// assert_eq!(missing, vec![0, 2, 4]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EdgeSet {
    words: Vec<u64>,
    universe: u32,
}

impl EdgeSet {
    /// The empty set over a universe of `universe` edges.
    pub fn empty(universe: usize) -> Self {
        let words = vec![0u64; universe.div_ceil(WORD_BITS)];
        EdgeSet {
            words,
            universe: u32::try_from(universe).expect("universe exceeds u32"),
        }
    }

    /// The full set (every edge present) over `universe` edges.
    pub fn full(universe: usize) -> Self {
        let mut set = EdgeSet::empty(universe);
        set.fill();
        set
    }

    /// The full set for a specific ring.
    pub fn full_for(ring: &RingTopology) -> Self {
        EdgeSet::full(ring.edge_count())
    }

    /// The empty set for a specific ring.
    pub fn empty_for(ring: &RingTopology) -> Self {
        EdgeSet::empty(ring.edge_count())
    }

    /// Builds a set over `universe` edges from present edge indices.
    ///
    /// # Panics
    ///
    /// Panics if an index is `>= universe`.
    pub fn from_indices<I: IntoIterator<Item = usize>>(universe: usize, present: I) -> Self {
        let mut set = EdgeSet::empty(universe);
        for index in present {
            set.insert(EdgeId::new(index));
        }
        set
    }

    /// Number of edges in the universe (the ring's edge count).
    pub fn universe(&self) -> usize {
        self.universe as usize
    }

    /// Number of present edges.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` when no edge is present.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `true` when every edge of the universe is present.
    pub fn is_full(&self) -> bool {
        self.len() == self.universe()
    }

    /// Number of absent edges.
    pub fn absent_count(&self) -> usize {
        self.universe() - self.len()
    }

    /// `true` when `edge` is present.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is outside the universe.
    pub fn contains(&self, edge: EdgeId) -> bool {
        self.check(edge);
        let i = edge.index();
        self.words[i / WORD_BITS] & (1u64 << (i % WORD_BITS)) != 0
    }

    /// Inserts `edge`; returns `true` if it was absent.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is outside the universe.
    pub fn insert(&mut self, edge: EdgeId) -> bool {
        self.check(edge);
        let i = edge.index();
        let mask = 1u64 << (i % WORD_BITS);
        let word = &mut self.words[i / WORD_BITS];
        let was_absent = *word & mask == 0;
        *word |= mask;
        was_absent
    }

    /// Removes `edge`; returns `true` if it was present.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is outside the universe.
    pub fn remove(&mut self, edge: EdgeId) -> bool {
        self.check(edge);
        let i = edge.index();
        let mask = 1u64 << (i % WORD_BITS);
        let word = &mut self.words[i / WORD_BITS];
        let was_present = *word & mask != 0;
        *word &= !mask;
        was_present
    }

    /// Sets the membership of `edge` to `present`.
    pub fn set(&mut self, edge: EdgeId, present: bool) {
        if present {
            self.insert(edge);
        } else {
            self.remove(edge);
        }
    }

    /// Removes every edge, keeping the universe (and the allocation).
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// Makes every edge of the universe present, keeping the allocation.
    pub fn fill(&mut self) {
        for w in &mut self.words {
            *w = u64::MAX;
        }
        self.trim();
    }

    /// Re-targets this set to a (possibly different) universe and clears
    /// it, reusing the existing allocation whenever it is large enough.
    ///
    /// This is the entry point for buffer pooling: one scratch `EdgeSet`
    /// can serve rings of any size without reallocating after warm-up.
    pub fn reset(&mut self, universe: usize) {
        let words = universe.div_ceil(WORD_BITS);
        self.words.truncate(words);
        self.words.iter_mut().for_each(|w| *w = 0);
        self.words.resize(words, 0);
        self.universe = u32::try_from(universe).expect("universe exceeds u32");
    }

    /// Overwrites this set with the contents (and universe) of `other`,
    /// reusing the existing allocation whenever it is large enough.
    pub fn copy_from(&mut self, other: &EdgeSet) {
        self.words.truncate(other.words.len());
        let shared = self.words.len();
        self.words.copy_from_slice(&other.words[..shared]);
        self.words.extend_from_slice(&other.words[shared..]);
        self.universe = other.universe;
    }

    /// Number of 64-bit words backing the set (`universe.div_ceil(64)`).
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    /// The backing words, edge `i` at bit `i % 64` of word `i / 64`.
    ///
    /// The masked-tail invariant holds: bits at positions `>= universe()`
    /// in the last word are always zero, so word-level consumers can use
    /// `count_ones`, equality, etc. without re-masking.
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Overwrites word `index` — the memberships of edges
    /// `[64 * index, 64 * index + 64)` — in one store. Bits beyond the
    /// universe are masked off, preserving the canonical-tail invariant
    /// that `Eq`/`Hash` rely on.
    ///
    /// This is the word-parallel fill entry point: samplers that decide 64
    /// edges at a time write whole words instead of 64 `insert` calls.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.word_count()`.
    pub fn set_word(&mut self, index: usize, bits: u64) {
        assert!(
            index < self.words.len(),
            "word {index} outside universe of {} edges",
            self.universe()
        );
        self.words[index] = bits & self.word_mask(index);
    }

    /// Builds a set over `universe` edges directly from backing words
    /// (edge `i` present iff bit `i % 64` of `words[i / 64]` is set).
    /// Tail bits beyond the universe are masked off.
    ///
    /// # Panics
    ///
    /// Panics unless `words.len() == universe.div_ceil(64)`.
    pub fn from_words(universe: usize, words: &[u64]) -> Self {
        let mut set = EdgeSet::empty(universe);
        assert_eq!(
            words.len(),
            set.words.len(),
            "universe of {universe} edges needs {} words",
            set.words.len()
        );
        for (index, &bits) in words.iter().enumerate() {
            set.set_word(index, bits);
        }
        set
    }

    /// The mask of meaningful bits in word `index` (all-ones except for a
    /// partial last word).
    fn word_mask(&self, index: usize) -> u64 {
        let bits = self.universe();
        if (index + 1) * WORD_BITS <= bits {
            u64::MAX
        } else {
            (1u64 << (bits - index * WORD_BITS)) - 1
        }
    }

    /// In-place complement within the universe.
    pub fn complement_in_place(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.trim();
    }

    /// Iterates over present edges in increasing index order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            next: 0,
        }
    }

    /// Iterates over *absent* edges in increasing index order.
    pub fn absent(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.universe()).map(EdgeId::new).filter(move |&e| !self.contains(e))
    }

    /// In-place union with `other`.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn union_with(&mut self, other: &EdgeSet) {
        self.check_same(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection with `other`.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn intersect_with(&mut self, other: &EdgeSet) {
        self.check_same(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place difference: removes every edge present in `other`.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn difference_with(&mut self, other: &EdgeSet) {
        self.check_same(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Returns the union of `self` and `other` as a new set.
    pub fn union(&self, other: &EdgeSet) -> EdgeSet {
        let mut out = self.clone();
        out.union_with(other);
        out
    }

    /// Returns the intersection of `self` and `other` as a new set.
    pub fn intersection(&self, other: &EdgeSet) -> EdgeSet {
        let mut out = self.clone();
        out.intersect_with(other);
        out
    }

    /// Returns `self \ other` as a new set.
    pub fn difference(&self, other: &EdgeSet) -> EdgeSet {
        let mut out = self.clone();
        out.difference_with(other);
        out
    }

    /// Returns the complement within the universe.
    pub fn complement(&self) -> EdgeSet {
        let mut out = self.clone();
        out.complement_in_place();
        out
    }

    /// `true` when every edge of `self` is also in `other`.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn is_subset_of(&self, other: &EdgeSet) -> bool {
        self.check_same(other);
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    fn check(&self, edge: EdgeId) {
        assert!(
            edge.index() < self.universe(),
            "edge {edge} outside universe of {} edges",
            self.universe()
        );
    }

    fn check_same(&self, other: &EdgeSet) {
        assert_eq!(
            self.universe, other.universe,
            "edge sets over different universes"
        );
    }

    /// Clears bits beyond the universe so that `Eq`/`Hash` stay canonical.
    fn trim(&mut self) {
        let bits = self.universe();
        let full_words = bits / WORD_BITS;
        let rem = bits % WORD_BITS;
        if rem != 0 {
            if let Some(last) = self.words.get_mut(full_words) {
                *last &= (1u64 << rem) - 1;
            }
        }
        for w in self.words.iter_mut().skip(full_words + usize::from(rem != 0)) {
            *w = 0;
        }
    }
}

impl fmt::Display for EdgeSet {
    /// Renders as a bit-string, `e0` leftmost, `█` present / `·` absent.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.universe() {
            let c = if self.contains(EdgeId::new(i)) { '█' } else { '·' };
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

impl FromIterator<EdgeId> for EdgeSet {
    /// Collects edges into a set whose universe is one past the largest
    /// index seen (use [`EdgeSet::from_indices`] to pin the universe).
    fn from_iter<I: IntoIterator<Item = EdgeId>>(iter: I) -> Self {
        let edges: Vec<EdgeId> = iter.into_iter().collect();
        let universe = edges.iter().map(|e| e.index() + 1).max().unwrap_or(0);
        let mut set = EdgeSet::empty(universe);
        for e in edges {
            set.insert(e);
        }
        set
    }
}

impl Extend<EdgeId> for EdgeSet {
    fn extend<I: IntoIterator<Item = EdgeId>>(&mut self, iter: I) {
        for e in iter {
            self.insert(e);
        }
    }
}

impl<'a> IntoIterator for &'a EdgeSet {
    type Item = EdgeId;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Iterator over present edges of an [`EdgeSet`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    set: &'a EdgeSet,
    next: usize,
}

impl Iterator for Iter<'_> {
    type Item = EdgeId;

    fn next(&mut self) -> Option<EdgeId> {
        while self.next < self.set.universe() {
            let candidate = EdgeId::new(self.next);
            self.next += 1;
            if self.set.contains(candidate) {
                return Some(candidate);
            }
        }
        None
    }
}

#[derive(Serialize, Deserialize)]
struct EdgeSetRepr {
    universe: u32,
    present: Vec<u32>,
}

impl Serialize for EdgeSet {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let repr = EdgeSetRepr {
            universe: self.universe,
            present: self.iter().map(|e| e.raw()).collect(),
        };
        repr.serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for EdgeSet {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let repr = EdgeSetRepr::deserialize(deserializer)?;
        let mut set = EdgeSet::empty(repr.universe as usize);
        for raw in repr.present {
            if raw >= repr.universe {
                return Err(D::Error::custom(format!(
                    "edge index {raw} outside universe {}",
                    repr.universe
                )));
            }
            set.insert(EdgeId::from(raw));
        }
        Ok(set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        let empty = EdgeSet::empty(10);
        assert!(empty.is_empty());
        assert_eq!(empty.len(), 0);
        assert_eq!(empty.absent_count(), 10);

        let full = EdgeSet::full(10);
        assert!(full.is_full());
        assert_eq!(full.len(), 10);
        assert_eq!(full.absent_count(), 0);
        assert_eq!(empty.complement(), full);
    }

    #[test]
    fn insert_remove_contains() {
        let mut set = EdgeSet::empty(70); // spans two words
        assert!(set.insert(EdgeId::new(0)));
        assert!(set.insert(EdgeId::new(69)));
        assert!(!set.insert(EdgeId::new(69)));
        assert!(set.contains(EdgeId::new(0)));
        assert!(set.contains(EdgeId::new(69)));
        assert!(!set.contains(EdgeId::new(35)));
        assert!(set.remove(EdgeId::new(0)));
        assert!(!set.remove(EdgeId::new(0)));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn set_api() {
        let mut set = EdgeSet::empty(4);
        set.set(EdgeId::new(2), true);
        assert!(set.contains(EdgeId::new(2)));
        set.set(EdgeId::new(2), false);
        assert!(!set.contains(EdgeId::new(2)));
    }

    #[test]
    fn iteration_orders_by_index() {
        let set = EdgeSet::from_indices(9, [7, 1, 4]);
        let present: Vec<usize> = set.iter().map(|e| e.index()).collect();
        assert_eq!(present, vec![1, 4, 7]);
        let absent: Vec<usize> = set.absent().map(|e| e.index()).collect();
        assert_eq!(absent, vec![0, 2, 3, 5, 6, 8]);
    }

    #[test]
    fn boolean_algebra() {
        let a = EdgeSet::from_indices(6, [0, 1, 2]);
        let b = EdgeSet::from_indices(6, [2, 3]);
        assert_eq!(a.union(&b), EdgeSet::from_indices(6, [0, 1, 2, 3]));
        assert_eq!(a.intersection(&b), EdgeSet::from_indices(6, [2]));
        assert_eq!(a.difference(&b), EdgeSet::from_indices(6, [0, 1]));
        assert!(a.intersection(&b).is_subset_of(&a));
        assert!(!a.is_subset_of(&b));
    }

    #[test]
    fn complement_is_canonical_across_word_boundary() {
        // universe 65: the last word has a single meaningful bit.
        let set = EdgeSet::from_indices(65, [64]);
        let comp = set.complement();
        assert_eq!(comp.len(), 64);
        assert!(!comp.contains(EdgeId::new(64)));
        assert_eq!(comp.complement(), set);
    }

    #[test]
    fn equality_ignores_padding_bits() {
        let a = EdgeSet::full(3);
        let b = EdgeSet::from_indices(3, [0, 1, 2]);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn contains_panics_out_of_universe() {
        let set = EdgeSet::empty(3);
        let _ = set.contains(EdgeId::new(3));
    }

    #[test]
    #[should_panic(expected = "different universes")]
    fn union_panics_on_mismatched_universes() {
        let mut a = EdgeSet::empty(3);
        let b = EdgeSet::empty(4);
        a.union_with(&b);
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut set: EdgeSet = [EdgeId::new(1), EdgeId::new(3)].into_iter().collect();
        assert_eq!(set.universe(), 4);
        set.extend([EdgeId::new(0)]);
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn display_renders_bits() {
        let set = EdgeSet::from_indices(4, [0, 2]);
        assert_eq!(set.to_string(), "█·█·");
    }

    #[test]
    fn word_accessors_round_trip() {
        let set = EdgeSet::from_indices(70, [0, 63, 64, 69]);
        assert_eq!(set.word_count(), 2);
        let words = set.as_words().to_vec();
        assert_eq!(words[0], (1u64 << 63) | 1);
        assert_eq!(words[1], (1u64 << 5) | 1);
        assert_eq!(EdgeSet::from_words(70, &words), set);
    }

    #[test]
    fn set_word_masks_the_tail() {
        // universe 67: only 3 meaningful bits in the last word.
        let mut set = EdgeSet::empty(67);
        set.set_word(1, u64::MAX);
        assert_eq!(set.as_words()[1], 0b111);
        assert_eq!(set.len(), 3);
        // Masking keeps equality canonical against a bit-level build.
        assert_eq!(set, EdgeSet::from_indices(67, [64, 65, 66]));
        set.set_word(0, u64::MAX);
        assert!(set.is_full());
    }

    #[test]
    fn from_words_masks_the_tail() {
        let set = EdgeSet::from_words(3, &[u64::MAX]);
        assert!(set.is_full());
        assert_eq!(set.as_words()[0], 0b111);
        assert_eq!(set, EdgeSet::full(3));
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn set_word_panics_out_of_range() {
        let mut set = EdgeSet::empty(64);
        set.set_word(1, 0);
    }

    #[test]
    #[should_panic(expected = "needs 2 words")]
    fn from_words_panics_on_wrong_length() {
        let _ = EdgeSet::from_words(65, &[0]);
    }

    #[test]
    fn serde_round_trip() {
        let set = EdgeSet::from_indices(130, [0, 64, 129]);
        let json = serde_json::to_string(&set).expect("serialize");
        let back: EdgeSet = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(set, back);
    }

    #[test]
    fn serde_rejects_out_of_universe() {
        let json = r#"{"universe":3,"present":[5]}"#;
        let result: Result<EdgeSet, _> = serde_json::from_str(json);
        assert!(result.is_err());
    }
}
