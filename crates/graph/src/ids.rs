//! Identifier newtypes for nodes and edges of a ring.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a node of the ring, in `0..n`.
///
/// Nodes are *anonymous* from the robots' point of view; identifiers exist
/// only for the external observer (simulator, adversaries, checkers), exactly
/// like the paper distinguishes clockwise from counter-clockwise "as external
/// observers".
///
/// ```rust
/// use dynring_graph::NodeId;
/// let u = NodeId::new(3);
/// assert_eq!(u.index(), 3);
/// assert_eq!(u.to_string(), "v3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node identifier from its index.
    pub fn new(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32"))
    }

    /// Returns the index as `usize` (for table lookups).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(value: u32) -> Self {
        NodeId(value)
    }
}

/// Identifier of an edge of the ring, in `0..n`.
///
/// Edge `i` joins node `i` to node `(i + 1) mod n` (its clockwise neighbour).
/// In the 2-node multigraph ring, edges `0` and `1` are two distinct parallel
/// edges between nodes `0` and `1`.
///
/// ```rust
/// use dynring_graph::EdgeId;
/// let e = EdgeId::new(0);
/// assert_eq!(e.to_string(), "e0");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct EdgeId(u32);

impl EdgeId {
    /// Creates an edge identifier from its index.
    pub fn new(index: usize) -> Self {
        EdgeId(u32::try_from(index).expect("edge index exceeds u32"))
    }

    /// Returns the index as `usize` (for table lookups).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl From<u32> for EdgeId {
    fn from(value: u32) -> Self {
        EdgeId(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trip() {
        let u = NodeId::new(7);
        assert_eq!(u.index(), 7);
        assert_eq!(u.raw(), 7);
        assert_eq!(NodeId::from(7u32), u);
    }

    #[test]
    fn edge_id_round_trip() {
        let e = EdgeId::new(11);
        assert_eq!(e.index(), 11);
        assert_eq!(e.raw(), 11);
        assert_eq!(EdgeId::from(11u32), e);
    }

    #[test]
    fn display_forms() {
        assert_eq!(NodeId::new(0).to_string(), "v0");
        assert_eq!(EdgeId::new(42).to_string(), "e42");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(EdgeId::new(0) < EdgeId::new(1));
    }
}
