//! ASCII rendering of schedules, for logs, examples and EXPERIMENTS.md.

use std::fmt::Write as _;

use crate::{EdgeSchedule, Time};

/// Renders the presence matrix of `schedule` over `[0, horizon)` as an
/// ASCII grid: one row per edge, one column per instant, `█` present and
/// `·` absent.
///
/// ```rust
/// use dynring_graph::{render, AbsenceIntervals, EdgeId, RingTopology};
///
/// # fn main() -> Result<(), dynring_graph::GraphError> {
/// let mut g = AbsenceIntervals::new(RingTopology::new(3)?);
/// g.remove_during(EdgeId::new(1), 1, 3);
/// let grid = render::presence_grid(&g, 4);
/// assert!(grid.contains("e1 █··█"));
/// # Ok(())
/// # }
/// ```
pub fn presence_grid<S: EdgeSchedule>(schedule: &S, horizon: Time) -> String {
    let ring = schedule.ring();
    let mut out = String::new();
    let label_width = format!("e{}", ring.edge_count().saturating_sub(1)).len();
    // Header with time ticks every 10 columns.
    let _ = write!(out, "{:label_width$} ", "");
    for t in 0..horizon {
        if t % 10 == 0 {
            let _ = write!(out, "{}", (t / 10) % 10);
        } else {
            out.push(' ');
        }
    }
    out.push('\n');
    for e in ring.edges() {
        let _ = write!(out, "{:<label_width$} ", format!("e{}", e.index()));
        for t in 0..horizon {
            out.push(if schedule.is_present(e, t) { '█' } else { '·' });
        }
        out.push('\n');
    }
    out
}

/// Renders a single edge's timeline over `[0, horizon)`.
pub fn edge_timeline<S: EdgeSchedule>(
    schedule: &S,
    edge: crate::EdgeId,
    horizon: Time,
) -> String {
    (0..horizon)
        .map(|t| if schedule.is_present(edge, t) { '█' } else { '·' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AbsenceIntervals, EdgeId, RingTopology};

    #[test]
    fn grid_shows_absences() {
        let ring = RingTopology::new(3).expect("valid ring");
        let mut g = AbsenceIntervals::new(ring);
        g.remove_during(EdgeId::new(0), 0, 2);
        let grid = presence_grid(&g, 5);
        assert!(grid.contains("e0 ··███"), "grid:\n{grid}");
        assert!(grid.contains("e1 █████"), "grid:\n{grid}");
        assert_eq!(grid.lines().count(), 4); // header + 3 edges
    }

    #[test]
    fn timeline_of_one_edge() {
        let ring = RingTopology::new(2).expect("valid ring");
        let mut g = AbsenceIntervals::new(ring);
        g.remove_during(EdgeId::new(1), 2, 4);
        assert_eq!(edge_timeline(&g, EdgeId::new(1), 6), "██··██");
    }
}
