//! Generators for finite-horizon evolving-ring dynamics.
//!
//! All generators are deterministic given a seed and produce
//! [`ScriptedSchedule`]s, so every experiment in the repository is exactly
//! reproducible. The repair pass [`enforce_recurrence`] upgrades any finite
//! script into one with a *hard* per-edge recurrence bound, which is what the
//! finite-horizon connected-over-time certificates in [`crate::classes`]
//! check for.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use crate::{
    EdgeId, EdgeSchedule, EdgeSet, GraphError, RingTopology, ScriptedSchedule, TailBehavior, Time,
};

/// Configuration for [`random_connected_over_time`].
#[derive(Debug, Clone, PartialEq)]
pub struct RandomCotConfig {
    /// Per-instant, per-edge presence probability.
    pub presence_probability: f64,
    /// Hard recurrence bound enforced by repair: every (non-missing) edge is
    /// present at least once in every window of this many instants.
    pub recurrence_bound: Time,
    /// Optional eventual missing edge: `(edge, from)` kills `edge` forever
    /// starting at time `from`.
    pub eventual_missing: Option<(EdgeId, Time)>,
}

impl Default for RandomCotConfig {
    fn default() -> Self {
        RandomCotConfig {
            presence_probability: 0.5,
            recurrence_bound: 8,
            eventual_missing: None,
        }
    }
}

/// Generates a random connected-over-time ring schedule over
/// `[0, horizon)`:
/// Bernoulli presence, then a recurrence repair pass, then (optionally) one
/// eventual missing edge. The tail behaviour is [`TailBehavior::Cycle`] with
/// the eventual missing edge re-applied, so the *infinite* schedule is
/// genuinely connected-over-time.
///
/// # Errors
///
/// Returns [`GraphError::InvalidProbability`] for a bad probability and
/// [`GraphError::EdgeOutOfRange`] for a bad missing edge.
pub fn random_connected_over_time(
    ring: &RingTopology,
    horizon: Time,
    config: &RandomCotConfig,
    seed: u64,
) -> Result<ScriptedSchedule, GraphError> {
    if !(0.0..=1.0).contains(&config.presence_probability) {
        return Err(GraphError::InvalidProbability {
            value: config.presence_probability,
        });
    }
    if let Some((edge, _)) = config.eventual_missing {
        ring.check_edge(edge)?;
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut frames: Vec<EdgeSet> = Vec::with_capacity(horizon as usize);
    for _ in 0..horizon {
        let mut set = EdgeSet::empty_for(ring);
        for e in ring.edges() {
            if rng.random_bool(config.presence_probability) {
                set.insert(e);
            }
        }
        frames.push(set);
    }
    let exempt = config.eventual_missing.map(|(e, _)| e);
    let mut frames = repair_recurrence(ring, frames, config.recurrence_bound, exempt);
    if let Some((edge, from)) = config.eventual_missing {
        for (t, frame) in frames.iter_mut().enumerate() {
            if t as Time >= from {
                frame.remove(edge);
            }
        }
    }
    let mut script = ScriptedSchedule::new(ring.clone(), frames, TailBehavior::Cycle)?;
    if let Some((edge, _)) = config.eventual_missing {
        // Cycling would resurrect the missing edge; holding an explicit tail
        // frame keeps it dead while every other edge stays present forever.
        let mut tail_frame = EdgeSet::full_for(ring);
        tail_frame.remove(edge);
        script.push_frame(tail_frame)?;
        script.set_tail(TailBehavior::HoldLast);
    }
    Ok(script)
}

/// Markov on/off dynamics: each edge is an independent two-state chain.
///
/// `p_off` is the probability that a present edge disappears at the next
/// instant; `p_on` the probability that an absent edge reappears. High
/// `1 - p_off` models *stable* links (long presence runs), low `p_on` models
/// long outages.
///
/// # Errors
///
/// Returns [`GraphError::InvalidProbability`] unless both probabilities are
/// within `[0, 1]`.
pub fn markov_on_off(
    ring: &RingTopology,
    horizon: Time,
    p_off: f64,
    p_on: f64,
    seed: u64,
) -> Result<ScriptedSchedule, GraphError> {
    for p in [p_off, p_on] {
        if !(0.0..=1.0).contains(&p) {
            return Err(GraphError::InvalidProbability { value: p });
        }
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut state = vec![true; ring.edge_count()];
    let mut frames = Vec::with_capacity(horizon as usize);
    for _ in 0..horizon {
        let mut set = EdgeSet::empty_for(ring);
        for (i, on) in state.iter_mut().enumerate() {
            if *on {
                set.insert(EdgeId::new(i));
                if rng.random_bool(p_off) {
                    *on = false;
                }
            } else if rng.random_bool(p_on) {
                *on = true;
            }
        }
        frames.push(set);
    }
    ScriptedSchedule::new(ring.clone(), frames, TailBehavior::AllPresent)
}

/// Repairs `frames` so that no edge (except `exempt`) stays absent for
/// `bound` or more consecutive frames: whenever an edge has been absent for
/// `bound - 1` frames, it is forced present in the next one.
///
/// The leading window counts: an edge absent since frame 0 is forced present
/// at frame `bound - 1` at the latest.
pub fn repair_recurrence(
    ring: &RingTopology,
    mut frames: Vec<EdgeSet>,
    bound: Time,
    exempt: Option<EdgeId>,
) -> Vec<EdgeSet> {
    assert!(bound >= 1, "recurrence bound must be at least 1");
    let mut absent_run = vec![0u64; ring.edge_count()];
    for frame in &mut frames {
        for e in ring.edges() {
            if Some(e) == exempt {
                continue;
            }
            if frame.contains(e) {
                absent_run[e.index()] = 0;
            } else if absent_run[e.index()] + 1 >= bound {
                frame.insert(e);
                absent_run[e.index()] = 0;
            } else {
                absent_run[e.index()] += 1;
            }
        }
    }
    frames
}

/// Convenience wrapper: captures any schedule over `[0, horizon)` and
/// repairs it to a hard recurrence bound.
pub fn enforce_recurrence<S: EdgeSchedule>(
    schedule: &S,
    horizon: Time,
    bound: Time,
    exempt: Option<EdgeId>,
) -> ScriptedSchedule {
    let captured = ScriptedSchedule::capture(schedule, horizon, TailBehavior::AllPresent);
    let frames = repair_recurrence(schedule.ring(), captured.frames().to_vec(), bound, exempt);
    ScriptedSchedule::new(schedule.ring().clone(), frames, TailBehavior::AllPresent)
        .expect("frames originate from the same ring")
}

/// Generates a *T-interval-connected* ring schedule (Kuhn–Lynch–Oshman
/// class, as used by Ilcinkas–Wade for rings): at every instant at most one
/// edge is absent, and the absent edge changes only after at least
/// `stability` instants during which the full ring is present, so the
/// intersection of any window of `stability + 1` consecutive snapshots is
/// connected.
pub fn t_interval_connected(
    ring: &RingTopology,
    horizon: Time,
    stability: Time,
    seed: u64,
) -> ScriptedSchedule {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut frames = Vec::with_capacity(horizon as usize);
    let mut t = 0;
    while (frames.len() as Time) < horizon {
        // Pick an edge to suppress for a while.
        let victim = EdgeId::new(rng.random_range(0..ring.edge_count()));
        let outage = rng.random_range(1..=stability.max(1));
        for _ in 0..outage {
            if frames.len() as Time >= horizon {
                break;
            }
            let mut set = EdgeSet::full_for(ring);
            set.remove(victim);
            frames.push(set);
            t += 1;
        }
        // Full-ring cool-down so window intersections stay connected.
        for _ in 0..stability {
            if frames.len() as Time >= horizon {
                break;
            }
            frames.push(EdgeSet::full_for(ring));
            t += 1;
        }
    }
    let _ = t;
    ScriptedSchedule::new(ring.clone(), frames, TailBehavior::AllPresent)
        .expect("frames built for this ring")
}

/// A deterministic "sweeping outage": edge `t / dwell mod n` is absent at
/// time `t`. Every edge recurs with gap at most `n · dwell`, so the schedule
/// is connected-over-time; the moving hole stresses algorithms the way the
/// proofs' hand-built schedules do.
pub fn sweeping_outage(ring: &RingTopology, dwell: Time) -> ScriptedSchedule {
    assert!(dwell >= 1, "dwell must be at least 1");
    let n = ring.edge_count() as Time;
    let frames = (0..n * dwell)
        .map(|t| {
            let mut set = EdgeSet::full_for(ring);
            set.remove(EdgeId::new(((t / dwell) % n) as usize));
            set
        })
        .collect();
    ScriptedSchedule::new(ring.clone(), frames, TailBehavior::Cycle)
        .expect("frames built for this ring")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes;

    fn ring(n: usize) -> RingTopology {
        RingTopology::new(n).expect("valid ring")
    }

    #[test]
    fn random_cot_respects_recurrence_bound() {
        let r = ring(6);
        let cfg = RandomCotConfig {
            presence_probability: 0.3,
            recurrence_bound: 5,
            eventual_missing: None,
        };
        let s = random_connected_over_time(&r, 200, &cfg, 11).expect("valid config");
        let gaps = classes::max_recurrence_gaps(&s, 200);
        for (e, gap) in gaps.iter().enumerate() {
            assert!(*gap <= 5, "edge {e} has gap {gap}");
        }
    }

    #[test]
    fn random_cot_eventual_missing_edge_stays_dead() {
        let r = ring(5);
        let cfg = RandomCotConfig {
            presence_probability: 0.6,
            recurrence_bound: 4,
            eventual_missing: Some((EdgeId::new(2), 50)),
        };
        let s = random_connected_over_time(&r, 100, &cfg, 3).expect("valid config");
        for t in 50..300 {
            assert!(!s.is_present(EdgeId::new(2), t), "dead edge alive at {t}");
        }
        // Other edges keep recurring past the script end.
        for e in [0usize, 1, 3, 4] {
            let present_late = (100..200).any(|t| s.is_present(EdgeId::new(e), t));
            assert!(present_late, "edge {e} should recur after the script");
        }
    }

    #[test]
    fn random_cot_is_reproducible() {
        let r = ring(4);
        let cfg = RandomCotConfig::default();
        let a = random_connected_over_time(&r, 64, &cfg, 99).expect("valid");
        let b = random_connected_over_time(&r, 64, &cfg, 99).expect("valid");
        assert_eq!(a, b);
    }

    #[test]
    fn markov_produces_runs() {
        let r = ring(4);
        let s = markov_on_off(&r, 300, 0.05, 0.2, 17).expect("valid probabilities");
        assert_eq!(s.frame_count(), 300);
        // With p_off = 0.05 runs should be long: expect at least one run of
        // ≥ 5 consecutive presences for edge 0.
        let mut run = 0;
        let mut best = 0;
        for t in 0..300u64 {
            if s.is_present(EdgeId::new(0), t) {
                run += 1;
                best = best.max(run);
            } else {
                run = 0;
            }
        }
        assert!(best >= 5, "longest run {best}");
    }

    #[test]
    fn repair_recurrence_bounds_leading_gap() {
        let r = ring(3);
        let frames = vec![EdgeSet::empty_for(&r); 10];
        let repaired = repair_recurrence(&r, frames, 3, None);
        // Every edge must be present at frames 2, 5, 8 (forced).
        for e in r.edges() {
            for t in [2usize, 5, 8] {
                assert!(repaired[t].contains(e), "edge {e} absent at forced {t}");
            }
        }
    }

    #[test]
    fn repair_recurrence_exempts_missing_edge() {
        let r = ring(3);
        let frames = vec![EdgeSet::empty_for(&r); 9];
        let repaired = repair_recurrence(&r, frames, 2, Some(EdgeId::new(1)));
        for frame in &repaired {
            assert!(!frame.contains(EdgeId::new(1)));
        }
    }

    #[test]
    fn t_interval_connected_has_at_most_one_absent_edge() {
        let r = ring(7);
        let s = t_interval_connected(&r, 150, 4, 5);
        for t in 0..150 {
            assert!(s.edges_at(t).absent_count() <= 1, "two holes at {t}");
        }
        let t_conn = classes::t_interval_connectivity(&s, 150);
        assert!(t_conn >= 5, "T-interval connectivity {t_conn}");
    }

    #[test]
    fn sweeping_outage_cycles_the_hole() {
        let r = ring(4);
        let s = sweeping_outage(&r, 3);
        assert_eq!(s.edges_at(0).absent(). next(), Some(EdgeId::new(0)));
        assert_eq!(s.edges_at(3).absent().next(), Some(EdgeId::new(1)));
        assert_eq!(s.edges_at(11).absent().next(), Some(EdgeId::new(3)));
        // Cycle tail.
        assert_eq!(s.edges_at(12).absent().next(), Some(EdgeId::new(0)));
        let gaps = classes::max_recurrence_gaps(&s, 48);
        assert!(gaps.iter().all(|&g| g <= 3));
    }

    #[test]
    fn enforce_recurrence_on_bernoulli() {
        let r = ring(5);
        let raw = crate::BernoulliSchedule::new(r.clone(), 0.2, 8).expect("valid p");
        let repaired = enforce_recurrence(&raw, 120, 6, None);
        let gaps = classes::max_recurrence_gaps(&repaired, 120);
        assert!(gaps.iter().all(|&g| g <= 6), "gaps {gaps:?}");
    }
}
