//! Property-based tests for the evolving-graph substrate.

use proptest::prelude::*;

use dynring_graph::classes::{self, CotVerdict};
use dynring_graph::generators::{self, RandomCotConfig};
use dynring_graph::journey::ForemostArrivals;
use dynring_graph::{
    AbsenceIntervals, AlwaysPresent, EdgeId, EdgeSchedule, EdgeSet, GlobalDir, NodeId,
    RingTopology, ScriptedSchedule, TailBehavior, TimeInterval,
};

fn edge_set_strategy(universe: usize) -> impl Strategy<Value = EdgeSet> {
    proptest::collection::vec(any::<bool>(), universe).prop_map(move |bits| {
        let mut set = EdgeSet::empty(universe);
        for (i, bit) in bits.into_iter().enumerate() {
            if bit {
                set.insert(EdgeId::new(i));
            }
        }
        set
    })
}

proptest! {
    /// De Morgan's law and double complement on edge sets.
    #[test]
    fn edge_set_boolean_laws(
        universe in 1usize..130,
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
    ) {
        let a = {
            let mut s = EdgeSet::empty(universe);
            for i in 0..universe {
                if (seed_a >> (i % 64)) & 1 == 1 {
                    s.insert(EdgeId::new(i));
                }
            }
            s
        };
        let b = {
            let mut s = EdgeSet::empty(universe);
            for i in 0..universe {
                if (seed_b >> (i % 64)) & 1 == 1 {
                    s.insert(EdgeId::new(i));
                }
            }
            s
        };
        prop_assert_eq!(a.complement().complement(), a.clone());
        prop_assert_eq!(
            a.union(&b).complement(),
            a.complement().intersection(&b.complement())
        );
        prop_assert_eq!(
            a.intersection(&b).complement(),
            a.complement().union(&b.complement())
        );
        prop_assert_eq!(a.difference(&b), a.intersection(&b.complement()));
        prop_assert_eq!(a.union(&b).len() + a.intersection(&b).len(), a.len() + b.len());
    }

    /// Serde round-trips preserve edge sets exactly.
    #[test]
    fn edge_set_serde_round_trip(set in (1usize..80).prop_flat_map(edge_set_strategy)) {
        let json = serde_json::to_string(&set).expect("serialize");
        let back: EdgeSet = serde_json::from_str(&json).expect("deserialize");
        prop_assert_eq!(set, back);
    }

    /// Capturing any scripted schedule reproduces it frame by frame.
    #[test]
    fn capture_round_trips(
        n in 2usize..12,
        frames in 1usize..24,
        seed in any::<u64>(),
    ) {
        let ring = RingTopology::new(n).expect("valid ring");
        let frames: Vec<EdgeSet> = (0..frames)
            .map(|f| {
                let mut set = EdgeSet::empty(n);
                for e in 0..n {
                    if (seed >> ((f * 7 + e) % 64)) & 1 == 1 {
                        set.insert(EdgeId::new(e));
                    }
                }
                set
            })
            .collect();
        let original = ScriptedSchedule::new(ring, frames.clone(), TailBehavior::Cycle)
            .expect("valid script");
        let captured = ScriptedSchedule::capture(&original, frames.len() as u64, TailBehavior::Cycle);
        for t in 0..(frames.len() as u64 * 3) {
            prop_assert_eq!(original.edges_at(t), captured.edges_at(t), "t = {}", t);
        }
    }

    /// Removal-table queries agree with a naive interval scan.
    #[test]
    fn absence_intervals_match_naive_scan(
        n in 2usize..8,
        intervals in proptest::collection::vec(
            (0usize..8, 0u64..60, 1u64..20), 0..12),
        probe in 0u64..90,
    ) {
        let ring = RingTopology::new(n).expect("valid ring");
        let mut schedule = AbsenceIntervals::new(ring.clone());
        let mut naive: Vec<(usize, u64, u64)> = Vec::new();
        for (e, start, len) in intervals {
            let e = e % n;
            schedule.remove_during(EdgeId::new(e), start, start + len);
            naive.push((e, start, start + len));
        }
        for e in 0..n {
            let expected = !naive
                .iter()
                .any(|&(ne, s, end)| ne == e && probe >= s && probe < end);
            prop_assert_eq!(
                schedule.is_present(EdgeId::new(e), probe),
                expected,
                "edge {} at {}", e, probe
            );
        }
    }

    /// The random connected-over-time generator always certifies.
    #[test]
    fn random_cot_always_certifies(
        n in 2usize..10,
        seed in any::<u64>(),
        p in 0.05f64..0.95,
        missing in proptest::option::of(0usize..10),
    ) {
        let ring = RingTopology::new(n).expect("valid ring");
        let horizon = 160;
        let cfg = RandomCotConfig {
            presence_probability: p,
            recurrence_bound: 7,
            eventual_missing: missing.map(|e| (EdgeId::new(e % n), 40)),
        };
        let schedule = generators::random_connected_over_time(&ring, horizon, &cfg, seed)
            .expect("valid config");
        let verdict = classes::certify_connected_over_time(&schedule, horizon, 7);
        match (missing, verdict) {
            (Some(e), CotVerdict::Certified { missing_edge, .. }) => {
                prop_assert_eq!(missing_edge, Some(EdgeId::new(e % n)));
            }
            (None, CotVerdict::Certified { missing_edge, .. }) => {
                prop_assert_eq!(missing_edge, None);
            }
            (_, v) => return Err(TestCaseError::fail(format!("not certified: {v:?}"))),
        }
    }

    /// Foremost arrival times never exceed the static ring distance on an
    /// always-present ring, and equal it exactly.
    #[test]
    fn foremost_arrivals_on_static_ring(
        n in 2usize..24,
        src in 0usize..24,
    ) {
        let src = src % n;
        let ring = RingTopology::new(n).expect("valid ring");
        let g = AlwaysPresent::new(ring.clone());
        let fa = ForemostArrivals::compute(&g, NodeId::new(src), 0, 4 * n as u64);
        for v in ring.nodes() {
            let expected = ring.distance(NodeId::new(src), v) as u64;
            prop_assert_eq!(fa.arrival(v), Some(expected));
        }
    }

    /// Journeys are sound: hops use present edges at strictly increasing
    /// times and trace a path from source to destination.
    #[test]
    fn journeys_are_sound(
        n in 3usize..10,
        seed in any::<u64>(),
        src in 0usize..10,
        dst in 0usize..10,
    ) {
        let src = src % n;
        let dst = dst % n;
        let ring = RingTopology::new(n).expect("valid ring");
        let cfg = RandomCotConfig {
            presence_probability: 0.45,
            recurrence_bound: 6,
            eventual_missing: None,
        };
        let schedule = generators::random_connected_over_time(&ring, 200, &cfg, seed)
            .expect("valid config");
        let fa = ForemostArrivals::compute(&schedule, NodeId::new(src), 0, 200);
        let journey = fa.journey_to(NodeId::new(dst));
        // Connected-over-time with bound 6 over 200 rounds: reachable.
        let journey = journey.expect("destination reachable");
        let mut cursor = NodeId::new(src);
        let mut last: Option<u64> = None;
        for hop in journey.hops() {
            prop_assert!(schedule.is_present(hop.edge, hop.depart));
            if let Some(prev) = last {
                prop_assert!(hop.depart > prev);
            }
            last = Some(hop.depart);
            cursor = ring.traverse(cursor, hop.edge).expect("adjacent");
        }
        prop_assert_eq!(cursor, NodeId::new(dst));
    }

    /// Ring walk/neighbor arithmetic is consistent for arbitrary sizes.
    #[test]
    fn ring_walks_compose(
        n in 2usize..64,
        start in 0usize..64,
        steps_a in 0usize..200,
        steps_b in 0usize..200,
    ) {
        let start = start % n;
        let ring = RingTopology::new(n).expect("valid ring");
        let node = NodeId::new(start);
        for dir in GlobalDir::ALL {
            let two_step = ring.walk(ring.walk(node, dir, steps_a), dir, steps_b);
            let one_step = ring.walk(node, dir, steps_a + steps_b);
            prop_assert_eq!(two_step, one_step);
            // Walking forward then backward returns home.
            prop_assert_eq!(
                ring.walk(ring.walk(node, dir, steps_a), dir.opposite(), steps_a),
                node
            );
        }
    }

    /// `directed_distance` is the inverse of `walk`.
    #[test]
    fn directed_distance_inverts_walk(
        n in 2usize..32,
        start in 0usize..32,
        steps in 0usize..31,
    ) {
        let start = start % n;
        let steps = steps % n;
        let ring = RingTopology::new(n).expect("valid ring");
        let from = NodeId::new(start);
        for dir in GlobalDir::ALL {
            let to = ring.walk(from, dir, steps);
            prop_assert_eq!(ring.directed_distance(from, to, dir), steps);
        }
    }

    /// Interval merging in the removal table is canonical: merging the
    /// same intervals in any order yields the same table.
    #[test]
    fn removal_table_is_order_independent(
        mut intervals in proptest::collection::vec((0u64..40, 1u64..12), 1..8),
    ) {
        use dynring_graph::RemovalTable;
        let e = EdgeId::new(0);
        let mut forward = RemovalTable::new();
        for &(s, len) in &intervals {
            forward.insert(e, TimeInterval::bounded(s, s + len));
        }
        intervals.reverse();
        let mut backward = RemovalTable::new();
        for &(s, len) in &intervals {
            backward.insert(e, TimeInterval::bounded(s, s + len));
        }
        prop_assert_eq!(forward.intervals(e), backward.intervals(e));
    }
}

proptest! {
    /// `edges_at_into` agrees with `edges_at` for every schedule type, at
    /// scripted times and deep into every tail behaviour, regardless of
    /// the scratch buffer's previous universe.
    #[test]
    fn edges_at_into_matches_edges_at(
        n in 2usize..12,
        frames in 1usize..12,
        seed in any::<u64>(),
        p in 0.05f64..0.95,
        stale_universe in 0usize..40,
        probes in proptest::collection::vec(0u64..80, 8),
    ) {
        use dynring_graph::{BernoulliSchedule, Minus, PeriodicSchedule, WithEventualMissing};

        let ring = RingTopology::new(n).expect("valid ring");
        let frame_list: Vec<EdgeSet> = (0..frames)
            .map(|f| {
                let mut set = EdgeSet::empty(n);
                for e in 0..n {
                    if (seed >> ((f * 5 + e) % 64)) & 1 == 1 {
                        set.insert(EdgeId::new(e));
                    }
                }
                set
            })
            .collect();

        // One scratch set reused across all schedules and probes: `reset`
        // must re-target it correctly every time. The snapshot must also
        // agree with a per-edge `is_present` loop — the contract the
        // engine's sparse probe path relies on.
        let mut buf = EdgeSet::empty(stale_universe);
        let mut check = |schedule: &dyn EdgeSchedule| {
            for &t in &probes {
                schedule.edges_at_into(t, &mut buf);
                prop_assert_eq!(&buf, &schedule.edges_at(t), "t = {}", t);
                for e in schedule.ring().edges() {
                    prop_assert_eq!(
                        buf.contains(e),
                        schedule.is_present(e, t),
                        "edge {} at t = {}", e, t
                    );
                }
            }
            Ok(())
        };

        check(&AlwaysPresent::new(ring.clone()))?;
        for tail in [
            TailBehavior::HoldLast,
            TailBehavior::Cycle,
            TailBehavior::AllPresent,
            TailBehavior::AllAbsent,
        ] {
            let scripted = ScriptedSchedule::new(ring.clone(), frame_list.clone(), tail)
                .expect("valid script");
            check(&scripted)?;
        }
        check(&PeriodicSchedule::new(ring.clone(), frame_list.clone()).expect("valid period"))?;
        check(&BernoulliSchedule::new(ring.clone(), p, seed).expect("valid p"))?;

        let mut absences = AbsenceIntervals::new(ring.clone());
        absences.remove_during(EdgeId::new(seed as usize % n), 3, 9);
        absences.remove_from(EdgeId::new((seed >> 8) as usize % n), 30);
        check(&absences)?;

        let mut minus = Minus::new(AlwaysPresent::new(ring.clone()));
        minus.remove(EdgeId::new(seed as usize % n), TimeInterval::bounded(2, 11));
        check(&minus)?;

        check(&WithEventualMissing::new(
            AlwaysPresent::new(ring.clone()),
            EdgeId::new((seed >> 16) as usize % n),
            17,
        ))?;
    }

    /// Word-level `EdgeSet` fills agree with bit-level `insert` loops
    /// (and `as_words` round-trips through `from_words`), across word
    /// boundaries and partial tail words.
    #[test]
    fn word_fills_agree_with_bit_inserts(
        universe in 1usize..200,
        seed in any::<u64>(),
    ) {
        let words_needed = universe.div_ceil(64);
        // A deterministic word stream from the seed.
        let mut state = seed;
        let mut words = Vec::with_capacity(words_needed);
        for _ in 0..words_needed {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            words.push(state);
        }

        let mut bit_level = EdgeSet::empty(universe);
        for i in 0..universe {
            if (words[i / 64] >> (i % 64)) & 1 == 1 {
                bit_level.insert(EdgeId::new(i));
            }
        }

        let from_words = EdgeSet::from_words(universe, &words);
        prop_assert_eq!(&from_words, &bit_level);

        let mut via_set_word = EdgeSet::empty(universe);
        for (index, &w) in words.iter().enumerate() {
            via_set_word.set_word(index, w);
        }
        prop_assert_eq!(&via_set_word, &bit_level);

        // The masked-tail invariant: round-tripping through raw words is
        // lossless and tail bits are zero.
        prop_assert_eq!(EdgeSet::from_words(universe, via_set_word.as_words()), bit_level);
        let tail_bits = universe % 64;
        if tail_bits != 0 {
            let last = *via_set_word.as_words().last().expect("non-empty");
            prop_assert_eq!(last >> tail_bits, 0, "tail bits must be masked");
        }
    }

    /// The masked-tail invariant and the sampled-word surface at
    /// off-word-boundary universes (n % 64 != 0): `from_words`,
    /// `set_word` and `sampled_presence_word` must never leave a stray
    /// tail bit, and fallible presence queries must report — not panic
    /// on — out-of-range edges, for every schedule with word access.
    #[test]
    fn partial_tail_words_and_fallible_queries_are_hardened(
        n_index in 0usize..3,
        seed in any::<u64>(),
        p in 0.0f64..1.0,
        t in 0u64..5000,
        beyond in 0usize..100,
    ) {
        use dynring_graph::{BernoulliReplicas, BernoulliSchedule, GraphError};

        let n = [63usize, 65, 127][n_index];
        let ring = RingTopology::new(n).expect("valid ring");
        let tail_bits = n % 64;
        let last_word = n / 64;

        // set_word / from_words with all-ones input: the tail must be
        // masked, len must equal the universe, and the canonical forms
        // must agree.
        let words = vec![u64::MAX; n.div_ceil(64)];
        let filled = EdgeSet::from_words(n, &words);
        prop_assert!(filled.is_full());
        prop_assert_eq!(filled.as_words()[last_word] >> tail_bits, 0);
        let mut via_set_word = EdgeSet::empty(n);
        for w in 0..words.len() {
            via_set_word.set_word(w, u64::MAX);
        }
        prop_assert_eq!(&via_set_word, &filled);
        prop_assert_eq!(via_set_word.len(), n);

        // Sampled-word extraction: bit-for-bit the snapshot word, tail
        // masked, at every word index including the partial last one.
        let schedule = BernoulliSchedule::new(ring.clone(), p, seed).expect("valid p");
        let snapshot = schedule.edges_at(t);
        for w in 0..snapshot.word_count() {
            let sampled = schedule.sampled_presence_word(t, w);
            prop_assert_eq!(sampled, Some(snapshot.as_words()[w]), "word {}", w);
        }
        prop_assert_eq!(
            schedule.sampled_presence_word(t, last_word).expect("word access") >> tail_bits,
            0,
            "stray tail bit in the sampled word"
        );

        // try_is_present: in-range edges answer the stream, out-of-range
        // edges return the error (never panic) — through the direct
        // impls and the forwarding ones.
        let foreign = EdgeId::new(n + beyond);
        prop_assert_eq!(
            schedule.try_is_present(EdgeId::new(n - 1), t),
            Ok(schedule.is_present(EdgeId::new(n - 1), t))
        );
        let direct_err = matches!(
            schedule.try_is_present(foreign, t),
            Err(GraphError::EdgeOutOfRange { .. })
        );
        prop_assert!(direct_err, "foreign edge must report EdgeOutOfRange");
        fn via_forwarding<S: EdgeSchedule>(
            s: S,
            e: EdgeId,
            t: u64,
        ) -> Result<bool, GraphError> {
            s.try_is_present(e, t)
        }
        let forwarded_err = matches!(
            via_forwarding(&schedule, foreign, t),
            Err(GraphError::EdgeOutOfRange { .. })
        );
        prop_assert!(forwarded_err, "forwarding impl must report EdgeOutOfRange");

        let replicas = BernoulliReplicas::new(ring.clone(), p, seed).expect("valid p");
        let lane = replicas.lane((seed % 64) as u32);
        prop_assert_eq!(
            lane.try_is_present(EdgeId::new(n - 1), t),
            Ok((replicas.presence_word(EdgeId::new(n - 1), t) >> lane.lane()) & 1 == 1)
        );
        let lane_err = matches!(
            lane.try_is_present(foreign, t),
            Err(GraphError::EdgeOutOfRange { .. })
        );
        prop_assert!(lane_err, "lane schedule must report EdgeOutOfRange");

        let boxed: Box<dyn EdgeSchedule> = Box::new(schedule);
        let boxed_err = matches!(
            boxed.try_is_present(foreign, t),
            Err(GraphError::EdgeOutOfRange { .. })
        );
        prop_assert!(boxed_err, "boxed schedule must report EdgeOutOfRange");
    }

    /// Distribution equivalence of the samplers: across seeds, both the
    /// word-parallel bit-sliced stream and the per-edge reference stream
    /// hit rate p within a chi-square tolerance (one-cell χ² against the
    /// binomial, critical value 20.25 ≈ |z| < 4.5, tail mass ~7·10⁻⁶ per
    /// sample), for p ∈ {0.1, 0.5, 0.9}.
    #[test]
    fn bit_sliced_sampling_rate_passes_chi_square(
        seed in any::<u64>(),
        p_index in 0usize..3,
    ) {
        use dynring_graph::BernoulliSchedule;

        let p = [0.1f64, 0.5, 0.9][p_index];
        let ring = RingTopology::new(192).expect("valid ring");
        let schedule = BernoulliSchedule::new(ring.clone(), p, seed).expect("valid p");
        let horizon = 120u64;
        let samples = (ring.edge_count() as u64 * horizon) as f64;

        let mut word_hits = 0u64;
        let mut reference_hits = 0u64;
        let mut frame = EdgeSet::empty(0);
        for t in 0..horizon {
            schedule.edges_at_into(t, &mut frame);
            word_hits += frame.len() as u64;
            for e in ring.edges() {
                reference_hits += u64::from(schedule.reference_is_present(e, t));
            }
        }

        // Quantization shifts the word sampler's true rate by ≤ 2^-17;
        // widen the expected count accordingly before the χ² statistic.
        let quantization = samples / (1u64 << 17) as f64;
        for (label, hits) in [("word", word_hits), ("reference", reference_hits)] {
            let expected = samples * p;
            let deviation = ((hits as f64 - expected).abs() - quantization).max(0.0);
            let chi_square = deviation * deviation / (samples * p * (1.0 - p));
            prop_assert!(
                chi_square < 20.25,
                "{} stream: {} hits of {} (p = {}), chi^2 = {}",
                label, hits, samples, p, chi_square
            );
        }
    }
}
