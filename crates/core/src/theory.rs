//! Table 1 of the paper, encoded as queryable data: the exact number of
//! robots that deterministic FSYNC perpetual exploration of
//! connected-over-time rings requires.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Which of the paper's algorithms solves a given `(k, n)` cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RecommendedAlgorithm {
    /// [`crate::Pef1`]: one robot, 2-node ring (Theorem 5.2).
    Pef1,
    /// [`crate::Pef2`]: two robots, 3-node ring (Theorem 4.2).
    Pef2,
    /// [`crate::Pef3Plus`]: `k ≥ 3` robots, `n > k` nodes (Theorem 3.1).
    Pef3Plus,
}

impl RecommendedAlgorithm {
    /// The algorithm's display name (matches `Algorithm::name`).
    pub fn name(&self) -> &'static str {
        match self {
            RecommendedAlgorithm::Pef1 => "PEF_1",
            RecommendedAlgorithm::Pef2 => "PEF_2",
            RecommendedAlgorithm::Pef3Plus => "PEF_3+",
        }
    }
}

impl fmt::Display for RecommendedAlgorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The computability status of one `(k robots, n nodes)` cell of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Feasibility {
    /// Deterministic perpetual exploration is possible; the named algorithm
    /// achieves it.
    Solvable {
        /// The paper's algorithm for this cell.
        algorithm: RecommendedAlgorithm,
        /// The theorem establishing possibility.
        theorem: Theorem,
    },
    /// No deterministic algorithm exists.
    Unsolvable {
        /// The theorem establishing impossibility.
        theorem: Theorem,
    },
    /// Outside the model: the paper requires `1 ≤ k < n` (a well-initiated
    /// execution needs strictly fewer robots than nodes, and at least one
    /// robot).
    OutOfModel,
}

impl Feasibility {
    /// The paper's verdict for `k` robots on a connected-over-time ring of
    /// `n` nodes.
    ///
    /// ```rust
    /// use dynring_core::theory::{Feasibility, RecommendedAlgorithm};
    ///
    /// assert!(matches!(
    ///     Feasibility::for_parameters(3, 10),
    ///     Feasibility::Solvable { algorithm: RecommendedAlgorithm::Pef3Plus, .. }
    /// ));
    /// assert!(matches!(
    ///     Feasibility::for_parameters(2, 7),
    ///     Feasibility::Unsolvable { .. }
    /// ));
    /// ```
    pub fn for_parameters(robots: usize, nodes: usize) -> Feasibility {
        if robots == 0 || nodes < 2 || robots >= nodes {
            return Feasibility::OutOfModel;
        }
        match robots {
            1 => {
                if nodes == 2 {
                    Feasibility::Solvable {
                        algorithm: RecommendedAlgorithm::Pef1,
                        theorem: Theorem::T52,
                    }
                } else {
                    Feasibility::Unsolvable { theorem: Theorem::T51 }
                }
            }
            2 => {
                if nodes == 3 {
                    Feasibility::Solvable {
                        algorithm: RecommendedAlgorithm::Pef2,
                        theorem: Theorem::T42,
                    }
                } else {
                    Feasibility::Unsolvable { theorem: Theorem::T41 }
                }
            }
            _ => Feasibility::Solvable {
                algorithm: RecommendedAlgorithm::Pef3Plus,
                theorem: Theorem::T31,
            },
        }
    }

    /// `true` for [`Feasibility::Solvable`].
    pub fn is_solvable(&self) -> bool {
        matches!(self, Feasibility::Solvable { .. })
    }

    /// The recommended algorithm, when solvable.
    pub fn algorithm(&self) -> Option<RecommendedAlgorithm> {
        match self {
            Feasibility::Solvable { algorithm, .. } => Some(*algorithm),
            _ => None,
        }
    }
}

/// The paper's theorems, for cross-referencing verdicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Theorem {
    /// Theorem 3.1: `PEF_3+` with `k ≥ 3` robots on rings of size `> k`.
    T31,
    /// Theorem 4.1: impossibility with 2 robots on rings of size ≥ 4.
    T41,
    /// Theorem 4.2: `PEF_2` with 2 robots on 3-node rings.
    T42,
    /// Theorem 5.1: impossibility with 1 robot on rings of size ≥ 3.
    T51,
    /// Theorem 5.2: `PEF_1` with 1 robot on 2-node rings.
    T52,
}

impl fmt::Display for Theorem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let label = match self {
            Theorem::T31 => "Theorem 3.1",
            Theorem::T41 => "Theorem 4.1",
            Theorem::T42 => "Theorem 4.2",
            Theorem::T51 => "Theorem 5.1",
            Theorem::T52 => "Theorem 5.2",
        };
        f.write_str(label)
    }
}

/// The minimum number of robots that can perpetually explore every
/// connected-over-time ring of `n` nodes (`n ≥ 2`).
///
/// # Panics
///
/// Panics when `n < 2` (no such ring exists).
pub fn minimum_robots(nodes: usize) -> usize {
    assert!(nodes >= 2, "rings have at least 2 nodes");
    match nodes {
        2 => 1,
        3 => 2,
        _ => 3,
    }
}

/// One row of the paper's Table 1.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Table1Row {
    /// Robot count description (e.g. "3 and more").
    pub robots: &'static str,
    /// Ring size description (e.g. "≥ 4").
    pub ring_size: &'static str,
    /// "Possible" / "Impossible".
    pub result: &'static str,
    /// The theorem backing the row.
    pub theorem: Theorem,
}

/// The paper's Table 1, verbatim.
pub fn table1() -> Vec<Table1Row> {
    vec![
        Table1Row {
            robots: "3 and more",
            ring_size: "≥ 4 (n > k)",
            result: "Possible",
            theorem: Theorem::T31,
        },
        Table1Row {
            robots: "2",
            ring_size: "> 3",
            result: "Impossible",
            theorem: Theorem::T41,
        },
        Table1Row {
            robots: "2",
            ring_size: "= 3",
            result: "Possible",
            theorem: Theorem::T42,
        },
        Table1Row {
            robots: "1",
            ring_size: "> 2",
            result: "Impossible",
            theorem: Theorem::T51,
        },
        Table1Row {
            robots: "1",
            ring_size: "= 2",
            result: "Possible",
            theorem: Theorem::T52,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_matches_table1() {
        use Feasibility as F;
        // k = 1.
        assert!(matches!(
            F::for_parameters(1, 2),
            F::Solvable {
                algorithm: RecommendedAlgorithm::Pef1,
                theorem: Theorem::T52
            }
        ));
        for n in 3..12 {
            assert!(matches!(
                F::for_parameters(1, n),
                F::Unsolvable { theorem: Theorem::T51 }
            ));
        }
        // k = 2.
        assert!(matches!(
            F::for_parameters(2, 3),
            F::Solvable {
                algorithm: RecommendedAlgorithm::Pef2,
                theorem: Theorem::T42
            }
        ));
        for n in 4..12 {
            assert!(matches!(
                F::for_parameters(2, n),
                F::Unsolvable { theorem: Theorem::T41 }
            ));
        }
        // k ≥ 3 (with n > k).
        for k in 3..6 {
            for n in (k + 1)..12 {
                assert!(matches!(
                    F::for_parameters(k, n),
                    F::Solvable {
                        algorithm: RecommendedAlgorithm::Pef3Plus,
                        theorem: Theorem::T31
                    }
                ));
            }
        }
    }

    #[test]
    fn out_of_model_cells() {
        assert_eq!(Feasibility::for_parameters(0, 5), Feasibility::OutOfModel);
        assert_eq!(Feasibility::for_parameters(5, 5), Feasibility::OutOfModel);
        assert_eq!(Feasibility::for_parameters(6, 5), Feasibility::OutOfModel);
        assert_eq!(Feasibility::for_parameters(1, 1), Feasibility::OutOfModel);
    }

    #[test]
    fn minimum_robots_curve() {
        assert_eq!(minimum_robots(2), 1);
        assert_eq!(minimum_robots(3), 2);
        for n in 4..20 {
            assert_eq!(minimum_robots(n), 3);
        }
    }

    #[test]
    fn minimum_robots_is_consistent_with_feasibility() {
        for n in 2..16 {
            let k = minimum_robots(n);
            if k < n {
                assert!(
                    Feasibility::for_parameters(k, n).is_solvable(),
                    "minimum {k} robots must solve n = {n}"
                );
            }
            if k > 1 {
                assert!(
                    !Feasibility::for_parameters(k - 1, n).is_solvable(),
                    "{} robots must not solve n = {n}",
                    k - 1
                );
            }
        }
    }

    #[test]
    fn table1_has_five_rows() {
        let rows = table1();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0].result, "Possible");
        assert_eq!(rows[1].result, "Impossible");
        assert_eq!(rows[1].theorem, Theorem::T41);
    }

    #[test]
    fn display_names() {
        assert_eq!(RecommendedAlgorithm::Pef3Plus.to_string(), "PEF_3+");
        assert_eq!(Theorem::T51.to_string(), "Theorem 5.1");
    }
}
