//! `PEF_1` — §5.2: perpetual exploration of 2-node connected-over-time
//! rings with a single robot.

use serde::{Deserialize, Serialize};

use dynring_engine::{Algorithm, BatchAlgorithm, LaneWord, LocalDir, View, ViewWords};

/// `PEF_1` (§5.2): one fully synchronous robot on a 2-node
/// connected-over-time ring.
///
/// The paper: *"As soon as at least one adjacent edge to the current node of
/// the robot is present, its variable `dir` points arbitrarily to one of
/// these edges."* Both readings of a size-2 ring are supported by the
/// engine: the multigraph ring (two parallel edges) and the 2-node chain
/// (the second edge never present).
///
/// "Arbitrarily" is made deterministic the natural way: keep the current
/// direction when its edge is present, otherwise point to the other one.
/// On a 2-node ring *any* present adjacent edge leads to the other node, so
/// every move completes an exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Pef1;

impl Pef1 {
    /// Creates the algorithm.
    pub fn new() -> Self {
        Pef1
    }
}

impl Algorithm for Pef1 {
    type State = ();

    fn name(&self) -> &str {
        "PEF_1"
    }

    fn initial_state(&self) {}

    fn compute(&self, _state: &mut (), view: &View) -> LocalDir {
        if view.exists_edge_ahead() {
            view.dir()
        } else if view.exists_edge_behind() {
            view.dir().opposite()
        } else {
            view.dir()
        }
    }
}

/// The branch-free lane-word circuit at any arity: turn exactly in the
/// lanes where the ahead edge is missing but the behind edge is present —
/// `dir ← dir ⊕ (¬ahead ∧ behind)`.
impl<W: LaneWord> BatchAlgorithm<W> for Pef1 {
    type BatchState = ();

    fn initial_batch_state(&self) {}

    fn compute_word(&self, _state: &mut (), view: &ViewWords<W>) -> W {
        view.dir ^ (!view.exists_edge_ahead() & view.exists_edge_behind())
    }

    fn compute_word_masked(&self, state: &mut (), view: &ViewWords<W>, act: W) -> W {
        let d = self.compute_word(state, view);
        (act & d) | (!act & view.dir)
    }

    fn lane_state(&self, _state: &(), lane: u32) {
        assert!(
            (lane as usize) < W::LANES,
            "lanes are 0..{}, got {lane}",
            W::LANES
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_dir_when_its_edge_is_present() {
        let alg = Pef1::new();
        let mut s = ();
        let d = alg.compute(&mut s, &View::new(LocalDir::Left, true, true, false));
        assert_eq!(d, LocalDir::Left);
    }

    #[test]
    fn switches_to_the_only_present_edge() {
        let alg = Pef1::new();
        let mut s = ();
        let d = alg.compute(&mut s, &View::new(LocalDir::Left, false, true, false));
        assert_eq!(d, LocalDir::Right);
    }

    #[test]
    fn keeps_dir_when_no_edge_is_present() {
        let alg = Pef1::new();
        let mut s = ();
        let d = alg.compute(&mut s, &View::new(LocalDir::Right, false, false, false));
        assert_eq!(d, LocalDir::Right);
    }
}
