//! The perpetual-exploration algorithms of Bournat, Dubois & Petit
//! (ICDCS 2017) and the paper's computability map (Table 1).
//!
//! # The three algorithms
//!
//! | algorithm | robots | rings | theorem |
//! |-----------|--------|-------|---------|
//! | [`Pef3Plus`] | `k ≥ 3` | `n > k` | 3.1 (possible) |
//! | [`Pef2`]     | `k = 2` | `n = 3` | 4.2 (possible) |
//! | [`Pef1`]     | `k = 1` | `n = 2` | 5.2 (possible) |
//!
//! The complementary impossibility results (Theorems 4.1 and 5.1) are
//! *executable adversaries* living in `dynring-adversary`; the
//! [`theory`] module encodes the full Table 1 as queryable data.
//!
//! # Example: PEF_3+ exploring a dynamic ring
//!
//! ```rust
//! use dynring_core::Pef3Plus;
//! use dynring_engine::{Oblivious, RobotPlacement, Simulator};
//! use dynring_graph::generators::{self, RandomCotConfig};
//! use dynring_graph::{NodeId, RingTopology};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ring = RingTopology::new(8)?;
//! let schedule = generators::random_connected_over_time(
//!     &ring, 400, &RandomCotConfig::default(), 42)?;
//! let mut sim = Simulator::new(
//!     ring,
//!     Pef3Plus,
//!     Oblivious::new(schedule),
//!     vec![
//!         RobotPlacement::at(NodeId::new(0)),
//!         RobotPlacement::at(NodeId::new(3)),
//!         RobotPlacement::at(NodeId::new(5)),
//!     ],
//! )?;
//! let trace = sim.run_recording(400);
//! assert!(trace.covers_all_nodes());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
mod pef1;
mod pef2;
mod pef3;
pub mod theory;

pub use pef1::Pef1;
pub use pef2::Pef2;
pub use pef3::{Pef3Plus, Pef3State};
pub use theory::{Feasibility, RecommendedAlgorithm, Table1Row};
