//! `PEF_3+` — Algorithm 1 of the paper: perpetual exploration in FSYNC with
//! three or more robots, on connected-over-time rings of size `n > k`.

use serde::{Deserialize, Serialize};

use dynring_engine::{Algorithm, BatchAlgorithm, LaneWord, LocalDir, View, ViewWords};

/// Persistent state of a `PEF_3+` robot: the single boolean
/// `HasMovedPreviousStep`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Pef3State {
    /// Whether the robot moved during its previous Look-Compute-Move cycle.
    pub has_moved_previous_step: bool,
}

/// Algorithm 1, `PEF_3+` (*Perpetual Exploration in FSYNC with 3 or more
/// robots*).
///
/// The three rules of §3.1:
///
/// 1. **Rule 1** — a robot keeps its direction while not involved in a
///    tower;
/// 2. **Rule 2** — a robot that did *not* move and is joined by another
///    robot keeps its direction (it becomes the *sentinel*);
/// 3. **Rule 3** — a robot that moved onto another robot turns back (the
///    *explorer* bounces off the sentinel).
///
/// The literal pseudocode:
///
/// ```text
/// 1: if HasMovedPreviousStep ∧ ExistsOtherRobotsOnCurrentNode() then
/// 2:     dir ← opposite(dir)
/// 3: end if
/// 4: HasMovedPreviousStep ← ExistsEdge(dir)
/// ```
///
/// Line 4 evaluates `ExistsEdge` with the *new* direction; because the Move
/// phase uses the same snapshot `G_t`, the assigned value equals "this robot
/// will move during this round", i.e. exactly `HasMovedPreviousStep` as seen
/// by the next round.
///
/// Guarantees proved in the paper (and checked by the validators in
/// `dynring-analysis`):
///
/// - no tower ever involves three or more robots (Lemma 3.4);
/// - the two robots of a tower point to opposite global directions while it
///   exists (Lemma 3.3);
/// - with an eventual missing edge, one robot eventually sits forever at
///   each extremity pointing to the dead edge (Lemma 3.7) — the *sentinels*
///   — while the remaining robots shuttle across the chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Pef3Plus;

impl Pef3Plus {
    /// Creates the algorithm.
    pub fn new() -> Self {
        Pef3Plus
    }
}

impl Algorithm for Pef3Plus {
    type State = Pef3State;

    fn name(&self) -> &str {
        "PEF_3+"
    }

    fn initial_state(&self) -> Pef3State {
        Pef3State {
            has_moved_previous_step: false,
        }
    }

    fn compute(&self, state: &mut Pef3State, view: &View) -> LocalDir {
        let mut dir = view.dir();
        if state.has_moved_previous_step && view.other_robots_on_current_node() {
            dir = dir.opposite();
        }
        state.has_moved_previous_step = view.exists_edge(dir);
        dir
    }
}

/// The branch-free lane-word circuit at any arity: `HasMovedPreviousStep`
/// is stored bit-sliced as one lane word, and the three rules become
/// three word ops — `flip = moved ∧ others`, `dir ← dir ⊕ flip`,
/// `moved ← ExistsEdge(dir)` (the ahead-select on the *new* direction).
impl<W: LaneWord> BatchAlgorithm<W> for Pef3Plus {
    type BatchState = W;

    fn initial_batch_state(&self) -> W {
        W::ZERO
    }

    fn compute_word(&self, state: &mut W, view: &ViewWords<W>) -> W {
        let flip = *state & view.others;
        let dir = view.dir ^ flip;
        *state = (dir & view.edge_right) | (!dir & view.edge_left);
        dir
    }

    fn compute_word_masked(&self, state: &mut W, view: &ViewWords<W>, act: W) -> W {
        // Run the circuit everywhere, then restore the inactive lanes:
        // their direction and `HasMovedPreviousStep` bit must persist.
        let old = *state;
        let dir = self.compute_word(state, view);
        *state = (act & *state) | (!act & old);
        (act & dir) | (!act & view.dir)
    }

    fn lane_state(&self, state: &W, lane: u32) -> Pef3State {
        assert!(
            (lane as usize) < W::LANES,
            "lanes are 0..{}, got {lane}",
            W::LANES
        );
        Pef3State {
            has_moved_previous_step: state.get(lane as usize),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(dir: LocalDir, left: bool, right: bool, others: bool) -> View {
        View::new(dir, left, right, others)
    }

    #[test]
    fn keeps_direction_when_isolated() {
        let alg = Pef3Plus::new();
        let mut s = alg.initial_state();
        let d = alg.compute(&mut s, &view(LocalDir::Left, true, true, false));
        assert_eq!(d, LocalDir::Left);
        assert!(s.has_moved_previous_step);
    }

    #[test]
    fn rule2_sentinel_keeps_direction() {
        // Did not move last step, another robot arrives: keep direction.
        let alg = Pef3Plus::new();
        let mut s = Pef3State {
            has_moved_previous_step: false,
        };
        let d = alg.compute(&mut s, &view(LocalDir::Right, true, true, true));
        assert_eq!(d, LocalDir::Right);
    }

    #[test]
    fn rule3_explorer_turns_back() {
        // Moved last step and landed on another robot: turn back.
        let alg = Pef3Plus::new();
        let mut s = Pef3State {
            has_moved_previous_step: true,
        };
        let d = alg.compute(&mut s, &view(LocalDir::Right, true, true, true));
        assert_eq!(d, LocalDir::Left);
    }

    #[test]
    fn has_moved_tracks_edge_in_new_direction() {
        let alg = Pef3Plus::new();
        // Explorer flips from right to left; only the right edge exists, so
        // after the flip the robot cannot move: HasMoved becomes false.
        let mut s = Pef3State {
            has_moved_previous_step: true,
        };
        let d = alg.compute(&mut s, &view(LocalDir::Right, false, true, true));
        assert_eq!(d, LocalDir::Left);
        assert!(!s.has_moved_previous_step);

        // Isolated robot pointing right with the right edge present: moves.
        let mut s = Pef3State {
            has_moved_previous_step: false,
        };
        let d = alg.compute(&mut s, &view(LocalDir::Right, false, true, false));
        assert_eq!(d, LocalDir::Right);
        assert!(s.has_moved_previous_step);
    }

    #[test]
    fn blocked_sentinel_never_sets_has_moved() {
        // A sentinel pointing at a missing edge keeps dir and HasMoved stays
        // false forever — so it can never be forced to turn (Rule 2 only).
        let alg = Pef3Plus::new();
        let mut s = alg.initial_state();
        for _ in 0..5 {
            let d = alg.compute(&mut s, &view(LocalDir::Left, false, true, true));
            assert_eq!(d, LocalDir::Left);
            assert!(!s.has_moved_previous_step);
        }
    }

    #[test]
    fn no_flip_without_other_robots_even_after_moving() {
        let alg = Pef3Plus::new();
        let mut s = Pef3State {
            has_moved_previous_step: true,
        };
        let d = alg.compute(&mut s, &view(LocalDir::Left, true, false, false));
        assert_eq!(d, LocalDir::Left);
    }
}
