//! Baseline algorithms used for ablations and comparative experiments.
//!
//! None of these solve perpetual exploration on the full
//! connected-over-time class; each one isolates a design decision of
//! `PEF_3+`:
//!
//! - [`KeepDirection`] is Rule 1 alone — it suffices *only* when no
//!   eventual missing edge exists (Lemma 3.2's hypothesis);
//! - [`BounceOnMissingEdge`] is the classic static-ring explorer — the
//!   adversary traps it by blinking edges (a robot turning on a missing
//!   edge leaks no progress guarantee);
//! - [`AlwaysTurnOnTower`] violates Rule 2 (the tower-breaking asymmetry):
//!   both robots of a tower turn, so sentinels cannot form;
//! - [`AlternateDirection`] and [`RandomDirection`] are sanity-check
//!   strawmen (the latter stays deterministic through a seeded counter, as
//!   the model requires determinism).

use serde::{Deserialize, Serialize};

use dynring_engine::{Algorithm, BatchAlgorithm, LaneWord, LocalDir, View, ViewWords};

/// Rule 1 alone: never change direction.
///
/// Explores any connected-over-time ring *without* eventual missing edge
/// (every edge recurs, so the robot keeps progressing in one global
/// direction), but parks forever at an eventual missing edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct KeepDirection;

impl Algorithm for KeepDirection {
    type State = ();

    fn name(&self) -> &str {
        "keep-direction"
    }

    fn initial_state(&self) {}

    fn compute(&self, _state: &mut (), view: &View) -> LocalDir {
        view.dir()
    }
}

/// Lane-word circuit at any arity: the identity.
impl<W: LaneWord> BatchAlgorithm<W> for KeepDirection {
    type BatchState = ();

    fn initial_batch_state(&self) {}

    fn compute_word(&self, _state: &mut (), view: &ViewWords<W>) -> W {
        view.dir
    }

    fn compute_word_masked(&self, _state: &mut (), view: &ViewWords<W>, _act: W) -> W {
        // Stateless identity: inactive lanes keep their bit by definition.
        view.dir
    }

    fn lane_state(&self, _state: &(), lane: u32) {
        assert!(
            (lane as usize) < W::LANES,
            "lanes are 0..{}, got {lane}",
            W::LANES
        );
    }
}

/// The classic static-ring strategy: turn back whenever the pointed edge is
/// missing.
///
/// Complete on static chains; on highly dynamic rings the adversary blinks
/// edges to shake the robot back and forth without progress (and Theorem
/// 5.1's adversary confines it to two nodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BounceOnMissingEdge;

impl Algorithm for BounceOnMissingEdge {
    type State = ();

    fn name(&self) -> &str {
        "bounce-on-missing"
    }

    fn initial_state(&self) {}

    fn compute(&self, _state: &mut (), view: &View) -> LocalDir {
        if view.exists_edge_ahead() {
            view.dir()
        } else {
            view.dir().opposite()
        }
    }
}

/// Lane-word circuit at any arity: flip exactly where the ahead edge is
/// missing.
impl<W: LaneWord> BatchAlgorithm<W> for BounceOnMissingEdge {
    type BatchState = ();

    fn initial_batch_state(&self) {}

    fn compute_word(&self, _state: &mut (), view: &ViewWords<W>) -> W {
        view.dir ^ !view.exists_edge_ahead()
    }

    fn compute_word_masked(&self, state: &mut (), view: &ViewWords<W>, act: W) -> W {
        let d = self.compute_word(state, view);
        (act & d) | (!act & view.dir)
    }

    fn lane_state(&self, _state: &(), lane: u32) {
        assert!(
            (lane as usize) < W::LANES,
            "lanes are 0..{}, got {lane}",
            W::LANES
        );
    }
}

/// `PEF_3+` without Rule 2: *every* robot involved in a tower turns back,
/// mover or not.
///
/// Ablation target: without the mover/stayer asymmetry, the sentinel role
/// cannot be handed over — when an explorer reaches an extremity of the
/// eventual missing edge, the sentinel turns away with it and the extremity
/// is abandoned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AlwaysTurnOnTower;

impl Algorithm for AlwaysTurnOnTower {
    type State = ();

    fn name(&self) -> &str {
        "always-turn-on-tower"
    }

    fn initial_state(&self) {}

    fn compute(&self, _state: &mut (), view: &View) -> LocalDir {
        if view.other_robots_on_current_node() {
            view.dir().opposite()
        } else {
            view.dir()
        }
    }
}

/// Lane-word circuit at any arity: flip exactly in the tower lanes.
impl<W: LaneWord> BatchAlgorithm<W> for AlwaysTurnOnTower {
    type BatchState = ();

    fn initial_batch_state(&self) {}

    fn compute_word(&self, _state: &mut (), view: &ViewWords<W>) -> W {
        view.dir ^ view.others
    }

    fn compute_word_masked(&self, state: &mut (), view: &ViewWords<W>, act: W) -> W {
        let d = self.compute_word(state, view);
        (act & d) | (!act & view.dir)
    }

    fn lane_state(&self, _state: &(), lane: u32) {
        assert!(
            (lane as usize) < W::LANES,
            "lanes are 0..{}, got {lane}",
            W::LANES
        );
    }
}

/// Flips direction every round, regardless of anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AlternateDirection;

impl Algorithm for AlternateDirection {
    type State = ();

    fn name(&self) -> &str {
        "alternate-direction"
    }

    fn initial_state(&self) {}

    fn compute(&self, _state: &mut (), view: &View) -> LocalDir {
        view.dir().opposite()
    }
}

/// Lane-word circuit at any arity: complement.
impl<W: LaneWord> BatchAlgorithm<W> for AlternateDirection {
    type BatchState = ();

    fn initial_batch_state(&self) {}

    fn compute_word(&self, _state: &mut (), view: &ViewWords<W>) -> W {
        !view.dir
    }

    fn compute_word_masked(&self, _state: &mut (), view: &ViewWords<W>, act: W) -> W {
        view.dir ^ act
    }

    fn lane_state(&self, _state: &(), lane: u32) {
        assert!(
            (lane as usize) < W::LANES,
            "lanes are 0..{}, got {lane}",
            W::LANES
        );
    }
}

/// Pseudo-random direction choice, deterministic given the seed (the model
/// forbids true randomness): round `i` hashes `(seed, i)` to pick a
/// direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RandomDirection {
    seed: u64,
}

impl RandomDirection {
    /// Creates the baseline with the given seed.
    pub fn new(seed: u64) -> Self {
        RandomDirection { seed }
    }
}

fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Algorithm for RandomDirection {
    type State = u64;

    fn name(&self) -> &str {
        "random-direction"
    }

    fn initial_state(&self) -> u64 {
        0
    }

    fn compute(&self, round: &mut u64, _view: &View) -> LocalDir {
        let h = mix64(self.seed ^ *round);
        *round += 1;
        if h & 1 == 0 {
            LocalDir::Left
        } else {
            LocalDir::Right
        }
    }
}

/// Lane-word form at any arity: the direction stream ignores the view,
/// and when every lane computes together the per-lane counters stay
/// equal — one shared counter and one hash serve all `W::LANES` lanes
/// (the chosen direction is broadcast). Lane-uniform activation keeps
/// this invariant (all-active rounds bump the counter once, all-inactive
/// rounds leave it alone); lane-mixed activation would desynchronize the
/// counters, so the masked default's panic is the correct behaviour.
impl<W: LaneWord> BatchAlgorithm<W> for RandomDirection {
    type BatchState = u64;

    fn initial_batch_state(&self) -> u64 {
        0
    }

    fn compute_word(&self, round: &mut u64, _view: &ViewWords<W>) -> W {
        let h = mix64(self.seed ^ *round);
        *round += 1;
        W::splat(h & 1 == 1)
    }

    fn lane_state(&self, round: &u64, lane: u32) -> u64 {
        assert!(
            (lane as usize) < W::LANES,
            "lanes are 0..{}, got {lane}",
            W::LANES
        );
        *round
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(dir: LocalDir, left: bool, right: bool, others: bool) -> View {
        View::new(dir, left, right, others)
    }

    #[test]
    fn keep_direction_never_turns() {
        let alg = KeepDirection;
        let mut s = ();
        for v in [
            view(LocalDir::Left, false, false, true),
            view(LocalDir::Left, true, true, true),
            view(LocalDir::Left, false, true, false),
        ] {
            assert_eq!(alg.compute(&mut s, &v), LocalDir::Left);
        }
    }

    #[test]
    fn bounce_turns_exactly_on_missing_pointed_edge() {
        let alg = BounceOnMissingEdge;
        let mut s = ();
        assert_eq!(
            alg.compute(&mut s, &view(LocalDir::Left, true, false, false)),
            LocalDir::Left
        );
        assert_eq!(
            alg.compute(&mut s, &view(LocalDir::Left, false, true, false)),
            LocalDir::Right
        );
        // Both edges missing: still flips (and then cannot move anyway).
        assert_eq!(
            alg.compute(&mut s, &view(LocalDir::Left, false, false, false)),
            LocalDir::Right
        );
    }

    #[test]
    fn always_turn_on_tower_ignores_moved_flag() {
        let alg = AlwaysTurnOnTower;
        let mut s = ();
        assert_eq!(
            alg.compute(&mut s, &view(LocalDir::Right, true, true, true)),
            LocalDir::Left
        );
        assert_eq!(
            alg.compute(&mut s, &view(LocalDir::Right, true, true, false)),
            LocalDir::Right
        );
    }

    #[test]
    fn alternate_flips_every_round() {
        let alg = AlternateDirection;
        let mut s = ();
        let v = view(LocalDir::Left, true, true, false);
        assert_eq!(alg.compute(&mut s, &v), LocalDir::Right);
        // View dir would have been updated by the engine; simulate that.
        let v = view(LocalDir::Right, true, true, false);
        assert_eq!(alg.compute(&mut s, &v), LocalDir::Left);
    }

    #[test]
    fn random_direction_is_deterministic_per_seed() {
        let a = RandomDirection::new(7);
        let b = RandomDirection::new(7);
        let c = RandomDirection::new(8);
        let v = view(LocalDir::Left, true, true, false);
        let run = |alg: RandomDirection| {
            let mut s = alg.initial_state();
            (0..32).map(|_| alg.compute(&mut s, &v)).collect::<Vec<_>>()
        };
        assert_eq!(run(a), run(b));
        assert_ne!(run(a), run(c));
    }

    #[test]
    fn random_direction_uses_both_directions() {
        let alg = RandomDirection::new(3);
        let mut s = alg.initial_state();
        let v = view(LocalDir::Left, true, true, false);
        let dirs: Vec<LocalDir> = (0..64).map(|_| alg.compute(&mut s, &v)).collect();
        assert!(dirs.contains(&LocalDir::Left));
        assert!(dirs.contains(&LocalDir::Right));
    }
}
