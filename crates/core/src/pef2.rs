//! `PEF_2` — §4.2: perpetual exploration of 3-node connected-over-time
//! rings with two robots.

use serde::{Deserialize, Serialize};

use dynring_engine::{Algorithm, BatchAlgorithm, LaneWord, LocalDir, View, ViewWords};

/// `PEF_2` (§4.2): two fully synchronous robots on a 3-node
/// connected-over-time ring.
///
/// The rule, verbatim from the paper: *"If at a time `t`, a robot is
/// isolated on a node with only one adjacent edge, then it points to this
/// edge. Otherwise (i.e., none of the adjacent edges is present, both
/// adjacent edges are present, or the other robot is present on the same
/// node), the robot keeps its current direction."*
///
/// The robot needs no persistent memory beyond its direction variable
/// (which the engine owns), so the state is `()`.
///
/// Correctness (Theorem 4.2) hinges on `n = 3`: whenever a tower forms, all
/// three nodes were visited between the previous and the current instant;
/// and when the robots stay isolated, the single-edge rule steers some
/// robot towards the unvisited node. Theorem 4.1 shows no algorithm — this
/// one included — can cope with `n ≥ 4`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Pef2;

impl Pef2 {
    /// Creates the algorithm.
    pub fn new() -> Self {
        Pef2
    }
}

impl Algorithm for Pef2 {
    type State = ();

    fn name(&self) -> &str {
        "PEF_2"
    }

    fn initial_state(&self) {}

    fn compute(&self, _state: &mut (), view: &View) -> LocalDir {
        if view.is_isolated() {
            if let Some(single) = view.single_present_edge() {
                return single;
            }
        }
        view.dir()
    }
}

/// The branch-free lane-word circuit at any arity: the retarget mask
/// selects lanes that are isolated with exactly one present edge
/// (`¬others ∧ (left ⊕ right)`); in those lanes the new direction *is*
/// the right-presence bit (right present ⇒ `Right`, else the single edge
/// is left ⇒ `Left`), everywhere else the direction is kept.
impl<W: LaneWord> BatchAlgorithm<W> for Pef2 {
    type BatchState = ();

    fn initial_batch_state(&self) {}

    fn compute_word(&self, _state: &mut (), view: &ViewWords<W>) -> W {
        let retarget = !view.others & (view.edge_left ^ view.edge_right);
        (view.dir & !retarget) | (view.edge_right & retarget)
    }

    fn compute_word_masked(&self, state: &mut (), view: &ViewWords<W>, act: W) -> W {
        let d = self.compute_word(state, view);
        (act & d) | (!act & view.dir)
    }

    fn lane_state(&self, _state: &(), lane: u32) {
        assert!(
            (lane as usize) < W::LANES,
            "lanes are 0..{}, got {lane}",
            W::LANES
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isolated_with_single_edge_points_to_it() {
        let alg = Pef2::new();
        let mut s = ();
        let d = alg.compute(&mut s, &View::new(LocalDir::Left, false, true, false));
        assert_eq!(d, LocalDir::Right);
        let d = alg.compute(&mut s, &View::new(LocalDir::Right, true, false, false));
        assert_eq!(d, LocalDir::Left);
    }

    #[test]
    fn keeps_direction_with_both_edges() {
        let alg = Pef2::new();
        let mut s = ();
        let d = alg.compute(&mut s, &View::new(LocalDir::Left, true, true, false));
        assert_eq!(d, LocalDir::Left);
    }

    #[test]
    fn keeps_direction_with_no_edge() {
        let alg = Pef2::new();
        let mut s = ();
        let d = alg.compute(&mut s, &View::new(LocalDir::Right, false, false, false));
        assert_eq!(d, LocalDir::Right);
    }

    #[test]
    fn keeps_direction_in_a_tower_even_with_single_edge() {
        let alg = Pef2::new();
        let mut s = ();
        let d = alg.compute(&mut s, &View::new(LocalDir::Left, false, true, true));
        assert_eq!(d, LocalDir::Left);
    }
}
