//! Lane-vs-serial equivalence of the lockstep engine at every arity,
//! across the whole algorithm portfolio.
//!
//! The contract: lane `l` of a [`BatchSimulator`] driven by
//! [`BernoulliReplicas`] (or, at the wide arities, a
//! [`BernoulliReplicaBank`]) is **bit-for-bit** the serial [`Simulator`]
//! run against the lane's derived scalar schedule
//! ([`BernoulliReplicas::lane`] / [`BernoulliReplicaBank::lane`]) —
//! positions, directions, moved flags, algorithm states and first-cover
//! rounds. The same holds for [`UniformBatch`] against the shared
//! schedule played serially, and under SSYNC activation policies
//! installed on both engines.

use proptest::prelude::*;

use dynring_core::baselines::{
    AlternateDirection, AlwaysTurnOnTower, BounceOnMissingEdge, KeepDirection, RandomDirection,
};
use dynring_core::{Pef1, Pef2, Pef3Plus};
use dynring_engine::{
    BatchAlgorithm, BatchCoverage, BatchSimulator, Chirality, LaneWord, Lanes128, Lanes256,
    Oblivious, PerLane, RobotId, RobotPlacement, RoundRobinSingle, Simulator, UniformBatch, LANES,
};
use dynring_graph::{BernoulliReplicaBank, BernoulliReplicas, EdgeSchedule, NodeId, RingTopology, Time};

fn spread(n: usize, k: usize) -> Vec<RobotPlacement> {
    (0..k)
        .map(|i| {
            let chirality = if i % 2 == 0 {
                Chirality::Standard
            } else {
                Chirality::Mirrored
            };
            RobotPlacement::at(NodeId::new(i * n / k)).with_chirality(chirality)
        })
        .collect()
}

/// Serial visit ledger mirroring [`BatchCoverage`]'s first-cover rule.
struct SerialCover {
    seen: Vec<bool>,
    missing: usize,
    first_cover: Option<Time>,
}

impl SerialCover {
    fn new(n: usize) -> Self {
        SerialCover {
            seen: vec![false; n],
            missing: n,
            first_cover: None,
        }
    }

    fn note(&mut self, positions: &[NodeId], t: Time) {
        for p in positions {
            if !self.seen[p.index()] {
                self.seen[p.index()] = true;
                self.missing -= 1;
                if self.missing == 0 && self.first_cover.is_none() {
                    self.first_cover = Some(t);
                }
            }
        }
    }
}

/// Runs one `(algorithm, n, k, p, seed)` configuration `horizon` rounds
/// and checks every compared lane against its serial twin each round.
fn check_bernoulli_equivalence<A>(
    algorithm: A,
    n: usize,
    k: usize,
    p: f64,
    seed: u64,
    horizon: u64,
    lanes: &[u32],
) -> Result<(), TestCaseError>
where
    A: BatchAlgorithm + Clone,
{
    let ring = RingTopology::new(n).expect("valid ring");
    let replicas = BernoulliReplicas::new(ring.clone(), p, seed).expect("valid p");
    let placements = spread(n, k);
    let mut batch = BatchSimulator::new(
        ring.clone(),
        algorithm.clone(),
        replicas.clone(),
        placements.clone(),
    )
    .expect("valid setup");
    let mut coverage = BatchCoverage::new(&batch);
    let mut serials: Vec<_> = lanes
        .iter()
        .map(|&lane| {
            Simulator::new(
                ring.clone(),
                algorithm.clone(),
                Oblivious::new(replicas.lane(lane)),
                placements.clone(),
            )
            .expect("valid setup")
        })
        .collect();
    let mut serial_covers: Vec<SerialCover> = lanes.iter().map(|_| SerialCover::new(n)).collect();
    for (cover, serial) in serial_covers.iter_mut().zip(&serials) {
        cover.note(&serial.positions(), 0);
    }
    for t in 1..=horizon {
        batch.step();
        coverage.observe(&batch);
        for ((&lane, serial), cover) in
            lanes.iter().zip(serials.iter_mut()).zip(serial_covers.iter_mut())
        {
            serial.step_quiet();
            cover.note(&serial.positions(), t);
            prop_assert_eq!(
                batch.positions_of(lane),
                serial.positions(),
                "{} n={} k={} p={} t={} lane {}: positions",
                algorithm.name(),
                n,
                k,
                p,
                t,
                lane
            );
            let reference = serial.snapshots();
            let snaps = batch.lane_snapshots(lane);
            prop_assert_eq!(
                snaps,
                reference,
                "{} n={} k={} p={} t={} lane {}: snapshots (dirs / moved flags)",
                algorithm.name(),
                n,
                k,
                p,
                t,
                lane
            );
            for robot in 0..k {
                prop_assert_eq!(
                    &batch.lane_state(RobotId::new(robot), lane),
                    serial.state_of(RobotId::new(robot)),
                    "{} n={} k={} p={} t={} lane {} robot {}: state",
                    algorithm.name(),
                    n,
                    k,
                    p,
                    t,
                    lane,
                    robot
                );
            }
        }
    }
    for (&lane, cover) in lanes.iter().zip(&serial_covers) {
        prop_assert_eq!(
            coverage.first_cover(lane),
            cover.first_cover,
            "{} n={} k={} p={}: first cover of lane {}",
            algorithm.name(),
            n,
            k,
            p,
            lane
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// PEF_3+ (the circuit with bit-sliced state): every lane matches its
    /// derived serial run, including cover rounds.
    #[test]
    fn pef3_circuit_lanes_match_serial(
        n in 5usize..12,
        k in 3usize..5,
        seed in any::<u64>(),
        p_idx in 0usize..3,
    ) {
        let p = [0.3, 0.5, 0.8][p_idx];
        prop_assume!(k < n);
        check_bernoulli_equivalence(Pef3Plus::new(), n, k, p, seed, 80, &[0, 1, 31, 63])?;
    }

    /// PEF_2 on its 3-ring domain.
    #[test]
    fn pef2_circuit_lanes_match_serial(seed in any::<u64>()) {
        check_bernoulli_equivalence(Pef2::new(), 3, 2, 0.5, seed, 80, &[0, 7, 63])?;
    }

    /// PEF_1 on the 2-node multigraph ring.
    #[test]
    fn pef1_circuit_lanes_match_serial(seed in any::<u64>()) {
        check_bernoulli_equivalence(Pef1::new(), 2, 1, 0.4, seed, 80, &[0, 33, 63])?;
    }

    /// Every baseline circuit, same contract.
    #[test]
    fn baseline_circuit_lanes_match_serial(
        n in 5usize..10,
        seed in any::<u64>(),
    ) {
        check_bernoulli_equivalence(KeepDirection, n, 3, 0.5, seed, 60, &[0, 63])?;
        check_bernoulli_equivalence(BounceOnMissingEdge, n, 3, 0.4, seed, 60, &[0, 63])?;
        check_bernoulli_equivalence(AlwaysTurnOnTower, n, 3, 0.6, seed, 60, &[0, 63])?;
        check_bernoulli_equivalence(AlternateDirection, n, 3, 0.5, seed, 60, &[0, 63])?;
        check_bernoulli_equivalence(RandomDirection::new(seed), n, 3, 0.5, seed, 60, &[0, 63])?;
    }

    /// The scalar fallback wrapper is held to the same contract as the
    /// circuits — `PerLane(Pef3Plus)` must equal both the serial run and
    /// (transitively) the circuit implementation.
    #[test]
    fn per_lane_fallback_lanes_match_serial(
        n in 5usize..10,
        seed in any::<u64>(),
    ) {
        check_bernoulli_equivalence(PerLane(Pef3Plus::new()), n, 3, 0.5, seed, 60, &[0, 42])?;
    }

    /// The demand-driven sparse snapshot fill is held to the very same
    /// lane-vs-serial contract: forced on (the auto threshold would pick
    /// the full fill at these sizes), every lane still reproduces its
    /// derived serial schedule bit for bit — positions, snapshots and
    /// states.
    #[test]
    fn sparse_fill_lanes_match_serial(
        n in 5usize..14,
        k in 1usize..4,
        seed in any::<u64>(),
        p_idx in 0usize..3,
    ) {
        let p = [0.3, 0.5, 0.8][p_idx];
        prop_assume!(k < n);
        let ring = RingTopology::new(n).expect("valid ring");
        let replicas = BernoulliReplicas::new(ring.clone(), p, seed).expect("valid p");
        let placements = spread(n, k);
        let mut batch = BatchSimulator::new(
            ring.clone(),
            Pef3Plus::new(),
            replicas.clone(),
            placements.clone(),
        )
        .expect("valid setup");
        batch.set_sparse_fill(true);
        let lanes = [0u32, 17, 63];
        let mut serials: Vec<_> = lanes
            .iter()
            .map(|&lane| {
                Simulator::new(
                    ring.clone(),
                    Pef3Plus::new(),
                    Oblivious::new(replicas.lane(lane)),
                    placements.clone(),
                )
                .expect("valid setup")
            })
            .collect();
        for t in 1..=60u64 {
            batch.step();
            for (&lane, serial) in lanes.iter().zip(serials.iter_mut()) {
                serial.step_quiet();
                prop_assert_eq!(
                    batch.lane_snapshots(lane),
                    serial.snapshots(),
                    "sparse fill: n={} k={} p={} t={} lane {}",
                    n, k, p, t, lane
                );
            }
        }
    }
}

/// The wide-arity form of [`check_bernoulli_equivalence`]: a
/// [`BernoulliReplicaBank`] drives a `W`-lane batch, and every compared
/// lane must match the serial run of that lane's derived scalar schedule
/// — optionally with [`RoundRobinSingle`] SSYNC activation installed on
/// both engines.
fn check_bank_equivalence<A, W>(
    algorithm: A,
    n: usize,
    k: usize,
    p: f64,
    seed: u64,
    horizon: u64,
    ssync: bool,
) -> Result<(), TestCaseError>
where
    A: BatchAlgorithm<W> + Clone,
    W: LaneWord,
{
    let ring = RingTopology::new(n).expect("valid ring");
    let seeds: Vec<u64> = (0..W::WORDS as u64).map(|w| seed.wrapping_add(w)).collect();
    let bank = BernoulliReplicaBank::new(ring.clone(), p, &seeds).expect("valid p");
    let placements = spread(n, k);
    let mut batch = BatchSimulator::<_, _, W>::new(
        ring.clone(),
        algorithm.clone(),
        bank.clone(),
        placements.clone(),
    )
    .expect("valid setup");
    if ssync {
        batch.set_activation(RoundRobinSingle);
    }
    // Plane boundaries plus an interior lane per plane.
    let lanes: Vec<u32> = (0..W::WORDS as u32)
        .flat_map(|w| [w * 64, w * 64 + 29, w * 64 + 63])
        .collect();
    let mut serials: Vec<_> = lanes
        .iter()
        .map(|&lane| {
            let mut sim = Simulator::new(
                ring.clone(),
                algorithm.clone(),
                Oblivious::new(bank.lane(lane)),
                placements.clone(),
            )
            .expect("valid setup");
            if ssync {
                sim.set_activation(RoundRobinSingle);
            }
            sim
        })
        .collect();
    for t in 1..=horizon {
        batch.step();
        for (&lane, serial) in lanes.iter().zip(serials.iter_mut()) {
            serial.step_quiet();
            prop_assert_eq!(
                batch.lane_snapshots(lane),
                serial.snapshots(),
                "{} ({} lanes{}) n={} k={} p={} t={} lane {}: snapshots",
                algorithm.name(),
                W::LANES,
                if ssync { ", ssync" } else { "" },
                n,
                k,
                p,
                t,
                lane
            );
            for robot in 0..k {
                prop_assert_eq!(
                    &batch.lane_state(RobotId::new(robot), lane),
                    serial.state_of(RobotId::new(robot)),
                    "{} ({} lanes{}) n={} k={} p={} t={} lane {} robot {}: state",
                    algorithm.name(),
                    W::LANES,
                    if ssync { ", ssync" } else { "" },
                    n,
                    k,
                    p,
                    t,
                    lane,
                    robot
                );
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The arity generalization of the core contract: at 64, 128 and 256
    /// lanes, every lane of a bank-driven batch matches its derived
    /// serial run — native circuit (bit-sliced state) and scalar
    /// fallback alike.
    #[test]
    fn wide_circuit_lanes_match_serial(
        n in 5usize..10,
        k in 3usize..5,
        seed in any::<u64>(),
    ) {
        prop_assume!(k < n);
        check_bank_equivalence::<_, u64>(Pef3Plus::new(), n, k, 0.5, seed, 50, false)?;
        check_bank_equivalence::<_, Lanes128>(Pef3Plus::new(), n, k, 0.5, seed, 50, false)?;
        check_bank_equivalence::<_, Lanes256>(Pef3Plus::new(), n, k, 0.5, seed, 50, false)?;
        check_bank_equivalence::<_, Lanes256>(BounceOnMissingEdge, n, k, 0.4, seed, 50, false)?;
        check_bank_equivalence::<_, Lanes128>(PerLane(Pef3Plus::new()), n, k, 0.5, seed, 40, false)?;
    }

    /// The SSYNC widening: under `RoundRobinSingle` activation words the
    /// batch engine still reproduces every lane's serial SSYNC run — at
    /// every arity, for stateful circuits and the fallback.
    #[test]
    fn ssync_batch_lanes_match_serial(
        n in 5usize..10,
        k in 3usize..5,
        seed in any::<u64>(),
    ) {
        prop_assume!(k < n);
        check_bank_equivalence::<_, u64>(Pef3Plus::new(), n, k, 0.5, seed, 60, true)?;
        check_bank_equivalence::<_, Lanes128>(Pef3Plus::new(), n, k, 0.5, seed, 60, true)?;
        check_bank_equivalence::<_, Lanes256>(Pef3Plus::new(), n, k, 0.5, seed, 60, true)?;
        check_bank_equivalence::<_, Lanes256>(AlwaysTurnOnTower, n, k, 0.6, seed, 60, true)?;
        check_bank_equivalence::<_, u64>(PerLane(Pef3Plus::new()), n, k, 0.5, seed, 40, true)?;
    }
}

#[test]
fn circuit_and_fallback_agree_lane_for_lane() {
    // The two BatchAlgorithm implementations of PEF_3+ (native circuit vs
    // PerLane scalar loop) must drive identical batch executions.
    let ring = RingTopology::new(9).expect("valid ring");
    let replicas = BernoulliReplicas::new(ring.clone(), 0.45, 0xC0C0A).expect("valid p");
    let placements = spread(9, 3);
    let mut circuit = BatchSimulator::new(
        ring.clone(),
        Pef3Plus::new(),
        replicas.clone(),
        placements.clone(),
    )
    .expect("valid setup");
    let mut fallback =
        BatchSimulator::new(ring, PerLane(Pef3Plus::new()), replicas, placements)
            .expect("valid setup");
    for t in 0..200 {
        circuit.step();
        fallback.step();
        for lane in 0..LANES as u32 {
            assert_eq!(
                circuit.lane_snapshots(lane),
                fallback.lane_snapshots(lane),
                "t={t} lane {lane}"
            );
        }
    }
}

#[test]
fn uniform_batch_plays_the_shared_schedule_in_every_lane() {
    // Deterministic dynamics: all 64 lanes equal one serial run over the
    // same schedule, for a stateful circuit algorithm.
    use dynring_graph::AbsenceIntervals;
    let ring = RingTopology::new(8).expect("valid ring");
    let mut schedule = AbsenceIntervals::new(ring.clone());
    schedule.remove_during(dynring_graph::EdgeId::new(2), 3, 9);
    schedule.remove_from(dynring_graph::EdgeId::new(6), 15);
    let placements = spread(8, 3);
    let mut batch = BatchSimulator::<_, _, u64>::new(
        ring.clone(),
        Pef3Plus::new(),
        UniformBatch::new(schedule.clone()),
        placements.clone(),
    )
    .expect("valid setup");
    let mut serial = Simulator::new(
        ring,
        Pef3Plus::new(),
        Oblivious::new(schedule),
        placements,
    )
    .expect("valid setup");
    for t in 0..120 {
        batch.step();
        serial.step_quiet();
        for lane in [0u32, 21, 63] {
            assert_eq!(batch.lane_snapshots(lane), serial.snapshots(), "t={t} lane {lane}");
        }
    }
}

#[test]
fn uniform_batch_schedule_accessor_exposes_the_inner_schedule() {
    let ring = RingTopology::new(4).expect("valid ring");
    let uniform = UniformBatch::new(dynring_graph::AlwaysPresent::new(ring));
    assert_eq!(uniform.schedule().ring().node_count(), 4);
}
