//! Exhaustive decision tables: every algorithm's Compute rule is checked
//! against the paper's prose for *all* 2⁴ view combinations (direction ×
//! left edge × right edge × multiplicity) and both values of persistent
//! state where applicable — and every `compute_word` boolean circuit is
//! checked against the scalar rule over the same exhaustive table.

use dynring_core::baselines::{
    AlternateDirection, AlwaysTurnOnTower, BounceOnMissingEdge, KeepDirection, RandomDirection,
};
use dynring_core::{Pef1, Pef2, Pef3Plus, Pef3State};
use dynring_engine::{Algorithm, BatchAlgorithm, LocalDir, View, ViewWords};

fn all_views() -> Vec<View> {
    let mut views = Vec::new();
    for dir in LocalDir::ALL {
        for left in [false, true] {
            for right in [false, true] {
                for others in [false, true] {
                    views.push(View::new(dir, left, right, others));
                }
            }
        }
    }
    views
}

#[test]
fn pef3_decision_table_matches_algorithm_1() {
    let alg = Pef3Plus::new();
    for view in all_views() {
        for has_moved in [false, true] {
            let mut state = Pef3State {
                has_moved_previous_step: has_moved,
            };
            let out = alg.compute(&mut state, &view);
            // Line 1–3: flip iff moved last step AND other robots present.
            let expected_dir = if has_moved && view.other_robots_on_current_node() {
                view.dir().opposite()
            } else {
                view.dir()
            };
            assert_eq!(out, expected_dir, "view {view}, has_moved {has_moved}");
            // Line 4: HasMoved ← ExistsEdge(new dir).
            assert_eq!(
                state.has_moved_previous_step,
                view.exists_edge(expected_dir),
                "view {view}, has_moved {has_moved}"
            );
        }
    }
}

#[test]
fn pef2_decision_table_matches_section_4_2() {
    let alg = Pef2::new();
    for view in all_views() {
        let mut state = ();
        let out = alg.compute(&mut state, &view);
        // "If isolated on a node with only one adjacent edge, point to it;
        // otherwise keep the current direction."
        let expected = if view.is_isolated() {
            match (view.exists_edge(LocalDir::Left), view.exists_edge(LocalDir::Right)) {
                (true, false) => LocalDir::Left,
                (false, true) => LocalDir::Right,
                _ => view.dir(),
            }
        } else {
            view.dir()
        };
        assert_eq!(out, expected, "view {view}");
    }
}

#[test]
fn pef1_decision_table_matches_section_5_2() {
    let alg = Pef1::new();
    for view in all_views() {
        let mut state = ();
        let out = alg.compute(&mut state, &view);
        // "As soon as at least one adjacent edge is present, dir points to
        // one of these edges" — deterministically: prefer the current one.
        if view.exists_edge_ahead() {
            assert_eq!(out, view.dir(), "view {view}");
        } else if view.exists_edge_behind() {
            assert_eq!(out, view.dir().opposite(), "view {view}");
        } else {
            assert_eq!(out, view.dir(), "view {view}");
        }
        // Whenever an edge is present, the output points at a present edge.
        if view.present_edge_count() > 0 {
            assert!(view.exists_edge(out), "view {view} must point at a present edge");
        }
    }
}

#[test]
fn baseline_decision_tables() {
    for view in all_views() {
        let mut unit = ();
        assert_eq!(KeepDirection.compute(&mut unit, &view), view.dir());
        assert_eq!(
            AlternateDirection.compute(&mut unit, &view),
            view.dir().opposite()
        );
        let bounce = BounceOnMissingEdge.compute(&mut unit, &view);
        assert_eq!(
            bounce,
            if view.exists_edge_ahead() {
                view.dir()
            } else {
                view.dir().opposite()
            }
        );
        let turner = AlwaysTurnOnTower.compute(&mut unit, &view);
        assert_eq!(
            turner,
            if view.other_robots_on_current_node() {
                view.dir().opposite()
            } else {
                view.dir()
            }
        );
    }
}

#[test]
fn pef3_state_machine_round_trip() {
    // A short scripted life of one PEF_3+ robot, transition by transition:
    // move, get joined while parked (sentinel), bounce as explorer.
    let alg = Pef3Plus::new();
    let mut state = alg.initial_state();

    // Round 0: isolated, both edges present → walks its way, HasMoved set.
    let d = alg.compute(&mut state, &View::new(LocalDir::Left, true, true, false));
    assert_eq!(d, LocalDir::Left);
    assert!(state.has_moved_previous_step);

    // Round 1: moved onto another robot → Rule 3 flips; the flipped edge is
    // present, so it will move again.
    let d = alg.compute(&mut state, &View::new(LocalDir::Left, true, true, true));
    assert_eq!(d, LocalDir::Right);
    assert!(state.has_moved_previous_step);

    // Round 2: moved away, isolated again, pointed edge missing → keeps
    // direction, HasMoved drops.
    let d = alg.compute(&mut state, &View::new(LocalDir::Right, true, false, false));
    assert_eq!(d, LocalDir::Right);
    assert!(!state.has_moved_previous_step);

    // Round 3: still parked, joined by an explorer → Rule 2: keeps pointing
    // (it is now the sentinel).
    let d = alg.compute(&mut state, &View::new(LocalDir::Right, true, false, true));
    assert_eq!(d, LocalDir::Right);
    assert!(!state.has_moved_previous_step);
}

/// All 16 view combinations packed into the low 16 lanes of one
/// `ViewWords` (higher lanes repeat the last combination).
fn all_view_words() -> (Vec<View>, ViewWords) {
    let views = all_views();
    let words = ViewWords::from_lanes(&views);
    (views, words)
}

/// Checks one stateless circuit against its scalar rule, lane by lane,
/// over the exhaustive view table.
fn check_stateless_circuit<A>(alg: A)
where
    A: BatchAlgorithm<State = (), BatchState = ()>,
{
    let (views, words) = all_view_words();
    let dir_word = alg.compute_word(&mut (), &words);
    for (lane, view) in views.iter().enumerate() {
        let expected = alg.compute(&mut (), view);
        assert_eq!(
            ViewWords::dir_from_bit((dir_word >> lane) & 1 == 1),
            expected,
            "{}: lane {lane} view {view}",
            alg.name()
        );
    }
}

#[test]
fn pef1_circuit_matches_scalar_over_all_views() {
    check_stateless_circuit(Pef1::new());
}

#[test]
fn pef2_circuit_matches_scalar_over_all_views() {
    check_stateless_circuit(Pef2::new());
}

#[test]
fn pef3_circuit_matches_scalar_over_all_views_and_states() {
    // 16 view combinations × both values of HasMovedPreviousStep: the
    // word circuit must reproduce the scalar rule's direction *and* state
    // update in every lane.
    let alg = Pef3Plus::new();
    let (views, words) = all_view_words();
    for has_moved in [false, true] {
        let mut word_state: u64 = if has_moved { u64::MAX } else { 0 };
        let dir_word = alg.compute_word(&mut word_state, &words);
        for (lane, view) in views.iter().enumerate() {
            let mut scalar_state = Pef3State {
                has_moved_previous_step: has_moved,
            };
            let expected = alg.compute(&mut scalar_state, view);
            assert_eq!(
                ViewWords::dir_from_bit((dir_word >> lane) & 1 == 1),
                expected,
                "lane {lane} view {view} has_moved {has_moved}"
            );
            assert_eq!(
                alg.lane_state(&word_state, lane as u32),
                scalar_state,
                "lane {lane} view {view} has_moved {has_moved} (state update)"
            );
        }
    }
    // Mixed per-lane states: alternate lanes moved/not-moved.
    let mut word_state = 0xAAAA_AAAA_AAAA_AAAAu64;
    let before = word_state;
    let dir_word = alg.compute_word(&mut word_state, &words);
    for (lane, view) in views.iter().enumerate() {
        let mut scalar_state = Pef3State {
            has_moved_previous_step: (before >> lane) & 1 == 1,
        };
        let expected = alg.compute(&mut scalar_state, view);
        assert_eq!(
            ViewWords::dir_from_bit((dir_word >> lane) & 1 == 1),
            expected,
            "mixed lane {lane} view {view}"
        );
        assert_eq!(alg.lane_state(&word_state, lane as u32), scalar_state);
    }
}

#[test]
fn baseline_circuits_match_scalar_over_all_views() {
    check_stateless_circuit(KeepDirection);
    check_stateless_circuit(BounceOnMissingEdge);
    check_stateless_circuit(AlwaysTurnOnTower);
    check_stateless_circuit(AlternateDirection);
}

#[test]
fn random_direction_batch_broadcasts_the_scalar_stream() {
    let alg = RandomDirection::new(0xD1CE);
    let (_views, words) = all_view_words();
    let mut word_state = BatchAlgorithm::<u64>::initial_batch_state(&alg);
    let mut scalar_state = alg.initial_state();
    for round in 0..32 {
        let dir_word = alg.compute_word(&mut word_state, &words);
        let expected = alg.compute(&mut scalar_state, &View::new(LocalDir::Left, true, true, false));
        // The stream ignores the view, so every lane gets the scalar
        // stream's direction and the shared counter stays in lockstep.
        assert!(
            dir_word == 0 || dir_word == u64::MAX,
            "round {round}: broadcast word {dir_word:#x}"
        );
        assert_eq!(
            ViewWords::dir_from_bit(dir_word & 1 == 1),
            expected,
            "round {round}"
        );
        assert_eq!(
            BatchAlgorithm::<u64>::lane_state(&alg, &word_state, 17),
            scalar_state,
            "round {round}"
        );
    }
}

#[test]
fn algorithm_names_are_stable() {
    assert_eq!(Pef3Plus::new().name(), "PEF_3+");
    assert_eq!(Pef2::new().name(), "PEF_2");
    assert_eq!(Pef1::new().name(), "PEF_1");
    assert_eq!(KeepDirection.name(), "keep-direction");
    assert_eq!(BounceOnMissingEdge.name(), "bounce-on-missing");
}
