//! Exhaustive decision tables: every algorithm's Compute rule is checked
//! against the paper's prose for *all* 2⁴ view combinations (direction ×
//! left edge × right edge × multiplicity) and both values of persistent
//! state where applicable.

use dynring_core::baselines::{
    AlternateDirection, AlwaysTurnOnTower, BounceOnMissingEdge, KeepDirection,
};
use dynring_core::{Pef1, Pef2, Pef3Plus, Pef3State};
use dynring_engine::{Algorithm, LocalDir, View};

fn all_views() -> Vec<View> {
    let mut views = Vec::new();
    for dir in LocalDir::ALL {
        for left in [false, true] {
            for right in [false, true] {
                for others in [false, true] {
                    views.push(View::new(dir, left, right, others));
                }
            }
        }
    }
    views
}

#[test]
fn pef3_decision_table_matches_algorithm_1() {
    let alg = Pef3Plus::new();
    for view in all_views() {
        for has_moved in [false, true] {
            let mut state = Pef3State {
                has_moved_previous_step: has_moved,
            };
            let out = alg.compute(&mut state, &view);
            // Line 1–3: flip iff moved last step AND other robots present.
            let expected_dir = if has_moved && view.other_robots_on_current_node() {
                view.dir().opposite()
            } else {
                view.dir()
            };
            assert_eq!(out, expected_dir, "view {view}, has_moved {has_moved}");
            // Line 4: HasMoved ← ExistsEdge(new dir).
            assert_eq!(
                state.has_moved_previous_step,
                view.exists_edge(expected_dir),
                "view {view}, has_moved {has_moved}"
            );
        }
    }
}

#[test]
fn pef2_decision_table_matches_section_4_2() {
    let alg = Pef2::new();
    for view in all_views() {
        let mut state = ();
        let out = alg.compute(&mut state, &view);
        // "If isolated on a node with only one adjacent edge, point to it;
        // otherwise keep the current direction."
        let expected = if view.is_isolated() {
            match (view.exists_edge(LocalDir::Left), view.exists_edge(LocalDir::Right)) {
                (true, false) => LocalDir::Left,
                (false, true) => LocalDir::Right,
                _ => view.dir(),
            }
        } else {
            view.dir()
        };
        assert_eq!(out, expected, "view {view}");
    }
}

#[test]
fn pef1_decision_table_matches_section_5_2() {
    let alg = Pef1::new();
    for view in all_views() {
        let mut state = ();
        let out = alg.compute(&mut state, &view);
        // "As soon as at least one adjacent edge is present, dir points to
        // one of these edges" — deterministically: prefer the current one.
        if view.exists_edge_ahead() {
            assert_eq!(out, view.dir(), "view {view}");
        } else if view.exists_edge_behind() {
            assert_eq!(out, view.dir().opposite(), "view {view}");
        } else {
            assert_eq!(out, view.dir(), "view {view}");
        }
        // Whenever an edge is present, the output points at a present edge.
        if view.present_edge_count() > 0 {
            assert!(view.exists_edge(out), "view {view} must point at a present edge");
        }
    }
}

#[test]
fn baseline_decision_tables() {
    for view in all_views() {
        let mut unit = ();
        assert_eq!(KeepDirection.compute(&mut unit, &view), view.dir());
        assert_eq!(
            AlternateDirection.compute(&mut unit, &view),
            view.dir().opposite()
        );
        let bounce = BounceOnMissingEdge.compute(&mut unit, &view);
        assert_eq!(
            bounce,
            if view.exists_edge_ahead() {
                view.dir()
            } else {
                view.dir().opposite()
            }
        );
        let turner = AlwaysTurnOnTower.compute(&mut unit, &view);
        assert_eq!(
            turner,
            if view.other_robots_on_current_node() {
                view.dir().opposite()
            } else {
                view.dir()
            }
        );
    }
}

#[test]
fn pef3_state_machine_round_trip() {
    // A short scripted life of one PEF_3+ robot, transition by transition:
    // move, get joined while parked (sentinel), bounce as explorer.
    let alg = Pef3Plus::new();
    let mut state = alg.initial_state();

    // Round 0: isolated, both edges present → walks its way, HasMoved set.
    let d = alg.compute(&mut state, &View::new(LocalDir::Left, true, true, false));
    assert_eq!(d, LocalDir::Left);
    assert!(state.has_moved_previous_step);

    // Round 1: moved onto another robot → Rule 3 flips; the flipped edge is
    // present, so it will move again.
    let d = alg.compute(&mut state, &View::new(LocalDir::Left, true, true, true));
    assert_eq!(d, LocalDir::Right);
    assert!(state.has_moved_previous_step);

    // Round 2: moved away, isolated again, pointed edge missing → keeps
    // direction, HasMoved drops.
    let d = alg.compute(&mut state, &View::new(LocalDir::Right, true, false, false));
    assert_eq!(d, LocalDir::Right);
    assert!(!state.has_moved_previous_step);

    // Round 3: still parked, joined by an explorer → Rule 2: keeps pointing
    // (it is now the sentinel).
    let d = alg.compute(&mut state, &View::new(LocalDir::Right, true, false, true));
    assert_eq!(d, LocalDir::Right);
    assert!(!state.has_moved_previous_step);
}

#[test]
fn algorithm_names_are_stable() {
    assert_eq!(Pef3Plus::new().name(), "PEF_3+");
    assert_eq!(Pef2::new().name(), "PEF_2");
    assert_eq!(Pef1::new().name(), "PEF_1");
    assert_eq!(KeepDirection.name(), "keep-direction");
    assert_eq!(BounceOnMissingEdge.name(), "bounce-on-missing");
}
