//! Robot identity (for the observer), placement and snapshots.

use std::fmt;

use serde::{Deserialize, Serialize};

use dynring_graph::{GlobalDir, NodeId};

use crate::{Chirality, LocalDir};

/// An observer-side robot identifier.
///
/// Robots themselves are anonymous — identifiers never reach an
/// [`crate::Algorithm`]; they exist so traces, adversaries and checkers can
/// talk about "robot `r1`".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct RobotId(u32);

impl RobotId {
    /// Creates a robot identifier from its index.
    pub fn new(index: usize) -> Self {
        RobotId(u32::try_from(index).expect("robot index exceeds u32"))
    }

    /// Returns the index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RobotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Initial conditions of one robot.
///
/// The paper's default initialization is `dir = left`; chirality is an
/// arbitrary per-robot constant (robots share no common sense of
/// direction), so experiments may assign it freely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RobotPlacement {
    /// Starting node.
    pub node: NodeId,
    /// The robot's fixed chirality.
    pub chirality: Chirality,
    /// Initial direction variable (the paper uses `left`).
    pub initial_dir: LocalDir,
}

impl RobotPlacement {
    /// Places a robot at `node` with standard chirality and the paper's
    /// initial direction (`left`).
    pub fn at(node: NodeId) -> Self {
        RobotPlacement {
            node,
            chirality: Chirality::Standard,
            initial_dir: LocalDir::Left,
        }
    }

    /// Returns the placement with the given chirality.
    pub fn with_chirality(mut self, chirality: Chirality) -> Self {
        self.chirality = chirality;
        self
    }

    /// Returns the placement with the given initial direction.
    pub fn with_dir(mut self, dir: LocalDir) -> Self {
        self.initial_dir = dir;
        self
    }

    /// The initial *global* direction this placement points to.
    pub fn initial_global_dir(&self) -> GlobalDir {
        self.chirality.to_global(self.initial_dir)
    }
}

/// Observer-side snapshot of one robot inside a configuration `γ_t`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RobotSnapshot {
    /// Which robot.
    pub id: RobotId,
    /// Current node.
    pub node: NodeId,
    /// The robot's fixed chirality.
    pub chirality: Chirality,
    /// Current direction variable (local frame).
    pub dir: LocalDir,
    /// Whether the robot moved during the previous round.
    pub moved_last_round: bool,
}

impl RobotSnapshot {
    /// The global direction the robot currently points to.
    pub fn global_dir(&self) -> GlobalDir {
        self.chirality.to_global(self.dir)
    }
}

impl fmt::Display for RobotSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}@{}→{}",
            self.id,
            self.node,
            self.global_dir()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_builder() {
        let p = RobotPlacement::at(NodeId::new(2))
            .with_chirality(Chirality::Mirrored)
            .with_dir(LocalDir::Right);
        assert_eq!(p.node, NodeId::new(2));
        assert_eq!(p.chirality, Chirality::Mirrored);
        assert_eq!(p.initial_dir, LocalDir::Right);
        assert_eq!(p.initial_global_dir(), GlobalDir::CounterClockwise);
    }

    #[test]
    fn default_placement_matches_paper() {
        let p = RobotPlacement::at(NodeId::new(0));
        assert_eq!(p.initial_dir, LocalDir::Left);
        // Standard chirality: left = counter-clockwise.
        assert_eq!(p.initial_global_dir(), GlobalDir::CounterClockwise);
    }

    #[test]
    fn snapshot_global_dir() {
        let snap = RobotSnapshot {
            id: RobotId::new(1),
            node: NodeId::new(3),
            chirality: Chirality::Mirrored,
            dir: LocalDir::Left,
            moved_last_round: false,
        };
        assert_eq!(snap.global_dir(), GlobalDir::Clockwise);
        assert_eq!(snap.to_string(), "r1@v3→cw");
    }

    #[test]
    fn robot_id_display() {
        assert_eq!(RobotId::new(4).to_string(), "r4");
        assert_eq!(RobotId::new(4).index(), 4);
    }
}
