//! The bit-sliced lockstep engine, generic over lane arity.
//!
//! Monte Carlo workloads (cover-time distributions, survival rates over
//! thousands of Bernoulli seeds) run the *same scenario* under many
//! independent stochastic schedules. [`BatchSimulator`] executes
//! `W::LANES` such replicas in lockstep, one bit **lane** per replica,
//! where `W` is a [`LaneWord`] — `u64` (the original 64-lane engine, and
//! the default), `Lanes128` or `Lanes256`:
//!
//! - the four observable bits of each robot's [`crate::View`] (left edge,
//!   right edge, other robots, direction) are stored structure-of-arrays
//!   as one lane word per robot ([`crate::ViewWords`]);
//! - the Compute phase is one [`BatchAlgorithm::compute_word`] call per
//!   robot — a boolean circuit over whole words for the portfolio
//!   algorithms, a lane-by-lane scalar loop for [`crate::PerLane`];
//! - stochastic presence bits come one 64-lane **plane** at a time from
//!   [`BatchDynamics`]: lane `l` lives in plane `l / 64`, and each plane
//!   is fed by its own independent [`dynring_graph::BernoulliReplicas`]
//!   stream (bundled as a [`dynring_graph::BernoulliReplicaBank`] at wide
//!   arities), so one AND/OR slice ladder per edge feeds 64 replicas and
//!   plane `w` of a wide run is bit-for-bit the 64-lane run of seed
//!   block `w`;
//! - only positions are inherently per-lane integers; moves are applied
//!   in a short per-lane loop driven by the `moved` word, plane by plane.
//!
//! Every lane is bit-for-bit a serial [`crate::Simulator`] run against
//! the lane's derived scalar schedule
//! ([`dynring_graph::BernoulliReplicas::lane`]) — pinned by equivalence
//! proptests across the whole algorithm portfolio.
//!
//! Scheduling: FSYNC by default (the paper's model for all possibility
//! results). [`BatchSimulator::set_activation`] installs a word-parallel
//! SSYNC policy ([`crate::BatchActivation`]): each round every robot gets
//! an activation word — one bit per lane, structurally identical to the
//! presence words — and inactive lanes skip Look-Compute-Move exactly as
//! the serial engine's inactive robots do. The built-in deterministic
//! policies are lane-uniform, so a fully-inactive robot is skipped
//! outright; lane-mixed words route through
//! [`BatchAlgorithm::compute_word_masked`].

use dynring_graph::{
    BernoulliReplicaBank, BernoulliReplicas, EdgeSchedule, EdgeSet, LaneWord, NodeId,
    RingTopology, Time,
};

use crate::{
    BatchActivation, BatchAlgorithm, Chirality, EngineError, FullActivation, LocalDir, RobotId,
    RobotPlacement, RobotSnapshot, ViewWords,
};

/// Lanes per 64-bit plane; [`LaneWord`] arities are whole multiples.
pub const LANES: usize = 64;

/// The batch adversary: supplies, each round, the presence words of one
/// 64-lane **plane** at a time — bit `j` of a plane-`w` word is "present
/// in replica `64·w + j`".
///
/// Mirrors [`crate::Dynamics`] one level up: each plane is queried
/// exactly once per round, planes in increasing order, with strictly
/// increasing times across rounds. Batch dynamics are oblivious by
/// construction (the replicas diverge, so there is no single
/// configuration to adapt to); adaptive adversaries stay on the serial
/// engine.
pub trait BatchDynamics<W: LaneWord = u64> {
    /// The ring whose edges are scheduled.
    fn ring(&self) -> &RingTopology;

    /// Number of planes this dynamics can serve. The engine requires at
    /// least `W::WORDS`; the default is exactly that (right for dynamics
    /// that are uniform or derived per plane). A seeded bank with a fixed
    /// plane count overrides this with its real width.
    fn plane_count(&self) -> usize {
        W::WORDS
    }

    /// Writes one presence word per edge for plane `plane` at time `t`
    /// (`out.len()` is the ring's edge count) — the full snapshot fill.
    fn presence_plane_into(&mut self, t: Time, plane: usize, out: &mut [u64]);

    /// Whether this dynamics supports the fused demand-driven gather
    /// ([`BatchDynamics::presence_gather`]). Support is a static property
    /// of the dynamics — the engine reads it once at construction (and on
    /// [`BatchSimulator::set_sparse_fill`]) and never mid-run. The
    /// default is `false`: "full fills only".
    fn supports_sparse_gather(&self) -> bool {
        false
    }

    /// The fused demand-driven gather: for the 64 lane positions of one
    /// robot in plane `plane` (`positions[l]` is lane `plane·64 + l`'s
    /// node index), packs the presence bits of the two adjacent ring
    /// edges directly — bit `l` of the first word is the clockwise edge
    /// `e_v`, bit `l` of the second the counter-clockwise edge
    /// `e_{v-1 mod n}`. Answers must be bit-for-bit the masked reads the
    /// engine would have made against a [`BatchDynamics::presence_plane_into`]
    /// snapshot for the same `(t, plane)`, so the two strategies are
    /// interchangeable per round.
    ///
    /// On large rings this replaces an `n`-word snapshot per plane with
    /// `2·k` inline draws per plane and **no intermediate buffers at
    /// all** — the cache behaviour the wide arities live on. Dynamics
    /// with per-edge random access (the pure replica streams, point-query
    /// schedules) should answer this; the default panics, guarded by
    /// [`BatchDynamics::supports_sparse_gather`].
    fn presence_gather(&mut self, _t: Time, _plane: usize, _positions: &[u32]) -> (u64, u64) {
        unreachable!("presence_gather requires supports_sparse_gather() == true")
    }
}

impl BatchDynamics for BernoulliReplicas {
    fn ring(&self) -> &RingTopology {
        BernoulliReplicas::ring(self)
    }

    fn presence_plane_into(&mut self, t: Time, plane: usize, out: &mut [u64]) {
        debug_assert_eq!(plane, 0, "a single replica stream is one plane");
        BernoulliReplicas::presence_words_into(self, t, out);
    }

    fn supports_sparse_gather(&self) -> bool {
        true
    }

    fn presence_gather(&mut self, t: Time, plane: usize, positions: &[u32]) -> (u64, u64) {
        debug_assert_eq!(plane, 0, "a single replica stream is one plane");
        self.presence_pair_bits(t, positions)
    }
}

impl<W: LaneWord> BatchDynamics<W> for BernoulliReplicaBank {
    fn ring(&self) -> &RingTopology {
        BernoulliReplicaBank::ring(self)
    }

    fn plane_count(&self) -> usize {
        self.words()
    }

    fn presence_plane_into(&mut self, t: Time, plane: usize, out: &mut [u64]) {
        self.stream(plane).presence_words_into(t, out);
    }

    fn supports_sparse_gather(&self) -> bool {
        true
    }

    fn presence_gather(&mut self, t: Time, plane: usize, positions: &[u32]) -> (u64, u64) {
        self.stream(plane).presence_pair_bits(t, positions)
    }
}

/// Plays one pure scalar schedule identically in every lane: presence
/// words are all-ones or all-zeros per edge, the same in every plane.
///
/// Useful for deterministic dynamics (static rings, scripted outages)
/// where the replicas only differ through the algorithm's own state —
/// and as the degenerate reference in equivalence tests.
#[derive(Debug, Clone)]
pub struct UniformBatch<S> {
    schedule: S,
    frame: EdgeSet,
    /// The time `frame` holds, so multi-plane rounds pay one
    /// `edges_at_into` instead of one per plane.
    frame_time: Option<Time>,
}

impl<S: EdgeSchedule> UniformBatch<S> {
    /// Wraps a pure schedule.
    pub fn new(schedule: S) -> Self {
        let frame = EdgeSet::empty(schedule.ring().edge_count());
        UniformBatch {
            schedule,
            frame,
            frame_time: None,
        }
    }

    /// The wrapped schedule.
    pub fn schedule(&self) -> &S {
        &self.schedule
    }
}

impl<S: EdgeSchedule, W: LaneWord> BatchDynamics<W> for UniformBatch<S> {
    fn ring(&self) -> &RingTopology {
        self.schedule.ring()
    }

    fn presence_plane_into(&mut self, t: Time, _plane: usize, out: &mut [u64]) {
        if self.frame_time != Some(t) {
            self.schedule.edges_at_into(t, &mut self.frame);
            self.frame_time = Some(t);
        }
        for (e, slot) in out.iter_mut().enumerate() {
            *slot = if self.frame.contains(dynring_graph::EdgeId::new(e)) {
                u64::MAX
            } else {
                0
            };
        }
    }

    fn supports_sparse_gather(&self) -> bool {
        true
    }

    /// Pure schedules are lane-uniform, so the gather reads the cached
    /// frame bitset (one [`EdgeSchedule::edges_at_into`] per round shared
    /// across robots and planes) and broadcasts each edge's bit to the
    /// lane.
    fn presence_gather(&mut self, t: Time, _plane: usize, positions: &[u32]) -> (u64, u64) {
        if self.frame_time != Some(t) {
            self.schedule.edges_at_into(t, &mut self.frame);
            self.frame_time = Some(t);
        }
        let n = self.schedule.ring().node_count() as u32;
        let mut cw = 0u64;
        let mut ccw = 0u64;
        let mut mask = 1u64;
        for &v in positions {
            if self.frame.contains(dynring_graph::EdgeId::new(v as usize)) {
                cw |= mask;
            }
            let e = ccw_edge(v, n) as usize;
            if self.frame.contains(dynring_graph::EdgeId::new(e)) {
                ccw |= mask;
            }
            mask = mask.rotate_left(1);
        }
        (cw, ccw)
    }
}

/// `W::LANES` independent replicas of one scenario, executed in lockstep.
///
/// All replicas share the ring, the algorithm and the initial placements;
/// they differ only through the dynamics' per-lane presence bits (and the
/// divergence those induce). See the module docs for the layout and the
/// crate docs for the round semantics — each lane runs exactly the
/// paper's Look-Compute-Move round under the installed activation policy
/// (FSYNC unless [`BatchSimulator::set_activation`] says otherwise).
pub struct BatchSimulator<A: BatchAlgorithm<W>, D: BatchDynamics<W>, W: LaneWord = u64> {
    ring: RingTopology,
    algorithm: A,
    dynamics: D,
    time: Time,
    /// Per-robot fixed chirality (shared by all lanes).
    chirality: Vec<Chirality>,
    /// Robot-major positions: `positions[r * W::LANES + l]` is robot
    /// `r`'s node index in lane `l`.
    positions: Vec<u32>,
    /// Per-robot direction word (lane set ⇔ `Right`).
    dirs: Vec<W>,
    /// Per-robot moved-last-round word.
    moved: Vec<W>,
    /// Per-robot batch state.
    states: Vec<A::BatchState>,
    /// Full-fill presence snapshot of the current round, plane-major:
    /// plane `w` of edge `e` at `snap_words[w * edge_count + e]`.
    snap_words: Vec<u64>,
    /// Per-robot "other robots on my node" scratch words.
    others_words: Vec<W>,
    /// Per-lane occupancy scratch (used when the team is too large for
    /// pairwise comparison), cleared sparsely via `occ_touched`.
    occ: Vec<u8>,
    occ_touched: Vec<u32>,
    /// Whether the Look phase gathers presence on demand through
    /// [`BatchDynamics::presence_gather`] instead of filling `snap_words`
    /// — auto-set at construction from the dynamics' capability and the
    /// ring/team shape, overridable via
    /// [`BatchSimulator::set_sparse_fill`] (clamped to the capability).
    sparse_fill: bool,
    /// The SSYNC activation policy ([`FullActivation`] by default).
    activation: Box<dyn BatchActivation<W> + Send>,
    /// Cached [`BatchActivation::is_full`] — the FSYNC fast path skips
    /// activation words entirely.
    activation_full: bool,
}

/// Team sizes up to this bound detect towers by pairwise position
/// comparison (`k·(k-1)/2` word-free compares per lane); larger teams use
/// the sparse occupancy scratch.
const PAIRWISE_OCCUPANCY_MAX: usize = 8;

/// The sparse gather is on by default only when the worst-case gathered
/// edge count per plane (`2·k·64`: every lane of every robot on its own
/// node, two adjacent edges each) stays below this fraction of the ring —
/// both strategies scale linearly in the plane count, so the cutover is
/// the same at every arity. `2` means "at most half the ring's words".
const SPARSE_FILL_HEADROOM: usize = 2;

/// Whether a freshly built batch simulator with `robots` robots on an
/// `edges`-edge ring starts on the demand-driven sparse gather, given
/// a dynamics that supports it — the size cutover
/// [`BatchSimulator::new`] applies, exposed so out-of-band telemetry
/// can label batch units `sparse` vs `full` without building one.
pub fn sparse_fill_default(robots: usize, edges: usize) -> bool {
    SPARSE_FILL_HEADROOM * 2 * robots * LANES <= edges
}

/// The counter-clockwise edge at node `v`: `e_{v-1 mod n}` (the clockwise
/// edge is `e_v`). Explicit modular arithmetic — `n` is a `u32` node
/// count ≥ 2, so `v == 0` wraps to `n - 1`.
#[inline]
fn ccw_edge(v: u32, n: u32) -> u32 {
    if v == 0 { n - 1 } else { v - 1 }
}

impl<A: BatchAlgorithm<W>, D: BatchDynamics<W>, W: LaneWord> BatchSimulator<A, D, W> {
    /// Builds a batch simulator for a *well-initiated* execution (same
    /// validation as [`crate::Simulator::new`], applied to the shared
    /// placements).
    ///
    /// # Errors
    ///
    /// See [`crate::Simulator::new`].
    ///
    /// # Panics
    ///
    /// Panics when the dynamics serves fewer planes than the arity needs
    /// ([`BatchDynamics::plane_count`]` < W::WORDS`) — a construction
    /// bug, not a runtime condition.
    pub fn new(
        ring: RingTopology,
        algorithm: A,
        dynamics: D,
        placements: Vec<RobotPlacement>,
    ) -> Result<Self, EngineError> {
        if placements.is_empty() {
            return Err(EngineError::NoRobots);
        }
        if placements.len() >= ring.node_count() {
            return Err(EngineError::TooManyRobots {
                robots: placements.len(),
                nodes: ring.node_count(),
            });
        }
        if dynamics.ring().node_count() != ring.node_count() {
            return Err(EngineError::RingMismatch {
                expected: ring.node_count(),
                found: dynamics.ring().node_count(),
            });
        }
        assert!(
            dynamics.plane_count() >= W::WORDS,
            "dynamics serves {} presence planes but a {}-lane batch needs {}",
            dynamics.plane_count(),
            W::LANES,
            W::WORDS
        );
        let mut seen = vec![false; ring.node_count()];
        for p in &placements {
            if !ring.contains_node(p.node) {
                return Err(EngineError::NodeOutOfRange {
                    node: p.node,
                    nodes: ring.node_count(),
                });
            }
            if seen[p.node.index()] {
                return Err(EngineError::InitialTower { node: p.node });
            }
            seen[p.node.index()] = true;
        }
        let k = placements.len();
        let mut positions = Vec::with_capacity(k * W::LANES);
        for p in &placements {
            positions.extend(std::iter::repeat_n(p.node.index() as u32, W::LANES));
        }
        let sparse_fill =
            dynamics.supports_sparse_gather() && sparse_fill_default(k, ring.edge_count());
        let dirs = placements
            .iter()
            .map(|p| match p.initial_dir {
                LocalDir::Left => W::ZERO,
                LocalDir::Right => W::ONES,
            })
            .collect();
        let states = (0..k).map(|_| algorithm.initial_batch_state()).collect();
        let snap_words = vec![0u64; W::WORDS * ring.edge_count()];
        let occ = vec![0u8; ring.node_count()];
        Ok(BatchSimulator {
            chirality: placements.iter().map(|p| p.chirality).collect(),
            ring,
            algorithm,
            dynamics,
            time: 0,
            positions,
            dirs,
            moved: vec![W::ZERO; k],
            states,
            snap_words,
            others_words: vec![W::ZERO; k],
            occ,
            occ_touched: Vec::new(),
            sparse_fill,
            activation: Box::new(FullActivation),
            activation_full: true,
        })
    }

    /// Whether the snapshot fill is currently demand-driven (see
    /// [`BatchSimulator::set_sparse_fill`]).
    pub fn sparse_fill(&self) -> bool {
        self.sparse_fill
    }

    /// Forces the Look-phase presence strategy. The default is automatic:
    /// sparse when the dynamics supports the fused gather and the
    /// worst-case gathered edge count per plane (`2·k·64`) fits in half
    /// the ring, full otherwise. Both strategies produce bit-for-bit
    /// identical executions (the gather packs the same per-edge bits the
    /// full fill would have exposed), so this knob only trades
    /// throughput. Enabling sparse over a dynamics without
    /// [`BatchDynamics::supports_sparse_gather`] is harmless: the
    /// request is clamped to the capability and the full fill stays.
    pub fn set_sparse_fill(&mut self, enabled: bool) {
        self.sparse_fill = enabled && self.dynamics.supports_sparse_gather();
    }

    /// Installs an SSYNC activation policy (word-parallel; FSYNC —
    /// [`FullActivation`] — until called). Lane `l` of each robot's
    /// activation word must match what the serial engine's
    /// [`crate::ActivationPolicy`] would decide for that robot in that
    /// lane's replica, which the built-in lane-uniform policies guarantee
    /// by construction.
    pub fn set_activation<P: BatchActivation<W> + Send + 'static>(&mut self, policy: P) {
        self.activation_full = policy.is_full();
        self.activation = Box::new(policy);
    }

    /// Current time `t` (rounds executed, identical in every lane).
    pub fn time(&self) -> Time {
        self.time
    }

    /// The ring.
    pub fn ring(&self) -> &RingTopology {
        &self.ring
    }

    /// The algorithm.
    pub fn algorithm(&self) -> &A {
        &self.algorithm
    }

    /// The batch dynamics.
    pub fn dynamics(&self) -> &D {
        &self.dynamics
    }

    /// Number of robots `k` (per replica).
    pub fn robot_count(&self) -> usize {
        self.chirality.len()
    }

    /// Positions of lane `lane`, in robot-id order.
    ///
    /// # Panics
    ///
    /// Panics when `lane ≥ W::LANES`.
    pub fn positions_of(&self, lane: u32) -> Vec<NodeId> {
        assert!(
            (lane as usize) < W::LANES,
            "lanes are 0..{}, got {lane}",
            W::LANES
        );
        (0..self.robot_count())
            .map(|r| NodeId::new(self.positions[r * W::LANES + lane as usize] as usize))
            .collect()
    }

    /// Direction of robot `robot` in lane `lane`.
    ///
    /// # Panics
    ///
    /// Panics when `robot` or `lane` is out of range.
    pub fn dir_of(&self, robot: RobotId, lane: u32) -> LocalDir {
        assert!(
            (lane as usize) < W::LANES,
            "lanes are 0..{}, got {lane}",
            W::LANES
        );
        ViewWords::dir_from_bit(self.dirs[robot.index()].get(lane as usize))
    }

    /// Whether robot `robot` moved last round in lane `lane`.
    ///
    /// # Panics
    ///
    /// Panics when `robot` or `lane` is out of range.
    pub fn moved_of(&self, robot: RobotId, lane: u32) -> bool {
        assert!(
            (lane as usize) < W::LANES,
            "lanes are 0..{}, got {lane}",
            W::LANES
        );
        self.moved[robot.index()].get(lane as usize)
    }

    /// The moved-last-round word of robot `robot` (lane `l` ⇔ replica
    /// `l`).
    ///
    /// # Panics
    ///
    /// Panics when `robot` is out of range.
    pub fn moved_word(&self, robot: RobotId) -> W {
        self.moved[robot.index()]
    }

    /// The scalar algorithm state of robot `robot` in lane `lane`.
    ///
    /// # Panics
    ///
    /// Panics when `robot` or `lane` is out of range.
    pub fn lane_state(&self, robot: RobotId, lane: u32) -> A::State {
        assert!(
            (lane as usize) < W::LANES,
            "lanes are 0..{}, got {lane}",
            W::LANES
        );
        self.algorithm.lane_state(&self.states[robot.index()], lane)
    }

    /// The full configuration of lane `lane`, as the serial engine would
    /// report it.
    ///
    /// # Panics
    ///
    /// Panics when `lane ≥ W::LANES`.
    pub fn lane_snapshots(&self, lane: u32) -> Vec<RobotSnapshot> {
        assert!(
            (lane as usize) < W::LANES,
            "lanes are 0..{}, got {lane}",
            W::LANES
        );
        (0..self.robot_count())
            .map(|r| RobotSnapshot {
                id: RobotId::new(r),
                node: NodeId::new(self.positions[r * W::LANES + lane as usize] as usize),
                chirality: self.chirality[r],
                dir: ViewWords::dir_from_bit(self.dirs[r].get(lane as usize)),
                moved_last_round: self.moved[r].get(lane as usize),
            })
            .collect()
    }

    /// Fills `others_words`: lane `l` of word `r` ⇔ robot `r` shares its
    /// node with another robot in lane `l` (the Look phase's weak
    /// multiplicity bit), from the pre-round configuration.
    fn compute_others(&mut self) {
        let k = self.robot_count();
        self.others_words.iter_mut().for_each(|w| *w = W::ZERO);
        if k == 1 {
            return;
        }
        if k <= PAIRWISE_OCCUPANCY_MAX {
            // Pairwise position equality, lane-major over each pair: two
            // contiguous lane columns compared element-wise plane by
            // plane — a branch-free (and vectorizable) equality scan.
            for a in 0..k {
                for b in (a + 1)..k {
                    let pa = &self.positions[a * W::LANES..(a + 1) * W::LANES];
                    let pb = &self.positions[b * W::LANES..(b + 1) * W::LANES];
                    let mut eq = W::ZERO;
                    for (plane, (wa, wb)) in
                        pa.chunks_exact(LANES).zip(pb.chunks_exact(LANES)).enumerate()
                    {
                        // Byte-at-a-time packing keeps the shift
                        // distances small and lets the compiler pack the
                        // compares.
                        let mut eqw = 0u64;
                        for (chunk, (ca, cb)) in
                            wa.chunks_exact(8).zip(wb.chunks_exact(8)).enumerate()
                        {
                            let mut byte = 0u8;
                            for i in 0..8 {
                                byte |= u8::from(ca[i] == cb[i]) << i;
                            }
                            eqw |= u64::from(byte) << (chunk * 8);
                        }
                        eq.set_word(plane, eqw);
                    }
                    self.others_words[a] = self.others_words[a] | eq;
                    self.others_words[b] = self.others_words[b] | eq;
                }
            }
        } else {
            // Large teams: per-lane occupancy counts with sparse undo.
            for lane in 0..W::LANES {
                for &node in self.occ_touched.iter() {
                    self.occ[node as usize] = 0;
                }
                self.occ_touched.clear();
                for r in 0..k {
                    let node = self.positions[r * W::LANES + lane];
                    if self.occ[node as usize] == 0 {
                        self.occ_touched.push(node);
                    }
                    self.occ[node as usize] = self.occ[node as usize].saturating_add(1);
                }
                for r in 0..k {
                    let node = self.positions[r * W::LANES + lane];
                    if self.occ[node as usize] > 1 {
                        self.others_words[r].set(lane, true);
                    }
                }
            }
        }
    }

    /// Executes one lockstep round in all `W::LANES` lanes: one presence
    /// pass per plane (a fused on-demand gather on large rings, a
    /// snapshot fill otherwise), one `compute_word` per active robot,
    /// one short per-lane move loop.
    pub fn step(&mut self) {
        let t = self.time;
        let ec = self.ring.edge_count();
        let k = self.robot_count();
        let sparse_round = self.sparse_fill;
        if !sparse_round {
            for w in 0..W::WORDS {
                self.dynamics
                    .presence_plane_into(t, w, &mut self.snap_words[w * ec..(w + 1) * ec]);
            }
        }
        self.compute_others();
        let n = self.ring.node_count() as u32;
        for r in 0..k {
            let act = if self.activation_full {
                W::ONES
            } else {
                self.activation.activation_word(t, k, r)
            };
            if act == W::ZERO {
                // Fully inactive robot: exactly the serial engine's
                // inactive branch — dir, moved-last-round, state and
                // position all persist untouched.
                continue;
            }
            // Look: gather the two adjacent presence bits of every lane,
            // plane by plane. At node v the clockwise edge is e_v and the
            // counter-clockwise edge is e_{v-1 mod n}; chirality maps
            // them to left/right. The sparse gather hands the lane
            // positions straight to the dynamics (no intermediate
            // buffers); the full fill masks bit `l mod 64` out of each
            // edge's plane word in `snap_words`. Reading `positions` here
            // is pre-round by construction: robot `r`'s lanes are only
            // written in its own Move section below.
            let mut cw = W::ZERO;
            let mut ccw = W::ZERO;
            for w in 0..W::WORDS {
                let lanes_at = r * W::LANES + w * LANES;
                let (cw_bits, ccw_bits) = if sparse_round {
                    self.dynamics
                        .presence_gather(t, w, &self.positions[lanes_at..lanes_at + LANES])
                } else {
                    let snap = &self.snap_words[w * ec..(w + 1) * ec];
                    let lane_pos = &self.positions[lanes_at..lanes_at + LANES];
                    let mut cw_bits = 0u64;
                    let mut ccw_bits = 0u64;
                    let mut mask = 1u64;
                    for &v in lane_pos {
                        cw_bits |= snap[v as usize] & mask;
                        ccw_bits |= snap[ccw_edge(v, n) as usize] & mask;
                        mask = mask.rotate_left(1);
                    }
                    (cw_bits, ccw_bits)
                };
                cw.set_word(w, cw_bits);
                ccw.set_word(w, ccw_bits);
            }
            let (edge_left, edge_right) = match self.chirality[r] {
                Chirality::Standard => (ccw, cw),
                Chirality::Mirrored => (cw, ccw),
            };
            let view = ViewWords {
                dir: self.dirs[r],
                edge_left,
                edge_right,
                others: self.others_words[r],
            };
            // Compute: all lanes in one call; inactive lanes (if any)
            // keep their direction bit and state through the masked form.
            let dir_after = if act == W::ONES {
                self.algorithm.compute_word(&mut self.states[r], &view)
            } else {
                self.algorithm
                    .compute_word_masked(&mut self.states[r], &view, act)
            };
            // Move: cross the pointed edge iff present in the same
            // snapshot — the adjacent edge in the *new* direction —
            // restricted to the activated lanes.
            let moved = ((dir_after & edge_right) | (!dir_after & edge_left)) & act;
            // Lane set ⇔ the move (if any) goes globally clockwise.
            let cw_word = match self.chirality[r] {
                Chirality::Standard => dir_after,
                Chirality::Mirrored => !dir_after,
            };
            // Branch-free position update in every lane: the (moved, cw)
            // bit pair selects the step — 0 mod n for parked lanes, +1
            // for clockwise moves, n-1 for counter-clockwise ones.
            let step_table = [0u32, 0, n - 1, 1];
            for w in 0..W::WORDS {
                let mbits = moved.word(w);
                if mbits == 0 {
                    // No lane of this plane moved: positions all keep.
                    continue;
                }
                let cbits = cw_word.word(w);
                let lanes_at = r * W::LANES + w * LANES;
                let lane_pos = &mut self.positions[lanes_at..lanes_at + LANES];
                // Indexed bit extraction instead of a running shift: no
                // loop-carried dependency, so the lane updates pipeline.
                for (l, v) in lane_pos.iter_mut().enumerate() {
                    let idx = ((((mbits >> l) & 1) << 1) | ((cbits >> l) & 1)) as usize;
                    let nv = *v + step_table[idx];
                    *v = if nv >= n { nv - n } else { nv };
                }
            }
            self.dirs[r] = dir_after;
            self.moved[r] = moved | (self.moved[r] & !act);
        }
        self.time += 1;
    }

    /// Executes `rounds` lockstep rounds (`rounds × W::LANES`
    /// replica-rounds).
    pub fn run(&mut self, rounds: u64) {
        for _ in 0..rounds {
            self.step();
        }
    }

    /// Runs until every lane tracked by `coverage` has completed its
    /// first cover or `max_rounds` elapse; returns the rounds executed.
    ///
    /// # Panics
    ///
    /// Panics when `coverage` was built for a different ring size.
    pub fn run_covering(&mut self, max_rounds: u64, coverage: &mut BatchCoverage<W>) -> u64 {
        for executed in 0..max_rounds {
            if coverage.all_covered() {
                return executed;
            }
            self.step();
            coverage.observe(self);
        }
        max_rounds
    }
}

/// First-cover tracking across all `W::LANES` lanes of a
/// [`BatchSimulator`]: which rounds each replica first visited every
/// node.
///
/// Kept outside the simulator so pure-throughput runs pay nothing for it.
#[derive(Debug, Clone)]
pub struct BatchCoverage<W: LaneWord = u64> {
    /// Per node: the lanes that have visited it.
    visited: Vec<W>,
    /// Per lane: nodes not yet visited.
    remaining: Vec<u32>,
    /// Per lane: round of the first complete cover.
    first_cover: Vec<Option<Time>>,
}

impl<W: LaneWord> BatchCoverage<W> {
    /// Starts tracking from `sim`'s current configuration (the occupied
    /// nodes count as visited, as in [`crate::ExecutionTrace`]).
    pub fn new<A: BatchAlgorithm<W>, D: BatchDynamics<W>>(sim: &BatchSimulator<A, D, W>) -> Self {
        let n = sim.ring().node_count();
        let mut coverage = BatchCoverage {
            visited: vec![W::ZERO; n],
            remaining: vec![n as u32; W::LANES],
            first_cover: vec![None; W::LANES],
        };
        coverage.observe(sim);
        coverage
    }

    /// Folds `sim`'s current positions into the ledger; call once after
    /// every [`BatchSimulator::step`].
    pub fn observe<A: BatchAlgorithm<W>, D: BatchDynamics<W>>(
        &mut self,
        sim: &BatchSimulator<A, D, W>,
    ) {
        let t = sim.time();
        let k = sim.robot_count();
        for r in 0..k {
            let lane_pos = &sim.positions[r * W::LANES..(r + 1) * W::LANES];
            for (lane, &v) in lane_pos.iter().enumerate() {
                let seen = &mut self.visited[v as usize];
                if !seen.get(lane) {
                    seen.set(lane, true);
                    self.remaining[lane] -= 1;
                    if self.remaining[lane] == 0 && self.first_cover[lane].is_none() {
                        self.first_cover[lane] = Some(t);
                    }
                }
            }
        }
    }

    /// Round of lane `lane`'s first complete cover, if it happened.
    ///
    /// # Panics
    ///
    /// Panics when `lane ≥ W::LANES`.
    pub fn first_cover(&self, lane: u32) -> Option<Time> {
        self.first_cover[lane as usize]
    }

    /// First-cover rounds of all `W::LANES` lanes.
    pub fn first_covers(&self) -> &[Option<Time>] {
        &self.first_cover
    }

    /// Lanes that have completed a cover, as a lane mask.
    pub fn covered_lanes(&self) -> W {
        let mut mask = W::ZERO;
        for (lane, c) in self.first_cover.iter().enumerate() {
            if c.is_some() {
                mask.set(lane, true);
            }
        }
        mask
    }

    /// `true` when every lane has covered the ring.
    pub fn all_covered(&self) -> bool {
        self.first_cover.iter().all(|c| c.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        Algorithm, EveryKth, Oblivious, PerLane, RoundRobinSingle, Simulator, View,
    };
    use dynring_graph::{AbsenceIntervals, AlwaysPresent, EdgeId, Lanes128, Lanes256};

    /// Keeps its direction forever.
    #[derive(Debug, Clone, Copy)]
    struct KeepDir;

    impl Algorithm for KeepDir {
        type State = ();

        fn name(&self) -> &str {
            "keep-dir"
        }

        fn initial_state(&self) {}

        fn compute(&self, _state: &mut (), view: &View) -> LocalDir {
            view.dir()
        }
    }

    /// Bounces on missing edges, counting computes.
    #[derive(Debug, Clone, Copy)]
    struct Bounce;

    impl Algorithm for Bounce {
        type State = u32;

        fn name(&self) -> &str {
            "bounce"
        }

        fn initial_state(&self) -> u32 {
            0
        }

        fn compute(&self, state: &mut u32, view: &View) -> LocalDir {
            *state += 1;
            if view.exists_edge_ahead() {
                view.dir()
            } else {
                view.dir().opposite()
            }
        }
    }

    fn ring(n: usize) -> RingTopology {
        RingTopology::new(n).expect("valid ring")
    }

    fn spread(n: usize, k: usize) -> Vec<RobotPlacement> {
        (0..k)
            .map(|i| {
                let chirality = if i % 2 == 0 {
                    Chirality::Standard
                } else {
                    Chirality::Mirrored
                };
                RobotPlacement::at(NodeId::new(i * n / k)).with_chirality(chirality)
            })
            .collect()
    }

    fn bank<W: LaneWord>(r: &RingTopology, p: f64, seed: u64) -> BernoulliReplicaBank {
        let seeds: Vec<u64> = (0..W::WORDS as u64).map(|w| seed ^ (w << 8)).collect();
        BernoulliReplicaBank::new(r.clone(), p, &seeds).expect("valid p")
    }

    #[test]
    fn validation_mirrors_the_serial_engine() {
        let r = ring(3);
        let dynamics = || UniformBatch::new(AlwaysPresent::new(ring(3)));
        assert!(matches!(
            BatchSimulator::<_, _, u64>::new(r.clone(), PerLane(KeepDir), dynamics(), vec![]),
            Err(EngineError::NoRobots)
        ));
        let tower = vec![
            RobotPlacement::at(NodeId::new(1)),
            RobotPlacement::at(NodeId::new(1)),
        ];
        assert!(matches!(
            BatchSimulator::<_, _, u64>::new(r.clone(), PerLane(KeepDir), dynamics(), tower),
            Err(EngineError::InitialTower { .. })
        ));
        let mismatched = UniformBatch::new(AlwaysPresent::new(ring(4)));
        assert!(matches!(
            BatchSimulator::<_, _, u64>::new(
                r,
                PerLane(KeepDir),
                mismatched,
                vec![RobotPlacement::at(NodeId::new(0))]
            ),
            Err(EngineError::RingMismatch { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "dynamics serves 1 presence planes but a 256-lane batch needs 4")]
    fn narrow_banks_are_rejected_at_construction() {
        let r = ring(8);
        let narrow = bank::<u64>(&r, 0.5, 3);
        let _ = BatchSimulator::<_, _, Lanes256>::new(
            r,
            PerLane(KeepDir),
            narrow,
            vec![RobotPlacement::at(NodeId::new(0))],
        );
    }

    #[test]
    fn uniform_static_lanes_all_walk_identically() {
        let r = ring(6);
        let mut batch = BatchSimulator::<_, _, u64>::new(
            r.clone(),
            PerLane(KeepDir),
            UniformBatch::new(AlwaysPresent::new(r.clone())),
            vec![RobotPlacement::at(NodeId::new(0))],
        )
        .expect("valid setup");
        let mut serial = Simulator::new(
            r.clone(),
            KeepDir,
            Oblivious::new(AlwaysPresent::new(r)),
            vec![RobotPlacement::at(NodeId::new(0))],
        )
        .expect("valid setup");
        for _ in 0..10 {
            batch.step();
            serial.step_quiet();
            for lane in [0u32, 17, 63] {
                assert_eq!(batch.positions_of(lane), serial.positions());
            }
        }
        assert_eq!(batch.time(), 10);
    }

    #[test]
    fn uniform_scripted_outage_matches_serial_in_every_lane() {
        // A deterministic blink forces direction changes through the
        // Bounce circuit-free fallback; all lanes must track the serial
        // run exactly (positions, dirs, moved flags, states).
        let r = ring(5);
        let mut schedule = AbsenceIntervals::new(r.clone());
        schedule.remove_during(EdgeId::new(4), 0, 3);
        schedule.remove_during(EdgeId::new(1), 2, 6);
        let placements = spread(5, 2);
        let mut batch = BatchSimulator::<_, _, u64>::new(
            r.clone(),
            PerLane(Bounce),
            UniformBatch::new(schedule.clone()),
            placements.clone(),
        )
        .expect("valid setup");
        let mut serial = Simulator::new(r, Bounce, Oblivious::new(schedule), placements)
            .expect("valid setup");
        for round in 0..30 {
            batch.step();
            serial.step_quiet();
            for lane in [0u32, 40] {
                let snaps = batch.lane_snapshots(lane);
                let reference = serial.snapshots();
                assert_eq!(snaps, reference, "round {round} lane {lane}");
                for robot in 0..2 {
                    assert_eq!(
                        batch.lane_state(RobotId::new(robot), lane),
                        *serial.state_of(RobotId::new(robot)),
                        "round {round} lane {lane} robot {robot}"
                    );
                }
            }
        }
    }

    #[test]
    fn bernoulli_lanes_match_their_derived_serial_schedules() {
        // The core lockstep contract on stochastic dynamics, including a
        // team large enough to take the occupancy (non-pairwise) path.
        for (n, k) in [(9usize, 3usize), (23, 11)] {
            let r = ring(n);
            let replicas = BernoulliReplicas::new(r.clone(), 0.45, 0xBEEF).expect("valid p");
            let placements = spread(n, k);
            let mut batch = BatchSimulator::new(
                r.clone(),
                PerLane(Bounce),
                replicas.clone(),
                placements.clone(),
            )
            .expect("valid setup");
            let mut serials: Vec<_> = (0..LANES as u32)
                .map(|lane| {
                    Simulator::new(
                        r.clone(),
                        Bounce,
                        Oblivious::new(replicas.lane(lane)),
                        placements.clone(),
                    )
                    .expect("valid setup")
                })
                .collect();
            for round in 0..60 {
                batch.step();
                for (lane, serial) in serials.iter_mut().enumerate() {
                    serial.step_quiet();
                    assert_eq!(
                        batch.positions_of(lane as u32),
                        serial.positions(),
                        "n={n} k={k} round {round} lane {lane}"
                    );
                }
            }
        }
    }

    /// The wide-arity half of the lockstep contract: every lane of a
    /// 128- and 256-lane bank run matches the serial run of that lane's
    /// derived scalar schedule, and plane 0 is bit-for-bit the 64-lane
    /// run of the same seed.
    #[test]
    fn wide_bernoulli_lanes_match_their_derived_serial_schedules() {
        fn check<W: LaneWord>() {
            let (n, k) = (11usize, 3usize);
            let r = ring(n);
            let b = bank::<W>(&r, 0.45, 0xF00D);
            let placements = spread(n, k);
            let mut batch = BatchSimulator::<_, _, W>::new(
                r.clone(),
                PerLane(Bounce),
                b.clone(),
                placements.clone(),
            )
            .expect("valid setup");
            // Sampled lanes: plane boundaries and interiors of each plane.
            let lanes: Vec<u32> = (0..W::WORDS as u32)
                .flat_map(|w| [w * 64, w * 64 + 1, w * 64 + 63])
                .collect();
            let mut serials: Vec<_> = lanes
                .iter()
                .map(|&lane| {
                    Simulator::new(
                        r.clone(),
                        Bounce,
                        Oblivious::new(b.lane(lane)),
                        placements.clone(),
                    )
                    .expect("valid setup")
                })
                .collect();
            let mut narrow = BatchSimulator::new(
                r.clone(),
                PerLane(Bounce),
                b.stream(0).clone(),
                placements.clone(),
            )
            .expect("valid setup");
            for round in 0..50 {
                batch.step();
                narrow.step();
                for (&lane, serial) in lanes.iter().zip(serials.iter_mut()) {
                    serial.step_quiet();
                    assert_eq!(
                        batch.lane_snapshots(lane),
                        serial.snapshots(),
                        "round {round} lane {lane}"
                    );
                }
                for lane in [0u32, 31, 63] {
                    assert_eq!(
                        batch.lane_snapshots(lane),
                        narrow.lane_snapshots(lane),
                        "round {round}: plane 0 must equal the 64-lane run"
                    );
                }
            }
        }
        check::<Lanes128>();
        check::<Lanes256>();
    }

    /// SSYNC lockstep: under the built-in lane-uniform activation
    /// policies, every lane matches a serial run with the same policy —
    /// at every arity, with a stateful fallback algorithm so frozen
    /// states are also checked.
    #[test]
    fn ssync_activation_matches_serial_in_every_lane() {
        fn check<W: LaneWord, P>(make_policy: fn() -> P)
        where
            P: crate::ActivationPolicy + BatchActivation<W> + Send + 'static,
        {
            let (n, k) = (9usize, 3usize);
            let r = ring(n);
            let b = bank::<W>(&r, 0.5, 0xAB);
            let placements = spread(n, k);
            let mut batch = BatchSimulator::<_, _, W>::new(
                r.clone(),
                PerLane(Bounce),
                b.clone(),
                placements.clone(),
            )
            .expect("valid setup");
            batch.set_activation(make_policy());
            let lanes: Vec<u32> = (0..W::WORDS as u32).flat_map(|w| [w * 64, w * 64 + 63]).collect();
            let mut serials: Vec<_> = lanes
                .iter()
                .map(|&lane| {
                    let mut sim = Simulator::new(
                        r.clone(),
                        Bounce,
                        Oblivious::new(b.lane(lane)),
                        placements.clone(),
                    )
                    .expect("valid setup");
                    sim.set_activation(make_policy());
                    sim
                })
                .collect();
            for round in 0..60 {
                batch.step();
                for (&lane, serial) in lanes.iter().zip(serials.iter_mut()) {
                    serial.step_quiet();
                    assert_eq!(
                        batch.lane_snapshots(lane),
                        serial.snapshots(),
                        "round {round} lane {lane}"
                    );
                    for robot in 0..k {
                        assert_eq!(
                            batch.lane_state(RobotId::new(robot), lane),
                            *serial.state_of(RobotId::new(robot)),
                            "round {round} lane {lane} robot {robot}"
                        );
                    }
                }
            }
        }
        check::<u64, _>(|| RoundRobinSingle);
        check::<u64, _>(|| EveryKth::new(2));
        check::<Lanes128, _>(|| RoundRobinSingle);
        check::<Lanes256, _>(|| EveryKth::new(3));
    }

    /// A deliberately lane-mixed activation policy: lane `l` activates
    /// robot `r` at time `t` iff `(l + r + t)` is even. Forces the
    /// masked compute path; each lane must still match a serial run
    /// under the equivalent scalar policy.
    #[derive(Clone, Copy)]
    struct ParityMixed;

    impl<W: LaneWord> BatchActivation<W> for ParityMixed {
        fn activation_word(&mut self, time: Time, _robots: usize, robot: usize) -> W {
            let mut word = W::ZERO;
            for lane in 0..W::LANES {
                word.set(lane, (lane + robot + time as usize).is_multiple_of(2));
            }
            word
        }
    }

    /// The scalar view of one lane of [`ParityMixed`].
    struct ParityLane(usize);

    impl crate::ActivationPolicy for ParityLane {
        fn activate(&mut self, time: Time, robots: usize) -> Vec<bool> {
            (0..robots)
                .map(|r| (self.0 + r + time as usize).is_multiple_of(2))
                .collect()
        }
    }

    #[test]
    fn lane_mixed_activation_routes_through_the_masked_compute() {
        let (n, k) = (9usize, 3usize);
        let r = ring(n);
        let replicas = BernoulliReplicas::new(r.clone(), 0.5, 7).expect("valid p");
        let placements = spread(n, k);
        let mut batch = BatchSimulator::new(
            r.clone(),
            PerLane(Bounce),
            replicas.clone(),
            placements.clone(),
        )
        .expect("valid setup");
        batch.set_activation(ParityMixed);
        for lane in [0u32, 1, 13, 63] {
            let mut serial = Simulator::new(
                r.clone(),
                Bounce,
                Oblivious::new(replicas.lane(lane)),
                placements.clone(),
            )
            .expect("valid setup");
            serial.set_activation(ParityLane(lane as usize));
            let mut batch = BatchSimulator::new(
                r.clone(),
                PerLane(Bounce),
                replicas.clone(),
                placements.clone(),
            )
            .expect("valid setup");
            batch.set_activation(ParityMixed);
            for round in 0..40 {
                batch.step();
                serial.step_quiet();
                assert_eq!(
                    batch.lane_snapshots(lane),
                    serial.snapshots(),
                    "round {round} lane {lane}"
                );
            }
        }
    }

    /// Exhaustive wraparound check of the adjacent-edge computation: at
    /// node 0 the ccw edge is `n - 1`, at node `n - 1` it is `n - 2`, and
    /// in between it is `v - 1` — for every ring size the engine accepts.
    #[test]
    fn ccw_edge_wraps_exhaustively() {
        for n in 2u32..=130 {
            for v in 0..n {
                let expected = (u64::from(v) + u64::from(n) - 1) % u64::from(n);
                assert_eq!(u64::from(ccw_edge(v, n)), expected, "n={n} v={v}");
            }
            assert_eq!(ccw_edge(0, n), n - 1, "node 0 wraps to the last edge");
            assert_eq!(ccw_edge(n - 1, n), n - 2, "node n-1 stays in range");
        }
    }

    /// Robots sitting on the wrap boundary (nodes 0 and n−1) must consult
    /// the correct edges in both directions: a scripted outage of edge
    /// n−1 (node 0's ccw edge) and edge 0 (node 0's cw edge) steers both
    /// chirality variants identically in batch and serial.
    #[test]
    fn boundary_nodes_read_the_wrapped_edges() {
        for n in [4usize, 5, 64, 65] {
            let r = ring(n);
            let mut schedule = AbsenceIntervals::new(r.clone());
            schedule.remove_during(EdgeId::new(n - 1), 0, 7);
            schedule.remove_during(EdgeId::new(0), 3, 11);
            schedule.remove_during(EdgeId::new(n - 2), 5, 9);
            for chirality in [Chirality::Standard, Chirality::Mirrored] {
                for node in [0usize, n - 1] {
                    let placements =
                        vec![RobotPlacement::at(NodeId::new(node)).with_chirality(chirality)];
                    let mut batch = BatchSimulator::<_, _, u64>::new(
                        r.clone(),
                        PerLane(Bounce),
                        UniformBatch::new(schedule.clone()),
                        placements.clone(),
                    )
                    .expect("valid setup");
                    let mut serial = Simulator::new(
                        r.clone(),
                        Bounce,
                        Oblivious::new(schedule.clone()),
                        placements,
                    )
                    .expect("valid setup");
                    for round in 0..25 {
                        batch.step();
                        serial.step_quiet();
                        assert_eq!(
                            batch.positions_of(0),
                            serial.positions(),
                            "n={n} chirality={chirality:?} start={node} round={round}"
                        );
                    }
                }
            }
        }
    }

    /// A dynamics that supports only the full fill: the default `false`
    /// for `supports_sparse_gather`.
    struct FullFillOnly(BernoulliReplicas);

    impl BatchDynamics for FullFillOnly {
        fn ring(&self) -> &RingTopology {
            BernoulliReplicas::ring(&self.0)
        }

        fn presence_plane_into(&mut self, t: Time, _plane: usize, out: &mut [u64]) {
            self.0.presence_words_into(t, out);
        }
    }

    #[test]
    fn sparse_fill_is_bit_identical_to_full_fill() {
        // The fill contract: forcing the strategy either way changes
        // nothing observable — positions, dirs, moved flags and states
        // stay bit-for-bit equal, on stochastic and deterministic
        // dynamics alike.
        for (n, k) in [(9usize, 3usize), (23, 11), (130, 2)] {
            let r = ring(n);
            let replicas = BernoulliReplicas::new(r.clone(), 0.45, 0xCAFE).expect("valid p");
            let placements = spread(n, k);
            let make = |sparse: bool| {
                let mut sim = BatchSimulator::new(
                    r.clone(),
                    PerLane(Bounce),
                    replicas.clone(),
                    placements.clone(),
                )
                .expect("valid setup");
                sim.set_sparse_fill(sparse);
                sim
            };
            let mut sparse = make(true);
            let mut full = make(false);
            assert!(sparse.sparse_fill() && !full.sparse_fill());
            for round in 0..80 {
                sparse.step();
                full.step();
                for lane in [0u32, 13, 63] {
                    assert_eq!(
                        sparse.lane_snapshots(lane),
                        full.lane_snapshots(lane),
                        "n={n} k={k} round={round} lane={lane}"
                    );
                    for robot in 0..k {
                        assert_eq!(
                            sparse.lane_state(RobotId::new(robot), lane),
                            full.lane_state(RobotId::new(robot), lane),
                            "n={n} k={k} round={round} lane={lane} robot={robot}"
                        );
                    }
                }
            }
        }
    }

    /// The same fill contract at the wide arities, over a bank.
    #[test]
    fn wide_sparse_fill_is_bit_identical_to_full_fill() {
        fn check<W: LaneWord>() {
            let (n, k) = (67usize, 2usize);
            let r = ring(n);
            let b = bank::<W>(&r, 0.45, 0x5EED);
            let placements = spread(n, k);
            let make = |sparse: bool| {
                let mut sim = BatchSimulator::<_, _, W>::new(
                    r.clone(),
                    PerLane(Bounce),
                    b.clone(),
                    placements.clone(),
                )
                .expect("valid setup");
                sim.set_sparse_fill(sparse);
                sim
            };
            let mut sparse = make(true);
            let mut full = make(false);
            for round in 0..60 {
                sparse.step();
                full.step();
                for lane in [0u32, 63, W::LANES as u32 - 1] {
                    assert_eq!(
                        sparse.lane_snapshots(lane),
                        full.lane_snapshots(lane),
                        "round={round} lane={lane}"
                    );
                }
            }
        }
        check::<Lanes128>();
        check::<Lanes256>();
    }

    #[test]
    fn sparse_fill_works_on_uniform_deterministic_dynamics() {
        let r = ring(70);
        let mut schedule = AbsenceIntervals::new(r.clone());
        schedule.remove_during(EdgeId::new(69), 0, 5);
        schedule.remove_during(EdgeId::new(1), 2, 9);
        let placements = spread(70, 2);
        let make = |sparse: bool| {
            let mut sim = BatchSimulator::<_, _, u64>::new(
                r.clone(),
                PerLane(Bounce),
                UniformBatch::new(schedule.clone()),
                placements.clone(),
            )
            .expect("valid setup");
            sim.set_sparse_fill(sparse);
            sim
        };
        let mut sparse = make(true);
        let mut full = make(false);
        for round in 0..40 {
            sparse.step();
            full.step();
            assert_eq!(sparse.lane_snapshots(0), full.lane_snapshots(0), "round {round}");
        }
    }

    #[test]
    fn sparse_fill_is_clamped_to_the_gather_capability() {
        let r = ring(40);
        let replicas = BernoulliReplicas::new(r.clone(), 0.5, 99).expect("valid p");
        let placements = spread(40, 1);
        let mut refusing = BatchSimulator::new(
            r.clone(),
            PerLane(Bounce),
            FullFillOnly(replicas.clone()),
            placements.clone(),
        )
        .expect("valid setup");
        refusing.set_sparse_fill(true);
        assert!(
            !refusing.sparse_fill(),
            "a dynamics without gather support must stay on the full fill"
        );
        let mut reference =
            BatchSimulator::new(r, PerLane(Bounce), replicas, placements).expect("valid setup");
        reference.set_sparse_fill(false);
        for _ in 0..30 {
            refusing.step();
            reference.step();
            assert_eq!(refusing.lane_snapshots(7), reference.lane_snapshots(7));
        }
    }

    #[test]
    fn sparse_fill_auto_threshold_follows_ring_and_team_size() {
        // 2·k·64 touched edges per plane need SPARSE_FILL_HEADROOM×
        // headroom: with k = 1 the cutover sits at n = 256 — at every
        // arity, since both fills scale linearly in the plane count.
        let make = |n: usize, k: usize| {
            let r = ring(n);
            let replicas = BernoulliReplicas::new(r.clone(), 0.5, 1).expect("valid p");
            BatchSimulator::new(r, PerLane(KeepDir), replicas, spread(n, k))
                .expect("valid setup")
        };
        assert!(!make(64, 1).sparse_fill());
        assert!(!make(255, 1).sparse_fill());
        assert!(make(256, 1).sparse_fill());
        assert!(make(4096, 3).sparse_fill());
        assert!(!make(4096, 17).sparse_fill());
        let wide = BatchSimulator::<_, _, Lanes256>::new(
            ring(256),
            PerLane(KeepDir),
            bank::<Lanes256>(&ring(256), 0.5, 1),
            spread(256, 1),
        )
        .expect("valid setup");
        assert!(wide.sparse_fill(), "the cutover is per plane, not per arity");
        let big = ring(4096);
        let gatherless = BatchSimulator::new(
            big.clone(),
            PerLane(KeepDir),
            FullFillOnly(BernoulliReplicas::new(big, 0.5, 1).expect("valid p")),
            spread(4096, 1),
        )
        .expect("valid setup");
        assert!(
            !gatherless.sparse_fill(),
            "the capability gates the auto-threshold"
        );
    }

    #[test]
    fn coverage_tracks_first_covers_per_lane() {
        // Single robot on a static 4-ring covers in exactly 3 rounds in
        // every lane.
        let r = ring(4);
        let mut batch = BatchSimulator::<_, _, u64>::new(
            r.clone(),
            PerLane(KeepDir),
            UniformBatch::new(AlwaysPresent::new(r)),
            vec![RobotPlacement::at(NodeId::new(0))],
        )
        .expect("valid setup");
        let mut coverage = BatchCoverage::new(&batch);
        assert_eq!(coverage.covered_lanes(), 0);
        let executed = batch.run_covering(100, &mut coverage);
        assert_eq!(executed, 3);
        assert!(coverage.all_covered());
        for lane in 0..LANES as u32 {
            assert_eq!(coverage.first_cover(lane), Some(3), "lane {lane}");
        }
    }

    #[test]
    fn wide_coverage_matches_the_plane_wise_narrow_runs() {
        let r = ring(7);
        let b = bank::<Lanes256>(&r, 0.6, 42);
        let placements = spread(7, 3);
        let mut wide = BatchSimulator::<_, _, Lanes256>::new(
            r.clone(),
            PerLane(Bounce),
            b.clone(),
            placements.clone(),
        )
        .expect("valid setup");
        let mut wide_cov = BatchCoverage::new(&wide);
        let horizon = 300u64;
        for _ in 0..horizon {
            wide.step();
            wide_cov.observe(&wide);
        }
        assert_eq!(wide_cov.first_covers().len(), 256);
        for plane in 0..4usize {
            let mut narrow = BatchSimulator::new(
                r.clone(),
                PerLane(Bounce),
                b.stream(plane).clone(),
                placements.clone(),
            )
            .expect("valid setup");
            let mut cov = BatchCoverage::new(&narrow);
            for _ in 0..horizon {
                narrow.step();
                cov.observe(&narrow);
            }
            for lane in 0..64usize {
                assert_eq!(
                    wide_cov.first_cover((plane * 64 + lane) as u32),
                    cov.first_cover(lane as u32),
                    "plane {plane} lane {lane}"
                );
            }
        }
    }

    #[test]
    fn coverage_matches_a_serial_visit_ledger_per_lane() {
        let r = ring(7);
        let replicas = BernoulliReplicas::new(r.clone(), 0.6, 31).expect("valid p");
        let placements = spread(7, 3);
        let mut batch = BatchSimulator::new(
            r.clone(),
            PerLane(Bounce),
            replicas.clone(),
            placements.clone(),
        )
        .expect("valid setup");
        let mut coverage = BatchCoverage::new(&batch);
        let horizon = 200u64;
        for _ in 0..horizon {
            batch.step();
            coverage.observe(&batch);
        }
        for lane in [0u32, 9, 63] {
            // Serial reference: run the lane's schedule, tracking visits.
            let mut serial = Simulator::new(
                r.clone(),
                Bounce,
                Oblivious::new(replicas.lane(lane)),
                placements.clone(),
            )
            .expect("valid setup");
            let mut seen = [false; 7];
            let mut missing = 7usize;
            let mut first_cover = None;
            let mut note = |positions: &[NodeId], t: Time| {
                for p in positions {
                    if !seen[p.index()] {
                        seen[p.index()] = true;
                        missing -= 1;
                        if missing == 0 && first_cover.is_none() {
                            first_cover = Some(t);
                        }
                    }
                }
            };
            note(&serial.positions(), 0);
            for t in 1..=horizon {
                serial.step_quiet();
                note(&serial.positions(), t);
            }
            assert_eq!(coverage.first_cover(lane), first_cover, "lane {lane}");
        }
    }
}
