//! The bit-sliced 64-replica lockstep engine.
//!
//! Monte Carlo workloads (cover-time distributions, survival rates over
//! thousands of Bernoulli seeds) run the *same scenario* under many
//! independent stochastic schedules. [`BatchSimulator`] executes 64 such
//! replicas in lockstep, one bit **lane** per replica:
//!
//! - the four observable bits of each robot's [`crate::View`] (left edge,
//!   right edge, other robots, direction) are stored structure-of-arrays
//!   as one `u64` word per robot ([`crate::ViewWords`]);
//! - the Compute phase is one [`BatchAlgorithm::compute_word`] call per
//!   robot — a boolean circuit over whole words for the portfolio
//!   algorithms, a lane-by-lane scalar loop for [`crate::PerLane`];
//! - stochastic presence bits come from
//!   [`dynring_graph::BernoulliReplicas`]: one AND/OR slice ladder per
//!   edge feeds all 64 replicas, so the Look phase's hash cost is per
//!   *edge*, not per replica;
//! - only positions are inherently per-lane integers; moves are applied
//!   in a short per-lane loop driven by the `moved` word.
//!
//! Every lane is bit-for-bit a serial [`crate::Simulator`] run against
//! the lane's derived scalar schedule
//! ([`dynring_graph::BernoulliReplicas::lane`]) — pinned by equivalence
//! proptests across the whole algorithm portfolio.
//!
//! The engine is FSYNC-only (the paper's model for all possibility
//! results): every robot is activated every round.

use dynring_graph::{
    BernoulliReplicas, EdgeSchedule, EdgeSet, NodeId, RingTopology, Time,
};

use crate::{
    BatchAlgorithm, Chirality, EngineError, LocalDir, RobotId, RobotPlacement, RobotSnapshot,
    ViewWords,
};

/// Replicas per batch: one bit lane each.
pub const LANES: usize = 64;

/// The batch adversary: supplies, each round, the presence word of every
/// edge — bit `l` of `out[e]` is "edge `e` present in replica `l`".
///
/// Mirrors [`crate::Dynamics`] one level up: called exactly once per
/// round with strictly increasing times. Batch dynamics are oblivious by
/// construction (the replicas diverge, so there is no single
/// configuration to adapt to); adaptive adversaries stay on the serial
/// engine.
pub trait BatchDynamics {
    /// The ring whose edges are scheduled.
    fn ring(&self) -> &RingTopology;

    /// Writes one presence word per edge for time `t` (`out.len()` is the
    /// ring's edge count).
    fn presence_words_into(&mut self, t: Time, out: &mut [u64]);

    /// The sparse fill: writes the presence words of **just** the edges
    /// listed in `edges` into their slots of `out` (`out.len()` is the
    /// ring's edge count; slots of unlisted edges are left untouched),
    /// returning `true`. The list may contain duplicates — presence is a
    /// pure function of `(edge, t)`, so repeated writes must store the
    /// same word. Answers must be bit-for-bit what
    /// [`BatchDynamics::presence_words_into`] would have written for the
    /// same `t`, so the two fills are interchangeable per round.
    ///
    /// On large rings the engine only ever consults the ≤ `2·k·64`
    /// edges adjacent to robot lane positions, so dynamics with per-edge
    /// random access (the pure replica streams) answer this instead of
    /// filling all `n` words. The default returns `false` without
    /// touching anything — "unsupported, use the full fill"; support
    /// must be static (a dynamics may not refuse on some rounds and
    /// answer on others), which lets the engine stop asking after one
    /// refusal.
    ///
    /// The engine resolves each round through exactly one *successful*
    /// fill, with strictly increasing times: on the one round where a
    /// refusing dynamics is offered this method, the refusal (which
    /// must touch nothing) is followed by a
    /// [`BatchDynamics::presence_words_into`] call for the same `t`,
    /// and the sparse hook is never offered again.
    fn presence_words_sparse(&mut self, _t: Time, _edges: &[u32], _out: &mut [u64]) -> bool {
        false
    }
}

impl BatchDynamics for BernoulliReplicas {
    fn ring(&self) -> &RingTopology {
        BernoulliReplicas::ring(self)
    }

    fn presence_words_into(&mut self, t: Time, out: &mut [u64]) {
        BernoulliReplicas::presence_words_into(self, t, out);
    }

    fn presence_words_sparse(&mut self, t: Time, edges: &[u32], out: &mut [u64]) -> bool {
        self.presence_words_sparse_into(t, edges, out);
        true
    }
}

/// Plays one pure scalar schedule identically in every lane: presence
/// words are all-ones or all-zeros per edge.
///
/// Useful for deterministic dynamics (static rings, scripted outages)
/// where the 64 replicas only differ through the algorithm's own state —
/// and as the degenerate reference in equivalence tests.
#[derive(Debug, Clone)]
pub struct UniformBatch<S> {
    schedule: S,
    frame: EdgeSet,
}

impl<S: EdgeSchedule> UniformBatch<S> {
    /// Wraps a pure schedule.
    pub fn new(schedule: S) -> Self {
        let frame = EdgeSet::empty(schedule.ring().edge_count());
        UniformBatch { schedule, frame }
    }

    /// The wrapped schedule.
    pub fn schedule(&self) -> &S {
        &self.schedule
    }
}

impl<S: EdgeSchedule> BatchDynamics for UniformBatch<S> {
    fn ring(&self) -> &RingTopology {
        self.schedule.ring()
    }

    fn presence_words_into(&mut self, t: Time, out: &mut [u64]) {
        self.schedule.edges_at_into(t, &mut self.frame);
        for (e, slot) in out.iter_mut().enumerate() {
            *slot = if self.frame.contains(dynring_graph::EdgeId::new(e)) {
                u64::MAX
            } else {
                0
            };
        }
    }

    /// Pure schedules have random access in time, so each listed edge is
    /// one [`EdgeSchedule::is_present`] point query, broadcast to all
    /// lanes.
    fn presence_words_sparse(&mut self, t: Time, edges: &[u32], out: &mut [u64]) -> bool {
        for &e in edges {
            let present = self
                .schedule
                .is_present(dynring_graph::EdgeId::new(e as usize), t);
            out[e as usize] = if present { u64::MAX } else { 0 };
        }
        true
    }
}

/// 64 independent replicas of one scenario, executed in lockstep.
///
/// All replicas share the ring, the algorithm and the initial placements;
/// they differ only through the dynamics' per-lane presence bits (and the
/// divergence those induce). See the module docs for the layout and the
/// crate docs for the round semantics — each lane runs exactly the
/// paper's FSYNC Look-Compute-Move round.
pub struct BatchSimulator<A: BatchAlgorithm, D: BatchDynamics> {
    ring: RingTopology,
    algorithm: A,
    dynamics: D,
    time: Time,
    /// Per-robot fixed chirality (shared by all lanes).
    chirality: Vec<Chirality>,
    /// Robot-major positions: `positions[r * LANES + l]` is robot `r`'s
    /// node index in lane `l`.
    positions: Vec<u32>,
    /// Per-robot direction word (bit set ⇔ `Right`).
    dirs: Vec<u64>,
    /// Per-robot moved-last-round word.
    moved: Vec<u64>,
    /// Per-robot batch state.
    states: Vec<A::BatchState>,
    /// Presence snapshot of the current round: one word per edge. Under
    /// the sparse fill only the slots listed in `edge_list` this round
    /// are fresh; the Look phase reads exactly those.
    snap_words: Vec<u64>,
    /// Per-robot "other robots on my node" scratch words.
    others_words: Vec<u64>,
    /// Per-lane occupancy scratch (used when the team is too large for
    /// pairwise comparison), cleared sparsely via `occ_touched`.
    occ: Vec<u8>,
    occ_touched: Vec<u32>,
    /// Whether the snapshot fill is demand-driven (only the edges
    /// adjacent to robot positions); auto-set from the ring/team shape,
    /// overridable via [`BatchSimulator::set_sparse_fill`], and cleared
    /// for good on the first refusal by the dynamics.
    sparse_fill: bool,
    /// The edges the Look phase will read this round (both adjacent
    /// edges of every lane position, duplicates included — deduplication
    /// costs more than the duplicate draws it would save).
    edge_list: Vec<u32>,
}

/// Team sizes up to this bound detect towers by pairwise position
/// comparison (`k·(k-1)/2` word-free compares per lane); larger teams use
/// the sparse occupancy scratch.
const PAIRWISE_OCCUPANCY_MAX: usize = 8;

/// The sparse fill is on by default only when the worst-case touched-edge
/// count (`2·k·64`: every lane of every robot on its own node, two
/// adjacent edges each) stays below this fraction of the ring — below it
/// the demand-driven fill is cheaper even with zero lane clustering;
/// above it the branch-free full fill wins. `2` means "at most half the
/// ring's words".
const SPARSE_FILL_HEADROOM: usize = 2;

/// The counter-clockwise edge at node `v`: `e_{v-1 mod n}` (the clockwise
/// edge is `e_v`). Explicit modular arithmetic — `n` is a `u32` node
/// count ≥ 2, so `v == 0` wraps to `n - 1`.
#[inline]
fn ccw_edge(v: u32, n: u32) -> u32 {
    if v == 0 { n - 1 } else { v - 1 }
}

impl<A: BatchAlgorithm, D: BatchDynamics> BatchSimulator<A, D> {
    /// Builds a batch simulator for a *well-initiated* execution (same
    /// validation as [`crate::Simulator::new`], applied to the shared
    /// placements).
    ///
    /// # Errors
    ///
    /// See [`crate::Simulator::new`].
    pub fn new(
        ring: RingTopology,
        algorithm: A,
        dynamics: D,
        placements: Vec<RobotPlacement>,
    ) -> Result<Self, EngineError> {
        if placements.is_empty() {
            return Err(EngineError::NoRobots);
        }
        if placements.len() >= ring.node_count() {
            return Err(EngineError::TooManyRobots {
                robots: placements.len(),
                nodes: ring.node_count(),
            });
        }
        if dynamics.ring().node_count() != ring.node_count() {
            return Err(EngineError::RingMismatch {
                expected: ring.node_count(),
                found: dynamics.ring().node_count(),
            });
        }
        let mut seen = vec![false; ring.node_count()];
        for p in &placements {
            if !ring.contains_node(p.node) {
                return Err(EngineError::NodeOutOfRange {
                    node: p.node,
                    nodes: ring.node_count(),
                });
            }
            if seen[p.node.index()] {
                return Err(EngineError::InitialTower { node: p.node });
            }
            seen[p.node.index()] = true;
        }
        let k = placements.len();
        let mut positions = Vec::with_capacity(k * LANES);
        for p in &placements {
            positions.extend(std::iter::repeat_n(p.node.index() as u32, LANES));
        }
        let sparse_fill = SPARSE_FILL_HEADROOM * 2 * k * LANES <= ring.edge_count();
        let dirs = placements
            .iter()
            .map(|p| match p.initial_dir {
                LocalDir::Left => 0,
                LocalDir::Right => u64::MAX,
            })
            .collect();
        let states = (0..k).map(|_| algorithm.initial_batch_state()).collect();
        let snap_words = vec![0u64; ring.edge_count()];
        let occ = vec![0u8; ring.node_count()];
        Ok(BatchSimulator {
            chirality: placements.iter().map(|p| p.chirality).collect(),
            ring,
            algorithm,
            dynamics,
            time: 0,
            positions,
            dirs,
            moved: vec![0; k],
            states,
            snap_words,
            others_words: vec![0; k],
            occ,
            occ_touched: Vec::new(),
            sparse_fill,
            edge_list: Vec::new(),
        })
    }

    /// Whether the snapshot fill is currently demand-driven (see
    /// [`BatchSimulator::set_sparse_fill`]).
    pub fn sparse_fill(&self) -> bool {
        self.sparse_fill
    }

    /// Forces the snapshot-fill strategy. The default is automatic:
    /// sparse when the worst-case touched-edge count `2·k·64` fits in
    /// half the ring, full otherwise. Both strategies produce bit-for-bit
    /// identical executions (the sparse fill requests the same per-edge
    /// words the full fill would have written), so this knob only trades
    /// throughput. Enabling sparse over a dynamics that does not
    /// implement [`BatchDynamics::presence_words_sparse`] is harmless:
    /// the engine falls back to the full fill on the first refusal and
    /// stops asking.
    pub fn set_sparse_fill(&mut self, enabled: bool) {
        self.sparse_fill = enabled;
    }

    /// Current time `t` (rounds executed, identical in every lane).
    pub fn time(&self) -> Time {
        self.time
    }

    /// The ring.
    pub fn ring(&self) -> &RingTopology {
        &self.ring
    }

    /// The algorithm.
    pub fn algorithm(&self) -> &A {
        &self.algorithm
    }

    /// The batch dynamics.
    pub fn dynamics(&self) -> &D {
        &self.dynamics
    }

    /// Number of robots `k` (per replica).
    pub fn robot_count(&self) -> usize {
        self.chirality.len()
    }

    /// Positions of lane `lane`, in robot-id order.
    ///
    /// # Panics
    ///
    /// Panics when `lane ≥ 64`.
    pub fn positions_of(&self, lane: u32) -> Vec<NodeId> {
        assert!((lane as usize) < LANES, "lanes are 0..64, got {lane}");
        (0..self.robot_count())
            .map(|r| NodeId::new(self.positions[r * LANES + lane as usize] as usize))
            .collect()
    }

    /// Direction of robot `robot` in lane `lane`.
    ///
    /// # Panics
    ///
    /// Panics when `robot` or `lane` is out of range.
    pub fn dir_of(&self, robot: RobotId, lane: u32) -> LocalDir {
        assert!((lane as usize) < LANES, "lanes are 0..64, got {lane}");
        ViewWords::dir_from_bit((self.dirs[robot.index()] >> lane) & 1 == 1)
    }

    /// Whether robot `robot` moved last round in lane `lane`.
    ///
    /// # Panics
    ///
    /// Panics when `robot` or `lane` is out of range.
    pub fn moved_of(&self, robot: RobotId, lane: u32) -> bool {
        assert!((lane as usize) < LANES, "lanes are 0..64, got {lane}");
        (self.moved[robot.index()] >> lane) & 1 == 1
    }

    /// The moved-last-round word of robot `robot` (bit `l` ⇔ lane `l`).
    ///
    /// # Panics
    ///
    /// Panics when `robot` is out of range.
    pub fn moved_word(&self, robot: RobotId) -> u64 {
        self.moved[robot.index()]
    }

    /// The scalar algorithm state of robot `robot` in lane `lane`.
    ///
    /// # Panics
    ///
    /// Panics when `robot` or `lane` is out of range.
    pub fn lane_state(&self, robot: RobotId, lane: u32) -> A::State {
        assert!((lane as usize) < LANES, "lanes are 0..64, got {lane}");
        self.algorithm.lane_state(&self.states[robot.index()], lane)
    }

    /// The full configuration of lane `lane`, as the serial engine would
    /// report it.
    ///
    /// # Panics
    ///
    /// Panics when `lane ≥ 64`.
    pub fn lane_snapshots(&self, lane: u32) -> Vec<RobotSnapshot> {
        assert!((lane as usize) < LANES, "lanes are 0..64, got {lane}");
        (0..self.robot_count())
            .map(|r| RobotSnapshot {
                id: RobotId::new(r),
                node: NodeId::new(self.positions[r * LANES + lane as usize] as usize),
                chirality: self.chirality[r],
                dir: ViewWords::dir_from_bit((self.dirs[r] >> lane) & 1 == 1),
                moved_last_round: (self.moved[r] >> lane) & 1 == 1,
            })
            .collect()
    }

    /// Fills `others_words`: bit `l` of word `r` ⇔ robot `r` shares its
    /// node with another robot in lane `l` (the Look phase's weak
    /// multiplicity bit), from the pre-round configuration.
    fn compute_others(&mut self) {
        let k = self.robot_count();
        self.others_words.iter_mut().for_each(|w| *w = 0);
        if k == 1 {
            return;
        }
        if k <= PAIRWISE_OCCUPANCY_MAX {
            // Pairwise position equality, lane-major over each pair: two
            // contiguous 64-lane columns compared element-wise — a
            // branch-free (and vectorizable) equality scan.
            for a in 0..k {
                for b in (a + 1)..k {
                    let pa: &[u32; LANES] = self.positions[a * LANES..(a + 1) * LANES]
                        .try_into()
                        .expect("lane column");
                    let pb: &[u32; LANES] = self.positions[b * LANES..(b + 1) * LANES]
                        .try_into()
                        .expect("lane column");
                    // Byte-at-a-time packing keeps the shift distances
                    // small and lets the compiler pack the compares.
                    let mut eq = 0u64;
                    for (chunk, (ca, cb)) in
                        pa.chunks_exact(8).zip(pb.chunks_exact(8)).enumerate()
                    {
                        let mut byte = 0u8;
                        for i in 0..8 {
                            byte |= u8::from(ca[i] == cb[i]) << i;
                        }
                        eq |= u64::from(byte) << (chunk * 8);
                    }
                    self.others_words[a] |= eq;
                    self.others_words[b] |= eq;
                }
            }
        } else {
            // Large teams: per-lane occupancy counts with sparse undo.
            for lane in 0..LANES {
                for &node in self.occ_touched.iter() {
                    self.occ[node as usize] = 0;
                }
                self.occ_touched.clear();
                for r in 0..k {
                    let node = self.positions[r * LANES + lane];
                    if self.occ[node as usize] == 0 {
                        self.occ_touched.push(node);
                    }
                    self.occ[node as usize] = self.occ[node as usize].saturating_add(1);
                }
                for r in 0..k {
                    let node = self.positions[r * LANES + lane];
                    self.others_words[r] |= u64::from(self.occ[node as usize] > 1) << lane;
                }
            }
        }
    }

    /// Collects the edges the Look phase will read this round — the two
    /// adjacent edges of every lane position — into `edge_list`.
    /// Duplicates are kept: the list has fixed length `2·k·64`, the
    /// build is a branch-free sequential pass, and duplicate draws are
    /// idempotent (one extra slice ladder each), which measures faster
    /// than any per-edge deduplication scheme.
    fn collect_touched_edges(&mut self) {
        self.edge_list.resize(2 * self.positions.len(), 0);
        let n = self.ring.node_count() as u32;
        for (pair, &v) in self.edge_list.chunks_exact_mut(2).zip(&self.positions) {
            pair[0] = v;
            pair[1] = ccw_edge(v, n);
        }
    }

    /// Executes one lockstep round in all 64 lanes: one snapshot fill
    /// (demand-driven on large rings), one `compute_word` per robot, one
    /// short per-lane move loop.
    pub fn step(&mut self) {
        let t = self.time;
        if self.sparse_fill {
            self.collect_touched_edges();
            if !self
                .dynamics
                .presence_words_sparse(t, &self.edge_list, &mut self.snap_words)
            {
                // Sparse support is static per dynamics: one refusal
                // means every round would refuse, so stop collecting.
                self.sparse_fill = false;
                self.dynamics.presence_words_into(t, &mut self.snap_words);
            }
        } else {
            self.dynamics.presence_words_into(t, &mut self.snap_words);
        }
        self.compute_others();
        let n = self.ring.node_count() as u32;
        let k = self.robot_count();
        for r in 0..k {
            // Look: gather the two adjacent presence bits of every lane.
            // At node v the clockwise edge is e_v and the counter-clockwise
            // edge is e_{v-1 mod n}; chirality maps them to left/right.
            // Lane l only needs bit l of each word, so the extraction is a
            // single mask-AND per word.
            let mut cw_bits = 0u64;
            let mut ccw_bits = 0u64;
            let lane_pos: &[u32; LANES] = self.positions[r * LANES..(r + 1) * LANES]
                .try_into()
                .expect("lane column");
            let mut mask = 1u64;
            for &v in lane_pos.iter() {
                let cw_edge = v as usize;
                let ccw_edge = ccw_edge(v, n) as usize;
                cw_bits |= self.snap_words[cw_edge] & mask;
                ccw_bits |= self.snap_words[ccw_edge] & mask;
                mask = mask.rotate_left(1);
            }
            let (edge_left, edge_right) = match self.chirality[r] {
                Chirality::Standard => (ccw_bits, cw_bits),
                Chirality::Mirrored => (cw_bits, ccw_bits),
            };
            let view = ViewWords {
                dir: self.dirs[r],
                edge_left,
                edge_right,
                others: self.others_words[r],
            };
            // Compute: all 64 lanes in one call.
            let dir_after = self.algorithm.compute_word(&mut self.states[r], &view);
            // Move: cross the pointed edge iff present in the same
            // snapshot — the adjacent edge in the *new* direction.
            let moved = (dir_after & edge_right) | (!dir_after & edge_left);
            // Bit set ⇔ the move (if any) goes globally clockwise.
            let cw_word = match self.chirality[r] {
                Chirality::Standard => dir_after,
                Chirality::Mirrored => !dir_after,
            };
            // Branch-free position update in every lane: the (moved, cw)
            // bit pair selects the step — 0 mod n for parked lanes, +1
            // for clockwise moves, n-1 for counter-clockwise ones.
            let step_table = [0u32, 0, n - 1, 1];
            let lane_pos: &mut [u32; LANES] = (&mut self.positions
                [r * LANES..(r + 1) * LANES])
                .try_into()
                .expect("lane column");
            let mut mbits = moved;
            let mut cbits = cw_word;
            for v in lane_pos.iter_mut() {
                let idx = (((mbits & 1) << 1) | (cbits & 1)) as usize;
                mbits >>= 1;
                cbits >>= 1;
                let nv = *v + step_table[idx];
                *v = if nv >= n { nv - n } else { nv };
            }
            self.dirs[r] = dir_after;
            self.moved[r] = moved;
        }
        self.time += 1;
    }

    /// Executes `rounds` lockstep rounds (`rounds × 64` replica-rounds).
    pub fn run(&mut self, rounds: u64) {
        for _ in 0..rounds {
            self.step();
        }
    }

    /// Runs until every lane tracked by `coverage` has completed its
    /// first cover or `max_rounds` elapse; returns the rounds executed.
    ///
    /// # Panics
    ///
    /// Panics when `coverage` was built for a different ring size.
    pub fn run_covering(&mut self, max_rounds: u64, coverage: &mut BatchCoverage) -> u64 {
        for executed in 0..max_rounds {
            if coverage.all_covered() {
                return executed;
            }
            self.step();
            coverage.observe(self);
        }
        max_rounds
    }
}

/// First-cover tracking across all 64 lanes of a [`BatchSimulator`]:
/// which rounds each replica first visited every node.
///
/// Kept outside the simulator so pure-throughput runs pay nothing for it.
#[derive(Debug, Clone)]
pub struct BatchCoverage {
    /// Per node: the lanes that have visited it.
    visited: Vec<u64>,
    /// Per lane: nodes not yet visited.
    remaining: [u32; LANES],
    /// Per lane: round of the first complete cover.
    first_cover: [Option<Time>; LANES],
}

impl BatchCoverage {
    /// Starts tracking from `sim`'s current configuration (the occupied
    /// nodes count as visited, as in [`crate::ExecutionTrace`]).
    pub fn new<A: BatchAlgorithm, D: BatchDynamics>(sim: &BatchSimulator<A, D>) -> Self {
        let n = sim.ring().node_count();
        let mut coverage = BatchCoverage {
            visited: vec![0; n],
            remaining: [n as u32; LANES],
            first_cover: [None; LANES],
        };
        coverage.observe(sim);
        coverage
    }

    /// Folds `sim`'s current positions into the ledger; call once after
    /// every [`BatchSimulator::step`].
    pub fn observe<A: BatchAlgorithm, D: BatchDynamics>(&mut self, sim: &BatchSimulator<A, D>) {
        let t = sim.time();
        let k = sim.robot_count();
        for r in 0..k {
            let lane_pos = &sim.positions[r * LANES..(r + 1) * LANES];
            for (lane, &v) in lane_pos.iter().enumerate() {
                let bit = 1u64 << lane;
                let seen = &mut self.visited[v as usize];
                if *seen & bit == 0 {
                    *seen |= bit;
                    self.remaining[lane] -= 1;
                    if self.remaining[lane] == 0 && self.first_cover[lane].is_none() {
                        self.first_cover[lane] = Some(t);
                    }
                }
            }
        }
    }

    /// Round of lane `lane`'s first complete cover, if it happened.
    ///
    /// # Panics
    ///
    /// Panics when `lane ≥ 64`.
    pub fn first_cover(&self, lane: u32) -> Option<Time> {
        self.first_cover[lane as usize]
    }

    /// First-cover rounds of all 64 lanes.
    pub fn first_covers(&self) -> &[Option<Time>; LANES] {
        &self.first_cover
    }

    /// Lanes that have completed a cover, as a bitmask.
    pub fn covered_lanes(&self) -> u64 {
        let mut mask = 0u64;
        for (lane, c) in self.first_cover.iter().enumerate() {
            mask |= u64::from(c.is_some()) << lane;
        }
        mask
    }

    /// `true` when every lane has covered the ring.
    pub fn all_covered(&self) -> bool {
        self.covered_lanes() == u64::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Algorithm, Oblivious, PerLane, Simulator, View};
    use dynring_graph::{AbsenceIntervals, AlwaysPresent, EdgeId};

    /// Keeps its direction forever.
    #[derive(Debug, Clone, Copy)]
    struct KeepDir;

    impl Algorithm for KeepDir {
        type State = ();

        fn name(&self) -> &str {
            "keep-dir"
        }

        fn initial_state(&self) {}

        fn compute(&self, _state: &mut (), view: &View) -> LocalDir {
            view.dir()
        }
    }

    /// Bounces on missing edges, counting computes.
    #[derive(Debug, Clone, Copy)]
    struct Bounce;

    impl Algorithm for Bounce {
        type State = u32;

        fn name(&self) -> &str {
            "bounce"
        }

        fn initial_state(&self) -> u32 {
            0
        }

        fn compute(&self, state: &mut u32, view: &View) -> LocalDir {
            *state += 1;
            if view.exists_edge_ahead() {
                view.dir()
            } else {
                view.dir().opposite()
            }
        }
    }

    fn ring(n: usize) -> RingTopology {
        RingTopology::new(n).expect("valid ring")
    }

    fn spread(n: usize, k: usize) -> Vec<RobotPlacement> {
        (0..k)
            .map(|i| {
                let chirality = if i % 2 == 0 {
                    Chirality::Standard
                } else {
                    Chirality::Mirrored
                };
                RobotPlacement::at(NodeId::new(i * n / k)).with_chirality(chirality)
            })
            .collect()
    }

    #[test]
    fn validation_mirrors_the_serial_engine() {
        let r = ring(3);
        let dynamics = || UniformBatch::new(AlwaysPresent::new(ring(3)));
        assert!(matches!(
            BatchSimulator::new(r.clone(), PerLane(KeepDir), dynamics(), vec![]),
            Err(EngineError::NoRobots)
        ));
        let tower = vec![
            RobotPlacement::at(NodeId::new(1)),
            RobotPlacement::at(NodeId::new(1)),
        ];
        assert!(matches!(
            BatchSimulator::new(r.clone(), PerLane(KeepDir), dynamics(), tower),
            Err(EngineError::InitialTower { .. })
        ));
        let mismatched = UniformBatch::new(AlwaysPresent::new(ring(4)));
        assert!(matches!(
            BatchSimulator::new(
                r,
                PerLane(KeepDir),
                mismatched,
                vec![RobotPlacement::at(NodeId::new(0))]
            ),
            Err(EngineError::RingMismatch { .. })
        ));
    }

    #[test]
    fn uniform_static_lanes_all_walk_identically() {
        let r = ring(6);
        let mut batch = BatchSimulator::new(
            r.clone(),
            PerLane(KeepDir),
            UniformBatch::new(AlwaysPresent::new(r.clone())),
            vec![RobotPlacement::at(NodeId::new(0))],
        )
        .expect("valid setup");
        let mut serial = Simulator::new(
            r.clone(),
            KeepDir,
            Oblivious::new(AlwaysPresent::new(r)),
            vec![RobotPlacement::at(NodeId::new(0))],
        )
        .expect("valid setup");
        for _ in 0..10 {
            batch.step();
            serial.step_quiet();
            for lane in [0u32, 17, 63] {
                assert_eq!(batch.positions_of(lane), serial.positions());
            }
        }
        assert_eq!(batch.time(), 10);
    }

    #[test]
    fn uniform_scripted_outage_matches_serial_in_every_lane() {
        // A deterministic blink forces direction changes through the
        // Bounce circuit-free fallback; all lanes must track the serial
        // run exactly (positions, dirs, moved flags, states).
        let r = ring(5);
        let mut schedule = AbsenceIntervals::new(r.clone());
        schedule.remove_during(EdgeId::new(4), 0, 3);
        schedule.remove_during(EdgeId::new(1), 2, 6);
        let placements = spread(5, 2);
        let mut batch = BatchSimulator::new(
            r.clone(),
            PerLane(Bounce),
            UniformBatch::new(schedule.clone()),
            placements.clone(),
        )
        .expect("valid setup");
        let mut serial = Simulator::new(r, Bounce, Oblivious::new(schedule), placements)
            .expect("valid setup");
        for round in 0..30 {
            batch.step();
            serial.step_quiet();
            for lane in [0u32, 40] {
                let snaps = batch.lane_snapshots(lane);
                let reference = serial.snapshots();
                assert_eq!(snaps, reference, "round {round} lane {lane}");
                for robot in 0..2 {
                    assert_eq!(
                        batch.lane_state(RobotId::new(robot), lane),
                        *serial.state_of(RobotId::new(robot)),
                        "round {round} lane {lane} robot {robot}"
                    );
                }
            }
        }
    }

    #[test]
    fn bernoulli_lanes_match_their_derived_serial_schedules() {
        // The core lockstep contract on stochastic dynamics, including a
        // team large enough to take the occupancy (non-pairwise) path.
        for (n, k) in [(9usize, 3usize), (23, 11)] {
            let r = ring(n);
            let replicas = BernoulliReplicas::new(r.clone(), 0.45, 0xBEEF).expect("valid p");
            let placements = spread(n, k);
            let mut batch = BatchSimulator::new(
                r.clone(),
                PerLane(Bounce),
                replicas.clone(),
                placements.clone(),
            )
            .expect("valid setup");
            let mut serials: Vec<_> = (0..LANES as u32)
                .map(|lane| {
                    Simulator::new(
                        r.clone(),
                        Bounce,
                        Oblivious::new(replicas.lane(lane)),
                        placements.clone(),
                    )
                    .expect("valid setup")
                })
                .collect();
            for round in 0..60 {
                batch.step();
                for (lane, serial) in serials.iter_mut().enumerate() {
                    serial.step_quiet();
                    assert_eq!(
                        batch.positions_of(lane as u32),
                        serial.positions(),
                        "n={n} k={k} round {round} lane {lane}"
                    );
                }
            }
        }
    }

    /// Exhaustive wraparound check of the adjacent-edge computation: at
    /// node 0 the ccw edge is `n - 1`, at node `n - 1` it is `n - 2`, and
    /// in between it is `v - 1` — for every ring size the engine accepts.
    #[test]
    fn ccw_edge_wraps_exhaustively() {
        for n in 2u32..=130 {
            for v in 0..n {
                let expected = (u64::from(v) + u64::from(n) - 1) % u64::from(n);
                assert_eq!(u64::from(ccw_edge(v, n)), expected, "n={n} v={v}");
            }
            assert_eq!(ccw_edge(0, n), n - 1, "node 0 wraps to the last edge");
            assert_eq!(ccw_edge(n - 1, n), n - 2, "node n-1 stays in range");
        }
    }

    /// Robots sitting on the wrap boundary (nodes 0 and n−1) must consult
    /// the correct edges in both directions: a scripted outage of edge
    /// n−1 (node 0's ccw edge) and edge 0 (node 0's cw edge) steers both
    /// chirality variants identically in batch and serial.
    #[test]
    fn boundary_nodes_read_the_wrapped_edges() {
        for n in [4usize, 5, 64, 65] {
            let r = ring(n);
            let mut schedule = AbsenceIntervals::new(r.clone());
            schedule.remove_during(EdgeId::new(n - 1), 0, 7);
            schedule.remove_during(EdgeId::new(0), 3, 11);
            schedule.remove_during(EdgeId::new(n - 2), 5, 9);
            for chirality in [Chirality::Standard, Chirality::Mirrored] {
                for node in [0usize, n - 1] {
                    let placements =
                        vec![RobotPlacement::at(NodeId::new(node)).with_chirality(chirality)];
                    let mut batch = BatchSimulator::new(
                        r.clone(),
                        PerLane(Bounce),
                        UniformBatch::new(schedule.clone()),
                        placements.clone(),
                    )
                    .expect("valid setup");
                    let mut serial = Simulator::new(
                        r.clone(),
                        Bounce,
                        Oblivious::new(schedule.clone()),
                        placements,
                    )
                    .expect("valid setup");
                    for round in 0..25 {
                        batch.step();
                        serial.step_quiet();
                        assert_eq!(
                            batch.positions_of(0),
                            serial.positions(),
                            "n={n} chirality={chirality:?} start={node} round={round}"
                        );
                    }
                }
            }
        }
    }

    /// A dynamics that supports only the full fill: the refusing default
    /// for `presence_words_sparse`.
    struct FullFillOnly(BernoulliReplicas);

    impl BatchDynamics for FullFillOnly {
        fn ring(&self) -> &RingTopology {
            BernoulliReplicas::ring(&self.0)
        }

        fn presence_words_into(&mut self, t: Time, out: &mut [u64]) {
            self.0.presence_words_into(t, out);
        }
    }

    #[test]
    fn sparse_fill_is_bit_identical_to_full_fill() {
        // The tentpole contract: forcing the fill strategy either way
        // changes nothing observable — positions, dirs, moved flags and
        // states stay bit-for-bit equal, on stochastic and deterministic
        // dynamics alike.
        for (n, k) in [(9usize, 3usize), (23, 11), (130, 2)] {
            let r = ring(n);
            let replicas = BernoulliReplicas::new(r.clone(), 0.45, 0xCAFE).expect("valid p");
            let placements = spread(n, k);
            let make = |sparse: bool| {
                let mut sim = BatchSimulator::new(
                    r.clone(),
                    PerLane(Bounce),
                    replicas.clone(),
                    placements.clone(),
                )
                .expect("valid setup");
                sim.set_sparse_fill(sparse);
                sim
            };
            let mut sparse = make(true);
            let mut full = make(false);
            assert!(sparse.sparse_fill() && !full.sparse_fill());
            for round in 0..80 {
                sparse.step();
                full.step();
                for lane in [0u32, 13, 63] {
                    assert_eq!(
                        sparse.lane_snapshots(lane),
                        full.lane_snapshots(lane),
                        "n={n} k={k} round={round} lane={lane}"
                    );
                    for robot in 0..k {
                        assert_eq!(
                            sparse.lane_state(RobotId::new(robot), lane),
                            full.lane_state(RobotId::new(robot), lane),
                            "n={n} k={k} round={round} lane={lane} robot={robot}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn sparse_fill_works_on_uniform_deterministic_dynamics() {
        let r = ring(70);
        let mut schedule = AbsenceIntervals::new(r.clone());
        schedule.remove_during(EdgeId::new(69), 0, 5);
        schedule.remove_during(EdgeId::new(1), 2, 9);
        let placements = spread(70, 2);
        let make = |sparse: bool| {
            let mut sim = BatchSimulator::new(
                r.clone(),
                PerLane(Bounce),
                UniformBatch::new(schedule.clone()),
                placements.clone(),
            )
            .expect("valid setup");
            sim.set_sparse_fill(sparse);
            sim
        };
        let mut sparse = make(true);
        let mut full = make(false);
        for round in 0..40 {
            sparse.step();
            full.step();
            assert_eq!(sparse.lane_snapshots(0), full.lane_snapshots(0), "round {round}");
        }
    }

    #[test]
    fn sparse_fill_falls_back_for_full_fill_only_dynamics() {
        let r = ring(40);
        let replicas = BernoulliReplicas::new(r.clone(), 0.5, 99).expect("valid p");
        let placements = spread(40, 1);
        let mut refusing = BatchSimulator::new(
            r.clone(),
            PerLane(Bounce),
            FullFillOnly(replicas.clone()),
            placements.clone(),
        )
        .expect("valid setup");
        refusing.set_sparse_fill(true);
        let mut reference =
            BatchSimulator::new(r, PerLane(Bounce), replicas, placements).expect("valid setup");
        reference.set_sparse_fill(false);
        refusing.step();
        assert!(
            !refusing.sparse_fill(),
            "one refusal must disable the sparse fill for good"
        );
        reference.step();
        for _ in 0..30 {
            refusing.step();
            reference.step();
            assert_eq!(refusing.lane_snapshots(7), reference.lane_snapshots(7));
        }
    }

    #[test]
    fn sparse_fill_auto_threshold_follows_ring_and_team_size() {
        // 2·k·64 touched edges need SPARSE_FILL_HEADROOM× headroom: with
        // k = 1 the cutover sits at n = 256.
        let make = |n: usize, k: usize| {
            let r = ring(n);
            let replicas = BernoulliReplicas::new(r.clone(), 0.5, 1).expect("valid p");
            BatchSimulator::new(r, PerLane(KeepDir), replicas, spread(n, k))
                .expect("valid setup")
        };
        assert!(!make(64, 1).sparse_fill());
        assert!(!make(255, 1).sparse_fill());
        assert!(make(256, 1).sparse_fill());
        assert!(make(4096, 3).sparse_fill());
        assert!(!make(4096, 17).sparse_fill());
    }

    #[test]
    fn coverage_tracks_first_covers_per_lane() {
        // Single robot on a static 4-ring covers in exactly 3 rounds in
        // every lane.
        let r = ring(4);
        let mut batch = BatchSimulator::new(
            r.clone(),
            PerLane(KeepDir),
            UniformBatch::new(AlwaysPresent::new(r)),
            vec![RobotPlacement::at(NodeId::new(0))],
        )
        .expect("valid setup");
        let mut coverage = BatchCoverage::new(&batch);
        assert_eq!(coverage.covered_lanes(), 0);
        let executed = batch.run_covering(100, &mut coverage);
        assert_eq!(executed, 3);
        assert!(coverage.all_covered());
        for lane in 0..LANES as u32 {
            assert_eq!(coverage.first_cover(lane), Some(3), "lane {lane}");
        }
    }

    #[test]
    fn coverage_matches_a_serial_visit_ledger_per_lane() {
        let r = ring(7);
        let replicas = BernoulliReplicas::new(r.clone(), 0.6, 31).expect("valid p");
        let placements = spread(7, 3);
        let mut batch = BatchSimulator::new(
            r.clone(),
            PerLane(Bounce),
            replicas.clone(),
            placements.clone(),
        )
        .expect("valid setup");
        let mut coverage = BatchCoverage::new(&batch);
        let horizon = 200u64;
        for _ in 0..horizon {
            batch.step();
            coverage.observe(&batch);
        }
        for lane in [0u32, 9, 63] {
            // Serial reference: run the lane's schedule, tracking visits.
            let mut serial = Simulator::new(
                r.clone(),
                Bounce,
                Oblivious::new(replicas.lane(lane)),
                placements.clone(),
            )
            .expect("valid setup");
            let mut seen = [false; 7];
            let mut missing = 7usize;
            let mut first_cover = None;
            let mut note = |positions: &[NodeId], t: Time| {
                for p in positions {
                    if !seen[p.index()] {
                        seen[p.index()] = true;
                        missing -= 1;
                        if missing == 0 && first_cover.is_none() {
                            first_cover = Some(t);
                        }
                    }
                }
            };
            note(&serial.positions(), 0);
            for t in 1..=horizon {
                serial.step_quiet();
                note(&serial.positions(), t);
            }
            assert_eq!(coverage.first_cover(lane), first_cover, "lane {lane}");
        }
    }
}
