//! Activation policies: FSYNC and SSYNC scheduling.
//!
//! In FSYNC every robot executes the full Look-Compute-Move cycle every
//! round ([`FullActivation`]). In SSYNC the adversarial scheduler activates
//! an arbitrary non-empty subset each round; an activated robot performs one
//! full atomic cycle, the others do nothing. Di Luna et al. (ICDCS 2016)
//! proved exploration of dynamic rings impossible under SSYNC — which is why
//! the paper restricts itself to FSYNC; `dynring-adversary` replays that
//! impossibility with these policies.

use dynring_graph::{LaneWord, Time};

/// Decides which robots are activated each round.
///
/// Returning an all-`false` vector produces a *stutter* round: time and the
/// graph advance but no robot looks, computes or moves. A fair SSYNC
/// scheduler activates every robot infinitely often; policies in this module
/// are all fair.
pub trait ActivationPolicy {
    /// Activation vector for round `time` over `robots` robots.
    fn activate(&mut self, time: Time, robots: usize) -> Vec<bool>;

    /// Writes the activation vector into `out` without allocating.
    ///
    /// The round engine calls this; the default delegates to
    /// [`ActivationPolicy::activate`]. Built-in policies override it to
    /// keep the hot path allocation-free.
    fn activate_into(&mut self, time: Time, robots: usize, out: &mut Vec<bool>) {
        out.clear();
        out.extend(self.activate(time, robots));
    }

    /// `true` when this policy activates every robot every round (FSYNC).
    /// The round engine uses it to skip activation bookkeeping entirely on
    /// the hot path; policies that ever skip a robot must return `false`
    /// (the default).
    fn is_full(&self) -> bool {
        false
    }
}

impl<P: ActivationPolicy + ?Sized> ActivationPolicy for Box<P> {
    fn activate(&mut self, time: Time, robots: usize) -> Vec<bool> {
        (**self).activate(time, robots)
    }

    fn activate_into(&mut self, time: Time, robots: usize, out: &mut Vec<bool>) {
        (**self).activate_into(time, robots, out);
    }

    fn is_full(&self) -> bool {
        (**self).is_full()
    }
}

/// FSYNC: every robot, every round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FullActivation;

impl ActivationPolicy for FullActivation {
    fn activate(&mut self, _time: Time, robots: usize) -> Vec<bool> {
        vec![true; robots]
    }

    fn activate_into(&mut self, _time: Time, robots: usize, out: &mut Vec<bool>) {
        out.clear();
        out.resize(robots, true);
    }

    fn is_full(&self) -> bool {
        true
    }
}

/// SSYNC round-robin: activates exactly one robot per round, cycling
/// through them in id order. Fair, and the weakest useful scheduler.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundRobinSingle;

impl ActivationPolicy for RoundRobinSingle {
    fn activate(&mut self, time: Time, robots: usize) -> Vec<bool> {
        let mut v = vec![false; robots];
        if robots > 0 {
            v[(time % robots as Time) as usize] = true;
        }
        v
    }

    fn activate_into(&mut self, time: Time, robots: usize, out: &mut Vec<bool>) {
        out.clear();
        out.resize(robots, false);
        if robots > 0 {
            out[(time % robots as Time) as usize] = true;
        }
    }
}

/// SSYNC partition scheduler: robot `i` is activated at round `t` iff
/// `i ≡ t (mod k)`. With `k = 1` this degenerates to FSYNC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EveryKth {
    k: u64,
}

impl EveryKth {
    /// Creates the partition scheduler with modulus `k ≥ 1`.
    ///
    /// # Panics
    ///
    /// Panics when `k == 0`.
    pub fn new(k: u64) -> Self {
        assert!(k >= 1, "modulus must be at least 1");
        EveryKth { k }
    }

    /// The modulus.
    pub fn modulus(&self) -> u64 {
        self.k
    }
}

impl ActivationPolicy for EveryKth {
    fn activate(&mut self, time: Time, robots: usize) -> Vec<bool> {
        let mut out = Vec::new();
        self.activate_into(time, robots, &mut out);
        out
    }

    fn activate_into(&mut self, time: Time, robots: usize, out: &mut Vec<bool>) {
        out.clear();
        out.extend((0..robots).map(|i| (i as Time) % self.k == time % self.k));
    }
}

/// The word-parallel form of [`ActivationPolicy`] for the batch engine:
/// one activation bit per robot per lane, structurally identical to the
/// presence words. Lane `l` of [`BatchActivation::activation_word`] must
/// equal what [`ActivationPolicy::activate`] returns for the same
/// `(time, robots, robot)` — the serial-equivalence contract extended to
/// scheduling.
///
/// The built-in deterministic policies ([`FullActivation`],
/// [`RoundRobinSingle`], [`EveryKth`]) are *lane-uniform*: every lane
/// activates the same robots, so their words are all-ones or all-zeros
/// and the engine can skip a fully-inactive robot outright. Lane-mixed
/// policies are allowed; they route through
/// [`crate::BatchAlgorithm::compute_word_masked`].
pub trait BatchActivation<W: LaneWord = u64> {
    /// The activation word of `robot` at round `time` over `robots`
    /// robots: lane `l` set ⇔ replica `l` activates this robot.
    fn activation_word(&mut self, time: Time, robots: usize, robot: usize) -> W;

    /// `true` when every robot activates in every lane every round
    /// (FSYNC). Mirrors [`ActivationPolicy::is_full`]: the batch engine
    /// uses it to skip activation words entirely.
    fn is_full(&self) -> bool {
        false
    }
}

impl<W: LaneWord> BatchActivation<W> for FullActivation {
    fn activation_word(&mut self, _time: Time, _robots: usize, _robot: usize) -> W {
        W::ONES
    }

    fn is_full(&self) -> bool {
        true
    }
}

impl<W: LaneWord> BatchActivation<W> for RoundRobinSingle {
    fn activation_word(&mut self, time: Time, robots: usize, robot: usize) -> W {
        W::splat(robots > 0 && (time % robots as Time) as usize == robot)
    }
}

impl<W: LaneWord> BatchActivation<W> for EveryKth {
    fn activation_word(&mut self, time: Time, _robots: usize, robot: usize) -> W {
        W::splat((robot as Time) % self.k == time % self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynring_graph::{Lanes128, Lanes256};

    #[test]
    fn full_activation_activates_everyone() {
        let mut p = FullActivation;
        assert_eq!(p.activate(0, 3), vec![true, true, true]);
        assert_eq!(p.activate(99, 1), vec![true]);
    }

    #[test]
    fn round_robin_cycles() {
        let mut p = RoundRobinSingle;
        assert_eq!(p.activate(0, 3), vec![true, false, false]);
        assert_eq!(p.activate(1, 3), vec![false, true, false]);
        assert_eq!(p.activate(2, 3), vec![false, false, true]);
        assert_eq!(p.activate(3, 3), vec![true, false, false]);
    }

    #[test]
    fn round_robin_is_fair() {
        let mut p = RoundRobinSingle;
        let mut counts = [0u32; 4];
        for t in 0..40 {
            for (i, on) in p.activate(t, 4).into_iter().enumerate() {
                if on {
                    counts[i] += 1;
                }
            }
        }
        assert_eq!(counts, [10, 10, 10, 10]);
    }

    #[test]
    fn every_kth_partitions() {
        let mut p = EveryKth::new(2);
        assert_eq!(p.activate(0, 4), vec![true, false, true, false]);
        assert_eq!(p.activate(1, 4), vec![false, true, false, true]);
        assert_eq!(EveryKth::new(1).activate(7, 3), vec![true, true, true]);
    }

    #[test]
    #[should_panic(expected = "modulus must be at least 1")]
    fn every_kth_rejects_zero() {
        let _ = EveryKth::new(0);
    }

    fn words_match_scalar<W: LaneWord, P: ActivationPolicy + BatchActivation<W> + Clone>(p: &P) {
        let mut scalar = p.clone();
        let mut batch = p.clone();
        for t in 0..24 {
            let robots = 1 + (t as usize % 5);
            let bits = scalar.activate(t, robots);
            for (robot, &on) in bits.iter().enumerate() {
                let word = batch.activation_word(t, robots, robot);
                assert_eq!(
                    word,
                    W::splat(on),
                    "t={t} robots={robots} robot={robot}: built-in policies are lane-uniform"
                );
            }
        }
    }

    #[test]
    fn activation_words_match_the_scalar_policies_at_every_arity() {
        words_match_scalar::<u64, _>(&FullActivation);
        words_match_scalar::<u64, _>(&RoundRobinSingle);
        words_match_scalar::<u64, _>(&EveryKth::new(3));
        words_match_scalar::<Lanes128, _>(&RoundRobinSingle);
        words_match_scalar::<Lanes256, _>(&EveryKth::new(2));
        assert!(BatchActivation::<u64>::is_full(&FullActivation));
        assert!(!BatchActivation::<Lanes256>::is_full(&RoundRobinSingle));
    }
}
