//! The ASYNC execution model: fully independent Look, Compute and Move
//! phases.
//!
//! In ASYNC (§1 of the paper, after Flocchini–Prencipe–Santoro) each robot
//! executes its Look-Compute-Move cycle at its own pace: the snapshot it
//! acts upon may be arbitrarily stale by the time it moves. We discretize:
//! every tick the scheduler picks a subset of robots, and each picked robot
//! advances its *next pending phase* (Look → Compute → Move → Look → …)
//! against the tick's snapshot.
//!
//! This module exists to reproduce the reason the paper restricts itself to
//! FSYNC: the adversary that removes the edge a robot is about to traverse
//! *at its Move tick* ([`MoveBlocker`], after Di Luna et al.) freezes every
//! deterministic algorithm — even a single robot — while keeping every edge
//! recurrent (the blocked edge is only absent during Move ticks, one tick
//! in three per robot).

use dynring_graph::{EdgeSet, NodeId, RingTopology, Time};

use crate::{
    ActivationPolicy, Algorithm, EdgeProbe, EngineError, FullActivation, LocalDir, RobotId,
    RobotPlacement, RobotSnapshot, View,
};

/// Which phase a robot will execute at its next activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhaseKind {
    /// Next activation takes a snapshot.
    Look,
    /// Next activation runs the algorithm on the stored (stale) snapshot.
    Compute,
    /// Next activation attempts to cross the pointed edge.
    Move,
}

#[derive(Debug, Clone)]
enum Phase {
    Look,
    Compute { view: View },
    Move,
}

impl Phase {
    fn kind(&self) -> PhaseKind {
        match self {
            Phase::Look => PhaseKind::Look,
            Phase::Compute { .. } => PhaseKind::Compute,
            Phase::Move => PhaseKind::Move,
        }
    }
}

/// What the ASYNC adversary sees before choosing a tick's snapshot: the
/// configuration *plus* each robot's pending phase (the classical ASYNC
/// adversary knows who is about to move).
#[derive(Debug, Clone, Copy)]
pub struct AsyncObservation<'a> {
    time: Time,
    ring: &'a RingTopology,
    robots: &'a [RobotSnapshot],
    phases: &'a [PhaseKind],
}

impl<'a> AsyncObservation<'a> {
    /// Current tick.
    pub fn time(&self) -> Time {
        self.time
    }

    /// The ring.
    pub fn ring(&self) -> &'a RingTopology {
        self.ring
    }

    /// Robot snapshots in id order.
    pub fn robots(&self) -> &'a [RobotSnapshot] {
        self.robots
    }

    /// Pending phase of each robot, in id order.
    pub fn phases(&self) -> &'a [PhaseKind] {
        self.phases
    }
}

/// The ASYNC adversary: chooses each tick's snapshot, aware of pending
/// phases.
pub trait AsyncDynamics {
    /// The ring being scheduled.
    fn ring(&self) -> &RingTopology;

    /// The snapshot for this tick.
    fn edges_at(&mut self, obs: &AsyncObservation<'_>) -> EdgeSet;

    /// Writes the snapshot into `out` without allocating (the tick
    /// engine's hot path; the default delegates to
    /// [`AsyncDynamics::edges_at`]).
    fn edges_at_into(&mut self, obs: &AsyncObservation<'_>, out: &mut EdgeSet) {
        *out = self.edges_at(obs);
    }

    /// Sparse fast path, mirroring [`crate::Dynamics::probe_edges`]: on
    /// quiet ticks the engine offers the snapshot as O(robots) point
    /// queries; answering them (and returning `true`) skips the O(n)
    /// snapshot scan. The default returns `false` without touching queries
    /// or state — "fall back to [`AsyncDynamics::edges_at_into`] for this
    /// tick". Exactly one of the two methods is called per tick, and
    /// answers must agree with what `edges_at_into` would have produced.
    fn probe_edges(&mut self, _obs: &AsyncObservation<'_>, _queries: &mut [EdgeProbe]) -> bool {
        false
    }
}

/// Phase-oblivious adapter for plain schedules.
#[derive(Debug, Clone)]
pub struct ObliviousAsync<S> {
    schedule: S,
}

impl<S: dynring_graph::EdgeSchedule> ObliviousAsync<S> {
    /// Wraps a pure schedule.
    pub fn new(schedule: S) -> Self {
        ObliviousAsync { schedule }
    }
}

impl<S: dynring_graph::EdgeSchedule> AsyncDynamics for ObliviousAsync<S> {
    fn ring(&self) -> &RingTopology {
        self.schedule.ring()
    }

    fn edges_at(&mut self, obs: &AsyncObservation<'_>) -> EdgeSet {
        self.schedule.edges_at(obs.time())
    }

    fn edges_at_into(&mut self, obs: &AsyncObservation<'_>, out: &mut EdgeSet) {
        self.schedule.edges_at_into(obs.time(), out);
    }

    fn probe_edges(&mut self, obs: &AsyncObservation<'_>, queries: &mut [EdgeProbe]) -> bool {
        crate::dynamics::answer_probes_from_schedule(&self.schedule, obs.time(), queries);
        true
    }
}

/// The ASYNC impossibility adversary: every tick, remove exactly the edges
/// pointed to by robots whose pending phase is **Move**.
///
/// Each such edge is absent only during Move ticks of an adjacent robot —
/// at most one tick in three per robot under fair scheduling — so every
/// edge recurs and the produced evolving graph is connected-over-time. Yet
/// no Move ever succeeds: every deterministic algorithm freezes, for any
/// number of robots (including one). This is why dynamic-ring exploration
/// needs FSYNC.
#[derive(Debug, Clone)]
pub struct MoveBlocker {
    ring: RingTopology,
}

impl MoveBlocker {
    /// Creates the blocker.
    pub fn new(ring: RingTopology) -> Self {
        MoveBlocker { ring }
    }
}

impl AsyncDynamics for MoveBlocker {
    fn ring(&self) -> &RingTopology {
        &self.ring
    }

    fn edges_at(&mut self, obs: &AsyncObservation<'_>) -> EdgeSet {
        let mut set = EdgeSet::empty_for(&self.ring);
        self.edges_at_into(obs, &mut set);
        set
    }

    fn edges_at_into(&mut self, obs: &AsyncObservation<'_>, out: &mut EdgeSet) {
        out.reset(self.ring.edge_count());
        out.fill();
        for (robot, phase) in obs.robots().iter().zip(obs.phases()) {
            if *phase == PhaseKind::Move {
                out.remove(self.ring.edge_towards(robot.node, robot.global_dir()));
            }
        }
    }

    /// Adaptive but *stateless*: the blocked set is a pure function of the
    /// observation, so point queries are answered by scanning the ≤ k
    /// robots — the impossibility adversary runs on the sparse path too.
    fn probe_edges(&mut self, obs: &AsyncObservation<'_>, queries: &mut [EdgeProbe]) -> bool {
        for q in queries.iter_mut() {
            q.present = !obs.robots().iter().zip(obs.phases()).any(|(robot, phase)| {
                *phase == PhaseKind::Move
                    && self.ring.edge_towards(robot.node, robot.global_dir()) == q.edge
            });
        }
        true
    }
}

/// One robot's tick record in an ASYNC run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AsyncRobotTick {
    /// Which robot.
    pub id: RobotId,
    /// The phase executed this tick, `None` when not activated.
    pub executed: Option<PhaseKind>,
    /// Position after the tick.
    pub node: NodeId,
    /// Whether a Move phase crossed an edge this tick.
    pub moved: bool,
}

/// The ASYNC counterpart of [`crate::Simulator`].
///
/// Each activated robot advances exactly one phase per tick; three
/// activations complete one Look-Compute-Move cycle. Under
/// [`FullActivation`] with a static graph this emulates a (slowed-down)
/// FSYNC execution; under adversarial scheduling and dynamics it exhibits
/// the ASYNC impossibility.
pub struct AsyncSimulator<A: Algorithm, D> {
    ring: RingTopology,
    algorithm: A,
    dynamics: D,
    activation: Box<dyn ActivationPolicy>,
    time: Time,
    nodes: Vec<NodeId>,
    chiralities: Vec<crate::Chirality>,
    dirs: Vec<LocalDir>,
    states: Vec<A::State>,
    phases: Vec<Phase>,
    moved_last: Vec<bool>,
    // Persistent scratch buffers (see `Simulator`): reused across ticks so
    // the quiet path is allocation-free.
    snap_buf: Vec<RobotSnapshot>,
    kind_buf: Vec<PhaseKind>,
    edge_buf: EdgeSet,
    occupancy_buf: Vec<usize>,
    // Nodes with a nonzero occupancy count, cleared sparsely (O(robots)
    // per tick instead of O(n); see `Simulator`).
    touched_buf: Vec<u32>,
    active_buf: Vec<bool>,
    probe_buf: Vec<EdgeProbe>,
}

impl<A: Algorithm, D: AsyncDynamics> AsyncSimulator<A, D> {
    /// Builds an ASYNC simulator (same validation as
    /// [`crate::Simulator::new`]).
    ///
    /// # Errors
    ///
    /// See [`crate::Simulator::new`].
    pub fn new(
        ring: RingTopology,
        algorithm: A,
        dynamics: D,
        placements: Vec<RobotPlacement>,
    ) -> Result<Self, EngineError> {
        if placements.is_empty() {
            return Err(EngineError::NoRobots);
        }
        if placements.len() >= ring.node_count() {
            return Err(EngineError::TooManyRobots {
                robots: placements.len(),
                nodes: ring.node_count(),
            });
        }
        if dynamics.ring().node_count() != ring.node_count() {
            return Err(EngineError::RingMismatch {
                expected: ring.node_count(),
                found: dynamics.ring().node_count(),
            });
        }
        let mut seen = vec![false; ring.node_count()];
        for p in &placements {
            if !ring.contains_node(p.node) {
                return Err(EngineError::NodeOutOfRange {
                    node: p.node,
                    nodes: ring.node_count(),
                });
            }
            if seen[p.node.index()] {
                return Err(EngineError::InitialTower { node: p.node });
            }
            seen[p.node.index()] = true;
        }
        let k = placements.len();
        let edge_buf = EdgeSet::empty(ring.edge_count());
        let occupancy_buf = vec![0usize; ring.node_count()];
        Ok(AsyncSimulator {
            ring,
            states: (0..k).map(|_| algorithm.initial_state()).collect(),
            algorithm,
            dynamics,
            activation: Box::new(FullActivation),
            time: 0,
            nodes: placements.iter().map(|p| p.node).collect(),
            chiralities: placements.iter().map(|p| p.chirality).collect(),
            dirs: placements.iter().map(|p| p.initial_dir).collect(),
            phases: (0..k).map(|_| Phase::Look).collect(),
            moved_last: vec![false; k],
            snap_buf: Vec::new(),
            kind_buf: Vec::new(),
            edge_buf,
            occupancy_buf,
            touched_buf: Vec::new(),
            active_buf: Vec::new(),
            probe_buf: Vec::new(),
        })
    }

    /// Replaces the activation policy.
    pub fn set_activation<P: ActivationPolicy + 'static>(&mut self, policy: P) {
        self.activation = Box::new(policy);
    }

    /// Current tick.
    pub fn time(&self) -> Time {
        self.time
    }

    /// Current positions, in robot-id order.
    pub fn positions(&self) -> Vec<NodeId> {
        self.nodes.clone()
    }

    /// Pending phase of each robot.
    pub fn phases(&self) -> Vec<PhaseKind> {
        self.phases.iter().map(Phase::kind).collect()
    }

    /// The shared tick body; pushes per-robot records into `records` when
    /// provided (see [`AsyncSimulator::tick_quiet`] for the silent path).
    fn tick_impl(&mut self, mut records: Option<&mut Vec<AsyncRobotTick>>) {
        let t = self.time;
        self.snap_buf.clear();
        for i in 0..self.nodes.len() {
            self.snap_buf.push(RobotSnapshot {
                id: RobotId::new(i),
                node: self.nodes[i],
                chirality: self.chiralities[i],
                dir: self.dirs[i],
                moved_last_round: self.moved_last[i],
            });
        }
        self.kind_buf.clear();
        self.kind_buf.extend(self.phases.iter().map(Phase::kind));
        let mut probed = false;
        {
            let obs = AsyncObservation {
                time: t,
                ring: &self.ring,
                robots: &self.snap_buf,
                phases: &self.kind_buf,
            };
            if records.is_none() {
                // Sparse fast path: robot i's (left, right) adjacent edges
                // at probe_buf[2i], probe_buf[2i + 1] — the only edges any
                // Look or Move phase can read this tick.
                self.probe_buf.clear();
                for i in 0..self.nodes.len() {
                    let chi = self.chiralities[i];
                    for dir in [LocalDir::Left, LocalDir::Right] {
                        self.probe_buf.push(EdgeProbe::new(
                            self.ring.edge_towards(self.nodes[i], chi.to_global(dir)),
                        ));
                    }
                }
                probed = self.dynamics.probe_edges(&obs, &mut self.probe_buf);
            }
            if !probed {
                self.dynamics.edges_at_into(&obs, &mut self.edge_buf);
            }
        }
        let all_active = self.activation.is_full();
        if !all_active {
            self.activation
                .activate_into(t, self.nodes.len(), &mut self.active_buf);
        }
        // Occupancy for Look phases, from the configuration at tick
        // start, refreshed in O(robots) — see
        // `crate::simulator::refresh_occupancy`.
        crate::simulator::refresh_occupancy(
            &mut self.occupancy_buf,
            &mut self.touched_buf,
            self.nodes.iter().map(|node| node.index()),
        );
        let edges = &self.edge_buf;
        // Pre-sliced activation vector (see `Simulator::step_impl`).
        let active: &[bool] = if all_active { &[] } else { &self.active_buf };
        debug_assert!(all_active || active.len() == self.nodes.len());
        // The tick body indexes every per-robot column (`nodes`, `phases`,
        // `dirs`, `states`, …) by robot id; an iterator over one of them
        // would not simplify anything.
        #[allow(clippy::needless_range_loop)]
        for i in 0..self.nodes.len() {
            if !(all_active || active[i]) {
                if let Some(records) = records.as_deref_mut() {
                    records.push(AsyncRobotTick {
                        id: RobotId::new(i),
                        executed: None,
                        node: self.nodes[i],
                        moved: false,
                    });
                }
                continue;
            }
            let executed = self.phases[i].kind();
            let mut moved = false;
            self.phases[i] = match std::mem::replace(&mut self.phases[i], Phase::Look) {
                Phase::Look => {
                    let node = self.nodes[i];
                    let chi = self.chiralities[i];
                    let (left, right) = if probed {
                        (self.probe_buf[2 * i].present, self.probe_buf[2 * i + 1].present)
                    } else {
                        (
                            edges.contains(
                                self.ring.edge_towards(node, chi.to_global(LocalDir::Left)),
                            ),
                            edges.contains(
                                self.ring.edge_towards(node, chi.to_global(LocalDir::Right)),
                            ),
                        )
                    };
                    let others = self.occupancy_buf[node.index()] > 1;
                    Phase::Compute {
                        view: View::new(self.dirs[i], left, right, others),
                    }
                }
                Phase::Compute { view } => {
                    self.dirs[i] = self.algorithm.compute(&mut self.states[i], &view);
                    Phase::Move
                }
                Phase::Move => {
                    let node = self.nodes[i];
                    // The pointed edge is the adjacent edge in the current
                    // direction — one of the tick's two probe queries.
                    let pointed_present = if probed {
                        match self.dirs[i] {
                            LocalDir::Left => self.probe_buf[2 * i].present,
                            LocalDir::Right => self.probe_buf[2 * i + 1].present,
                        }
                    } else {
                        let global = self.chiralities[i].to_global(self.dirs[i]);
                        edges.contains(self.ring.edge_towards(node, global))
                    };
                    if pointed_present {
                        let global = self.chiralities[i].to_global(self.dirs[i]);
                        self.nodes[i] = self.ring.neighbor(node, global);
                        moved = true;
                    }
                    self.moved_last[i] = moved;
                    Phase::Look
                }
            };
            if let Some(records) = records.as_deref_mut() {
                records.push(AsyncRobotTick {
                    id: RobotId::new(i),
                    executed: Some(executed),
                    node: self.nodes[i],
                    moved,
                });
            }
        }
        self.time += 1;
    }

    /// Executes one tick; each activated robot advances one phase.
    pub fn tick(&mut self) -> Vec<AsyncRobotTick> {
        let mut records = Vec::with_capacity(self.nodes.len());
        self.tick_impl(Some(&mut records));
        records
    }

    /// Executes one tick without materializing records — the
    /// allocation-free fast path.
    pub fn tick_quiet(&mut self) {
        self.tick_impl(None);
    }

    /// Runs `ticks` ticks, returning the set of visited nodes (including
    /// starts).
    pub fn run_collecting_visits(&mut self, ticks: u64) -> Vec<NodeId> {
        let mut seen = vec![false; self.ring.node_count()];
        for node in &self.nodes {
            seen[node.index()] = true;
        }
        for _ in 0..ticks {
            self.tick_quiet();
            for node in &self.nodes {
                seen[node.index()] = true;
            }
        }
        seen.iter()
            .enumerate()
            .filter(|&(_i, &s)| s).map(|(i, &_s)| NodeId::new(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynring_graph::AlwaysPresent;

    /// Keeps its direction forever.
    #[derive(Debug, Clone)]
    struct KeepDir;

    impl Algorithm for KeepDir {
        type State = ();

        fn name(&self) -> &str {
            "keep-dir"
        }

        fn initial_state(&self) {}

        fn compute(&self, _s: &mut (), view: &View) -> LocalDir {
            view.dir()
        }
    }

    /// Bounces on missing edges.
    #[derive(Debug, Clone)]
    struct Bounce;

    impl Algorithm for Bounce {
        type State = ();

        fn name(&self) -> &str {
            "bounce"
        }

        fn initial_state(&self) {}

        fn compute(&self, _s: &mut (), view: &View) -> LocalDir {
            if view.exists_edge_ahead() {
                view.dir()
            } else {
                view.dir().opposite()
            }
        }
    }

    fn ring(n: usize) -> RingTopology {
        RingTopology::new(n).expect("valid ring")
    }

    #[test]
    fn three_ticks_complete_one_cycle_on_static_ring() {
        let r = ring(5);
        let mut sim = AsyncSimulator::new(
            r.clone(),
            KeepDir,
            ObliviousAsync::new(AlwaysPresent::new(r)),
            vec![RobotPlacement::at(NodeId::new(0))],
        )
        .expect("valid setup");
        assert_eq!(sim.phases(), vec![PhaseKind::Look]);
        sim.tick(); // Look
        assert_eq!(sim.phases(), vec![PhaseKind::Compute]);
        sim.tick(); // Compute
        assert_eq!(sim.phases(), vec![PhaseKind::Move]);
        let rec = sim.tick(); // Move (ccw, default dir left)
        assert!(rec[0].moved);
        assert_eq!(sim.positions(), vec![NodeId::new(4)]);
        // Three more ticks: another full cycle.
        sim.tick();
        sim.tick();
        sim.tick();
        assert_eq!(sim.positions(), vec![NodeId::new(3)]);
    }

    #[test]
    fn async_emulates_fsync_on_static_graphs() {
        // On a static ring (view staleness is harmless), 3 ASYNC ticks with
        // full activation = 1 FSYNC round.
        use crate::{Oblivious, Simulator};
        let r = ring(6);
        let placements = vec![
            RobotPlacement::at(NodeId::new(0)),
            RobotPlacement::at(NodeId::new(3)),
        ];
        let mut fsync = Simulator::new(
            r.clone(),
            KeepDir,
            Oblivious::new(AlwaysPresent::new(r.clone())),
            placements.clone(),
        )
        .expect("valid setup");
        let mut asim = AsyncSimulator::new(
            r.clone(),
            KeepDir,
            ObliviousAsync::new(AlwaysPresent::new(r)),
            placements,
        )
        .expect("valid setup");
        for _ in 0..10 {
            fsync.step();
            asim.tick();
            asim.tick();
            asim.tick();
            assert_eq!(fsync.positions(), asim.positions());
        }
    }

    #[test]
    fn move_blocker_freezes_a_single_robot() {
        // The headline: under ASYNC even ONE robot is frozen by a
        // connected-over-time adversary — the edge it wants is removed
        // exactly at its Move ticks (one tick in three).
        let r = ring(5);
        let mut sim = AsyncSimulator::new(
            r.clone(),
            Bounce,
            MoveBlocker::new(r),
            vec![RobotPlacement::at(NodeId::new(2))],
        )
        .expect("valid setup");
        let visited = sim.run_collecting_visits(300);
        assert_eq!(visited, vec![NodeId::new(2)], "the robot must never move");
    }

    #[test]
    fn move_blocker_freezes_teams_of_any_size() {
        let r = ring(8);
        let placements = vec![
            RobotPlacement::at(NodeId::new(0)),
            RobotPlacement::at(NodeId::new(3)),
            RobotPlacement::at(NodeId::new(6)),
        ];
        let mut sim = AsyncSimulator::new(r.clone(), Bounce, MoveBlocker::new(r), placements)
            .expect("valid setup");
        let visited = sim.run_collecting_visits(600);
        assert_eq!(visited.len(), 3, "nobody may leave their start node");
    }

    #[test]
    fn move_blocker_schedule_is_connected_over_time() {
        // Capture what the blocker actually plays and certify it: each
        // edge is absent only during Move ticks of an adjacent robot.
        use dynring_graph::classes::{certify_connected_over_time, CotVerdict};
        use dynring_graph::{ScriptedSchedule, TailBehavior};

        struct CapturingAsync<D> {
            inner: D,
            frames: Vec<EdgeSet>,
        }

        impl<D: AsyncDynamics> AsyncDynamics for CapturingAsync<D> {
            fn ring(&self) -> &RingTopology {
                self.inner.ring()
            }

            fn edges_at(&mut self, obs: &AsyncObservation<'_>) -> EdgeSet {
                let set = self.inner.edges_at(obs);
                self.frames.push(set.clone());
                set
            }
        }

        let r = ring(6);
        let dynamics = CapturingAsync {
            inner: MoveBlocker::new(r.clone()),
            frames: Vec::new(),
        };
        let mut sim = AsyncSimulator::new(
            r.clone(),
            Bounce,
            dynamics,
            vec![RobotPlacement::at(NodeId::new(1))],
        )
        .expect("valid setup");
        sim.run_collecting_visits(300);
        let frames = std::mem::take(&mut sim.dynamics.frames);
        let script = ScriptedSchedule::new(r, frames, TailBehavior::AllPresent)
            .expect("frames from the same ring");
        let verdict = certify_connected_over_time(&script, 300, 4);
        assert!(
            matches!(verdict, CotVerdict::Certified { missing_edge: None, .. }),
            "{verdict:?}"
        );
    }

    #[test]
    fn quiet_probe_ticks_match_recorded_ticks() {
        // tick_quiet answers through AsyncDynamics::probe_edges; tick
        // materializes the full snapshot. Both must agree — including for
        // the MoveBlocker, whose probe implementation is adaptive.
        use dynring_graph::BernoulliSchedule;

        let r = ring(11);
        let placements = vec![
            RobotPlacement::at(NodeId::new(0)),
            RobotPlacement::at(NodeId::new(4)),
            RobotPlacement::at(NodeId::new(8)),
        ];
        let make_bernoulli = || {
            AsyncSimulator::new(
                r.clone(),
                Bounce,
                ObliviousAsync::new(
                    BernoulliSchedule::new(r.clone(), 0.45, 31).expect("valid p"),
                ),
                placements.clone(),
            )
            .expect("valid setup")
        };
        let mut quiet = make_bernoulli();
        let mut recorded = make_bernoulli();
        for _ in 0..300 {
            quiet.tick_quiet();
            recorded.tick();
            assert_eq!(quiet.positions(), recorded.positions());
            assert_eq!(quiet.phases(), recorded.phases());
        }

        let make_blocker = || {
            AsyncSimulator::new(r.clone(), Bounce, MoveBlocker::new(r.clone()), placements.clone())
                .expect("valid setup")
        };
        let mut quiet = make_blocker();
        let mut recorded = make_blocker();
        for _ in 0..120 {
            quiet.tick_quiet();
            recorded.tick();
            assert_eq!(quiet.positions(), recorded.positions());
        }
    }

    #[test]
    fn stale_views_mislead_the_has_moved_bookkeeping() {
        // A PEF_3+-style predictor "HasMoved ← ExistsEdge(dir)" is only
        // correct when Look and Move share a snapshot. Under ASYNC, an edge
        // present at Look time can be gone at Move time: the robot believes
        // it moved but did not. This test pins that wedge.
        use dynring_graph::{AbsenceIntervals, EdgeId};

        #[derive(Debug, Clone)]
        struct Predictor;

        impl Algorithm for Predictor {
            type State = bool; // "I think I will move"

            fn name(&self) -> &str {
                "predictor"
            }

            fn initial_state(&self) -> bool {
                false
            }

            fn compute(&self, state: &mut bool, view: &View) -> LocalDir {
                *state = view.exists_edge_ahead();
                view.dir()
            }
        }

        let r = ring(4);
        // Robot at v0 pointing left (ccw) → edge e3. Present at the Look
        // and Compute ticks (0, 1), removed at the Move tick (2).
        let mut schedule = AbsenceIntervals::new(r.clone());
        schedule.remove_during(EdgeId::new(3), 2, 3);
        let mut sim = AsyncSimulator::new(
            r,
            Predictor,
            ObliviousAsync::new(schedule),
            vec![RobotPlacement::at(NodeId::new(0))],
        )
        .expect("valid setup");
        sim.tick(); // Look: sees e3 present
        sim.tick(); // Compute: predicts a move
        let rec = sim.tick(); // Move: e3 gone — stays put
        assert!(!rec[0].moved);
        assert!(sim.states[0], "the robot *believes* it moved");
        assert_eq!(sim.positions(), vec![NodeId::new(0)]);
    }
}
