//! The deterministic robot algorithm abstraction, scalar and batch forms.

use std::fmt;

use dynring_graph::LaneWord;

use crate::{LocalDir, View, ViewWords};

/// A deterministic robot algorithm, executed identically by every robot
/// (robots are *uniform*) with no access to identifiers (robots are
/// *anonymous*).
///
/// The algorithm owns two things:
///
/// - a persistent [`Algorithm::State`] (the robot's memory across rounds);
/// - the Compute rule: given the state and the Look-phase [`View`], update
///   the state and return the new direction.
///
/// The engine stores the direction variable and performs the Move phase; an
/// algorithm therefore *only* decides directions — exactly the paper's
/// "designing an algorithm consists in choosing when we want a robot to
/// keep its direction and when we want it to change its direction".
///
/// Determinism is required: [`Algorithm::compute`] must be a pure function
/// of `(state, view)` (up to its own state update). Pseudo-random baselines
/// keep a seeded counter in their state to stay deterministic.
pub trait Algorithm {
    /// The robot's persistent memory.
    type State: Clone + fmt::Debug + PartialEq;

    /// A short human-readable name (used in reports and benches).
    fn name(&self) -> &str;

    /// The state every robot starts with.
    fn initial_state(&self) -> Self::State;

    /// The Compute phase: observe `view`, update `state`, return the new
    /// direction (the Move phase will cross that edge iff it is present in
    /// the same snapshot the view was taken from).
    fn compute(&self, state: &mut Self::State, view: &View) -> LocalDir;
}

impl<A: Algorithm> Algorithm for &A {
    type State = A::State;

    fn name(&self) -> &str {
        (**self).name()
    }

    fn initial_state(&self) -> Self::State {
        (**self).initial_state()
    }

    fn compute(&self, state: &mut Self::State, view: &View) -> LocalDir {
        (**self).compute(state, view)
    }
}

/// The lane-word form of an [`Algorithm`], for the lockstep batch engine
/// ([`crate::BatchSimulator`]): one Compute call advances the same robot
/// in `W::LANES` independent replicas at once. The arity `W`
/// ([`LaneWord`]) defaults to `u64`, so `A: BatchAlgorithm` keeps meaning
/// the original 64-lane form.
///
/// The contract mirrors the scalar one lane by lane: for every lane `l`,
/// [`BatchAlgorithm::compute_word`] must behave exactly as
/// [`Algorithm::compute`] on the scalar view [`ViewWords::lane`]`(l)` and
/// the scalar state [`BatchAlgorithm::lane_state`]`(l)` — same returned
/// direction (lane `l` of the result, [`ViewWords::dir_bit`] encoding),
/// same state update. The batch engine's lane-vs-serial equivalence
/// proptests pin this for every implementation.
///
/// Implementations fall in two camps:
///
/// - **boolean circuits** over the view words (the portfolio algorithms:
///   `PEF_1`/`PEF_2`/`PEF_3+` and the baselines) — branch-free,
///   `W::LANES` replicas per word operation, with the per-robot state
///   itself stored bit-sliced (e.g. `PEF_3+`'s `HasMovedPreviousStep` is
///   one lane word);
/// - **the scalar fallback** [`PerLane`], which keeps one scalar state
///   per lane and loops [`Algorithm::compute`] over the lanes — every
///   algorithm works in the batch engine from day one, just without the
///   word-level speedup.
pub trait BatchAlgorithm<W: LaneWord = u64>: Algorithm {
    /// One robot's persistent memory across all `W::LANES` lanes
    /// (bit-sliced for circuit implementations, `Vec<State>` for the
    /// scalar fallback).
    type BatchState: Clone + fmt::Debug;

    /// The batch state with every lane at [`Algorithm::initial_state`].
    fn initial_batch_state(&self) -> Self::BatchState;

    /// The Compute phase for all `W::LANES` lanes of one robot: observe
    /// `view`, update `state`, return the new direction word (lane `l`
    /// set ⇔ lane `l` now points `Right`).
    fn compute_word(&self, state: &mut Self::BatchState, view: &ViewWords<W>) -> W;

    /// The SSYNC form of [`BatchAlgorithm::compute_word`]: only lanes set
    /// in `act` run Compute; every other lane must keep its direction
    /// (return `view.dir`'s bit) *and* its state untouched.
    ///
    /// The default handles the lane-uniform words the built-in activation
    /// policies produce (all-ones → full compute, all-zeros → nothing)
    /// and panics on a lane-mixed word; circuit implementations override
    /// it with a masked merge so arbitrary per-lane activation words work.
    fn compute_word_masked(&self, state: &mut Self::BatchState, view: &ViewWords<W>, act: W) -> W {
        if act == W::ONES {
            self.compute_word(state, view)
        } else if act == W::ZERO {
            view.dir
        } else {
            panic!(
                "{}: no masked batch circuit for lane-mixed activation",
                self.name()
            )
        }
    }

    /// The scalar state of lane `lane` (observer-side: equivalence tests
    /// and Monte Carlo inspection).
    ///
    /// # Panics
    ///
    /// Implementations may panic when `lane ≥ W::LANES`.
    fn lane_state(&self, state: &Self::BatchState, lane: u32) -> Self::State;
}

/// The lane-by-lane scalar fallback: runs any [`Algorithm`] in the batch
/// engine by keeping one scalar state per lane and calling
/// [`Algorithm::compute`] once per lane.
///
/// No word-level speedup — the point is universality: an algorithm
/// without a boolean-circuit [`BatchAlgorithm`] implementation still gets
/// the batch engine's shared Look phase (one slice ladder per edge for
/// all lanes of a plane) and its SoA bookkeeping, at any arity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PerLane<A>(pub A);

impl<A: Algorithm> Algorithm for PerLane<A> {
    type State = A::State;

    fn name(&self) -> &str {
        self.0.name()
    }

    fn initial_state(&self) -> Self::State {
        self.0.initial_state()
    }

    fn compute(&self, state: &mut Self::State, view: &View) -> LocalDir {
        self.0.compute(state, view)
    }
}

impl<A: Algorithm, W: LaneWord> BatchAlgorithm<W> for PerLane<A> {
    type BatchState = Vec<A::State>;

    fn initial_batch_state(&self) -> Self::BatchState {
        (0..W::LANES).map(|_| self.0.initial_state()).collect()
    }

    fn compute_word(&self, state: &mut Self::BatchState, view: &ViewWords<W>) -> W {
        debug_assert_eq!(state.len(), W::LANES, "one scalar state per lane");
        let mut dir = W::ZERO;
        for (lane, slot) in state.iter_mut().enumerate() {
            let scalar = view.lane(lane as u32);
            dir.set(lane, ViewWords::dir_bit(self.0.compute(slot, &scalar)) == 1);
        }
        dir
    }

    fn compute_word_masked(&self, state: &mut Self::BatchState, view: &ViewWords<W>, act: W) -> W {
        debug_assert_eq!(state.len(), W::LANES, "one scalar state per lane");
        let mut dir = view.dir;
        for (lane, slot) in state.iter_mut().enumerate() {
            if act.get(lane) {
                let scalar = view.lane(lane as u32);
                dir.set(lane, ViewWords::dir_bit(self.0.compute(slot, &scalar)) == 1);
            }
        }
        dir
    }

    fn lane_state(&self, state: &Self::BatchState, lane: u32) -> Self::State {
        state[lane as usize].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone)]
    struct Bouncer;

    impl Algorithm for Bouncer {
        type State = u32;

        fn name(&self) -> &str {
            "bouncer"
        }

        fn initial_state(&self) -> u32 {
            0
        }

        fn compute(&self, state: &mut u32, view: &View) -> LocalDir {
            *state += 1;
            if view.exists_edge_ahead() {
                view.dir()
            } else {
                view.dir().opposite()
            }
        }
    }

    #[test]
    fn state_persists_across_compute_calls() {
        let alg = Bouncer;
        let mut state = alg.initial_state();
        let view = View::new(LocalDir::Left, true, true, false);
        let d1 = alg.compute(&mut state, &view);
        let d2 = alg.compute(&mut state, &view);
        assert_eq!(state, 2);
        assert_eq!(d1, LocalDir::Left);
        assert_eq!(d2, LocalDir::Left);
    }

    #[test]
    fn per_lane_fallback_matches_scalar_compute_in_every_lane() {
        let batch = PerLane(Bouncer);
        let mut batch_state = BatchAlgorithm::<u64>::initial_batch_state(&batch);
        // A different view per lane: cycle the 16 observable combinations.
        let views: Vec<View> = (0..16u32)
            .map(|bits| {
                View::new(
                    ViewWords::dir_from_bit(bits & 1 == 1),
                    bits & 2 != 0,
                    bits & 4 != 0,
                    bits & 8 != 0,
                )
            })
            .collect();
        let words: ViewWords = ViewWords::from_lanes(&views);
        let mut scalar_states: Vec<u32> = (0..64).map(|_| Bouncer.initial_state()).collect();
        for round in 0..5 {
            let dir_word = BatchAlgorithm::<u64>::compute_word(&batch, &mut batch_state, &words);
            for lane in 0..64u32 {
                let view = words.lane(lane);
                let expected = Bouncer.compute(&mut scalar_states[lane as usize], &view);
                assert_eq!(
                    ViewWords::dir_from_bit((dir_word >> lane) & 1 == 1),
                    expected,
                    "round {round} lane {lane}"
                );
                assert_eq!(
                    BatchAlgorithm::<u64>::lane_state(&batch, &batch_state, lane),
                    scalar_states[lane as usize],
                    "round {round} lane {lane} state"
                );
            }
        }
    }

    #[test]
    fn per_lane_fallback_runs_at_every_arity() {
        use dynring_graph::{LaneWord, Lanes128, Lanes256};

        fn check<W: LaneWord>() {
            let batch = PerLane(Bouncer);
            let mut batch_state: Vec<u32> = BatchAlgorithm::<W>::initial_batch_state(&batch);
            assert_eq!(batch_state.len(), W::LANES);
            let views: Vec<View> = (0..16u32)
                .map(|bits| {
                    View::new(
                        ViewWords::dir_from_bit(bits & 1 == 1),
                        bits & 2 != 0,
                        bits & 4 != 0,
                        bits & 8 != 0,
                    )
                })
                .collect();
            let words: ViewWords<W> = ViewWords::from_lanes(&views);
            let mut scalar_states: Vec<u32> =
                (0..W::LANES).map(|_| Bouncer.initial_state()).collect();
            let dir_word = batch.compute_word(&mut batch_state, &words);
            for (lane, state) in scalar_states.iter_mut().enumerate() {
                let view = words.lane(lane as u32);
                let expected = Bouncer.compute(state, &view);
                assert_eq!(
                    ViewWords::dir_from_bit(dir_word.get(lane)),
                    expected,
                    "lane {lane}"
                );
            }
        }
        check::<u64>();
        check::<Lanes128>();
        check::<Lanes256>();
    }

    #[test]
    fn per_lane_masked_compute_freezes_inactive_lanes() {
        use dynring_graph::LaneWord;

        let batch = PerLane(Bouncer);
        let mut batch_state: Vec<u32> = BatchAlgorithm::<u64>::initial_batch_state(&batch);
        let views: Vec<View> = (0..16u32)
            .map(|bits| {
                View::new(
                    ViewWords::dir_from_bit(bits & 1 == 1),
                    bits & 2 != 0,
                    bits & 4 != 0,
                    bits & 8 != 0,
                )
            })
            .collect();
        let words: ViewWords = ViewWords::from_lanes(&views);
        // Activate odd lanes only.
        let act = 0xAAAA_AAAA_AAAA_AAAAu64;
        let dir_word = batch.compute_word_masked(&mut batch_state, &words, act);
        for (lane, &state) in batch_state.iter().enumerate() {
            if act.get(lane) {
                // Active lanes computed once (Bouncer counts calls).
                assert_eq!(state, 1, "lane {lane}");
            } else {
                // Inactive lanes: untouched state, direction preserved.
                assert_eq!(state, 0, "lane {lane}");
                assert_eq!(dir_word.get(lane), words.dir.get(lane), "lane {lane}");
            }
        }
    }

    #[test]
    fn reference_impl_delegates() {
        let alg = Bouncer;
        let by_ref: &Bouncer = &alg;
        assert_eq!(by_ref.name(), "bouncer");
        let mut state = by_ref.initial_state();
        let view = View::new(LocalDir::Left, false, true, false);
        assert_eq!(by_ref.compute(&mut state, &view), LocalDir::Right);
    }
}
