//! The deterministic robot algorithm abstraction.

use std::fmt;

use crate::{LocalDir, View};

/// A deterministic robot algorithm, executed identically by every robot
/// (robots are *uniform*) with no access to identifiers (robots are
/// *anonymous*).
///
/// The algorithm owns two things:
///
/// - a persistent [`Algorithm::State`] (the robot's memory across rounds);
/// - the Compute rule: given the state and the Look-phase [`View`], update
///   the state and return the new direction.
///
/// The engine stores the direction variable and performs the Move phase; an
/// algorithm therefore *only* decides directions — exactly the paper's
/// "designing an algorithm consists in choosing when we want a robot to
/// keep its direction and when we want it to change its direction".
///
/// Determinism is required: [`Algorithm::compute`] must be a pure function
/// of `(state, view)` (up to its own state update). Pseudo-random baselines
/// keep a seeded counter in their state to stay deterministic.
pub trait Algorithm {
    /// The robot's persistent memory.
    type State: Clone + fmt::Debug + PartialEq;

    /// A short human-readable name (used in reports and benches).
    fn name(&self) -> &str;

    /// The state every robot starts with.
    fn initial_state(&self) -> Self::State;

    /// The Compute phase: observe `view`, update `state`, return the new
    /// direction (the Move phase will cross that edge iff it is present in
    /// the same snapshot the view was taken from).
    fn compute(&self, state: &mut Self::State, view: &View) -> LocalDir;
}

impl<A: Algorithm> Algorithm for &A {
    type State = A::State;

    fn name(&self) -> &str {
        (**self).name()
    }

    fn initial_state(&self) -> Self::State {
        (**self).initial_state()
    }

    fn compute(&self, state: &mut Self::State, view: &View) -> LocalDir {
        (**self).compute(state, view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone)]
    struct Bouncer;

    impl Algorithm for Bouncer {
        type State = u32;

        fn name(&self) -> &str {
            "bouncer"
        }

        fn initial_state(&self) -> u32 {
            0
        }

        fn compute(&self, state: &mut u32, view: &View) -> LocalDir {
            *state += 1;
            if view.exists_edge_ahead() {
                view.dir()
            } else {
                view.dir().opposite()
            }
        }
    }

    #[test]
    fn state_persists_across_compute_calls() {
        let alg = Bouncer;
        let mut state = alg.initial_state();
        let view = View::new(LocalDir::Left, true, true, false);
        let d1 = alg.compute(&mut state, &view);
        let d2 = alg.compute(&mut state, &view);
        assert_eq!(state, 2);
        assert_eq!(d1, LocalDir::Left);
        assert_eq!(d2, LocalDir::Left);
    }

    #[test]
    fn reference_impl_delegates() {
        let alg = Bouncer;
        let by_ref: &Bouncer = &alg;
        assert_eq!(by_ref.name(), "bouncer");
        let mut state = by_ref.initial_state();
        let view = View::new(LocalDir::Left, false, true, false);
        assert_eq!(by_ref.compute(&mut state, &view), LocalDir::Right);
    }
}
