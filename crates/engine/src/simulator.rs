//! The synchronous round simulator.

use dynring_graph::{GlobalDir, NodeId, RingTopology, Time};

use crate::{
    ActivationPolicy, Algorithm, Dynamics, EdgeProbe, EngineError, ExecutionTrace, FullActivation,
    LocalDir, Observation, RobotId, RobotPlacement, RobotRound, RobotSnapshot, RoundRecord, View,
};

/// Rebuilds the robots-per-node occupancy table for one round (shared by
/// [`Simulator`] and [`crate::async_exec::AsyncSimulator`]). On rings
/// much larger than the team the table is cleared sparsely — `touched`
/// remembers the ≤ k entries with a nonzero count — so the refresh is
/// O(robots) regardless of ring size. On small rings a straight memset
/// beats the bookkeeping; the strategy is fixed per simulator (`n` and
/// `k` never change), so the branch is free.
pub(crate) fn refresh_occupancy<I>(occupancy: &mut [usize], touched: &mut Vec<u32>, nodes: I)
where
    I: ExactSizeIterator<Item = usize>,
{
    if occupancy.len() <= 4 * nodes.len() {
        occupancy.iter_mut().for_each(|c| *c = 0);
        for node in nodes {
            occupancy[node] += 1;
        }
    } else {
        for &node in touched.iter() {
            occupancy[node as usize] = 0;
        }
        touched.clear();
        for node in nodes {
            if occupancy[node] == 0 {
                touched.push(node as u32);
            }
            occupancy[node] += 1;
        }
    }
}

/// One robot's live data inside the simulator.
#[derive(Debug, Clone)]
struct RobotCore<S> {
    id: RobotId,
    node: NodeId,
    chirality: crate::Chirality,
    dir: LocalDir,
    state: S,
    moved_last_round: bool,
}

/// Executes the paper's synchronous rounds: one [`Algorithm`] (robots are
/// uniform), one [`Dynamics`] (the adversary), an [`ActivationPolicy`]
/// (FSYNC by default), and `k` robots on a ring.
///
/// See the crate documentation for the precise round semantics. The
/// simulator validates *well-initiated* executions (§2.4): strictly fewer
/// robots than nodes, towerless initial configuration. Experiments that
/// deliberately start otherwise (e.g. self-stabilization probes) use
/// [`Simulator::new_arbitrary`].
pub struct Simulator<A: Algorithm, D> {
    ring: RingTopology,
    algorithm: A,
    dynamics: D,
    robots: Vec<RobotCore<A::State>>,
    time: Time,
    activation: Box<dyn ActivationPolicy>,
    // Persistent scratch buffers: one warm-up round allocates them, every
    // later round reuses the allocations (the quiet path is then
    // allocation-free for allocation-free dynamics/activation).
    snap_buf: Vec<RobotSnapshot>,
    edge_buf: dynring_graph::EdgeSet,
    occupancy_buf: Vec<usize>,
    // Nodes with a nonzero occupancy count, so the table is cleared
    // sparsely (O(robots) instead of O(n) per round).
    touched_buf: Vec<u32>,
    active_buf: Vec<bool>,
    probe_buf: Vec<EdgeProbe>,
}

impl<A: Algorithm, D: std::fmt::Debug> std::fmt::Display for Simulator<A, D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "simulator({} robots, {}, t={})",
            self.robots.len(),
            self.ring,
            self.time
        )
    }
}

impl<A: Algorithm, D: Dynamics> Simulator<A, D> {
    /// Builds a simulator for a *well-initiated* execution.
    ///
    /// # Errors
    ///
    /// - [`EngineError::NoRobots`] when `placements` is empty;
    /// - [`EngineError::TooManyRobots`] unless `k < n` (§2.4);
    /// - [`EngineError::InitialTower`] when two placements share a node;
    /// - [`EngineError::NodeOutOfRange`] for an invalid node;
    /// - [`EngineError::RingMismatch`] when the dynamics drives another
    ///   ring.
    pub fn new(
        ring: RingTopology,
        algorithm: A,
        dynamics: D,
        placements: Vec<RobotPlacement>,
    ) -> Result<Self, EngineError> {
        if placements.len() >= ring.node_count() {
            return Err(EngineError::TooManyRobots {
                robots: placements.len(),
                nodes: ring.node_count(),
            });
        }
        let mut seen = vec![false; ring.node_count()];
        for p in &placements {
            if !ring.contains_node(p.node) {
                return Err(EngineError::NodeOutOfRange {
                    node: p.node,
                    nodes: ring.node_count(),
                });
            }
            if seen[p.node.index()] {
                return Err(EngineError::InitialTower { node: p.node });
            }
            seen[p.node.index()] = true;
        }
        Self::new_arbitrary(ring, algorithm, dynamics, placements)
    }

    /// Builds a simulator without the well-initiated checks (`k < n`,
    /// towerless start). Node-range, non-emptiness and ring-match are still
    /// validated.
    ///
    /// # Errors
    ///
    /// [`EngineError::NoRobots`], [`EngineError::NodeOutOfRange`] or
    /// [`EngineError::RingMismatch`].
    pub fn new_arbitrary(
        ring: RingTopology,
        algorithm: A,
        dynamics: D,
        placements: Vec<RobotPlacement>,
    ) -> Result<Self, EngineError> {
        if placements.is_empty() {
            return Err(EngineError::NoRobots);
        }
        if dynamics.ring().node_count() != ring.node_count() {
            return Err(EngineError::RingMismatch {
                expected: ring.node_count(),
                found: dynamics.ring().node_count(),
            });
        }
        for p in &placements {
            if !ring.contains_node(p.node) {
                return Err(EngineError::NodeOutOfRange {
                    node: p.node,
                    nodes: ring.node_count(),
                });
            }
        }
        let robots = placements
            .iter()
            .enumerate()
            .map(|(i, p)| RobotCore {
                id: RobotId::new(i),
                node: p.node,
                chirality: p.chirality,
                dir: p.initial_dir,
                state: algorithm.initial_state(),
                moved_last_round: false,
            })
            .collect();
        let edge_buf = dynring_graph::EdgeSet::empty(ring.edge_count());
        let occupancy_buf = vec![0usize; ring.node_count()];
        Ok(Simulator {
            ring,
            algorithm,
            dynamics,
            robots,
            time: 0,
            activation: Box::new(FullActivation),
            snap_buf: Vec::new(),
            edge_buf,
            occupancy_buf,
            touched_buf: Vec::new(),
            active_buf: Vec::new(),
            probe_buf: Vec::new(),
        })
    }

    /// Replaces the activation policy (FSYNC by default).
    pub fn set_activation<P: ActivationPolicy + 'static>(&mut self, policy: P) {
        self.activation = Box::new(policy);
    }

    /// Current time `t` (number of executed rounds).
    pub fn time(&self) -> Time {
        self.time
    }

    /// The ring.
    pub fn ring(&self) -> &RingTopology {
        &self.ring
    }

    /// The algorithm.
    pub fn algorithm(&self) -> &A {
        &self.algorithm
    }

    /// The dynamics (adversary).
    pub fn dynamics(&self) -> &D {
        &self.dynamics
    }

    /// Mutable access to the dynamics, e.g. to inspect adversary state.
    pub fn dynamics_mut(&mut self) -> &mut D {
        &mut self.dynamics
    }

    /// Number of robots `k`.
    pub fn robot_count(&self) -> usize {
        self.robots.len()
    }

    /// Current positions, in robot-id order.
    pub fn positions(&self) -> Vec<NodeId> {
        self.robots.iter().map(|r| r.node).collect()
    }

    /// Snapshot of every robot in the current configuration.
    pub fn snapshots(&self) -> Vec<RobotSnapshot> {
        self.robots
            .iter()
            .map(|r| RobotSnapshot {
                id: r.id,
                node: r.node,
                chirality: r.chirality,
                dir: r.dir,
                moved_last_round: r.moved_last_round,
            })
            .collect()
    }

    /// The persistent algorithm state of robot `id` (observer-side
    /// debugging; robots themselves never expose state to each other).
    ///
    /// # Panics
    ///
    /// Panics when `id` is out of range.
    pub fn state_of(&self, id: RobotId) -> &A::State {
        &self.robots[id.index()].state
    }

    /// Overwrites the persistent state of robot `id` — for
    /// self-stabilization probes that start from *arbitrary* states (the
    /// robots' memory is adversarially corrupted before round 0).
    ///
    /// # Panics
    ///
    /// Panics when `id` is out of range.
    pub fn set_state_of(&mut self, id: RobotId, state: A::State) {
        self.robots[id.index()].state = state;
    }

    /// The global direction robot `id` currently points to.
    ///
    /// # Panics
    ///
    /// Panics when `id` is out of range.
    pub fn global_dir_of(&self, id: RobotId) -> GlobalDir {
        let r = &self.robots[id.index()];
        r.chirality.to_global(r.dir)
    }

    /// The shared round body: advances `(G_t, γ_t) → (G_{t+1}, γ_{t+1})`
    /// using the persistent scratch buffers. When `rows` is `Some`, the
    /// per-robot records are pushed into it (the recording path); when
    /// `None`, nothing is materialized (the quiet path).
    ///
    /// On the quiet path the round only ever reads the ≤ 2 edges adjacent
    /// to each robot, so the snapshot is first offered to
    /// [`Dynamics::probe_edges`] as O(robots) point queries; only when the
    /// dynamics declines (adaptive full-set adversaries, recorders) does
    /// the O(n) [`Dynamics::edges_at_into`] scan run. The recording path
    /// always materializes the full snapshot — the [`RoundRecord`] needs
    /// it.
    fn step_impl(&mut self, mut rows: Option<&mut Vec<RobotRound>>) {
        let t = self.time;
        // The adversary chooses G_t after observing γ_t.
        self.snap_buf.clear();
        self.snap_buf.extend(self.robots.iter().map(|r| RobotSnapshot {
            id: r.id,
            node: r.node,
            chirality: r.chirality,
            dir: r.dir,
            moved_last_round: r.moved_last_round,
        }));
        let mut probed = false;
        let obs = Observation::new(t, &self.ring, &self.snap_buf);
        // The probe path pays ~one schedule query per probe; when the
        // team's 2·k adjacent edges rival the ring size the O(n) word
        // fill is the cheaper way to answer the same reads, so dense
        // teams fall back to the full snapshot even on the quiet path.
        let probes_are_sparse = 2 * self.robots.len() < self.ring.node_count();
        if rows.is_none() && probes_are_sparse {
            // Sparse fast path: queries 2·k — robot i's (left, right) pair
            // at probe_buf[2i], probe_buf[2i + 1].
            self.probe_buf.clear();
            for r in &self.snap_buf {
                for dir in [LocalDir::Left, LocalDir::Right] {
                    self.probe_buf.push(EdgeProbe::new(
                        self.ring.edge_towards(r.node, r.chirality.to_global(dir)),
                    ));
                }
            }
            probed = self.dynamics.probe_edges(&obs, &mut self.probe_buf);
        }
        if !probed {
            self.dynamics.edges_at_into(&obs, &mut self.edge_buf);
        }
        let all_active = self.activation.is_full();
        if !all_active {
            self.activation
                .activate_into(t, self.robots.len(), &mut self.active_buf);
        }

        // Occupancy during the Look phase (the configuration γ_t),
        // refreshed in O(robots) — see `refresh_occupancy`.
        refresh_occupancy(
            &mut self.occupancy_buf,
            &mut self.touched_buf,
            self.robots.iter().map(|r| r.node.index()),
        );

        let edges = &self.edge_buf;
        // Pre-slice the activation vector: under FSYNC it is never read,
        // otherwise `activate_into` filled exactly one slot per robot.
        let active: &[bool] = if all_active { &[] } else { &self.active_buf };
        debug_assert!(all_active || active.len() == self.robots.len());
        for (i, robot) in self.robots.iter_mut().enumerate() {
            let node_before = robot.node;
            let dir_before = robot.dir;
            let activated = all_active || active[i];
            let (dir_after, moved, node_after) = if activated {
                // Look.
                let (edge_left, edge_right) = if probed {
                    (self.probe_buf[2 * i].present, self.probe_buf[2 * i + 1].present)
                } else {
                    (
                        edges.contains(
                            self.ring
                                .edge_towards(robot.node, robot.chirality.to_global(LocalDir::Left)),
                        ),
                        edges.contains(
                            self.ring
                                .edge_towards(robot.node, robot.chirality.to_global(LocalDir::Right)),
                        ),
                    )
                };
                let others = self.occupancy_buf[robot.node.index()] > 1;
                let view = View::new(robot.dir, edge_left, edge_right, others);
                // Compute.
                let dir_after = self.algorithm.compute(&mut robot.state, &view);
                robot.dir = dir_after;
                // Move: cross the pointed edge iff present in the same
                // snapshot. The pointed edge is the adjacent edge in the
                // computed direction — exactly one of the two Look queries.
                let pointed_present = match dir_after {
                    LocalDir::Left => edge_left,
                    LocalDir::Right => edge_right,
                };
                if pointed_present {
                    let global_after = robot.chirality.to_global(dir_after);
                    let dest = self.ring.neighbor(robot.node, global_after);
                    robot.node = dest;
                    robot.moved_last_round = true;
                    (dir_after, true, dest)
                } else {
                    robot.moved_last_round = false;
                    (dir_after, false, node_before)
                }
            } else {
                (dir_before, false, node_before)
            };
            if let Some(rows) = rows.as_deref_mut() {
                rows.push(RobotRound {
                    id: robot.id,
                    node_before,
                    dir_before,
                    global_dir_before: robot.chirality.to_global(dir_before),
                    dir_after,
                    global_dir_after: robot.chirality.to_global(dir_after),
                    moved,
                    node_after,
                    activated,
                });
            }
        }
        self.time += 1;
    }

    /// Executes one full round `(G_t, γ_t) → (G_{t+1}, γ_{t+1})` and
    /// returns its record.
    pub fn step(&mut self) -> RoundRecord {
        let t = self.time;
        let mut rows = Vec::with_capacity(self.robots.len());
        self.step_impl(Some(&mut rows));
        RoundRecord {
            time: t,
            edges: self.edge_buf.clone(),
            robots: rows,
        }
    }

    /// Executes one round without materializing a [`RoundRecord`] — the
    /// allocation-free fast path. Positions, states and time advance
    /// exactly as with [`Simulator::step`].
    pub fn step_quiet(&mut self) {
        self.step_impl(None);
    }

    /// Executes `rounds` rounds on the quiet path, discarding all records
    /// (memory-light; use [`Simulator::run_with`] or
    /// [`Simulator::run_recording`] to observe).
    pub fn run(&mut self, rounds: u64) {
        for _ in 0..rounds {
            self.step_quiet();
        }
    }

    /// Executes `rounds` rounds, passing each record to `f`.
    pub fn run_with(&mut self, rounds: u64, mut f: impl FnMut(&RoundRecord)) {
        for _ in 0..rounds {
            let record = self.step();
            f(&record);
        }
    }

    /// Executes `rounds` rounds and returns the full [`ExecutionTrace`]
    /// (including the configuration the simulator was in when called).
    pub fn run_recording(&mut self, rounds: u64) -> ExecutionTrace {
        let mut trace = ExecutionTrace::new(self.ring.clone(), self.snapshots());
        for _ in 0..rounds {
            trace.push(self.step());
        }
        trace
    }

    /// Runs until `stop` returns `true` for the post-round configuration or
    /// `max_rounds` elapse; returns the number of rounds executed.
    pub fn run_until(
        &mut self,
        max_rounds: u64,
        mut stop: impl FnMut(&Simulator<A, D>) -> bool,
    ) -> u64 {
        for executed in 0..max_rounds {
            self.step_quiet();
            if stop(self) {
                return executed + 1;
            }
        }
        max_rounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Chirality, Oblivious};
    use dynring_graph::{AbsenceIntervals, AlwaysPresent, EdgeId};

    /// Keeps its direction forever (Rule 1 alone).
    #[derive(Debug, Clone)]
    struct KeepDir;

    impl Algorithm for KeepDir {
        type State = ();

        fn name(&self) -> &str {
            "keep-dir"
        }

        fn initial_state(&self) {}

        fn compute(&self, _state: &mut (), view: &View) -> LocalDir {
            view.dir()
        }
    }

    /// Counts how many times it has computed, in its persistent state.
    #[derive(Debug, Clone)]
    struct Counter;

    impl Algorithm for Counter {
        type State = u64;

        fn name(&self) -> &str {
            "counter"
        }

        fn initial_state(&self) -> u64 {
            0
        }

        fn compute(&self, state: &mut u64, view: &View) -> LocalDir {
            *state += 1;
            view.dir()
        }
    }

    fn ring(n: usize) -> RingTopology {
        RingTopology::new(n).expect("valid ring")
    }

    fn static_sim(
        n: usize,
        placements: Vec<RobotPlacement>,
    ) -> Simulator<KeepDir, Oblivious<AlwaysPresent>> {
        let r = ring(n);
        Simulator::new(
            r.clone(),
            KeepDir,
            Oblivious::new(AlwaysPresent::new(r)),
            placements,
        )
        .expect("valid setup")
    }

    #[test]
    fn validation_rejects_bad_setups() {
        let r = ring(3);
        let dynamics = || Oblivious::new(AlwaysPresent::new(ring(3)));
        assert_eq!(
            Simulator::new(r.clone(), KeepDir, dynamics(), vec![]).err(),
            Some(EngineError::NoRobots)
        );
        let three = vec![
            RobotPlacement::at(NodeId::new(0)),
            RobotPlacement::at(NodeId::new(1)),
            RobotPlacement::at(NodeId::new(2)),
        ];
        assert_eq!(
            Simulator::new(r.clone(), KeepDir, dynamics(), three).err(),
            Some(EngineError::TooManyRobots {
                robots: 3,
                nodes: 3
            })
        );
        let tower = vec![
            RobotPlacement::at(NodeId::new(1)),
            RobotPlacement::at(NodeId::new(1)),
        ];
        assert_eq!(
            Simulator::new(r.clone(), KeepDir, dynamics(), tower).err(),
            Some(EngineError::InitialTower {
                node: NodeId::new(1)
            })
        );
        let out = vec![RobotPlacement::at(NodeId::new(9))];
        assert_eq!(
            Simulator::new(r.clone(), KeepDir, dynamics(), out).err(),
            Some(EngineError::NodeOutOfRange {
                node: NodeId::new(9),
                nodes: 3
            })
        );
        let mismatched = Oblivious::new(AlwaysPresent::new(ring(4)));
        assert_eq!(
            Simulator::new(
                r,
                KeepDir,
                mismatched,
                vec![RobotPlacement::at(NodeId::new(0))]
            )
            .err(),
            Some(EngineError::RingMismatch {
                expected: 3,
                found: 4
            })
        );
    }

    #[test]
    fn arbitrary_allows_towers_and_saturation() {
        let r = ring(2);
        let placements = vec![
            RobotPlacement::at(NodeId::new(0)),
            RobotPlacement::at(NodeId::new(0)),
        ];
        let sim = Simulator::new_arbitrary(
            r.clone(),
            KeepDir,
            Oblivious::new(AlwaysPresent::new(r)),
            placements,
        );
        assert!(sim.is_ok());
    }

    #[test]
    fn default_direction_walks_counter_clockwise() {
        // Standard chirality + initial dir left = counter-clockwise.
        let mut sim = static_sim(5, vec![RobotPlacement::at(NodeId::new(0))]);
        let rec = sim.step();
        assert!(rec.robots[0].moved);
        assert_eq!(rec.robots[0].node_after, NodeId::new(4));
        assert_eq!(sim.positions(), vec![NodeId::new(4)]);
        assert_eq!(sim.time(), 1);
    }

    #[test]
    fn mirrored_chirality_walks_clockwise() {
        let mut sim = static_sim(
            5,
            vec![RobotPlacement::at(NodeId::new(0)).with_chirality(Chirality::Mirrored)],
        );
        sim.step();
        assert_eq!(sim.positions(), vec![NodeId::new(1)]);
    }

    #[test]
    fn missing_edge_blocks_the_move() {
        let r = ring(4);
        let mut sched = AbsenceIntervals::new(r.clone());
        // Robot at v0 pointing left (ccw) → edge e3; remove it at t=0 only.
        sched.remove_during(EdgeId::new(3), 0, 1);
        let mut sim = Simulator::new(
            r,
            KeepDir,
            Oblivious::new(sched),
            vec![RobotPlacement::at(NodeId::new(0))],
        )
        .expect("valid setup");
        let rec = sim.step();
        assert!(!rec.robots[0].moved);
        assert_eq!(sim.positions(), vec![NodeId::new(0)]);
        let rec = sim.step();
        assert!(rec.robots[0].moved);
        assert_eq!(sim.positions(), vec![NodeId::new(3)]);
    }

    #[test]
    fn opposite_robots_swap_without_tower() {
        // Two robots on adjacent nodes pointing at each other cross the same
        // edge in opposite directions and swap — no tower forms on nodes.
        let mut sim = static_sim(
            4,
            vec![
                // v0 pointing right (cw) → towards v1.
                RobotPlacement::at(NodeId::new(0)).with_dir(LocalDir::Right),
                // v1 pointing left (ccw) → towards v0.
                RobotPlacement::at(NodeId::new(1)),
            ],
        );
        let rec = sim.step();
        assert_eq!(sim.positions(), vec![NodeId::new(1), NodeId::new(0)]);
        assert!(rec.towers_after().is_empty());
    }

    #[test]
    fn look_sees_colocated_robots() {
        // Robot 1 walks onto robot 0's node; at the next Look both see
        // "other robots".
        #[derive(Debug, Clone)]
        struct RecordOthers;

        impl Algorithm for RecordOthers {
            type State = Vec<bool>;

            fn name(&self) -> &str {
                "record-others"
            }

            fn initial_state(&self) -> Vec<bool> {
                Vec::new()
            }

            fn compute(&self, state: &mut Vec<bool>, view: &View) -> LocalDir {
                state.push(view.other_robots_on_current_node());
                view.dir()
            }
        }

        let r = ring(5);
        // r0 at v0 pointing left (→ v4); r1 at v1 pointing left (→ v0)…
        // instead park r0 by removing its pointed edge forever.
        let mut sched = AbsenceIntervals::new(r.clone());
        sched.remove_from(EdgeId::new(4), 0); // v0's ccw edge
        let mut sim = Simulator::new(
            r,
            RecordOthers,
            Oblivious::new(sched),
            vec![
                RobotPlacement::at(NodeId::new(0)),
                RobotPlacement::at(NodeId::new(1)),
            ],
        )
        .expect("valid setup");
        sim.run(2);
        // Round 0: r1 moves v1→v0 (edge e0 present, pointing ccw). Round 1:
        // both on v0, both see others=true.
        assert_eq!(sim.positions(), vec![NodeId::new(0), NodeId::new(0)]);
        let s0 = sim.state_of(RobotId::new(0)).clone();
        let s1 = sim.state_of(RobotId::new(1)).clone();
        assert_eq!(s0, vec![false, true]);
        assert_eq!(s1, vec![false, true]);
    }

    #[test]
    fn state_persists_between_rounds() {
        let r = ring(4);
        let mut sim = Simulator::new(
            r.clone(),
            Counter,
            Oblivious::new(AlwaysPresent::new(r)),
            vec![RobotPlacement::at(NodeId::new(0))],
        )
        .expect("valid setup");
        sim.run(7);
        assert_eq!(*sim.state_of(RobotId::new(0)), 7);
    }

    #[test]
    fn run_recording_produces_full_trace() {
        let mut sim = static_sim(6, vec![RobotPlacement::at(NodeId::new(3))]);
        let trace = sim.run_recording(6);
        assert_eq!(trace.len(), 6);
        assert_eq!(trace.positions_at(0), vec![NodeId::new(3)]);
        // Counter-clockwise walk: 3,2,1,0,5,4,3.
        assert_eq!(trace.positions_at(6), vec![NodeId::new(3)]);
        assert!(trace.covers_all_nodes());
    }

    #[test]
    fn run_until_stops_early() {
        let mut sim = static_sim(8, vec![RobotPlacement::at(NodeId::new(0))]);
        let executed = sim.run_until(100, |s| s.positions()[0] == NodeId::new(4));
        assert_eq!(executed, 4);
        assert_eq!(sim.time(), 4);
    }

    #[test]
    fn ssync_inactive_robots_do_nothing() {
        let mut sim = static_sim(
            6,
            vec![
                RobotPlacement::at(NodeId::new(0)),
                RobotPlacement::at(NodeId::new(3)),
            ],
        );
        sim.set_activation(crate::RoundRobinSingle);
        let rec0 = sim.step(); // activates r0 only
        assert!(rec0.robots[0].activated && rec0.robots[0].moved);
        assert!(!rec0.robots[1].activated && !rec0.robots[1].moved);
        assert_eq!(sim.positions(), vec![NodeId::new(5), NodeId::new(3)]);
        let rec1 = sim.step(); // activates r1 only
        assert!(!rec1.robots[0].activated);
        assert!(rec1.robots[1].activated && rec1.robots[1].moved);
        assert_eq!(sim.positions(), vec![NodeId::new(5), NodeId::new(2)]);
    }

    #[test]
    fn multigraph_two_ring_moves_through_both_parallel_edges() {
        // On the 2-node multigraph ring both directions lead to the other
        // node, through *different* edges: v0's cw edge is e0, its ccw
        // edge is e1.
        let r = ring(2);
        let mut sched = AbsenceIntervals::new(r.clone());
        sched.remove_from(EdgeId::new(0), 0); // only e1 ever present
        let mut sim = Simulator::new(
            r,
            KeepDir,
            Oblivious::new(sched),
            vec![RobotPlacement::at(NodeId::new(0))], // dir left = ccw = e1
        )
        .expect("valid setup");
        let rec = sim.step();
        assert!(rec.robots[0].moved);
        assert_eq!(sim.positions(), vec![NodeId::new(1)]);
        // From v1, ccw edge is e0 (dead): the robot stalls forever after.
        let rec = sim.step();
        assert!(!rec.robots[0].moved);
        assert_eq!(sim.positions(), vec![NodeId::new(1)]);
    }

    #[test]
    fn multigraph_two_ring_with_all_edges_oscillates() {
        let r = ring(2);
        let mut sim = static_sim(2, vec![RobotPlacement::at(NodeId::new(0))]);
        let _ = &r;
        sim.run(5);
        // Five ccw hops on a 2-ring: ends at v1.
        assert_eq!(sim.positions(), vec![NodeId::new(1)]);
    }

    #[test]
    fn quiet_probe_path_matches_recorded_path_on_stochastic_dynamics() {
        // The quiet path answers rounds through Dynamics::probe_edges (O(k)
        // point queries); the recorded path materializes full snapshots.
        // Both must advance positions, directions and time identically.
        use dynring_graph::BernoulliSchedule;

        #[derive(Debug, Clone)]
        struct Bounce;

        impl Algorithm for Bounce {
            type State = u32;

            fn name(&self) -> &str {
                "bounce"
            }

            fn initial_state(&self) -> u32 {
                0
            }

            fn compute(&self, state: &mut u32, view: &View) -> LocalDir {
                *state += 1;
                if view.exists_edge_ahead() {
                    view.dir()
                } else {
                    view.dir().opposite()
                }
            }
        }

        let r = ring(17);
        let make = || {
            let schedule = BernoulliSchedule::new(r.clone(), 0.4, 0xBEEF).expect("valid p");
            Simulator::new(
                r.clone(),
                Bounce,
                Oblivious::new(schedule),
                vec![
                    RobotPlacement::at(NodeId::new(0)),
                    RobotPlacement::at(NodeId::new(5)).with_dir(LocalDir::Right),
                    RobotPlacement::at(NodeId::new(11)).with_chirality(Chirality::Mirrored),
                ],
            )
            .expect("valid setup")
        };
        let mut quiet = make();
        let mut recorded = make();
        for _ in 0..400 {
            quiet.step_quiet();
            recorded.step();
            assert_eq!(quiet.positions(), recorded.positions());
        }
        for id in 0..3 {
            assert_eq!(
                quiet.state_of(RobotId::new(id)),
                recorded.state_of(RobotId::new(id))
            );
        }
    }

    #[test]
    fn dense_teams_fall_back_to_the_full_fill_and_stay_equivalent() {
        // With 2k >= n the probe path would query as many edges as the
        // ring holds, so the quiet path takes the word fill instead —
        // behaviour must stay identical to the recorded (always full
        // fill) path.
        use dynring_graph::BernoulliSchedule;

        #[derive(Debug, Clone)]
        struct Bounce;

        impl Algorithm for Bounce {
            type State = u32;

            fn name(&self) -> &str {
                "bounce"
            }

            fn initial_state(&self) -> u32 {
                0
            }

            fn compute(&self, state: &mut u32, view: &View) -> LocalDir {
                *state += 1;
                if view.exists_edge_ahead() {
                    view.dir()
                } else {
                    view.dir().opposite()
                }
            }
        }

        for (n, k) in [(5usize, 4usize), (8, 4), (9, 8)] {
            let r = ring(n);
            let make = || {
                let schedule = BernoulliSchedule::new(r.clone(), 0.4, 0xD1CE).expect("valid p");
                let placements = (0..k)
                    .map(|i| RobotPlacement::at(NodeId::new(i)))
                    .collect();
                Simulator::new(r.clone(), Bounce, Oblivious::new(schedule), placements)
                    .expect("valid setup")
            };
            let mut quiet = make();
            let mut recorded = make();
            for round in 0..200 {
                quiet.step_quiet();
                recorded.step();
                assert_eq!(
                    quiet.positions(),
                    recorded.positions(),
                    "n={n} k={k} round={round}"
                );
            }
            for id in 0..k {
                assert_eq!(
                    quiet.state_of(RobotId::new(id)),
                    recorded.state_of(RobotId::new(id)),
                    "n={n} k={k} robot={id}"
                );
            }
        }
    }

    #[test]
    fn quiet_path_falls_back_when_dynamics_refuses_probes() {
        // Recurrent needs the full snapshot every round; the quiet path
        // must fall back to edges_at_into and stay equivalent.
        use crate::Recurrent;
        use dynring_graph::BernoulliSchedule;

        let r = ring(9);
        let make = || {
            let schedule = BernoulliSchedule::new(r.clone(), 0.2, 7).expect("valid p");
            Simulator::new(
                r.clone(),
                KeepDir,
                Recurrent::new(Oblivious::new(schedule), 5, None),
                vec![RobotPlacement::at(NodeId::new(2))],
            )
            .expect("valid setup")
        };
        let mut quiet = make();
        let mut recorded = make();
        for _ in 0..200 {
            quiet.step_quiet();
            recorded.step();
            assert_eq!(quiet.positions(), recorded.positions());
        }
    }

    #[test]
    fn global_dir_of_reports_translated_direction() {
        let sim = static_sim(
            4,
            vec![RobotPlacement::at(NodeId::new(0)).with_chirality(Chirality::Mirrored)],
        );
        assert_eq!(sim.global_dir_of(RobotId::new(0)), GlobalDir::Clockwise);
    }
}
