//! Look-Compute-Move execution engine for robots on evolving rings.
//!
//! This crate implements §2.2–§2.3 of Bournat, Dubois & Petit (ICDCS 2017):
//! uniform, anonymous robots with persistent memory, individual chirality,
//! and local weak multiplicity detection, executing synchronous
//! Look-Compute-Move rounds on an evolving ring.
//!
//! # Round semantics (faithful to the paper)
//!
//! The round that transitions the system from `(G_t, γ_t)` to
//! `(G_{t+1}, γ_{t+1})` proceeds in three atomic phases, all against the
//! *same* snapshot `G_t`:
//!
//! 1. **Look** — each robot evaluates `ExistsEdge(dir)`,
//!    `ExistsEdge(opposite dir)` and `ExistsOtherRobotsOnCurrentNode()` in
//!    `G_t` (its [`View`]);
//! 2. **Compute** — the deterministic [`Algorithm`] updates the robot's
//!    persistent state and direction from the view alone;
//! 3. **Move** — the robot crosses the edge in its (new) direction iff that
//!    edge is present in `G_t`, otherwise it stays put.
//!
//! The adversary picks `G_t` *before* the round, but may do so adaptively,
//! after observing the full configuration `γ_t` (an [`Observation`]); see
//! [`Dynamics`]. Oblivious schedules from `dynring-graph` plug in through
//! [`Oblivious`].
//!
//! # Example
//!
//! ```rust
//! use dynring_engine::{Algorithm, LocalDir, Oblivious, RobotPlacement,
//!                      Simulator, View};
//! use dynring_graph::{AlwaysPresent, NodeId, RingTopology};
//!
//! /// A robot that never turns: it keeps walking in its initial direction.
//! #[derive(Debug, Clone)]
//! struct KeepGoing;
//!
//! impl Algorithm for KeepGoing {
//!     type State = ();
//!     fn name(&self) -> &str { "keep-going" }
//!     fn initial_state(&self) {}
//!     fn compute(&self, _state: &mut (), view: &View) -> LocalDir {
//!         view.dir()
//!     }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ring = RingTopology::new(5)?;
//! let dynamics = Oblivious::new(AlwaysPresent::new(ring.clone()));
//! let mut sim = Simulator::new(
//!     ring,
//!     KeepGoing,
//!     dynamics,
//!     vec![RobotPlacement::at(NodeId::new(0))],
//! )?;
//! let trace = sim.run_recording(10);
//! assert_eq!(trace.rounds().len(), 10);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod algorithm;
pub mod async_exec;
mod batch;
mod direction;
mod dynamics;
mod error;
mod robot;
mod simulator;
mod ssync;
mod trace;
mod view;

pub use algorithm::{Algorithm, BatchAlgorithm, PerLane};
pub use batch::{
    sparse_fill_default, BatchCoverage, BatchDynamics, BatchSimulator, UniformBatch, LANES,
};
pub use direction::{Chirality, LocalDir};
pub use dynamics::{AdaptiveFn, Capturing, Dynamics, EdgeProbe, Oblivious, Observation, Recurrent};
pub use error::EngineError;
pub use robot::{RobotId, RobotPlacement, RobotSnapshot};
pub use simulator::Simulator;
pub use ssync::{ActivationPolicy, BatchActivation, EveryKth, FullActivation, RoundRobinSingle};
pub use trace::{ExecutionTrace, RobotRound, RoundRecord, Tower};
pub use view::{View, ViewWords};

// The batch engine's arity vocabulary, re-exported so downstream crates can
// pick a lane width without importing dynring-graph directly.
pub use dynring_graph::{LaneWord, LaneWords, Lanes128, Lanes256, LANES_PER_WORD};
