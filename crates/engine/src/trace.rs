//! Execution traces: the full record of a run, for checkers and reports.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

use dynring_graph::{EdgeSet, GlobalDir, NodeId, RingTopology, Time};

use crate::{LocalDir, RobotId, RobotSnapshot};

/// What one robot did during one round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RobotRound {
    /// Which robot.
    pub id: RobotId,
    /// Node during the Look phase (its position in `γ_t`).
    pub node_before: NodeId,
    /// Direction variable during the Look phase (state in `γ_t`).
    pub dir_before: LocalDir,
    /// Global translation of [`RobotRound::dir_before`].
    pub global_dir_before: GlobalDir,
    /// Direction variable after the Compute phase.
    pub dir_after: LocalDir,
    /// Global translation of [`RobotRound::dir_after`].
    pub global_dir_after: GlobalDir,
    /// Whether the Move phase crossed an edge.
    pub moved: bool,
    /// Node after the Move phase (its position in `γ_{t+1}`).
    pub node_after: NodeId,
    /// Whether the robot was activated this round (always `true` under
    /// FSYNC; SSYNC activation policies may skip robots).
    pub activated: bool,
}

/// A group of co-located robots at one instant.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tower {
    /// The node the robots share.
    pub node: NodeId,
    /// The robots involved (at least two), in id order.
    pub robots: Vec<RobotId>,
}

impl Tower {
    /// Number of robots involved.
    pub fn size(&self) -> usize {
        self.robots.len()
    }
}

/// The complete record of one round `t → t + 1`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundRecord {
    /// The round index `t`.
    pub time: Time,
    /// The snapshot `G_t` chosen by the dynamics.
    pub edges: EdgeSet,
    /// Per-robot actions, in robot-id order.
    pub robots: Vec<RobotRound>,
}

impl RoundRecord {
    /// Towers in the configuration `γ_t` (positions during Look).
    pub fn towers_before(&self) -> Vec<Tower> {
        towers_of(self.robots.iter().map(|r| (r.id, r.node_before)))
    }

    /// Towers in the configuration `γ_{t+1}` (positions after Move).
    pub fn towers_after(&self) -> Vec<Tower> {
        towers_of(self.robots.iter().map(|r| (r.id, r.node_after)))
    }
}

fn towers_of(positions: impl Iterator<Item = (RobotId, NodeId)>) -> Vec<Tower> {
    let mut groups: BTreeMap<NodeId, Vec<RobotId>> = BTreeMap::new();
    for (id, node) in positions {
        groups.entry(node).or_default().push(id);
    }
    groups
        .into_iter()
        .filter(|(_, robots)| robots.len() > 1)
        .map(|(node, mut robots)| {
            robots.sort();
            Tower { node, robots }
        })
        .collect()
}

/// A full execution `(G_0, γ_0), (G_1, γ_1), …` over a finite horizon.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecutionTrace {
    ring: RingTopology,
    initial: Vec<RobotSnapshot>,
    rounds: Vec<RoundRecord>,
}

impl ExecutionTrace {
    /// Starts a trace from the initial configuration `γ_0`.
    pub fn new(ring: RingTopology, initial: Vec<RobotSnapshot>) -> Self {
        ExecutionTrace {
            ring,
            initial,
            rounds: Vec::new(),
        }
    }

    /// Appends one round record.
    pub fn push(&mut self, record: RoundRecord) {
        self.rounds.push(record);
    }

    /// The ring.
    pub fn ring(&self) -> &RingTopology {
        &self.ring
    }

    /// The initial configuration `γ_0`.
    pub fn initial(&self) -> &[RobotSnapshot] {
        &self.initial
    }

    /// All recorded rounds.
    pub fn rounds(&self) -> &[RoundRecord] {
        &self.rounds
    }

    /// Number of recorded rounds (the trace spans configurations
    /// `γ_0 … γ_len`).
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// `true` when no round was recorded.
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// Number of robots.
    pub fn robot_count(&self) -> usize {
        self.initial.len()
    }

    /// Positions in configuration `γ_t`, for `t` in `0 ..= len`.
    ///
    /// # Panics
    ///
    /// Panics when `t > len`.
    pub fn positions_at(&self, t: Time) -> Vec<NodeId> {
        if t == 0 {
            return self.initial.iter().map(|r| r.node).collect();
        }
        let idx = usize::try_from(t - 1).expect("time fits usize");
        assert!(idx < self.rounds.len(), "time {t} beyond trace length");
        self.rounds[idx].robots.iter().map(|r| r.node_after).collect()
    }

    /// Positions in the final configuration.
    pub fn final_positions(&self) -> Vec<NodeId> {
        self.positions_at(self.rounds.len() as Time)
    }

    /// Towers in configuration `γ_t`, for `t` in `0 ..= len`.
    pub fn towers_at(&self, t: Time) -> Vec<Tower> {
        if t == 0 {
            return towers_of(self.initial.iter().map(|r| (r.id, r.node)));
        }
        let idx = usize::try_from(t - 1).expect("time fits usize");
        assert!(idx < self.rounds.len(), "time {t} beyond trace length");
        self.rounds[idx].towers_after()
    }

    /// Every `(t, tower)` pair over the whole trace (`t` in `0 ..= len`).
    pub fn all_towers(&self) -> Vec<(Time, Tower)> {
        let mut out = Vec::new();
        for t in 0..=(self.rounds.len() as Time) {
            for tower in self.towers_at(t) {
                out.push((t, tower));
            }
        }
        out
    }

    /// Largest tower size over the whole trace (0 when no tower ever forms).
    pub fn max_tower_size(&self) -> usize {
        self.all_towers()
            .iter()
            .map(|(_, tw)| tw.size())
            .max()
            .unwrap_or(0)
    }

    /// The times `t ∈ 0 ..= len` at which some robot stands on `node`.
    pub fn visit_times(&self, node: NodeId) -> Vec<Time> {
        (0..=(self.rounds.len() as Time))
            .filter(|&t| self.positions_at(t).contains(&node))
            .collect()
    }

    /// The set of nodes visited at least once (including initial
    /// positions), in index order.
    pub fn visited_nodes(&self) -> Vec<NodeId> {
        let mut seen = vec![false; self.ring.node_count()];
        for t in 0..=(self.rounds.len() as Time) {
            for node in self.positions_at(t) {
                seen[node.index()] = true;
            }
        }
        seen.iter()
            .enumerate()
            .filter(|&(_i, &s)| s).map(|(i, &_s)| NodeId::new(i))
            .collect()
    }

    /// `true` when every node of the ring is visited at least once.
    pub fn covers_all_nodes(&self) -> bool {
        self.visited_nodes().len() == self.ring.node_count()
    }

    /// Renders a node×time ASCII chart: rows are nodes, columns are
    /// configurations `γ_0 … γ_len`; a digit is the number of robots on the
    /// node (blank when zero).
    pub fn ascii_chart(&self) -> String {
        let mut out = String::new();
        let horizon = self.rounds.len() as Time;
        let label_width = format!("v{}", self.ring.node_count() - 1).len();
        let _ = write!(out, "{:label_width$} ", "");
        for t in 0..=horizon {
            if t % 10 == 0 {
                let _ = write!(out, "{}", (t / 10) % 10);
            } else {
                out.push(' ');
            }
        }
        out.push('\n');
        for node in self.ring.nodes() {
            let _ = write!(out, "{:<label_width$} ", format!("v{}", node.index()));
            for t in 0..=horizon {
                let count = self
                    .positions_at(t)
                    .iter()
                    .filter(|&&p| p == node)
                    .count();
                out.push(match count {
                    0 => '·',
                    1..=9 => char::from_digit(count as u32, 10).expect("single digit"),
                    _ => '+',
                });
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Chirality;

    fn ring(n: usize) -> RingTopology {
        RingTopology::new(n).expect("valid ring")
    }

    fn snapshot(id: usize, node: usize) -> RobotSnapshot {
        RobotSnapshot {
            id: RobotId::new(id),
            node: NodeId::new(node),
            chirality: Chirality::Standard,
            dir: LocalDir::Left,
            moved_last_round: false,
        }
    }

    fn round(
        time: Time,
        moves: &[(usize, usize, usize)], // (id, before, after)
        universe: usize,
    ) -> RoundRecord {
        RoundRecord {
            time,
            edges: EdgeSet::full(universe),
            robots: moves
                .iter()
                .map(|&(id, before, after)| RobotRound {
                    id: RobotId::new(id),
                    node_before: NodeId::new(before),
                    dir_before: LocalDir::Left,
                    global_dir_before: GlobalDir::CounterClockwise,
                    dir_after: LocalDir::Left,
                    global_dir_after: GlobalDir::CounterClockwise,
                    moved: before != after,
                    node_after: NodeId::new(after),
                    activated: true,
                })
                .collect(),
        }
    }

    fn sample_trace() -> ExecutionTrace {
        // Two robots on a 4-ring: r0 walks 0→3→2, r1 stays at 2.
        let mut trace = ExecutionTrace::new(ring(4), vec![snapshot(0, 0), snapshot(1, 2)]);
        trace.push(round(0, &[(0, 0, 3), (1, 2, 2)], 4));
        trace.push(round(1, &[(0, 3, 2), (1, 2, 2)], 4));
        trace
    }

    #[test]
    fn positions_follow_rounds() {
        let trace = sample_trace();
        assert_eq!(
            trace.positions_at(0),
            vec![NodeId::new(0), NodeId::new(2)]
        );
        assert_eq!(
            trace.positions_at(1),
            vec![NodeId::new(3), NodeId::new(2)]
        );
        assert_eq!(
            trace.positions_at(2),
            vec![NodeId::new(2), NodeId::new(2)]
        );
        assert_eq!(trace.final_positions(), trace.positions_at(2));
    }

    #[test]
    fn towers_detected_at_meeting() {
        let trace = sample_trace();
        assert!(trace.towers_at(0).is_empty());
        assert!(trace.towers_at(1).is_empty());
        let towers = trace.towers_at(2);
        assert_eq!(towers.len(), 1);
        assert_eq!(towers[0].node, NodeId::new(2));
        assert_eq!(towers[0].robots, vec![RobotId::new(0), RobotId::new(1)]);
        assert_eq!(towers[0].size(), 2);
        assert_eq!(trace.max_tower_size(), 2);
        let all = trace.all_towers();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].0, 2);
    }

    #[test]
    fn visits_and_coverage() {
        let trace = sample_trace();
        assert_eq!(trace.visit_times(NodeId::new(2)), vec![0, 1, 2]);
        assert_eq!(trace.visit_times(NodeId::new(3)), vec![1]);
        assert_eq!(trace.visit_times(NodeId::new(1)), Vec::<Time>::new());
        let visited = trace.visited_nodes();
        assert_eq!(
            visited,
            vec![NodeId::new(0), NodeId::new(2), NodeId::new(3)]
        );
        assert!(!trace.covers_all_nodes());
    }

    #[test]
    fn round_record_towers_before_and_after() {
        let rec = round(5, &[(0, 1, 2), (1, 2, 2)], 4);
        assert!(rec.towers_before().is_empty());
        let after = rec.towers_after();
        assert_eq!(after.len(), 1);
        assert_eq!(after[0].node, NodeId::new(2));
    }

    #[test]
    fn ascii_chart_shapes() {
        let trace = sample_trace();
        let chart = trace.ascii_chart();
        assert_eq!(chart.lines().count(), 5); // header + 4 nodes
        assert!(chart.contains("v2 11 2") || chart.contains("v2 112"), "{chart}");
    }

    #[test]
    fn serde_round_trip() {
        let trace = sample_trace();
        let json = serde_json::to_string(&trace).expect("serialize");
        let back: ExecutionTrace = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(trace, back);
    }
}
