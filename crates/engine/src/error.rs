//! Error types for simulator construction.

use std::error::Error;
use std::fmt;

use dynring_graph::NodeId;

/// Errors raised while assembling a [`crate::Simulator`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EngineError {
    /// At least one robot is required.
    NoRobots,
    /// A *well-initiated* execution (§2.4) requires strictly fewer robots
    /// than nodes.
    TooManyRobots {
        /// Number of robots requested.
        robots: usize,
        /// Number of nodes of the ring.
        nodes: usize,
    },
    /// A *well-initiated* execution (§2.4) starts towerless: two robots were
    /// placed on the same node.
    InitialTower {
        /// The shared node.
        node: NodeId,
    },
    /// A placement referenced a node outside the ring.
    NodeOutOfRange {
        /// The offending node.
        node: NodeId,
        /// Number of nodes of the ring.
        nodes: usize,
    },
    /// The dynamics was built for a different ring.
    RingMismatch {
        /// Node count of the simulator's ring.
        expected: usize,
        /// Node count of the dynamics' ring.
        found: usize,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::NoRobots => write!(f, "at least one robot is required"),
            EngineError::TooManyRobots { robots, nodes } => write!(
                f,
                "well-initiated executions need fewer robots ({robots}) than nodes ({nodes})"
            ),
            EngineError::InitialTower { node } => {
                write!(f, "initial configuration has a tower on {node}")
            }
            EngineError::NodeOutOfRange { node, nodes } => {
                write!(f, "placement node {node} out of range for {nodes} nodes")
            }
            EngineError::RingMismatch { expected, found } => write!(
                f,
                "dynamics ring has {found} nodes but the simulator ring has {expected}"
            ),
        }
    }
}

impl Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_concise() {
        let err = EngineError::TooManyRobots {
            robots: 5,
            nodes: 5,
        };
        assert!(err.to_string().contains("fewer robots"));
    }

    #[test]
    fn implements_error_send_sync() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<EngineError>();
    }
}
