//! Local directions and chirality.

use std::fmt;

use serde::{Deserialize, Serialize};

use dynring_graph::GlobalDir;

/// A robot's *local* direction: the port label it points to.
///
/// Each robot labels the two ports of its current node `left` and `right`
/// consistently over the ring and over time (its *chirality*), but two
/// robots may disagree on the labelling. The paper initializes every
/// robot's `dir` variable to `left`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LocalDir {
    /// The port the robot labels "left".
    Left,
    /// The port the robot labels "right".
    Right,
}

impl LocalDir {
    /// Both local directions, left first.
    pub const ALL: [LocalDir; 2] = [LocalDir::Left, LocalDir::Right];

    /// The opposite local direction (the paper's `dir̄`).
    pub fn opposite(self) -> Self {
        match self {
            LocalDir::Left => LocalDir::Right,
            LocalDir::Right => LocalDir::Left,
        }
    }
}

impl Default for LocalDir {
    /// The paper's initial value: `left`.
    fn default() -> Self {
        LocalDir::Left
    }
}

impl fmt::Display for LocalDir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LocalDir::Left => write!(f, "left"),
            LocalDir::Right => write!(f, "right"),
        }
    }
}

/// A robot's fixed mapping from local directions to global ones.
///
/// Each robot has its own *stable* chirality: the mapping never changes, but
/// different robots may have different chiralities (they share no common
/// sense of direction). The external observer uses this to translate a
/// robot's `dir` into the global clockwise / counter-clockwise frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[derive(Default)]
pub enum Chirality {
    /// `right` is global clockwise (and `left` counter-clockwise).
    #[default]
    Standard,
    /// `right` is global counter-clockwise (mirror image).
    Mirrored,
}

impl Chirality {
    /// Both chiralities, standard first.
    pub const ALL: [Chirality; 2] = [Chirality::Standard, Chirality::Mirrored];

    /// Translates a local direction into the global frame.
    pub fn to_global(self, dir: LocalDir) -> GlobalDir {
        match (self, dir) {
            (Chirality::Standard, LocalDir::Right) | (Chirality::Mirrored, LocalDir::Left) => {
                GlobalDir::Clockwise
            }
            (Chirality::Standard, LocalDir::Left) | (Chirality::Mirrored, LocalDir::Right) => {
                GlobalDir::CounterClockwise
            }
        }
    }

    /// Translates a global direction into this robot's local frame.
    pub fn to_local(self, dir: GlobalDir) -> LocalDir {
        match (self, dir) {
            (Chirality::Standard, GlobalDir::Clockwise)
            | (Chirality::Mirrored, GlobalDir::CounterClockwise) => LocalDir::Right,
            (Chirality::Standard, GlobalDir::CounterClockwise)
            | (Chirality::Mirrored, GlobalDir::Clockwise) => LocalDir::Left,
        }
    }

    /// The mirror chirality.
    pub fn opposite(self) -> Self {
        match self {
            Chirality::Standard => Chirality::Mirrored,
            Chirality::Mirrored => Chirality::Standard,
        }
    }
}


impl fmt::Display for Chirality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Chirality::Standard => write!(f, "standard"),
            Chirality::Mirrored => write!(f, "mirrored"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opposite_is_involutive() {
        for d in LocalDir::ALL {
            assert_eq!(d.opposite().opposite(), d);
        }
        for c in Chirality::ALL {
            assert_eq!(c.opposite().opposite(), c);
        }
    }

    #[test]
    fn default_dir_is_left() {
        assert_eq!(LocalDir::default(), LocalDir::Left);
    }

    #[test]
    fn to_global_and_back_round_trips() {
        for c in Chirality::ALL {
            for d in LocalDir::ALL {
                assert_eq!(c.to_local(c.to_global(d)), d);
            }
            for g in GlobalDir::ALL {
                assert_eq!(c.to_global(c.to_local(g)), g);
            }
        }
    }

    #[test]
    fn mirrored_robots_disagree_globally() {
        // Two robots pointing to their own "left" head opposite global ways
        // when their chiralities differ.
        let a = Chirality::Standard.to_global(LocalDir::Left);
        let b = Chirality::Mirrored.to_global(LocalDir::Left);
        assert_eq!(a, b.opposite());
    }

    #[test]
    fn opposite_local_is_opposite_global() {
        for c in Chirality::ALL {
            for d in LocalDir::ALL {
                assert_eq!(c.to_global(d.opposite()), c.to_global(d).opposite());
            }
        }
    }

    #[test]
    fn display() {
        assert_eq!(LocalDir::Left.to_string(), "left");
        assert_eq!(Chirality::Mirrored.to_string(), "mirrored");
    }
}
