//! The local snapshot a robot obtains during its Look phase.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::LocalDir;

/// Everything a robot can observe during one Look phase (§2.3).
///
/// The *local environment* is the triple
/// `(ExistsEdge(dir), ExistsEdge(dir̄), ExistsOtherRobotsOnCurrentNode())`;
/// the view additionally carries the robot's current direction variable so
/// the predicates can be expressed relative to `dir`. Nothing else is
/// observable: no identifiers, no node names, no global orientation, no
/// exact multiplicity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct View {
    dir: LocalDir,
    edge_left: bool,
    edge_right: bool,
    other_robots: bool,
}

impl View {
    /// Assembles a view from raw observations.
    pub fn new(dir: LocalDir, edge_left: bool, edge_right: bool, other_robots: bool) -> Self {
        View {
            dir,
            edge_left,
            edge_right,
            other_robots,
        }
    }

    /// The robot's current direction variable.
    pub fn dir(&self) -> LocalDir {
        self.dir
    }

    /// The paper's `ExistsEdge(d)`: is there an adjacent edge at the current
    /// location on local direction `d`?
    pub fn exists_edge(&self, d: LocalDir) -> bool {
        match d {
            LocalDir::Left => self.edge_left,
            LocalDir::Right => self.edge_right,
        }
    }

    /// `ExistsEdge(dir)` for the robot's current direction.
    pub fn exists_edge_ahead(&self) -> bool {
        self.exists_edge(self.dir)
    }

    /// `ExistsEdge(dir̄)` for the opposite of the current direction.
    pub fn exists_edge_behind(&self) -> bool {
        self.exists_edge(self.dir.opposite())
    }

    /// The paper's `ExistsOtherRobotsOnCurrentNode()`: local weak
    /// multiplicity detection (more than one robot here?).
    pub fn other_robots_on_current_node(&self) -> bool {
        self.other_robots
    }

    /// `true` when the robot is alone on its node (the paper's *isolated*).
    pub fn is_isolated(&self) -> bool {
        !self.other_robots
    }

    /// Number of present adjacent edges (0, 1 or 2).
    pub fn present_edge_count(&self) -> usize {
        usize::from(self.edge_left) + usize::from(self.edge_right)
    }

    /// When exactly one adjacent edge is present, the local direction of
    /// that edge (used by `PEF_2`).
    pub fn single_present_edge(&self) -> Option<LocalDir> {
        match (self.edge_left, self.edge_right) {
            (true, false) => Some(LocalDir::Left),
            (false, true) => Some(LocalDir::Right),
            _ => None,
        }
    }
}

impl fmt::Display for View {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "view(dir={}, left={}, right={}, others={})",
            self.dir, self.edge_left, self.edge_right, self.other_robots
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicates_relative_to_dir() {
        let v = View::new(LocalDir::Right, false, true, false);
        assert!(v.exists_edge_ahead());
        assert!(!v.exists_edge_behind());
        assert!(v.exists_edge(LocalDir::Right));
        assert!(!v.exists_edge(LocalDir::Left));
        assert!(v.is_isolated());
    }

    #[test]
    fn multiplicity() {
        let v = View::new(LocalDir::Left, true, true, true);
        assert!(v.other_robots_on_current_node());
        assert!(!v.is_isolated());
        assert_eq!(v.present_edge_count(), 2);
    }

    #[test]
    fn single_present_edge() {
        assert_eq!(
            View::new(LocalDir::Left, true, false, false).single_present_edge(),
            Some(LocalDir::Left)
        );
        assert_eq!(
            View::new(LocalDir::Left, false, true, false).single_present_edge(),
            Some(LocalDir::Right)
        );
        assert_eq!(
            View::new(LocalDir::Left, true, true, false).single_present_edge(),
            None
        );
        assert_eq!(
            View::new(LocalDir::Left, false, false, false).single_present_edge(),
            None
        );
    }

    #[test]
    fn display() {
        let v = View::new(LocalDir::Left, true, false, false);
        assert_eq!(
            v.to_string(),
            "view(dir=left, left=true, right=false, others=false)"
        );
    }
}
