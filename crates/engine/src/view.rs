//! The local snapshot a robot obtains during its Look phase.

use std::fmt;

use dynring_graph::LaneWord;
use serde::{Deserialize, Serialize};

use crate::LocalDir;

/// Everything a robot can observe during one Look phase (§2.3).
///
/// The *local environment* is the triple
/// `(ExistsEdge(dir), ExistsEdge(dir̄), ExistsOtherRobotsOnCurrentNode())`;
/// the view additionally carries the robot's current direction variable so
/// the predicates can be expressed relative to `dir`. Nothing else is
/// observable: no identifiers, no node names, no global orientation, no
/// exact multiplicity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct View {
    dir: LocalDir,
    edge_left: bool,
    edge_right: bool,
    other_robots: bool,
}

impl View {
    /// Assembles a view from raw observations.
    pub fn new(dir: LocalDir, edge_left: bool, edge_right: bool, other_robots: bool) -> Self {
        View {
            dir,
            edge_left,
            edge_right,
            other_robots,
        }
    }

    /// The robot's current direction variable.
    pub fn dir(&self) -> LocalDir {
        self.dir
    }

    /// The paper's `ExistsEdge(d)`: is there an adjacent edge at the current
    /// location on local direction `d`?
    pub fn exists_edge(&self, d: LocalDir) -> bool {
        match d {
            LocalDir::Left => self.edge_left,
            LocalDir::Right => self.edge_right,
        }
    }

    /// `ExistsEdge(dir)` for the robot's current direction.
    pub fn exists_edge_ahead(&self) -> bool {
        self.exists_edge(self.dir)
    }

    /// `ExistsEdge(dir̄)` for the opposite of the current direction.
    pub fn exists_edge_behind(&self) -> bool {
        self.exists_edge(self.dir.opposite())
    }

    /// The paper's `ExistsOtherRobotsOnCurrentNode()`: local weak
    /// multiplicity detection (more than one robot here?).
    pub fn other_robots_on_current_node(&self) -> bool {
        self.other_robots
    }

    /// `true` when the robot is alone on its node (the paper's *isolated*).
    pub fn is_isolated(&self) -> bool {
        !self.other_robots
    }

    /// Number of present adjacent edges (0, 1 or 2).
    pub fn present_edge_count(&self) -> usize {
        usize::from(self.edge_left) + usize::from(self.edge_right)
    }

    /// When exactly one adjacent edge is present, the local direction of
    /// that edge (used by `PEF_2`).
    pub fn single_present_edge(&self) -> Option<LocalDir> {
        match (self.edge_left, self.edge_right) {
            (true, false) => Some(LocalDir::Left),
            (false, true) => Some(LocalDir::Right),
            _ => None,
        }
    }
}

/// The lane-word form of [`View`] used by the batch engine: lane `l` of
/// every word is replica `l`'s observation of the same robot. The arity
/// `W` ([`LaneWord`]: `u64`, `Lanes128`, `Lanes256`) fixes the replica
/// count; the default keeps the original 64-lane form spelled `ViewWords`.
///
/// Direction encoding: a set bit means [`LocalDir::Right`], a clear bit
/// [`LocalDir::Left`] (see [`ViewWords::dir_bit`]). Boolean observations
/// (`edge_left`, `edge_right`, `others`) are plain bit-sliced booleans.
/// With this convention every portfolio algorithm's Compute rule becomes a
/// short boolean circuit over whole words — `W::LANES` replicas per
/// operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ViewWords<W: LaneWord = u64> {
    /// Direction word: lane `l` set ⇔ lane `l`'s `dir` is `Right`.
    pub dir: W,
    /// `ExistsEdge(left)` word.
    pub edge_left: W,
    /// `ExistsEdge(right)` word.
    pub edge_right: W,
    /// `ExistsOtherRobotsOnCurrentNode()` word.
    pub others: W,
}

impl ViewWords {
    /// The bit encoding a direction: `Right` ↦ 1, `Left` ↦ 0.
    pub fn dir_bit(dir: LocalDir) -> u64 {
        match dir {
            LocalDir::Left => 0,
            LocalDir::Right => 1,
        }
    }

    /// Inverse of [`ViewWords::dir_bit`].
    pub fn dir_from_bit(bit: bool) -> LocalDir {
        if bit {
            LocalDir::Right
        } else {
            LocalDir::Left
        }
    }
}

impl<W: LaneWord> ViewWords<W> {
    /// `ExistsEdge(dir)` in every lane: the word form of
    /// [`View::exists_edge_ahead`].
    pub fn exists_edge_ahead(&self) -> W {
        (self.dir & self.edge_right) | (!self.dir & self.edge_left)
    }

    /// `ExistsEdge(dir̄)` in every lane: the word form of
    /// [`View::exists_edge_behind`].
    pub fn exists_edge_behind(&self) -> W {
        (self.dir & self.edge_left) | (!self.dir & self.edge_right)
    }

    /// The scalar [`View`] seen by lane `lane` — the lane-by-lane fallback
    /// path and the reference for circuit-equivalence tests.
    ///
    /// # Panics
    ///
    /// Panics when `lane ≥ W::LANES`.
    pub fn lane(&self, lane: u32) -> View {
        assert!(
            (lane as usize) < W::LANES,
            "lanes are 0..{}, got {lane}",
            W::LANES
        );
        let l = lane as usize;
        View::new(
            ViewWords::dir_from_bit(self.dir.get(l)),
            self.edge_left.get(l),
            self.edge_right.get(l),
            self.others.get(l),
        )
    }

    /// Packs per-lane scalar views into words (test/diagnostic helper;
    /// lanes beyond `views.len()` repeat the last view).
    ///
    /// # Panics
    ///
    /// Panics when `views` is empty or holds more than `W::LANES` entries.
    pub fn from_lanes(views: &[View]) -> Self {
        assert!(
            !views.is_empty() && views.len() <= W::LANES,
            "1..={} lanes",
            W::LANES
        );
        let mut words = ViewWords {
            dir: W::ZERO,
            edge_left: W::ZERO,
            edge_right: W::ZERO,
            others: W::ZERO,
        };
        for lane in 0..W::LANES {
            let v = views[lane.min(views.len() - 1)];
            words.dir.set(lane, ViewWords::dir_bit(v.dir) == 1);
            words.edge_left.set(lane, v.edge_left);
            words.edge_right.set(lane, v.edge_right);
            words.others.set(lane, v.other_robots);
        }
        words
    }
}

impl fmt::Display for View {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "view(dir={}, left={}, right={}, others={})",
            self.dir, self.edge_left, self.edge_right, self.other_robots
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicates_relative_to_dir() {
        let v = View::new(LocalDir::Right, false, true, false);
        assert!(v.exists_edge_ahead());
        assert!(!v.exists_edge_behind());
        assert!(v.exists_edge(LocalDir::Right));
        assert!(!v.exists_edge(LocalDir::Left));
        assert!(v.is_isolated());
    }

    #[test]
    fn multiplicity() {
        let v = View::new(LocalDir::Left, true, true, true);
        assert!(v.other_robots_on_current_node());
        assert!(!v.is_isolated());
        assert_eq!(v.present_edge_count(), 2);
    }

    #[test]
    fn single_present_edge() {
        assert_eq!(
            View::new(LocalDir::Left, true, false, false).single_present_edge(),
            Some(LocalDir::Left)
        );
        assert_eq!(
            View::new(LocalDir::Left, false, true, false).single_present_edge(),
            Some(LocalDir::Right)
        );
        assert_eq!(
            View::new(LocalDir::Left, true, true, false).single_present_edge(),
            None
        );
        assert_eq!(
            View::new(LocalDir::Left, false, false, false).single_present_edge(),
            None
        );
    }

    #[test]
    fn display() {
        let v = View::new(LocalDir::Left, true, false, false);
        assert_eq!(
            v.to_string(),
            "view(dir=left, left=true, right=false, others=false)"
        );
    }

    #[test]
    fn view_words_round_trip_lanes() {
        // All 16 observable combinations, one per lane (cycled): packing
        // then extracting reproduces every scalar view.
        let combos: Vec<View> = (0..16u32)
            .map(|bits| {
                View::new(
                    ViewWords::dir_from_bit(bits & 1 == 1),
                    bits & 2 != 0,
                    bits & 4 != 0,
                    bits & 8 != 0,
                )
            })
            .collect();
        let words: ViewWords = ViewWords::from_lanes(&combos);
        for lane in 0..16u32 {
            assert_eq!(words.lane(lane), combos[lane as usize], "lane {lane}");
        }
        // Lanes beyond the input repeat the last view.
        assert_eq!(words.lane(63), combos[15]);
    }

    #[test]
    fn wide_view_words_round_trip_every_arity() {
        use dynring_graph::{Lanes128, Lanes256};

        fn check<W: LaneWord>() {
            let combos: Vec<View> = (0..16u32)
                .map(|bits| {
                    View::new(
                        ViewWords::dir_from_bit(bits & 1 == 1),
                        bits & 2 != 0,
                        bits & 4 != 0,
                        bits & 8 != 0,
                    )
                })
                .collect();
            let words: ViewWords<W> = ViewWords::from_lanes(&combos);
            for lane in 0..16u32 {
                assert_eq!(words.lane(lane), combos[lane as usize], "lane {lane}");
            }
            // Lanes beyond the input repeat the last view, out to the top
            // lane of the arity.
            assert_eq!(words.lane(W::LANES as u32 - 1), combos[15]);
            let ahead = words.exists_edge_ahead();
            for lane in 0..W::LANES {
                let v = combos[lane.min(15)];
                assert_eq!(ahead.get(lane), v.exists_edge_ahead(), "lane {lane}");
            }
        }
        check::<u64>();
        check::<Lanes128>();
        check::<Lanes256>();
    }

    #[test]
    #[should_panic(expected = "lanes are 0..128, got 128")]
    fn wide_lane_bound_panics_with_arity_in_the_message() {
        use dynring_graph::Lanes128;
        let words: ViewWords<Lanes128> =
            ViewWords::from_lanes(&[View::new(LocalDir::Left, false, false, false)]);
        let _ = words.lane(128);
    }

    #[test]
    fn word_predicates_match_scalar_predicates() {
        let combos: Vec<View> = (0..16u32)
            .map(|bits| {
                View::new(
                    ViewWords::dir_from_bit(bits & 1 == 1),
                    bits & 2 != 0,
                    bits & 4 != 0,
                    bits & 8 != 0,
                )
            })
            .collect();
        let words: ViewWords = ViewWords::from_lanes(&combos);
        let ahead = words.exists_edge_ahead();
        let behind = words.exists_edge_behind();
        for (lane, v) in combos.iter().enumerate() {
            assert_eq!((ahead >> lane) & 1 == 1, v.exists_edge_ahead(), "lane {lane}");
            assert_eq!((behind >> lane) & 1 == 1, v.exists_edge_behind(), "lane {lane}");
        }
    }

    #[test]
    fn dir_bit_convention() {
        assert_eq!(ViewWords::dir_bit(LocalDir::Right), 1);
        assert_eq!(ViewWords::dir_bit(LocalDir::Left), 0);
        assert_eq!(ViewWords::dir_from_bit(true), LocalDir::Right);
        assert_eq!(ViewWords::dir_from_bit(false), LocalDir::Left);
    }
}
