//! Dynamics: how the adversary chooses each snapshot `G_t`.
//!
//! The paper's adversary is *online and adaptive*: it may pick the edges of
//! `G_t` after observing the full configuration `γ_t` (robot positions and
//! states) — this is exactly how the impossibility proofs operate. The
//! [`Dynamics`] trait models that; [`Oblivious`] plugs in the pure
//! time-indexed schedules of `dynring-graph`, [`Recurrent`] repairs any
//! dynamics to a hard recurrence bound online, and [`Capturing`] records the
//! emitted snapshots so adaptive runs can be replayed as pure schedules
//! (feeding the convergence framework).

use dynring_graph::{EdgeId, EdgeSchedule, EdgeSet, NodeId, RingTopology, ScriptedSchedule, TailBehavior, Time};

use crate::RobotSnapshot;

/// What the adversary sees before choosing `G_t`: the time and the full
/// configuration `γ_t` (positions, directions, chirality, moved-flags of
/// every robot).
///
/// Algorithm-internal state is *not* exposed; the paper's adversaries never
/// need it (they know the deterministic algorithm and can simulate it).
#[derive(Debug, Clone, Copy)]
pub struct Observation<'a> {
    time: Time,
    ring: &'a RingTopology,
    robots: &'a [RobotSnapshot],
}

impl<'a> Observation<'a> {
    /// Assembles an observation.
    pub fn new(time: Time, ring: &'a RingTopology, robots: &'a [RobotSnapshot]) -> Self {
        Observation { time, ring, robots }
    }

    /// Current time `t` (the snapshot being chosen is `G_t`).
    pub fn time(&self) -> Time {
        self.time
    }

    /// The ring.
    pub fn ring(&self) -> &'a RingTopology {
        self.ring
    }

    /// All robot snapshots, in robot-id order.
    pub fn robots(&self) -> &'a [RobotSnapshot] {
        self.robots
    }

    /// Number of robots standing on `node`.
    pub fn robots_at(&self, node: NodeId) -> usize {
        self.robots.iter().filter(|r| r.node == node).count()
    }

    /// Position of robot `index`.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    pub fn position(&self, index: usize) -> NodeId {
        self.robots[index].node
    }

    /// The set of edges currently pointed to by at least one robot (each
    /// robot points to the adjacent edge in its direction).
    pub fn pointed_edges(&self) -> EdgeSet {
        let mut set = EdgeSet::empty_for(self.ring);
        self.pointed_edges_into(&mut set);
        set
    }

    /// Writes the pointed-edge set into `out` without allocating.
    pub fn pointed_edges_into(&self, out: &mut EdgeSet) {
        out.reset(self.ring.edge_count());
        for r in self.robots {
            out.insert(self.ring.edge_towards(r.node, r.global_dir()));
        }
    }
}

/// One point presence query answered by [`Dynamics::probe_edges`]: the
/// engine fills in `edge`, the dynamics fills in `present`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeProbe {
    /// The queried edge.
    pub edge: EdgeId,
    /// The answer: is `edge` present in `G_t`? Written by the dynamics.
    pub present: bool,
}

impl EdgeProbe {
    /// A query for `edge`, not yet answered.
    pub fn new(edge: EdgeId) -> Self {
        EdgeProbe {
            edge,
            present: false,
        }
    }
}

/// The adversary: chooses the snapshot `G_t` each round, possibly adaptively.
pub trait Dynamics {
    /// The ring whose edges are being scheduled.
    fn ring(&self) -> &RingTopology;

    /// Chooses the edge set of `G_t` given the observation of `γ_t`.
    ///
    /// Called exactly once per round, with strictly increasing times, so
    /// implementations may keep sequential state.
    fn edges_at(&mut self, obs: &Observation<'_>) -> EdgeSet;

    /// Writes the snapshot `G_t` into `out` without allocating.
    ///
    /// The round engine calls this (never [`Dynamics::edges_at`]) so a
    /// pooled scratch set is reused across rounds. The default delegates to
    /// `edges_at`; allocation-free adversaries override it and exactly one
    /// of the two methods must carry the real choice logic per
    /// implementation (the paper's adversaries implement `edges_at_into`
    /// and derive `edges_at` from it).
    fn edges_at_into(&mut self, obs: &Observation<'_>, out: &mut EdgeSet) {
        *out = self.edges_at(obs);
    }

    /// The sparse fast path: answers point presence queries about `G_t`
    /// without materializing the whole snapshot.
    ///
    /// A round of `k` robots only ever reads the ≤ `2k` edges adjacent to
    /// robot positions, so on the quiet path (no record materialized) the
    /// engine first offers the round to this method. A dynamics that can
    /// answer point queries — pure schedules with random access in time —
    /// fills every query's `present` field, returns `true`, and the O(n)
    /// snapshot scan is skipped entirely: the per-round cost becomes
    /// O(robots), independent of ring size.
    ///
    /// The contract mirrors [`Dynamics::edges_at_into`]: the engine calls
    /// **exactly one** of `probe_edges` / `edges_at_into` per round, with
    /// strictly increasing times, and the answers must agree with what
    /// `edges_at_into` would have produced for the same observation.
    ///
    /// The default returns `false` **without touching queries or state** —
    /// "unsupported, fall back to `edges_at_into` for this round" — so
    /// stateful adversaries that need the full snapshot to advance their
    /// bookkeeping (recurrence repair, recording, the paper's confiners)
    /// are unaffected. Implementations that return `false` must do the
    /// same.
    fn probe_edges(&mut self, _obs: &Observation<'_>, _queries: &mut [EdgeProbe]) -> bool {
        false
    }
}

impl<D: Dynamics + ?Sized> Dynamics for &mut D {
    fn ring(&self) -> &RingTopology {
        (**self).ring()
    }

    fn edges_at(&mut self, obs: &Observation<'_>) -> EdgeSet {
        (**self).edges_at(obs)
    }

    fn edges_at_into(&mut self, obs: &Observation<'_>, out: &mut EdgeSet) {
        (**self).edges_at_into(obs, out);
    }

    fn probe_edges(&mut self, obs: &Observation<'_>, queries: &mut [EdgeProbe]) -> bool {
        (**self).probe_edges(obs, queries)
    }
}

impl<D: Dynamics + ?Sized> Dynamics for Box<D> {
    fn ring(&self) -> &RingTopology {
        (**self).ring()
    }

    fn edges_at(&mut self, obs: &Observation<'_>) -> EdgeSet {
        (**self).edges_at(obs)
    }

    fn edges_at_into(&mut self, obs: &Observation<'_>, out: &mut EdgeSet) {
        (**self).edges_at_into(obs, out);
    }

    fn probe_edges(&mut self, obs: &Observation<'_>, queries: &mut [EdgeProbe]) -> bool {
        (**self).probe_edges(obs, queries)
    }
}

/// An oblivious adversary: plays a pure time-indexed [`EdgeSchedule`],
/// ignoring the robots entirely.
#[derive(Debug, Clone)]
pub struct Oblivious<S> {
    schedule: S,
}

impl<S: EdgeSchedule> Oblivious<S> {
    /// Wraps a schedule.
    pub fn new(schedule: S) -> Self {
        Oblivious { schedule }
    }

    /// The wrapped schedule.
    pub fn schedule(&self) -> &S {
        &self.schedule
    }

    /// Unwraps the schedule.
    pub fn into_inner(self) -> S {
        self.schedule
    }
}

impl<S: EdgeSchedule> Dynamics for Oblivious<S> {
    fn ring(&self) -> &RingTopology {
        self.schedule.ring()
    }

    fn edges_at(&mut self, obs: &Observation<'_>) -> EdgeSet {
        self.schedule.edges_at(obs.time())
    }

    fn edges_at_into(&mut self, obs: &Observation<'_>, out: &mut EdgeSet) {
        self.schedule.edges_at_into(obs.time(), out);
    }

    /// Pure schedules have random access in time, so every point query is
    /// answered directly — the canonical sparse path.
    ///
    /// Schedules with word-level random access
    /// ([`EdgeSchedule::sampled_presence_word`], e.g. the bit-sliced
    /// Bernoulli sampler) are queried one 64-edge word at a time with a
    /// last-word memo: the two adjacent-edge probes of one robot usually
    /// share a word, so consecutive probes reuse the sampled word instead
    /// of re-running the slice ladder per probe. Schedules without word
    /// access fall back to per-probe [`EdgeSchedule::is_present`].
    fn probe_edges(&mut self, obs: &Observation<'_>, queries: &mut [EdgeProbe]) -> bool {
        answer_probes_from_schedule(&self.schedule, obs.time(), queries);
        true
    }
}

/// Answers point presence queries against a pure schedule, one 64-edge
/// word at a time when the schedule has word-level random access
/// ([`EdgeSchedule::sampled_presence_word`]) and per-probe
/// [`EdgeSchedule::is_present`] otherwise. The single-word memo exploits
/// the probe layout: the two adjacent-edge probes of one robot share a
/// word unless the robot sits on a word boundary. Shared by
/// [`Oblivious`] and the ASYNC `ObliviousAsync`.
pub(crate) fn answer_probes_from_schedule<S: EdgeSchedule>(
    schedule: &S,
    t: dynring_graph::Time,
    queries: &mut [EdgeProbe],
) {
    let mut memo: Option<(usize, u64)> = None;
    for q in queries.iter_mut() {
        let index = q.edge.index();
        let word = index / 64;
        let bits = match memo {
            Some((w, bits)) if w == word => Some(bits),
            _ => {
                let sampled = schedule.sampled_presence_word(t, word);
                if let Some(bits) = sampled {
                    memo = Some((word, bits));
                }
                sampled
            }
        };
        q.present = match bits {
            Some(bits) => (bits >> (index % 64)) & 1 == 1,
            None => schedule.is_present(q.edge, t),
        };
    }
}

/// Online recurrence repair: whatever `inner` decides, every edge (except an
/// optional exempt one) is forced present before its absence run reaches
/// `bound`.
///
/// Wrapping an adversary in `Recurrent` *guarantees* the produced evolving
/// graph is connected-over-time with recurrence bound `bound` — the
/// adversary keeps all its power subject to the paper's fairness
/// obligation.
#[derive(Debug, Clone)]
pub struct Recurrent<D> {
    inner: D,
    bound: Time,
    exempt: Option<EdgeId>,
    absent_run: Vec<Time>,
}

impl<D: Dynamics> Recurrent<D> {
    /// Wraps `inner` with recurrence bound `bound` (≥ 1). `exempt` names an
    /// edge allowed to stay absent forever (the eventual missing edge).
    ///
    /// # Panics
    ///
    /// Panics when `bound == 0` or when `exempt` is not an edge of the ring.
    pub fn new(inner: D, bound: Time, exempt: Option<EdgeId>) -> Self {
        assert!(bound >= 1, "recurrence bound must be at least 1");
        if let Some(e) = exempt {
            inner
                .ring()
                .check_edge(e)
                .unwrap_or_else(|err| panic!("{err}"));
        }
        let edges = inner.ring().edge_count();
        Recurrent {
            inner,
            bound,
            exempt,
            absent_run: vec![0; edges],
        }
    }

    /// The wrapped dynamics.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// The recurrence bound.
    pub fn bound(&self) -> Time {
        self.bound
    }
}

// `Recurrent` keeps the refusing `probe_edges` default on purpose: its
// per-edge absence-run bookkeeping must observe the *full* snapshot every
// round, so sparse probing is not legal for it (same for `Capturing`,
// which records whole frames).
impl<D: Dynamics> Dynamics for Recurrent<D> {
    fn ring(&self) -> &RingTopology {
        self.inner.ring()
    }

    fn edges_at(&mut self, obs: &Observation<'_>) -> EdgeSet {
        let mut set = EdgeSet::empty_for(self.inner.ring());
        self.edges_at_into(obs, &mut set);
        set
    }

    fn edges_at_into(&mut self, obs: &Observation<'_>, out: &mut EdgeSet) {
        self.inner.edges_at_into(obs, out);
        for (index, run) in self.absent_run.iter_mut().enumerate() {
            let e = EdgeId::new(index);
            if Some(e) == self.exempt {
                continue;
            }
            if out.contains(e) {
                *run = 0;
            } else if *run + 1 >= self.bound {
                out.insert(e);
                *run = 0;
            } else {
                *run += 1;
            }
        }
    }
}

/// Records every snapshot emitted by `inner`, so the (possibly adaptive)
/// run can be replayed later as a pure [`ScriptedSchedule`] — the bridge
/// from adaptive adversaries to the convergence framework.
#[derive(Debug, Clone)]
pub struct Capturing<D> {
    inner: D,
    frames: Vec<EdgeSet>,
}

impl<D: Dynamics> Capturing<D> {
    /// Wraps `inner` with an empty capture buffer.
    pub fn new(inner: D) -> Self {
        Capturing {
            inner,
            frames: Vec::new(),
        }
    }

    /// The frames captured so far.
    pub fn frames(&self) -> &[EdgeSet] {
        &self.frames
    }

    /// The wrapped dynamics.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Builds a pure schedule replaying the captured frames.
    pub fn to_script(&self, tail: TailBehavior) -> ScriptedSchedule {
        ScriptedSchedule::new(self.inner.ring().clone(), self.frames.clone(), tail)
            .expect("captured frames share the dynamics' ring")
    }
}

impl<D: Dynamics> Dynamics for Capturing<D> {
    fn ring(&self) -> &RingTopology {
        self.inner.ring()
    }

    fn edges_at(&mut self, obs: &Observation<'_>) -> EdgeSet {
        let set = self.inner.edges_at(obs);
        self.frames.push(set.clone());
        set
    }

    fn edges_at_into(&mut self, obs: &Observation<'_>, out: &mut EdgeSet) {
        // Recording inherently allocates one frame per round; the inner
        // adversary still runs allocation-free.
        self.inner.edges_at_into(obs, out);
        self.frames.push(out.clone());
    }
}

/// Adaptive dynamics from a closure — convenient for tests and one-off
/// adversaries.
pub struct AdaptiveFn<F> {
    ring: RingTopology,
    f: F,
}

impl<F: FnMut(&Observation<'_>) -> EdgeSet> AdaptiveFn<F> {
    /// Wraps a closure choosing each snapshot.
    pub fn new(ring: RingTopology, f: F) -> Self {
        AdaptiveFn { ring, f }
    }
}

impl<F: FnMut(&Observation<'_>) -> EdgeSet> Dynamics for AdaptiveFn<F> {
    fn ring(&self) -> &RingTopology {
        &self.ring
    }

    fn edges_at(&mut self, obs: &Observation<'_>) -> EdgeSet {
        (self.f)(obs)
    }
}

impl<F> std::fmt::Debug for AdaptiveFn<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdaptiveFn").field("ring", &self.ring).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Chirality, LocalDir, RobotId};
    use dynring_graph::{AbsenceIntervals, AlwaysPresent, GlobalDir};

    fn ring(n: usize) -> RingTopology {
        RingTopology::new(n).expect("valid ring")
    }

    fn snap(id: usize, node: usize, dir: LocalDir) -> RobotSnapshot {
        RobotSnapshot {
            id: RobotId::new(id),
            node: NodeId::new(node),
            chirality: Chirality::Standard,
            dir,
            moved_last_round: false,
        }
    }

    #[test]
    fn observation_queries() {
        let r = ring(5);
        let robots = vec![
            snap(0, 1, LocalDir::Right),
            snap(1, 1, LocalDir::Left),
            snap(2, 3, LocalDir::Left),
        ];
        let obs = Observation::new(7, &r, &robots);
        assert_eq!(obs.time(), 7);
        assert_eq!(obs.robots_at(NodeId::new(1)), 2);
        assert_eq!(obs.robots_at(NodeId::new(0)), 0);
        assert_eq!(obs.position(2), NodeId::new(3));
        // r0 at v1 pointing right (cw) → e1; r1 at v1 pointing left (ccw) →
        // e0; r2 at v3 pointing left → e2.
        let pointed = obs.pointed_edges();
        assert!(pointed.contains(EdgeId::new(0)));
        assert!(pointed.contains(EdgeId::new(1)));
        assert!(pointed.contains(EdgeId::new(2)));
        assert_eq!(pointed.len(), 3);
    }

    #[test]
    fn oblivious_plays_the_schedule() {
        let mut g = AbsenceIntervals::new(ring(3));
        g.remove_during(EdgeId::new(1), 2, 4);
        let mut dyns = Oblivious::new(g);
        let r = ring(3);
        let robots: Vec<RobotSnapshot> = Vec::new();
        for t in 0..6u64 {
            let obs = Observation::new(t, &r, &robots);
            let set = dyns.edges_at(&obs);
            assert_eq!(set.contains(EdgeId::new(1)), !(2..4).contains(&t));
        }
    }

    #[test]
    fn recurrent_forces_presence() {
        // Inner adversary: always removes everything.
        let r = ring(3);
        let inner = AdaptiveFn::new(r.clone(), |obs| EdgeSet::empty_for(obs.ring()));
        let mut dyns = Recurrent::new(inner, 3, None);
        let robots: Vec<RobotSnapshot> = Vec::new();
        let mut history = Vec::new();
        for t in 0..9u64 {
            let obs = Observation::new(t, &r, &robots);
            history.push(dyns.edges_at(&obs));
        }
        // Every edge must appear at times 2, 5, 8 (forced by bound 3).
        for e in r.edges() {
            for t in [2usize, 5, 8] {
                assert!(history[t].contains(e), "edge {e} missing at forced {t}");
            }
            for t in [0usize, 1, 3, 4, 6, 7] {
                assert!(!history[t].contains(e), "edge {e} present at {t}");
            }
        }
    }

    #[test]
    fn recurrent_exempts_missing_edge() {
        let r = ring(3);
        let inner = AdaptiveFn::new(r.clone(), |obs| EdgeSet::empty_for(obs.ring()));
        let mut dyns = Recurrent::new(inner, 2, Some(EdgeId::new(0)));
        let robots: Vec<RobotSnapshot> = Vec::new();
        for t in 0..8u64 {
            let obs = Observation::new(t, &r, &robots);
            let set = dyns.edges_at(&obs);
            assert!(!set.contains(EdgeId::new(0)), "exempt edge forced at {t}");
        }
    }

    #[test]
    fn capturing_replays_identically() {
        let r = ring(4);
        let inner = Oblivious::new(AlwaysPresent::new(r.clone()));
        let mut dyns = Capturing::new(Recurrent::new(inner, 4, None));
        let robots: Vec<RobotSnapshot> = Vec::new();
        for t in 0..5u64 {
            let obs = Observation::new(t, &r, &robots);
            dyns.edges_at(&obs);
        }
        let script = dyns.to_script(TailBehavior::AllPresent);
        assert_eq!(script.frame_count(), 5);
        for t in 0..5u64 {
            assert!(script.edges_at(t).is_full());
        }
    }

    #[test]
    fn oblivious_probe_answers_match_the_snapshot() {
        let mut g = AbsenceIntervals::new(ring(5));
        g.remove_during(EdgeId::new(1), 2, 6);
        g.remove_from(EdgeId::new(3), 4);
        let mut dyns = Oblivious::new(g);
        let r = ring(5);
        let robots: Vec<RobotSnapshot> = Vec::new();
        for t in 0..10u64 {
            let obs = Observation::new(t, &r, &robots);
            let snapshot = dyns.edges_at(&obs);
            let mut queries: Vec<EdgeProbe> = r.edges().map(EdgeProbe::new).collect();
            assert!(dyns.probe_edges(&obs, &mut queries));
            for q in &queries {
                assert_eq!(q.present, snapshot.contains(q.edge), "t={t} e={}", q.edge);
            }
        }
    }

    #[test]
    fn recurrent_and_capturing_refuse_probes() {
        // Full-set bookkeeping (absence runs, recorded frames) makes the
        // sparse path illegal for these wrappers: they must decline without
        // touching the queries.
        let r = ring(3);
        let robots: Vec<RobotSnapshot> = Vec::new();
        let obs = Observation::new(0, &r, &robots);
        let mut queries = vec![EdgeProbe::new(EdgeId::new(0))];
        let untouched = queries.clone();

        let inner = Oblivious::new(AlwaysPresent::new(r.clone()));
        let mut recurrent = Recurrent::new(inner.clone(), 4, None);
        assert!(!recurrent.probe_edges(&obs, &mut queries));
        assert_eq!(queries, untouched);

        let mut capturing = Capturing::new(inner);
        assert!(!capturing.probe_edges(&obs, &mut queries));
        assert_eq!(queries, untouched);
        assert!(capturing.frames().is_empty());
    }

    #[test]
    fn adaptive_fn_sees_robots() {
        // Remove the edge clockwise of every robot.
        let r = ring(6);
        let mut dyns = AdaptiveFn::new(r.clone(), |obs| {
            let mut set = EdgeSet::full_for(obs.ring());
            for robot in obs.robots() {
                set.remove(obs.ring().edge_towards(robot.node, GlobalDir::Clockwise));
            }
            set
        });
        let robots = vec![snap(0, 2, LocalDir::Left)];
        let obs = Observation::new(0, &r, &robots);
        let set = dyns.edges_at(&obs);
        assert!(!set.contains(EdgeId::new(2)));
        assert_eq!(set.len(), 5);
    }
}
