//! Property-based tests for the execution engine: determinism, Move-phase
//! soundness, and trace consistency.

use proptest::prelude::*;

use dynring_engine::{
    Algorithm, Chirality, LocalDir, Oblivious, RobotPlacement, Simulator, View,
};
use dynring_graph::generators::{self, RandomCotConfig};
use dynring_graph::{EdgeSchedule, NodeId, RingTopology};

/// A state-carrying test algorithm whose decisions depend on everything a
/// view offers, to exercise the engine thoroughly.
#[derive(Debug, Clone)]
struct Churn;

impl Algorithm for Churn {
    type State = u64;

    fn name(&self) -> &str {
        "churn"
    }

    fn initial_state(&self) -> u64 {
        0
    }

    fn compute(&self, state: &mut u64, view: &View) -> LocalDir {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(u64::from(view.exists_edge_ahead()))
            .wrapping_add(u64::from(view.other_robots_on_current_node()) << 1);
        if *state & 4 == 0 {
            view.dir()
        } else {
            view.dir().opposite()
        }
    }
}

fn placements(n: usize, spec: &[(usize, bool, bool)]) -> Vec<RobotPlacement> {
    let mut used = std::collections::BTreeSet::new();
    spec.iter()
        .map(|&(node, chi, dir)| {
            let mut idx = node % n;
            while !used.insert(idx) {
                idx = (idx + 1) % n;
            }
            RobotPlacement::at(NodeId::new(idx))
                .with_chirality(if chi {
                    Chirality::Standard
                } else {
                    Chirality::Mirrored
                })
                .with_dir(if dir { LocalDir::Left } else { LocalDir::Right })
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Bit-for-bit determinism: two simulators with identical inputs
    /// produce identical traces.
    #[test]
    fn simulation_is_deterministic(
        n in 3usize..10,
        seed in any::<u64>(),
        spec in proptest::collection::vec((0usize..10, any::<bool>(), any::<bool>()), 1..3),
    ) {
        let ring = RingTopology::new(n).expect("valid ring");
        let cfg = RandomCotConfig::default();
        let schedule = generators::random_connected_over_time(&ring, 120, &cfg, seed)
            .expect("valid config");
        let run = || {
            let mut sim = Simulator::new(
                ring.clone(),
                Churn,
                Oblivious::new(schedule.clone()),
                placements(n, &spec),
            )
            .expect("valid setup");
            sim.run_recording(120)
        };
        prop_assert_eq!(run(), run());
    }

    /// Move-phase soundness: a robot moves iff the edge in its
    /// post-Compute direction is present in the same snapshot, and it lands
    /// on the right neighbour.
    #[test]
    fn moves_match_snapshot_and_direction(
        n in 3usize..10,
        seed in any::<u64>(),
        spec in proptest::collection::vec((0usize..10, any::<bool>(), any::<bool>()), 1..4),
    ) {
        let ring = RingTopology::new(n).expect("valid ring");
        let cfg = RandomCotConfig {
            presence_probability: 0.4,
            recurrence_bound: 8,
            eventual_missing: None,
        };
        let schedule = generators::random_connected_over_time(&ring, 100, &cfg, seed)
            .expect("valid config");
        let spec = &spec[..spec.len().min(n - 1)];
        let mut sim = Simulator::new(
            ring.clone(),
            Churn,
            Oblivious::new(schedule.clone()),
            placements(n, spec),
        )
        .expect("valid setup");
        let trace = sim.run_recording(100);
        for round in trace.rounds() {
            // The recorded snapshot is the oblivious schedule's snapshot.
            prop_assert_eq!(&round.edges, &schedule.edges_at(round.time));
            for robot in &round.robots {
                let pointed = ring.edge_towards(robot.node_before, robot.global_dir_after);
                let present = round.edges.contains(pointed);
                prop_assert_eq!(robot.moved, present, "round {}", round.time);
                if robot.moved {
                    prop_assert_eq!(
                        robot.node_after,
                        ring.neighbor(robot.node_before, robot.global_dir_after)
                    );
                } else {
                    prop_assert_eq!(robot.node_after, robot.node_before);
                }
            }
        }
    }

    /// Trace position chains are consistent: `node_after` of round `t`
    /// equals `node_before` of round `t + 1`, and global directions always
    /// translate local ones through the robot's chirality.
    #[test]
    fn trace_chains_are_consistent(
        n in 3usize..8,
        seed in any::<u64>(),
        spec in proptest::collection::vec((0usize..8, any::<bool>(), any::<bool>()), 2..4),
    ) {
        let ring = RingTopology::new(n).expect("valid ring");
        let schedule = generators::random_connected_over_time(
            &ring, 80, &RandomCotConfig::default(), seed)
            .expect("valid config");
        let pls = placements(n, &spec);
        prop_assume!(pls.len() < n);
        let chis: Vec<Chirality> = pls.iter().map(|p| p.chirality).collect();
        let mut sim = Simulator::new(ring, Churn, Oblivious::new(schedule), pls)
            .expect("valid setup");
        let trace = sim.run_recording(80);
        for window in trace.rounds().windows(2) {
            for (a, b) in window[0].robots.iter().zip(&window[1].robots) {
                prop_assert_eq!(a.node_after, b.node_before);
                prop_assert_eq!(a.dir_after, b.dir_before);
            }
        }
        for round in trace.rounds() {
            for robot in &round.robots {
                let chi = chis[robot.id.index()];
                prop_assert_eq!(robot.global_dir_before, chi.to_global(robot.dir_before));
                prop_assert_eq!(robot.global_dir_after, chi.to_global(robot.dir_after));
            }
        }
    }

    /// ASYNC with full activation on a static ring emulates FSYNC at a
    /// 3:1 tick ratio, for arbitrary robot teams and the stateful Churn
    /// algorithm (staleness is harmless when nothing changes).
    #[test]
    fn async_emulates_fsync_on_static_rings(
        n in 3usize..10,
        spec in proptest::collection::vec((0usize..10, any::<bool>(), any::<bool>()), 1..4),
        rounds in 1u64..40,
    ) {
        use dynring_engine::async_exec::{AsyncSimulator, ObliviousAsync};
        use dynring_graph::AlwaysPresent;

        let ring = RingTopology::new(n).expect("valid ring");
        let spec = &spec[..spec.len().min(n - 1)];
        let pls = placements(n, spec);
        let mut fsync = Simulator::new(
            ring.clone(),
            Churn,
            Oblivious::new(AlwaysPresent::new(ring.clone())),
            pls.clone(),
        )
        .expect("valid setup");
        let mut asim = AsyncSimulator::new(
            ring.clone(),
            Churn,
            ObliviousAsync::new(AlwaysPresent::new(ring)),
            pls,
        )
        .expect("valid setup");
        for _ in 0..rounds {
            fsync.step();
            asim.tick();
            asim.tick();
            asim.tick();
            prop_assert_eq!(fsync.positions(), asim.positions());
        }
    }

    /// Mirror symmetry of the engine: mirroring every robot's chirality on
    /// a mirror-symmetric schedule yields the mirrored run.
    #[test]
    fn engine_is_mirror_symmetric(
        n in 3usize..9,
        start in 0usize..9,
        dir in any::<bool>(),
        horizon in 10u64..60,
    ) {
        // On an always-present ring, a single robot with chirality χ
        // starting at 0 mirrors a robot with chirality χ̄: their positions
        // are reflections node ↦ -node (mod n).
        use dynring_graph::AlwaysPresent;
        let start = start % n;
        let ring = RingTopology::new(n).expect("valid ring");
        let run = |chi: Chirality, at: usize| {
            let placement = RobotPlacement::at(NodeId::new(at))
                .with_chirality(chi)
                .with_dir(if dir { LocalDir::Left } else { LocalDir::Right });
            let mut sim = Simulator::new(
                ring.clone(),
                Churn,
                Oblivious::new(AlwaysPresent::new(ring.clone())),
                vec![placement],
            )
            .expect("valid setup");
            let trace = sim.run_recording(horizon);
            (0..=horizon).map(|t| trace.positions_at(t)[0]).collect::<Vec<_>>()
        };
        let standard = run(Chirality::Standard, start);
        let mirrored = run(Chirality::Mirrored, (n - start) % n);
        for (s, m) in standard.iter().zip(&mirrored) {
            let reflected = NodeId::new((n - s.index()) % n);
            prop_assert_eq!(*m, reflected);
        }
    }
}
