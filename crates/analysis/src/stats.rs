//! Small numeric helpers for experiment summaries.

use serde::{Deserialize, Serialize};

/// Mean of a slice (0 for empty input).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Population standard deviation (0 for fewer than two values).
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / values.len() as f64;
    var.sqrt()
}

/// The `q`-quantile (0 ≤ q ≤ 1) by nearest-rank on a sorted copy.
///
/// # Panics
///
/// Panics when `q` is outside `[0, 1]`.
pub fn quantile(values: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in quantile input"));
    let rank = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[rank]
}

/// Median (the 0.5 quantile).
pub fn median(values: &[f64]) -> f64 {
    quantile(values, 0.5)
}

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Median.
    pub median: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample (zeros for empty input).
    pub fn of(values: &[f64]) -> Summary {
        if values.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                median: 0.0,
                max: 0.0,
            };
        }
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Summary {
            count: values.len(),
            mean: mean(values),
            std_dev: std_dev(values),
            min,
            median: median(values),
            max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(median(&xs), 3.0);
        assert_eq!(quantile(&xs, 1.0), 5.0);
    }

    #[test]
    fn summary_of_sample() {
        let s = Summary::of(&[3.0, 1.0, 2.0]);
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.median, 2.0);
    }

    #[test]
    fn empty_inputs_are_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(Summary::of(&[]).count, 0);
    }
}
