//! Executable validators for the lemmas backing Theorem 3.1.
//!
//! These checkers replay a recorded [`ExecutionTrace`] of `PEF_3+` and
//! verify, round by round, the structural properties the paper proves:
//!
//! - **Lemma 3.4** — no tower ever involves three or more robots
//!   ([`check_max_tower_size`]);
//! - **Lemma 3.3** — the two robots of a tower point to opposite global
//!   directions once they computed on it ([`check_tower_opposite_dirs`]);
//! - **Rule 1** — an isolated robot never changes direction
//!   ([`check_no_flip_when_isolated`]);
//! - **Lemma 3.7** — with an eventual missing edge, two *sentinels*
//!   eventually sit forever on its extremities pointing at it
//!   ([`sentinel_lock_time`]).
//!
//! They apply to `PEF_3+` (and to any algorithm claiming the same rule
//! structure); `PEF_2`, `PEF_1` and the baselines deliberately violate some
//! of them, which the tests assert too.

use std::error::Error;
use std::fmt;

use dynring_engine::{ExecutionTrace, RobotId};
use dynring_graph::{EdgeId, NodeId, Time};

/// A violated structural invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum InvariantViolation {
    /// Lemma 3.4: a tower of three or more robots.
    TowerTooLarge {
        /// The instant of the oversized tower.
        at: Time,
        /// Its size.
        size: usize,
    },
    /// Lemma 3.3: two co-located robots computed the same global direction.
    TowerSameDirection {
        /// The round where both computed the same direction.
        at: Time,
        /// The shared node.
        node: NodeId,
    },
    /// Rule 1: an isolated robot changed direction.
    IsolatedFlip {
        /// The round of the flip.
        at: Time,
        /// The offending robot.
        robot: RobotId,
    },
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvariantViolation::TowerTooLarge { at, size } => {
                write!(f, "lemma 3.4 violated: tower of {size} robots at time {at}")
            }
            InvariantViolation::TowerSameDirection { at, node } => write!(
                f,
                "lemma 3.3 violated: tower on {node} with aligned directions at round {at}"
            ),
            InvariantViolation::IsolatedFlip { at, robot } => {
                write!(f, "rule 1 violated: isolated {robot} flipped at round {at}")
            }
        }
    }
}

impl Error for InvariantViolation {}

/// Checks Lemma 3.4: no tower of more than `limit` (= 2 for `PEF_3+`)
/// robots at any instant.
///
/// # Errors
///
/// [`InvariantViolation::TowerTooLarge`] with the earliest violation.
pub fn check_max_tower_size(
    trace: &ExecutionTrace,
    limit: usize,
) -> Result<(), InvariantViolation> {
    for (t, tower) in trace.all_towers() {
        if tower.size() > limit {
            return Err(InvariantViolation::TowerTooLarge {
                at: t,
                size: tower.size(),
            });
        }
    }
    Ok(())
}

/// Checks Lemma 3.3: whenever two robots share a node during a Look phase,
/// they point to opposite global directions after the Compute phase of
/// that round.
///
/// # Errors
///
/// [`InvariantViolation::TowerSameDirection`] with the earliest violation.
pub fn check_tower_opposite_dirs(trace: &ExecutionTrace) -> Result<(), InvariantViolation> {
    for round in trace.rounds() {
        for tower in round.towers_before() {
            if tower.size() != 2 {
                continue; // Lemma 3.4 violations are reported separately.
            }
            let a = &round.robots[tower.robots[0].index()];
            let b = &round.robots[tower.robots[1].index()];
            if !a.activated || !b.activated {
                continue; // SSYNC: a sleeping robot computed nothing.
            }
            if a.global_dir_after == b.global_dir_after {
                return Err(InvariantViolation::TowerSameDirection {
                    at: round.time,
                    node: tower.node,
                });
            }
        }
    }
    Ok(())
}

/// Checks Rule 1: a robot that is alone on its node keeps its direction
/// through the Compute phase.
///
/// # Errors
///
/// [`InvariantViolation::IsolatedFlip`] with the earliest violation.
pub fn check_no_flip_when_isolated(trace: &ExecutionTrace) -> Result<(), InvariantViolation> {
    for round in trace.rounds() {
        let towers = round.towers_before();
        for robot in &round.robots {
            if !robot.activated {
                continue;
            }
            let in_tower = towers.iter().any(|tw| tw.robots.contains(&robot.id));
            if !in_tower && robot.dir_after != robot.dir_before {
                return Err(InvariantViolation::IsolatedFlip {
                    at: round.time,
                    robot: robot.id,
                });
            }
        }
    }
    Ok(())
}

/// Runs all per-round `PEF_3+` invariants (Lemmas 3.3, 3.4 and Rule 1).
///
/// # Errors
///
/// The earliest violation found, if any.
pub fn check_pef3_invariants(trace: &ExecutionTrace) -> Result<(), InvariantViolation> {
    check_max_tower_size(trace, 2)?;
    check_tower_opposite_dirs(trace)?;
    check_no_flip_when_isolated(trace)?;
    Ok(())
}

/// Lemma 3.7 witness: the first instant from which, for the rest of the
/// trace, *both* extremities of `missing_edge` are continuously occupied by
/// a robot pointing at the missing edge (the *sentinels*).
///
/// Returns `None` when the sentinels never lock within the trace.
pub fn sentinel_lock_time(trace: &ExecutionTrace, missing_edge: EdgeId) -> Option<Time> {
    let ring = trace.ring();
    let (end_a, end_b) = ring.endpoints(missing_edge);
    let horizon = trace.len() as Time;
    // locked(t): both endpoints hold a robot whose direction points at the
    // missing edge, in configuration γ_t.
    let locked = |t: Time| -> bool {
        let snapshot_dirs: Vec<(NodeId, dynring_graph::GlobalDir)> = if t == 0 {
            trace
                .initial()
                .iter()
                .map(|r| (r.node, r.global_dir()))
                .collect()
        } else {
            trace.rounds()[(t - 1) as usize]
                .robots
                .iter()
                .map(|r| (r.node_after, r.global_dir_after))
                .collect()
        };
        [end_a, end_b].iter().all(|&endpoint| {
            snapshot_dirs.iter().any(|&(node, dir)| {
                node == endpoint && ring.edge_towards(endpoint, dir) == missing_edge
            })
        })
    };
    // Scan backwards for the earliest suffix of locked configurations.
    let mut lock_from: Option<Time> = None;
    for t in (0..=horizon).rev() {
        if locked(t) {
            lock_from = Some(t);
        } else {
            break;
        }
    }
    lock_from
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynring_core::{baselines::AlwaysTurnOnTower, Pef3Plus};
    use dynring_engine::{Oblivious, RobotPlacement, Simulator};
    use dynring_graph::generators::{self, RandomCotConfig};
    use dynring_graph::RingTopology;

    fn ring(n: usize) -> RingTopology {
        RingTopology::new(n).expect("valid ring")
    }

    fn spaced_placements(n: usize, k: usize) -> Vec<RobotPlacement> {
        (0..k)
            .map(|i| RobotPlacement::at(NodeId::new(i * n / k)))
            .collect()
    }

    #[test]
    fn pef3_satisfies_all_invariants_on_random_cot() {
        let r = ring(8);
        let schedule = generators::random_connected_over_time(
            &r,
            500,
            &RandomCotConfig::default(),
            7,
        )
        .expect("valid config");
        let mut sim = Simulator::new(
            r.clone(),
            Pef3Plus,
            Oblivious::new(schedule),
            spaced_placements(8, 3),
        )
        .expect("valid setup");
        let trace = sim.run_recording(500);
        check_pef3_invariants(&trace).expect("all invariants hold");
    }

    #[test]
    fn pef3_sentinels_lock_on_missing_edge() {
        let r = ring(7);
        let cfg = RandomCotConfig {
            presence_probability: 0.6,
            recurrence_bound: 6,
            eventual_missing: Some((EdgeId::new(3), 40)),
        };
        let schedule =
            generators::random_connected_over_time(&r, 800, &cfg, 11).expect("valid config");
        let mut sim = Simulator::new(
            r.clone(),
            Pef3Plus,
            Oblivious::new(schedule),
            spaced_placements(7, 3),
        )
        .expect("valid setup");
        let trace = sim.run_recording(800);
        check_pef3_invariants(&trace).expect("invariants hold");
        let lock = sentinel_lock_time(&trace, EdgeId::new(3));
        assert!(lock.is_some(), "sentinels must lock (Lemma 3.7)");
        assert!(lock.expect("checked") >= 40, "cannot lock before the edge dies");
    }

    #[test]
    fn rule2_ablation_violates_lemma_3_3() {
        // AlwaysTurnOnTower makes *both* robots of a tower turn. Send two
        // clockwise robots at each other by parking the leading one in
        // front of a temporarily missing edge: the chaser joins it (the
        // paper's Case 1 of Lemma 3.3), then both flip — and end up
        // *aligned* counter-clockwise, violating Lemma 3.3.
        use dynring_engine::LocalDir;
        use dynring_graph::AbsenceIntervals;

        let r = ring(6);
        let mut schedule = AbsenceIntervals::new(r.clone());
        schedule.remove_during(EdgeId::new(2), 0, 6); // parks the leader at v2
        let mut sim = Simulator::new(
            r.clone(),
            AlwaysTurnOnTower,
            Oblivious::new(schedule),
            vec![
                RobotPlacement::at(NodeId::new(0)).with_dir(LocalDir::Right),
                RobotPlacement::at(NodeId::new(2)).with_dir(LocalDir::Right),
            ],
        )
        .expect("valid setup");
        let trace = sim.run_recording(60);
        let result = check_tower_opposite_dirs(&trace);
        assert!(result.is_err(), "rule 2 ablation must break lemma 3.3");
    }

    #[test]
    fn violation_display() {
        let v = InvariantViolation::TowerTooLarge { at: 4, size: 3 };
        assert!(v.to_string().contains("lemma 3.4"));
    }
}
