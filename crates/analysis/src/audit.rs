//! Trace auditing: verify that a (possibly third-party) execution trace is
//! consistent with the paper's round semantics.
//!
//! Published experiment artifacts are only trustworthy if they can be
//! re-checked. [`audit_trace`] replays the §2.3 rules over a recorded
//! [`ExecutionTrace`] without re-running any algorithm:
//!
//! - chain consistency: round `t`'s end configuration is round `t+1`'s
//!   start configuration (positions *and* directions);
//! - Move soundness: a robot moved iff the edge in its post-Compute
//!   direction was present in that round's snapshot, and it landed on the
//!   correct neighbour;
//! - chirality consistency: local and global directions always translate
//!   through one fixed per-robot chirality;
//! - activation consistency: non-activated robots change nothing.

use std::error::Error;
use std::fmt;

use dynring_engine::{Chirality, ExecutionTrace, RobotId};
use dynring_graph::Time;

/// A violation found while auditing a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceViolation {
    /// Positions or directions do not chain between consecutive rounds.
    BrokenChain {
        /// The earlier round.
        at: Time,
        /// The robot whose record breaks the chain.
        robot: RobotId,
    },
    /// A robot moved without its pointed edge, failed to move despite it,
    /// or landed on the wrong node.
    IllegalMove {
        /// The round of the illegal move.
        at: Time,
        /// The offending robot.
        robot: RobotId,
    },
    /// Local/global directions are inconsistent with any fixed chirality.
    ChiralityDrift {
        /// The round of the drift.
        at: Time,
        /// The offending robot.
        robot: RobotId,
    },
    /// A non-activated robot changed position or direction.
    GhostAction {
        /// The round of the ghost action.
        at: Time,
        /// The offending robot.
        robot: RobotId,
    },
}

impl fmt::Display for TraceViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceViolation::BrokenChain { at, robot } => {
                write!(f, "round {at}: {robot} does not chain into the next round")
            }
            TraceViolation::IllegalMove { at, robot } => {
                write!(f, "round {at}: {robot} made an illegal move")
            }
            TraceViolation::ChiralityDrift { at, robot } => {
                write!(f, "round {at}: {robot} changed chirality")
            }
            TraceViolation::GhostAction { at, robot } => {
                write!(f, "round {at}: non-activated {robot} acted")
            }
        }
    }
}

impl Error for TraceViolation {}

/// Audits a trace against the engine's round semantics.
///
/// # Errors
///
/// The earliest [`TraceViolation`] found.
pub fn audit_trace(trace: &ExecutionTrace) -> Result<(), TraceViolation> {
    let ring = trace.ring();
    // Fixed chirality per robot, from the initial snapshots.
    let chiralities: Vec<Chirality> = trace.initial().iter().map(|r| r.chirality).collect();

    // Initial configuration chains into round 0.
    if let Some(first) = trace.rounds().first() {
        for (init, row) in trace.initial().iter().zip(&first.robots) {
            if init.node != row.node_before || init.dir != row.dir_before {
                return Err(TraceViolation::BrokenChain {
                    at: 0,
                    robot: row.id,
                });
            }
        }
    }

    for round in trace.rounds() {
        for row in &round.robots {
            let chi = chiralities[row.id.index()];
            // Chirality consistency on both sides of Compute.
            if chi.to_global(row.dir_before) != row.global_dir_before
                || chi.to_global(row.dir_after) != row.global_dir_after
            {
                return Err(TraceViolation::ChiralityDrift {
                    at: round.time,
                    robot: row.id,
                });
            }
            if !row.activated {
                if row.moved || row.node_after != row.node_before || row.dir_after != row.dir_before
                {
                    return Err(TraceViolation::GhostAction {
                        at: round.time,
                        robot: row.id,
                    });
                }
                continue;
            }
            // Move soundness against the recorded snapshot.
            let pointed = ring.edge_towards(row.node_before, row.global_dir_after);
            let present = round.edges.contains(pointed);
            let expected_node = if present {
                ring.neighbor(row.node_before, row.global_dir_after)
            } else {
                row.node_before
            };
            if row.moved != present || row.node_after != expected_node {
                return Err(TraceViolation::IllegalMove {
                    at: round.time,
                    robot: row.id,
                });
            }
        }
    }

    // Round-to-round chaining.
    for window in trace.rounds().windows(2) {
        for (a, b) in window[0].robots.iter().zip(&window[1].robots) {
            if a.node_after != b.node_before || a.dir_after != b.dir_before {
                return Err(TraceViolation::BrokenChain {
                    at: window[0].time,
                    robot: a.id,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynring_core::Pef3Plus;
    use dynring_engine::{Oblivious, RobotPlacement, RoundRobinSingle, Simulator};
    use dynring_graph::generators::{self, RandomCotConfig};
    use dynring_graph::{NodeId, RingTopology};

    fn genuine_trace() -> ExecutionTrace {
        let ring = RingTopology::new(7).expect("valid ring");
        let schedule = generators::random_connected_over_time(
            &ring,
            300,
            &RandomCotConfig::default(),
            123,
        )
        .expect("valid config");
        let mut sim = Simulator::new(
            ring,
            Pef3Plus,
            Oblivious::new(schedule),
            vec![
                RobotPlacement::at(NodeId::new(0)),
                RobotPlacement::at(NodeId::new(2)),
                RobotPlacement::at(NodeId::new(5)),
            ],
        )
        .expect("valid setup");
        sim.run_recording(300)
    }

    #[test]
    fn genuine_traces_pass_the_audit() {
        audit_trace(&genuine_trace()).expect("engine traces are consistent");
    }

    #[test]
    fn ssync_traces_pass_the_audit() {
        let ring = RingTopology::new(6).expect("valid ring");
        let schedule = generators::random_connected_over_time(
            &ring,
            200,
            &RandomCotConfig::default(),
            5,
        )
        .expect("valid config");
        let mut sim = Simulator::new(
            ring,
            Pef3Plus,
            Oblivious::new(schedule),
            vec![
                RobotPlacement::at(NodeId::new(0)),
                RobotPlacement::at(NodeId::new(3)),
            ],
        )
        .expect("valid setup");
        sim.set_activation(RoundRobinSingle);
        let trace = sim.run_recording(200);
        audit_trace(&trace).expect("SSYNC traces are consistent");
    }

    #[test]
    fn forged_move_is_caught() {
        let mut trace = genuine_trace();
        // Forge: claim robot 0 moved somewhere else at round 10.
        let forged = {
            let mut rounds: Vec<_> = trace.rounds().to_vec();
            let row = &mut rounds[10].robots[0];
            row.node_after = trace.ring().neighbor(
                row.node_before,
                row.global_dir_after.opposite(),
            );
            rounds
        };
        let mut new_trace = ExecutionTrace::new(trace.ring().clone(), trace.initial().to_vec());
        for r in forged {
            new_trace.push(r);
        }
        trace = new_trace;
        let result = audit_trace(&trace);
        assert!(
            matches!(
                result,
                Err(TraceViolation::IllegalMove { .. }) | Err(TraceViolation::BrokenChain { .. })
            ),
            "{result:?}"
        );
    }

    #[test]
    fn forged_chirality_is_caught() {
        let trace = genuine_trace();
        let mut rounds: Vec<_> = trace.rounds().to_vec();
        let row = &mut rounds[5].robots[1];
        row.global_dir_after = row.global_dir_after.opposite(); // breaks translation
        let mut forged = ExecutionTrace::new(trace.ring().clone(), trace.initial().to_vec());
        for r in rounds {
            forged.push(r);
        }
        assert!(matches!(
            audit_trace(&forged),
            Err(TraceViolation::ChiralityDrift { at: 5, .. })
        ));
    }

    #[test]
    fn forged_initial_configuration_is_caught() {
        let trace = genuine_trace();
        let mut initial = trace.initial().to_vec();
        initial[0].node = NodeId::new(6);
        let mut forged = ExecutionTrace::new(trace.ring().clone(), initial);
        for r in trace.rounds().to_vec() {
            forged.push(r);
        }
        assert!(matches!(
            audit_trace(&forged),
            Err(TraceViolation::BrokenChain { at: 0, .. })
        ));
    }

    #[test]
    fn violation_messages() {
        let v = TraceViolation::IllegalMove {
            at: 3,
            robot: RobotId::new(1),
        };
        assert_eq!(v.to_string(), "round 3: r1 made an illegal move");
    }
}
