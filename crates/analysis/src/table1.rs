//! End-to-end reproduction of the paper's Table 1.
//!
//! For every cell `(k robots, n nodes)`:
//!
//! - **Possible** cells run the paper's recommended algorithm against the
//!   benign dynamics suite (plus an eventual-missing-edge schedule) and
//!   must reach the cover criteria under *every* suite member;
//! - **Impossible** cells run the matching proof adversary (Theorem 5.1's
//!   confiner for `k = 1`, Theorem 4.1's for `k = 2`) against the whole
//!   algorithm portfolio and must stay confined (some node never visited)
//!   for the whole horizon, for *every* algorithm.

use serde::{Deserialize, Serialize};

use dynring_core::theory::{Feasibility, RecommendedAlgorithm};
use dynring_graph::Time;

use crate::report::TextTable;
use crate::scenario::{
    run_scenario, AlgorithmChoice, DynamicsChoice, PlacementSpec, Scenario, ScenarioError,
};
use crate::verdict::SuccessCriteria;

/// Options for the Table 1 reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Options {
    /// Robot counts to test (rows).
    pub robot_counts: Vec<usize>,
    /// Ring sizes to test (columns).
    pub ring_sizes: Vec<usize>,
    /// Rounds per run.
    pub horizon: Time,
    /// Base seed (varied per cell).
    pub seed: u64,
    /// Covers required for "Possible" cells.
    pub min_covers: u64,
}

impl Default for Table1Options {
    fn default() -> Self {
        Table1Options {
            robot_counts: vec![1, 2, 3, 4, 5],
            ring_sizes: vec![2, 3, 4, 5, 6, 8, 10],
            horizon: 1500,
            seed: 0xBADA55,
            min_covers: 3,
        }
    }
}

/// What a cell's experiments observed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CellObservation {
    /// All suite runs reached the cover criteria.
    Explored {
        /// The fewest covers over the suite.
        worst_covers: u64,
        /// Number of suite members run.
        suite_size: usize,
    },
    /// All portfolio algorithms stayed confined under the proof adversary.
    Confined {
        /// The most nodes any algorithm visited.
        worst_visited: usize,
        /// Number of algorithms run.
        portfolio_size: usize,
    },
    /// The cell is outside the model (`k = 0` or `k ≥ n`).
    OutOfModel,
    /// Some run contradicted the expectation (details inside).
    Mismatch {
        /// Human-readable description of the first mismatch.
        detail: String,
    },
}

/// One cell of the reproduced Table 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellResult {
    /// Robots `k`.
    pub robots: usize,
    /// Ring size `n`.
    pub nodes: usize,
    /// The paper's verdict.
    pub expected: Feasibility,
    /// What the experiments observed.
    pub observed: CellObservation,
}

impl CellResult {
    /// `true` when the observation matches the paper's verdict.
    pub fn matches_paper(&self) -> bool {
        matches!(
            (&self.expected, &self.observed),
            (Feasibility::Solvable { .. }, CellObservation::Explored { .. })
                | (Feasibility::Unsolvable { .. }, CellObservation::Confined { .. })
                | (Feasibility::OutOfModel, CellObservation::OutOfModel)
        )
    }
}

/// The full reproduction report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Report {
    /// All tested cells.
    pub cells: Vec<CellResult>,
    /// The options used.
    pub options: Table1Options,
}

impl Table1Report {
    /// `true` when every cell matches the paper.
    pub fn all_match(&self) -> bool {
        self.cells.iter().all(CellResult::matches_paper)
    }

    /// Cells that failed to match.
    pub fn mismatches(&self) -> Vec<&CellResult> {
        self.cells
            .iter()
            .filter(|c| !c.matches_paper())
            .collect()
    }

    /// Renders the matrix as an ASCII table (rows = k, columns = n).
    pub fn render(&self) -> String {
        let mut headers = vec!["k \\ n".to_string()];
        for n in &self.options.ring_sizes {
            headers.push(n.to_string());
        }
        let mut table = TextTable::new(headers);
        for &k in &self.options.robot_counts {
            let mut row = vec![format!("{k}")];
            for &n in &self.options.ring_sizes {
                let cell = self
                    .cells
                    .iter()
                    .find(|c| c.robots == k && c.nodes == n);
                row.push(match cell {
                    Some(c) => {
                        let mark = if c.matches_paper() { "✓" } else { "✗" };
                        match &c.observed {
                            CellObservation::Explored { worst_covers, .. } => {
                                format!("P{mark} ({worst_covers}cv)")
                            }
                            CellObservation::Confined { worst_visited, .. } => {
                                format!("I{mark} ({worst_visited}v)")
                            }
                            CellObservation::OutOfModel => "—".to_string(),
                            CellObservation::Mismatch { .. } => format!("?{mark}"),
                        }
                    }
                    None => String::new(),
                });
            }
            table.add_row(row);
        }
        table.render()
    }

    /// Renders the matrix as a Markdown table (for EXPERIMENTS.md-style
    /// artifacts).
    pub fn render_markdown(&self) -> String {
        let mut headers = vec!["k \\ n".to_string()];
        for n in &self.options.ring_sizes {
            headers.push(n.to_string());
        }
        let mut table = TextTable::new(headers);
        for &k in &self.options.robot_counts {
            let mut row = vec![format!("{k}")];
            for &n in &self.options.ring_sizes {
                let cell = self.cells.iter().find(|c| c.robots == k && c.nodes == n);
                row.push(match cell {
                    Some(c) => match &c.observed {
                        CellObservation::Explored { .. } => "Possible ✓".to_string(),
                        CellObservation::Confined { .. } => "Impossible ✓".to_string(),
                        CellObservation::OutOfModel => "—".to_string(),
                        CellObservation::Mismatch { .. } => "MISMATCH".to_string(),
                    },
                    None => String::new(),
                });
            }
            table.add_row(row);
        }
        table.markdown()
    }
}

fn algorithm_for(recommended: RecommendedAlgorithm) -> AlgorithmChoice {
    match recommended {
        RecommendedAlgorithm::Pef1 => AlgorithmChoice::Pef1,
        RecommendedAlgorithm::Pef2 => AlgorithmChoice::Pef2,
        RecommendedAlgorithm::Pef3Plus => AlgorithmChoice::Pef3Plus,
    }
}

/// The dynamics suite for a "Possible" cell: the benign suite plus an
/// eventual-missing-edge schedule.
fn possible_suite(n: usize, horizon: Time) -> Vec<DynamicsChoice> {
    let mut suite = DynamicsChoice::benign_suite();
    suite.push(DynamicsChoice::EventualMissing {
        p: 0.6,
        bound: 8,
        edge: n / 2,
        from: horizon / 10,
    });
    suite
}

/// The portfolio run against a proof adversary in an "Impossible" cell.
fn impossible_portfolio() -> Vec<AlgorithmChoice> {
    vec![
        AlgorithmChoice::Pef3Plus,
        AlgorithmChoice::Pef2,
        AlgorithmChoice::Pef1,
        AlgorithmChoice::KeepDirection,
        AlgorithmChoice::BounceOnMissingEdge,
        AlgorithmChoice::AlternateDirection,
        AlgorithmChoice::RandomDirection { seed: 0xFEED },
    ]
}

fn run_possible_cell(
    k: usize,
    n: usize,
    opts: &Table1Options,
    recommended: RecommendedAlgorithm,
) -> Result<CellObservation, ScenarioError> {
    let mut worst_covers = u64::MAX;
    let suite = possible_suite(n, opts.horizon);
    let suite_size = suite.len();
    for (idx, dynamics) in suite.into_iter().enumerate() {
        let scenario = Scenario::new(
            n,
            PlacementSpec::EvenlySpaced { count: k },
            algorithm_for(recommended),
            dynamics,
            opts.horizon,
        )
        .with_seed(opts.seed ^ ((k as u64) << 24) ^ ((n as u64) << 12) ^ idx as u64)
        .with_criteria(SuccessCriteria::covers(opts.min_covers));
        let report = run_scenario(&scenario)?;
        if !report.is_perpetual() {
            return Ok(CellObservation::Mismatch {
                detail: format!(
                    "{} with k={k}, n={n} on {}: {}",
                    recommended.name(),
                    dynamics.name(),
                    report.outcome
                ),
            });
        }
        worst_covers = worst_covers.min(report.covers);
    }
    Ok(CellObservation::Explored {
        worst_covers,
        suite_size,
    })
}

fn run_impossible_cell(
    k: usize,
    n: usize,
    opts: &Table1Options,
) -> Result<CellObservation, ScenarioError> {
    let (dynamics, placement, zone) = if k == 1 {
        (
            DynamicsChoice::SingleConfiner,
            PlacementSpec::EvenlySpaced { count: 1 },
            2usize,
        )
    } else {
        (
            DynamicsChoice::TwoConfiner { patience: 64 },
            PlacementSpec::Adjacent { count: 2, start: 0 },
            3usize,
        )
    };
    let portfolio = impossible_portfolio();
    let portfolio_size = portfolio.len();
    let mut worst_visited = 0usize;
    for algorithm in portfolio {
        let scenario = Scenario::new(n, placement.clone(), algorithm, dynamics, opts.horizon)
            .with_seed(opts.seed ^ 0x5EED ^ ((k as u64) << 16) ^ (n as u64));
        let report = run_scenario(&scenario)?;
        if !report.outcome.is_confined() || report.visited_nodes > zone {
            return Ok(CellObservation::Mismatch {
                detail: format!(
                    "{} escaped the k={k} confiner on n={n}: {}",
                    algorithm.name(),
                    report.outcome
                ),
            });
        }
        worst_visited = worst_visited.max(report.visited_nodes);
    }
    Ok(CellObservation::Confined {
        worst_visited,
        portfolio_size,
    })
}

/// Runs the full Table 1 reproduction with the cell grid fanned out over
/// all cores. The report is byte-identical to [`run_table1_serial`]: cells
/// are independent, each runs with its own seeds, and results are
/// assembled in grid order.
///
/// # Errors
///
/// [`ScenarioError`] only for ill-formed options (all default cells are
/// well-formed).
pub fn run_table1(opts: &Table1Options) -> Result<Table1Report, ScenarioError> {
    run_table1_with_workers(opts, crate::parallel::available_workers())
}

/// The serial reference implementation of the Table 1 grid.
///
/// # Errors
///
/// See [`run_table1`].
pub fn run_table1_serial(opts: &Table1Options) -> Result<Table1Report, ScenarioError> {
    run_table1_with_workers(opts, 1)
}

/// [`run_table1`] with an explicit worker count (`1` = serial).
///
/// # Errors
///
/// See [`run_table1`].
pub fn run_table1_with_workers(
    opts: &Table1Options,
    workers: usize,
) -> Result<Table1Report, ScenarioError> {
    let grid: Vec<(usize, usize, Feasibility)> = opts
        .robot_counts
        .iter()
        .flat_map(|&k| {
            opts.ring_sizes
                .iter()
                .map(move |&n| (k, n, Feasibility::for_parameters(k, n)))
        })
        .collect();
    let observations = crate::parallel::par_map(&grid, workers, |&(k, n, expected)| {
        match expected {
            Feasibility::OutOfModel => Ok(CellObservation::OutOfModel),
            Feasibility::Solvable { algorithm, .. } => run_possible_cell(k, n, opts, algorithm),
            Feasibility::Unsolvable { .. } => run_impossible_cell(k, n, opts),
        }
    });
    let mut cells = Vec::with_capacity(grid.len());
    for (&(k, n, expected), observed) in grid.iter().zip(observations) {
        cells.push(CellResult {
            robots: k,
            nodes: n,
            expected,
            observed: observed?,
        });
    }
    Ok(Table1Report {
        cells,
        options: opts.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reduced grid so the unit test stays fast; the full grid runs in
    /// the integration tests and benches.
    fn small_options() -> Table1Options {
        Table1Options {
            robot_counts: vec![1, 2, 3],
            ring_sizes: vec![2, 3, 5],
            horizon: 700,
            seed: 42,
            min_covers: 2,
        }
    }

    #[test]
    fn parallel_grid_is_byte_identical_to_serial() {
        let opts = small_options();
        let serial = run_table1_serial(&opts).expect("valid options");
        let parallel = run_table1(&opts).expect("valid options");
        let serial_json = serde_json::to_string(&serial).expect("serialize");
        let parallel_json = serde_json::to_string(&parallel).expect("serialize");
        assert_eq!(serial_json, parallel_json);
    }

    #[test]
    fn reduced_table1_matches_the_paper() {
        let report = run_table1(&small_options()).expect("valid options");
        assert!(
            report.all_match(),
            "mismatches: {:?}",
            report.mismatches()
        );
        // 3 × 3 grid.
        assert_eq!(report.cells.len(), 9);
    }

    #[test]
    fn render_produces_a_grid() {
        let report = run_table1(&small_options()).expect("valid options");
        let rendered = report.render();
        assert!(rendered.contains("k \\ n"), "{rendered}");
        assert!(rendered.contains('P'), "{rendered}");
        assert!(rendered.contains('I'), "{rendered}");
    }

    #[test]
    fn markdown_render_marks_verdicts() {
        let report = run_table1(&small_options()).expect("valid options");
        let md = report.render_markdown();
        assert!(md.contains("| Possible ✓"), "{md}");
        assert!(md.contains("| Impossible ✓"), "{md}");
        assert!(md.contains("| — "), "{md}");
    }

    #[test]
    fn report_serializes_for_artifact_export() {
        let report = run_table1(&small_options()).expect("valid options");
        let json = serde_json::to_string(&report).expect("serialize");
        let back: Table1Report = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(report, back);
    }

    #[test]
    fn out_of_model_cells_are_marked() {
        let opts = Table1Options {
            robot_counts: vec![3],
            ring_sizes: vec![2, 3],
            horizon: 50,
            seed: 1,
            min_covers: 1,
        };
        let report = run_table1(&opts).expect("valid options");
        assert!(report
            .cells
            .iter()
            .all(|c| c.observed == CellObservation::OutOfModel));
        assert!(report.all_match());
    }
}
