//! Monte Carlo over replica batches: cover-time distributions and
//! survival rates from the lane-parallel lockstep engine.
//!
//! One [`BatchSimulator`] round advances `W::LANES` independent Bernoulli
//! replicas (64, 128 or 256 — [`BatchArity`]); [`run_replicas`] fans
//! *groups* of lanes out over all cores ([`crate::parallel::par_map`]),
//! so throughput composes: lanes × threads.
//!
//! The seed contract is arity-invariant: replica `r` is **always** lane
//! `r % 64` of the 64-lane stream seeded `derive_batch_seed(seed,
//! r / 64)`, at every arity — a wide group is the composite of
//! `W::WORDS` such streams, one per 64-lane plane
//! ([`dynring_graph::BernoulliReplicaBank`]). A sweep is therefore a pure
//! function of its [`MonteCarloConfig`]: results are byte-identical
//! across worker counts *and* lane arities, and any single replica can be
//! replayed bit-for-bit on the serial engine through
//! [`dynring_graph::BernoulliReplicas::lane`].

use serde::{Deserialize, Serialize};

use dynring_core::baselines::{
    AlternateDirection, AlwaysTurnOnTower, BounceOnMissingEdge, KeepDirection, RandomDirection,
};
use dynring_core::{Pef1, Pef2, Pef3Plus};
use dynring_engine::{
    BatchAlgorithm, BatchCoverage, BatchSimulator, LaneWord, Lanes128, Lanes256,
    RoundRobinSingle, LANES,
};
use dynring_graph::{BernoulliReplicaBank, BernoulliReplicas, RingTopology, Time};

use crate::parallel::{available_workers, par_map};
use crate::scenario::{AlgorithmChoice, PlacementSpec, Scenario, ScenarioError, SchedulerChoice};

/// A fully specified Monte Carlo sweep: one `(n, k, p)` point, many
/// Bernoulli replicas.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonteCarloConfig {
    /// Ring size `n`.
    pub ring_size: usize,
    /// Robots `k` (evenly spaced, mixed chirality — the standard sweep
    /// placement).
    pub robots: usize,
    /// Bernoulli presence probability `p`.
    pub presence_probability: f64,
    /// Rounds per replica before a lane is declared uncovered.
    pub horizon: Time,
    /// Number of replicas (rounded up to whole 64-lane batches
    /// internally; the summary reports exactly this many).
    pub replicas: usize,
    /// Base seed; batch `b` uses the derived stream seed
    /// `mix(seed, b)`.
    pub seed: u64,
    /// The algorithm under test.
    pub algorithm: AlgorithmChoice,
}

impl MonteCarloConfig {
    /// A sweep with the standard defaults (PEF_3+, `p = 0.5`).
    pub fn new(ring_size: usize, robots: usize, replicas: usize, horizon: Time) -> Self {
        MonteCarloConfig {
            ring_size,
            robots,
            presence_probability: 0.5,
            horizon,
            replicas,
            seed: 0xDECADE,
            algorithm: AlgorithmChoice::Pef3Plus,
        }
    }

    /// Number of 64-lane batches this sweep runs.
    pub fn batches(&self) -> usize {
        self.replicas.div_ceil(LANES)
    }
}

/// One bucket of the cover-time histogram: first covers in
/// `[lower, upper)` rounds.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramBucket {
    /// Inclusive lower bound (rounds).
    pub lower: Time,
    /// Exclusive upper bound (rounds).
    pub upper: Time,
    /// Replicas whose first cover fell in the bucket.
    pub count: usize,
}

/// Everything measured by one [`run_replicas`] sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonteCarloSummary {
    /// The configuration that produced this summary.
    pub config: MonteCarloConfig,
    /// 64-lane batches executed.
    pub batches: usize,
    /// Replicas that completed a first cover within the horizon.
    pub covered: usize,
    /// `covered / replicas`.
    pub survival_rate: f64,
    /// Mean first-cover round over the covered replicas (0 when none).
    pub mean_cover_time: f64,
    /// Minimum first-cover round over the covered replicas.
    pub min_cover_time: Option<Time>,
    /// Maximum first-cover round over the covered replicas.
    pub max_cover_time: Option<Time>,
    /// First-cover histogram over `[0, horizon)` in
    /// [`HISTOGRAM_BUCKETS`] equal buckets.
    pub histogram: Vec<HistogramBucket>,
}

/// Buckets of the cover-time histogram.
pub const HISTOGRAM_BUCKETS: usize = 8;

/// The stream seed of batch `batch`: replicas `64·batch .. 64·batch + 64`
/// are the 64 lanes of `BernoulliReplicas::new(ring, p, this seed)`.
/// Delegates to the shared [`crate::seeds::derive_stream_seed`] (same
/// formula, pinned by a test there), which the campaign executor and the
/// sweep paths also use.
pub fn derive_batch_seed(base: u64, batch: usize) -> u64 {
    crate::seeds::derive_stream_seed(base, batch as u64)
}

/// Lane arity of one lockstep batch group: how many replicas each
/// [`BatchSimulator`] advances per round.
///
/// The seed contract makes results byte-identical across arities (see the
/// module docs), so the arity is purely a throughput knob — recorded for
/// observability, never hashed into unit identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BatchArity {
    /// 64 lanes: one `u64` plane — the original engine word.
    Lanes64,
    /// 128 lanes: two planes.
    Lanes128,
    /// 256 lanes: four planes.
    Lanes256,
}

impl BatchArity {
    /// Every arity the batch engine is compiled for, narrowest first.
    pub const ALL: [BatchArity; 3] = [
        BatchArity::Lanes64,
        BatchArity::Lanes128,
        BatchArity::Lanes256,
    ];

    /// Replicas per lockstep group at this arity.
    pub fn lanes(self) -> usize {
        match self {
            BatchArity::Lanes64 => 64,
            BatchArity::Lanes128 => 128,
            BatchArity::Lanes256 => 256,
        }
    }

    /// Display name (`"batch-64"` style suffixes come from this).
    pub fn name(self) -> &'static str {
        match self {
            BatchArity::Lanes64 => "64",
            BatchArity::Lanes128 => "128",
            BatchArity::Lanes256 => "256",
        }
    }

    /// The arity-selection policy: minimize the padded lane cost
    /// `ceil(replicas / lanes) · lanes` (the replica-rounds actually
    /// simulated, ghost lanes included); ties go to the widest arity,
    /// which amortizes per-round overheads over more lanes. Examples:
    /// 65 → 128, 129 → 64 (192 beats 256), 250 → 256, 257 → 64.
    pub fn for_replicas(replicas: usize) -> BatchArity {
        let mut best = BatchArity::Lanes64;
        let mut best_cost = usize::MAX;
        for arity in BatchArity::ALL {
            let lanes = arity.lanes();
            let cost = replicas.div_ceil(lanes).max(1) * lanes;
            if cost < best_cost || (cost == best_cost && lanes > best.lanes()) {
                best = arity;
                best_cost = cost;
            }
        }
        best
    }
}

/// One batch-engine sweep over arbitrary (non-tower) placements: the
/// lower-level contract behind [`run_replicas_with`], also driven
/// directly by the campaign executor (whose units carry explicit
/// placements the [`MonteCarloConfig`] shape cannot express).
#[derive(Debug, Clone, Copy)]
pub struct BatchSweep<'a> {
    /// The algorithm under test.
    pub algorithm: AlgorithmChoice,
    /// The ring.
    pub ring: &'a RingTopology,
    /// Shared initial placements of every replica.
    pub placements: &'a [dynring_engine::RobotPlacement],
    /// Bernoulli presence probability `p`.
    pub p: f64,
    /// Rounds per replica before a lane is declared uncovered.
    pub horizon: Time,
    /// Number of replicas (a whole lockstep group each; the tail group's
    /// extra lanes are simulated but masked out of the result).
    pub replicas: usize,
    /// Base seed; 64-lane plane `b` draws from
    /// `derive_batch_seed(seed, b)` at every arity.
    pub seed: u64,
    /// Activation scheduling: FSYNC, or SSYNC round-robin — the same
    /// deterministic policy the serial engine's
    /// [`RoundRobinSingle`] plays, word-parallel.
    pub scheduler: SchedulerChoice,
}

impl BatchSweep<'_> {
    /// Number of 64-lane batches this sweep spans (the arity-invariant
    /// count of underlying Bernoulli streams; wide arities bundle
    /// `W::WORDS` of them per lockstep group).
    pub fn batches(&self) -> usize {
        self.replicas.div_ceil(LANES)
    }

    /// Runs every replica to its first cover at the arity
    /// [`BatchArity::for_replicas`] picks (groups fanned over `workers`
    /// threads; byte-identical for every worker count and every arity).
    ///
    /// # Errors
    ///
    /// [`ScenarioError`] when the sweep is ill-formed (invalid
    /// probability, bad placements, zero replicas).
    pub fn first_covers(&self, workers: usize) -> Result<Vec<Option<Time>>, ScenarioError> {
        self.first_covers_at(BatchArity::for_replicas(self.replicas), workers)
    }

    /// [`BatchSweep::first_covers`] at an explicit arity.
    ///
    /// # Errors
    ///
    /// See [`BatchSweep::first_covers`].
    pub fn first_covers_at(
        &self,
        arity: BatchArity,
        workers: usize,
    ) -> Result<Vec<Option<Time>>, ScenarioError> {
        match arity {
            BatchArity::Lanes64 => self.first_covers_arity::<u64>(workers),
            BatchArity::Lanes128 => self.first_covers_arity::<Lanes128>(workers),
            BatchArity::Lanes256 => self.first_covers_arity::<Lanes256>(workers),
        }
    }

    /// [`BatchSweep::first_covers`] at the arity of the lane word `W` —
    /// the monomorphic root of the sweep, and the surface the ragged
    /// lane-count equivalence tests pin.
    ///
    /// # Errors
    ///
    /// See [`BatchSweep::first_covers`].
    pub fn first_covers_arity<W: LaneWord>(
        &self,
        workers: usize,
    ) -> Result<Vec<Option<Time>>, ScenarioError> {
        // Validate probability through the stream constructor once, and
        // ring/placement compatibility with the real engine error, before
        // fanning out.
        BatchSimulator::new(
            self.ring.clone(),
            Pef3Plus::new(),
            BernoulliReplicas::new(self.ring.clone(), self.p, self.seed)?,
            self.placements.to_vec(),
        )?;
        if self.replicas == 0 {
            return Err(ScenarioError::NoReplicas);
        }
        Ok(match self.algorithm {
            AlgorithmChoice::Pef3Plus => self.sweep_with::<_, W>(Pef3Plus::new(), workers),
            AlgorithmChoice::Pef2 => self.sweep_with::<_, W>(Pef2::new(), workers),
            AlgorithmChoice::Pef1 => self.sweep_with::<_, W>(Pef1::new(), workers),
            AlgorithmChoice::KeepDirection => self.sweep_with::<_, W>(KeepDirection, workers),
            AlgorithmChoice::BounceOnMissingEdge => {
                self.sweep_with::<_, W>(BounceOnMissingEdge, workers)
            }
            AlgorithmChoice::AlwaysTurnOnTower => {
                self.sweep_with::<_, W>(AlwaysTurnOnTower, workers)
            }
            AlgorithmChoice::AlternateDirection => {
                self.sweep_with::<_, W>(AlternateDirection, workers)
            }
            AlgorithmChoice::RandomDirection { seed } => {
                self.sweep_with::<_, W>(RandomDirection::new(seed), workers)
            }
        })
    }

    /// The [`BernoulliReplicaBank`] of lockstep group `group` at arity
    /// `W`: plane `w` is the 64-lane stream seeded
    /// `derive_batch_seed(seed, group · W::WORDS + w)` — which makes lane
    /// `l` of the group exactly replica `group · W::LANES + l` of the
    /// arity-invariant numbering.
    fn group_bank<W: LaneWord>(&self, group: usize) -> BernoulliReplicaBank {
        let seeds: Vec<u64> = (0..W::WORDS)
            .map(|w| derive_batch_seed(self.seed, group * W::WORDS + w))
            .collect();
        BernoulliReplicaBank::new(self.ring.clone(), self.p, &seeds)
            .expect("probability validated by first_covers")
    }

    /// Runs one `W::LANES`-lane group to its first-cover times (lanes
    /// beyond the replica budget are still simulated — they ride along
    /// for free — but the caller discards them).
    fn run_group<A, W>(&self, algorithm: A, group: usize) -> Vec<Option<Time>>
    where
        A: BatchAlgorithm<W>,
        W: LaneWord,
    {
        let mut sim = BatchSimulator::<_, _, W>::new(
            self.ring.clone(),
            algorithm,
            self.group_bank::<W>(group),
            self.placements.to_vec(),
        )
        .expect("setup validated by first_covers");
        if self.scheduler == SchedulerChoice::SsyncRoundRobin {
            sim.set_activation(RoundRobinSingle);
        }
        let mut coverage = BatchCoverage::new(&sim);
        sim.run_covering(self.horizon, &mut coverage);
        coverage.first_covers().to_vec()
    }

    fn sweep_with<A, W>(&self, algorithm: A, workers: usize) -> Vec<Option<Time>>
    where
        A: BatchAlgorithm<W> + Clone + Sync,
        W: LaneWord,
    {
        let groups: Vec<usize> = (0..self.replicas.div_ceil(W::LANES)).collect();
        let per_group =
            par_map(&groups, workers, |&g| self.run_group::<_, W>(algorithm.clone(), g));
        // Ghost-lane masking: when `replicas` is not a multiple of the
        // arity the final group simulates more lanes than the budget.
        // Each group's contribution is truncated to its own lane budget
        // here — at the source, not by a global truncation downstream —
        // so no code path over the flattened results can ever see a ghost
        // lane.
        per_group
            .into_iter()
            .enumerate()
            .flat_map(|(g, firsts)| {
                let lane_budget = self.replicas.saturating_sub(g * W::LANES).min(W::LANES);
                firsts.into_iter().take(lane_budget)
            })
            .collect()
    }
}

/// Runs the sweep on all cores. See [`run_replicas_with`].
///
/// # Errors
///
/// See [`run_replicas_with`].
pub fn run_replicas(cfg: &MonteCarloConfig) -> Result<MonteCarloSummary, ScenarioError> {
    run_replicas_with(cfg, available_workers())
}

/// Runs `cfg.replicas` independent Bernoulli replicas (64 per lockstep
/// batch, batches fanned over `workers` threads) and summarizes first
/// covers. Results are byte-identical for every `workers` value.
///
/// # Errors
///
/// [`ScenarioError`] when the configuration is ill-formed (ring too
/// small, too many robots, invalid probability, zero replicas —
/// reported as the underlying graph/engine error).
pub fn run_replicas_with(
    cfg: &MonteCarloConfig,
    workers: usize,
) -> Result<MonteCarloSummary, ScenarioError> {
    let ring = RingTopology::new(cfg.ring_size)?;
    let placements = PlacementSpec::EvenlySpaced { count: cfg.robots }.build(cfg.ring_size);
    let sweep = BatchSweep {
        algorithm: cfg.algorithm,
        ring: &ring,
        placements: &placements,
        p: cfg.presence_probability,
        horizon: cfg.horizon,
        replicas: cfg.replicas,
        seed: cfg.seed,
        scheduler: SchedulerChoice::Fsync,
    };
    let firsts = sweep.first_covers(workers)?;
    Ok(summarize(cfg.clone(), &firsts))
}

fn summarize(config: MonteCarloConfig, firsts: &[Option<Time>]) -> MonteCarloSummary {
    let covered: Vec<Time> = firsts.iter().filter_map(|&c| c).collect();
    let bucket_width = (config.horizon / HISTOGRAM_BUCKETS as Time).max(1);
    let histogram = (0..HISTOGRAM_BUCKETS)
        .map(|b| {
            let lower = b as Time * bucket_width;
            // The last bucket absorbs the tail up to the horizon; the
            // max() keeps the [lower, upper) invariant for horizons
            // shorter than the bucket count.
            let upper = if b + 1 == HISTOGRAM_BUCKETS {
                (lower + bucket_width).max(config.horizon.saturating_add(1))
            } else {
                (b as Time + 1) * bucket_width
            };
            HistogramBucket {
                lower,
                upper,
                count: covered.iter().filter(|&&c| c >= lower && c < upper).count(),
            }
        })
        .collect();
    let mean_cover_time = if covered.is_empty() {
        0.0
    } else {
        covered.iter().sum::<Time>() as f64 / covered.len() as f64
    };
    MonteCarloSummary {
        batches: config.batches(),
        covered: covered.len(),
        survival_rate: covered.len() as f64 / config.replicas as f64,
        mean_cover_time,
        min_cover_time: covered.iter().copied().min(),
        max_cover_time: covered.iter().copied().max(),
        histogram,
        config,
    }
}

/// The [`Scenario`]-shaped view of a Monte Carlo point (for reports that
/// want to pass the configuration through existing machinery).
pub fn as_scenario(cfg: &MonteCarloConfig) -> Scenario {
    Scenario::new(
        cfg.ring_size,
        PlacementSpec::EvenlySpaced { count: cfg.robots },
        cfg.algorithm,
        crate::scenario::DynamicsChoice::BernoulliRecurrent {
            p: cfg.presence_probability,
            bound: 8,
        },
        cfg.horizon,
    )
    .with_seed(cfg.seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> MonteCarloConfig {
        MonteCarloConfig {
            ring_size: 8,
            robots: 3,
            presence_probability: 0.5,
            horizon: 400,
            replicas: 96, // one full batch + a partial one
            seed: 0xFEED,
            algorithm: AlgorithmChoice::Pef3Plus,
        }
    }

    #[test]
    fn parallel_sweep_is_byte_identical_to_serial() {
        let cfg = small_cfg();
        let serial = run_replicas_with(&cfg, 1).expect("valid config");
        for workers in [2usize, 4, 8] {
            let parallel = run_replicas_with(&cfg, workers).expect("valid config");
            assert_eq!(serial, parallel, "workers = {workers}");
        }
        let json_a = serde_json::to_string(&serial).expect("serialize");
        let json_b = serde_json::to_string(&run_replicas(&cfg).expect("valid config"))
            .expect("serialize");
        assert_eq!(json_a, json_b);
    }

    #[test]
    fn pef3_survives_the_standard_point() {
        let summary = run_replicas(&small_cfg()).expect("valid config");
        assert_eq!(summary.batches, 2);
        assert_eq!(summary.covered, summary.config.replicas, "{summary:?}");
        assert!((summary.survival_rate - 1.0).abs() < f64::EPSILON);
        assert!(summary.mean_cover_time > 0.0);
        assert_eq!(
            summary.histogram.iter().map(|b| b.count).sum::<usize>(),
            summary.covered
        );
    }

    #[test]
    fn replica_zero_is_the_scenario_seed_stream() {
        // Replica r of the sweep is reproducible in isolation: batch
        // r / 64 lane r % 64 — pinned here for batch seed derivation.
        let cfg = small_cfg();
        let summary = run_replicas(&cfg).expect("valid config");
        let ring = RingTopology::new(cfg.ring_size).expect("valid ring");
        let replicas = BernoulliReplicas::new(
            ring.clone(),
            cfg.presence_probability,
            derive_batch_seed(cfg.seed, 1),
        )
        .expect("valid p");
        let placements = PlacementSpec::EvenlySpaced { count: cfg.robots }.build(cfg.ring_size);
        let mut sim = BatchSimulator::new(ring, Pef3Plus::new(), replicas, placements)
            .expect("valid setup");
        let mut coverage = BatchCoverage::new(&sim);
        sim.run_covering(cfg.horizon, &mut coverage);
        // Replica 64 + 5 is batch 1, lane 5.
        let direct = coverage.first_cover(5);
        assert!(direct.is_some());
        // Its first cover contributed to the histogram bucket of summary.
        let t = direct.expect("covered");
        assert!(summary
            .histogram
            .iter()
            .any(|b| t >= b.lower && t < b.upper && b.count > 0));
    }

    #[test]
    fn partial_final_batch_matches_65_serial_runs_exactly() {
        // Regression pin for ghost-lane accounting: with replicas = 65
        // the final batch simulates 63 lanes beyond the budget. The
        // summary must be a pure function of replicas 0..65 — each the
        // serial engine run over its derived lane schedule — with no
        // ghost-lane leakage into covered counts, survival, extrema or
        // the histogram, under every worker count.
        use dynring_engine::{Oblivious, Simulator};

        let cfg = MonteCarloConfig {
            ring_size: 8,
            robots: 3,
            presence_probability: 0.5,
            horizon: 400,
            replicas: 65,
            seed: 0xFEED,
            algorithm: AlgorithmChoice::Pef3Plus,
        };
        let ring = RingTopology::new(cfg.ring_size).expect("valid ring");
        let placements = PlacementSpec::EvenlySpaced { count: cfg.robots }.build(cfg.ring_size);
        // Serial reference: replica r = batch r/64, lane r%64.
        let mut serial_firsts: Vec<Option<Time>> = Vec::new();
        for r in 0..cfg.replicas {
            let replicas = BernoulliReplicas::new(
                ring.clone(),
                cfg.presence_probability,
                derive_batch_seed(cfg.seed, r / LANES),
            )
            .expect("valid p");
            let mut sim = Simulator::new(
                ring.clone(),
                Pef3Plus::new(),
                Oblivious::new(replicas.lane((r % LANES) as u32)),
                placements.clone(),
            )
            .expect("valid setup");
            let n = cfg.ring_size;
            let mut seen = vec![false; n];
            let mut missing = n;
            let mut first_cover = None;
            fn note(
                seen: &mut [bool],
                missing: &mut usize,
                first_cover: &mut Option<Time>,
                positions: &[dynring_graph::NodeId],
                t: Time,
            ) {
                for p in positions {
                    if !seen[p.index()] {
                        seen[p.index()] = true;
                        *missing -= 1;
                        if *missing == 0 && first_cover.is_none() {
                            *first_cover = Some(t);
                        }
                    }
                }
            }
            note(&mut seen, &mut missing, &mut first_cover, &sim.positions(), 0);
            for t in 1..=cfg.horizon {
                sim.step_quiet();
                note(&mut seen, &mut missing, &mut first_cover, &sim.positions(), t);
                if missing == 0 {
                    break;
                }
            }
            serial_firsts.push(first_cover);
        }
        let serial_covered: Vec<Time> = serial_firsts.iter().filter_map(|&c| c).collect();
        for workers in [1usize, 4] {
            let summary = run_replicas_with(&cfg, workers).expect("valid config");
            assert_eq!(summary.batches, 2, "workers={workers}");
            assert_eq!(summary.covered, serial_covered.len(), "workers={workers}");
            assert!(
                (summary.survival_rate - serial_covered.len() as f64 / 65.0).abs()
                    < f64::EPSILON,
                "workers={workers}"
            );
            assert_eq!(
                summary.min_cover_time,
                serial_covered.iter().copied().min(),
                "workers={workers}"
            );
            assert_eq!(
                summary.max_cover_time,
                serial_covered.iter().copied().max(),
                "workers={workers}"
            );
            let serial_mean =
                serial_covered.iter().sum::<Time>() as f64 / serial_covered.len() as f64;
            assert_eq!(summary.mean_cover_time, serial_mean, "workers={workers}");
            assert_eq!(
                summary.histogram.iter().map(|b| b.count).sum::<usize>(),
                serial_covered.len(),
                "ghost lanes leaked into the histogram (workers={workers})"
            );
        }
    }

    #[test]
    fn bad_configs_are_rejected() {
        let mut cfg = small_cfg();
        cfg.ring_size = 1;
        assert!(matches!(run_replicas(&cfg), Err(ScenarioError::Graph(_))));
        let mut cfg = small_cfg();
        cfg.presence_probability = 1.5;
        assert!(matches!(run_replicas(&cfg), Err(ScenarioError::Graph(_))));
        let mut cfg = small_cfg();
        cfg.robots = 8;
        assert!(matches!(run_replicas(&cfg), Err(ScenarioError::Engine(_))));
        let mut cfg = small_cfg();
        cfg.replicas = 0;
        assert!(matches!(run_replicas(&cfg), Err(ScenarioError::NoReplicas)));
    }

    #[test]
    fn histogram_buckets_stay_ordered_for_tiny_horizons() {
        // horizon < HISTOGRAM_BUCKETS: bucket width clamps to 1 and the
        // tail bucket must still satisfy lower < upper.
        let mut cfg = small_cfg();
        cfg.horizon = 4;
        cfg.replicas = 64;
        let summary = run_replicas(&cfg).expect("valid config");
        for bucket in &summary.histogram {
            assert!(bucket.lower < bucket.upper, "{bucket:?}");
        }
        assert_eq!(
            summary.histogram.iter().map(|b| b.count).sum::<usize>(),
            summary.covered
        );
    }

    #[test]
    fn as_scenario_round_trips_the_point() {
        let cfg = small_cfg();
        let scenario = as_scenario(&cfg);
        assert_eq!(scenario.ring_size, cfg.ring_size);
        assert_eq!(scenario.seed, cfg.seed);
        assert_eq!(scenario.horizon, cfg.horizon);
    }
    /// Serial-engine first cover of replica `r` of the arity-invariant
    /// numbering: lane `r % 64` of the stream seeded
    /// `derive_batch_seed(seed, r / 64)`, optionally under the serial
    /// round-robin SSYNC scheduler.
    fn serial_anchor(
        ring: &RingTopology,
        placements: &[dynring_engine::RobotPlacement],
        p: f64,
        horizon: Time,
        seed: u64,
        r: usize,
        ssync: bool,
    ) -> Option<Time> {
        use dynring_engine::{Oblivious, Simulator};
        let replicas =
            BernoulliReplicas::new(ring.clone(), p, derive_batch_seed(seed, r / LANES))
                .expect("valid p");
        let mut sim = Simulator::new(
            ring.clone(),
            Pef3Plus::new(),
            Oblivious::new(replicas.lane((r % LANES) as u32)),
            placements.to_vec(),
        )
        .expect("valid setup");
        if ssync {
            sim.set_activation(RoundRobinSingle);
        }
        let n = ring.node_count();
        let mut seen = vec![false; n];
        let mut missing = n;
        let mut note = move |seen: &mut [bool], positions: &[dynring_graph::NodeId]| {
            for pos in positions {
                if !seen[pos.index()] {
                    seen[pos.index()] = true;
                    missing -= 1;
                }
            }
            missing == 0
        };
        if note(&mut seen, &sim.positions()) {
            return Some(0);
        }
        for t in 1..=horizon {
            sim.step_quiet();
            if note(&mut seen, &sim.positions()) {
                return Some(t);
            }
        }
        None
    }

    #[test]
    fn arity_selection_minimizes_padded_lane_cost() {
        // The policy pinned: least padded replica-rounds, ties to the
        // widest arity.
        for (replicas, expect) in [
            (1, BatchArity::Lanes64),
            (63, BatchArity::Lanes64),
            (64, BatchArity::Lanes64),
            (65, BatchArity::Lanes128),
            (128, BatchArity::Lanes128),
            (129, BatchArity::Lanes64),
            (192, BatchArity::Lanes64),
            (250, BatchArity::Lanes256),
            (256, BatchArity::Lanes256),
            (257, BatchArity::Lanes64),
            (512, BatchArity::Lanes256),
        ] {
            assert_eq!(
                BatchArity::for_replicas(replicas),
                expect,
                "replicas={replicas}"
            );
        }
        assert_eq!(BatchArity::Lanes128.lanes(), 128);
        assert_eq!(BatchArity::Lanes256.name(), "256");
    }

    #[test]
    fn ragged_lane_counts_are_byte_identical_across_arities() {
        // The tentpole invariant at every ragged boundary: a sweep over
        // `replicas` lanes returns the same bytes at 64, 128 and 256
        // lanes per group, each anchored to the serial engine at the
        // first and last replica.
        let ring = RingTopology::new(8).expect("valid ring");
        let placements = PlacementSpec::EvenlySpaced { count: 3 }.build(8);
        for replicas in [63usize, 64, 65, 127, 129, 255, 257] {
            let sweep = BatchSweep {
                algorithm: AlgorithmChoice::Pef3Plus,
                ring: &ring,
                placements: &placements,
                p: 0.5,
                horizon: 400,
                replicas,
                seed: 0xFEED ^ replicas as u64,
                scheduler: SchedulerChoice::Fsync,
            };
            let narrow = sweep.first_covers_arity::<u64>(1).expect("valid sweep");
            assert_eq!(narrow.len(), replicas, "replicas={replicas}");
            let wide128 = sweep.first_covers_arity::<Lanes128>(1).expect("valid sweep");
            let wide256 = sweep.first_covers_arity::<Lanes256>(2).expect("valid sweep");
            assert_eq!(narrow, wide128, "128-lane drift at replicas={replicas}");
            assert_eq!(narrow, wide256, "256-lane drift at replicas={replicas}");
            let auto = sweep.first_covers(1).expect("valid sweep");
            assert_eq!(narrow, auto, "auto-arity drift at replicas={replicas}");
            for r in [0, replicas - 1] {
                let anchor = serial_anchor(
                    &ring,
                    &placements,
                    sweep.p,
                    sweep.horizon,
                    sweep.seed,
                    r,
                    false,
                );
                assert_eq!(
                    narrow[r], anchor,
                    "serial anchor drift at replicas={replicas}, r={r}"
                );
            }
        }
    }

    #[test]
    fn ssync_sweeps_match_the_serial_round_robin_engine_at_every_arity() {
        // SSYNC widening: the word-parallel round-robin activation must
        // reproduce the serial engine's `RoundRobinSingle` run in every
        // lane, at every arity, across a ragged group boundary.
        let ring = RingTopology::new(8).expect("valid ring");
        let placements = PlacementSpec::EvenlySpaced { count: 3 }.build(8);
        let replicas = 70;
        let sweep = BatchSweep {
            algorithm: AlgorithmChoice::Pef3Plus,
            ring: &ring,
            placements: &placements,
            p: 0.5,
            horizon: 1200,
            replicas,
            seed: 0xC0FFEE,
            scheduler: SchedulerChoice::SsyncRoundRobin,
        };
        let narrow = sweep.first_covers_arity::<u64>(1).expect("valid sweep");
        let serial: Vec<Option<Time>> = (0..replicas)
            .map(|r| {
                serial_anchor(
                    &ring,
                    &placements,
                    sweep.p,
                    sweep.horizon,
                    sweep.seed,
                    r,
                    true,
                )
            })
            .collect();
        assert_eq!(narrow, serial, "64-lane SSYNC sweep drifted from serial");
        assert_eq!(
            narrow,
            sweep.first_covers_arity::<Lanes128>(1).expect("valid sweep")
        );
        assert_eq!(
            narrow,
            sweep.first_covers_arity::<Lanes256>(1).expect("valid sweep")
        );
        assert_eq!(
            narrow,
            sweep
                .first_covers_at(BatchArity::for_replicas(replicas), 2)
                .expect("valid sweep")
        );
    }

}
